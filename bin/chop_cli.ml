(* chop — command-line driver for the CHOP constraint-driven system-level
   partitioner.

   Subcommands:
     explore   run the full CHOP exploration on a benchmark graph
     predict   show BAD's predicted implementations for one partition
     repl      interactive session: edit the partitioning, re-run cheaply
     dot       emit a Graphviz rendering of a (partitioned) benchmark
     advise    what-if feasibility probe while varying chips/constraints
     auto      automatic partitioning: multilevel coarsen-refine driven by BAD
     serve     long-running exploration service over a socket or stdio
     request   one request against a running serve daemon
     gateway   shard N serve backends behind one socket
     bench-info  list built-in benchmark graphs

   The benchmark table, spec assembly and result rendering live in
   [Chop_server.Ops], shared with the serve daemon — which is what makes
   a serve response byte-identical to the CLI's output. *)

open Cmdliner
module Ops = Chop_server.Ops

let benchmarks = Ops.benchmarks

let graph_of_name name =
  Result.map_error (fun m -> `Msg m) (Ops.graph_of_name name)

let graph_conv =
  let parse s = graph_of_name s in
  let print ppf g = Format.fprintf ppf "%s" (Chop_dfg.Graph.name g) in
  Arg.conv (parse, print)

let graph_arg =
  Arg.(
    value
    & opt graph_conv (Chop_dfg.Benchmarks.ar_lattice_filter ())
    & info [ "g"; "graph" ] ~docv:"NAME"
        ~doc:"Benchmark graph: ar, ewf, fir8, fir16, diffeq, dct8, pcm_pwm \
              (the HW/SW co-design case study), ewf2 (ewf rebuilt in a \
              shuffled construction order — exercises structural cache \
              sharing).")

let partitions_arg =
  Arg.(
    value & opt int 2
    & info [ "k"; "partitions" ] ~docv:"K" ~doc:"Number of partitions (level cuts).")

let package_arg =
  let package_conv =
    Arg.conv
      ( (fun s ->
          let pins =
            match s with "pkg64" -> "64" | "pkg84" -> "84" | s -> s
          in
          match int_of_string_opt pins with
          | Some n -> Result.map_error (fun m -> `Msg m) (Ops.package_of_pins n)
          | None -> Error (`Msg "package must be 64 or 84")),
        fun ppf c -> Format.fprintf ppf "%s" c.Chop_tech.Chip.pkg_name )
  in
  Arg.(
    value
    & opt package_conv Chop_tech.Mosis.package_84
    & info [ "p"; "package" ] ~docv:"PINS" ~doc:"MOSIS package: 64 or 84 pins.")

let perf_arg =
  Arg.(
    value & opt float 30000.
    & info [ "perf" ] ~docv:"NS" ~doc:"Performance constraint (ns).")

let delay_arg =
  Arg.(
    value & opt float 30000.
    & info [ "delay" ] ~docv:"NS" ~doc:"System delay constraint (ns).")

let multicycle_arg =
  Arg.(
    value & flag
    & info [ "multi-cycle" ]
        ~doc:"Multi-cycle operation style with the data-path clock at main \
              speed (experiment-2 conditions); default is single-cycle with \
              the data-path clock at 10x main.")

let heuristic_arg =
  let heuristic_conv =
    Arg.conv
      ( (fun s -> Result.map_error (fun m -> `Msg m) (Ops.heuristic_of_string s)),
        fun ppf h -> Chop.Explore.pp_heuristic ppf h )
  in
  Arg.(
    value
    & opt heuristic_conv Chop.Explore.Iterative
    & info [ "H"; "heuristic" ] ~docv:"E|I" ~doc:"Search heuristic.")

let strategy_arg =
  let strategy_conv =
    Arg.conv
      ( (fun s -> Result.map_error (fun m -> `Msg m) (Ops.strategy_of_string s)),
        fun ppf s ->
          Format.pp_print_string ppf (Chop_baseline.Autopart.strategy_name s) )
  in
  Arg.(
    value
    & opt strategy_conv Chop_baseline.Autopart.Levels
    & info [ "s"; "strategy" ] ~docv:"STRAT"
        ~doc:"Partition generation strategy: levels, min-cut or random.")

let build_spec ?(impls = []) graph k package perf delay multicycle strategy =
  (* the graph carries its benchmark name, so the co-design benchmark (and
     any explicit --impl binding) declares the reference processor *)
  Ops.build_spec
    ~processors:
      (Ops.processors_for ~benchmark:(Chop_dfg.Graph.name graph) ~impls)
    ~impls ~graph ~partitions:k ~package ~perf ~delay ~multicycle ~strategy ()

let impl_arg =
  Arg.(
    value & opt_all string []
    & info [ "impl" ] ~docv:"PART=MODEL"
        ~doc:"Bind a partition to an implementation model (repeatable): \
              $(b,hw) or the reference processor $(b,cpu).  Any binding \
              declares the processor, so $(b,--impl P1=cpu) works on every \
              benchmark; $(b,pcm_pwm) declares it even without bindings.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for prediction and search. Defaults to the \
              $(b,CHOP_JOBS) environment variable when set, otherwise to \
              the available cores.")

let resolve_jobs = function
  | Some n -> max 1 n
  | None -> Chop_util.Pool.default_jobs ()

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"SPEC"
        ~doc:"Load the full problem from a chopspec file (overrides the \
              graph/partition/chip options).")

let explore_cmd =
  let run graph k package perf delay multicycle heuristic strategy verbose file
      csv keep_all no_prune stats jobs impl =
    match
      match Ops.parse_impl_bindings impl with
      | Error _ as e -> e
      | Ok impls -> (
          match
            match file with
            | Some path -> Chop.Specfile.load path
            | None ->
                build_spec ~impls graph k package perf delay multicycle
                  strategy
          with
          | spec -> Ok spec
          | exception Chop.Spec.Invalid_spec reason -> Error reason)
    with
    | Error msg ->
        prerr_endline ("chop explore: " ^ msg);
        2
    | Ok spec ->
    let config =
      Chop.Explore.Config.make ~heuristic ~keep_all:(csv || keep_all)
        ~pre_prune:(not no_prune) ~jobs:(resolve_jobs jobs) ()
    in
    let report = Chop.Explore.with_engine config spec Chop.Explore.Engine.run in
    (* the deterministic block first (shared with the serve daemon, which
       is what makes its responses byte-identical to this output), then
       the wall-clock lines *)
    print_string (Ops.render_explore spec ~keep_all ~csv ~verbose report);
    if not (keep_all || csv) then begin
      print_newline ();
      print_string (Ops.render_explore_timing report);
      if stats then
        print_string (Chop.Explore.Metrics.summary report.Chop.Explore.metrics)
    end;
    0
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print designer guidelines.")
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Run the CHOP exploration on a benchmark graph")
    Term.(
      const run $ graph_arg $ partitions_arg $ package_arg $ perf_arg
      $ delay_arg $ multicycle_arg $ heuristic_arg $ strategy_arg $ verbose
      $ file_arg
      $ Arg.(value & flag
             & info [ "csv" ]
                 ~doc:"Explore without pruning and dump every design point \
                       as CSV (Figures 7/8-style data).")
      $ Arg.(value & flag
             & info [ "keep-all" ]
                 ~doc:"Explore without pruning and dump both the feasible \
                       front and every explored design point as CSV; output \
                       is deterministic across $(b,--jobs) values.")
      $ Arg.(value & flag
             & info [ "no-prune" ]
                 ~doc:"Disable the dominance pre-pruning of the search \
                       lists.  The feasible front is identical either way; \
                       with $(b,--keep-all) this restores the exhaustive \
                       explored dump at full search cost.")
      $ Arg.(value & flag
             & info [ "stats" ]
                 ~doc:"Print the engine timing breakdown: wall/busy seconds \
                       per phase (predict, search, merge), per-worker busy \
                       time, chunk counts, cache hits/misses, and the \
                       search-side counters (implementations pre-pruned, \
                       integrations avoided, chip-report cache hits).")
      $ jobs_arg $ impl_arg)

let repl_cmd =
  let run graph k package perf delay multicycle heuristic strategy file verbose
      jobs =
    let spec =
      match file with
      | Some path -> Chop.Specfile.load path
      | None -> build_spec graph k package perf delay multicycle strategy
    in
    let config =
      Chop.Explore.Config.make ~heuristic ~jobs:(resolve_jobs jobs) ()
    in
    Chop.Explore.with_session config spec (fun session ->
        let help () =
          print_string
            ("commands:\n  " ^ Ops.edit_commands
           ^ "\n  parts          list partitions and their chips\n\
             \  run            explore (re-predicting only edited partitions)\n\
             \  undo | redo    step back / forward through the edit history\n\
             \  :sessions      list open sessions (this one, locally)\n\
             \  help | quit\n")
        in
        print_string (Ops.render_parts (Chop.Explore.Session.spec session));
        let rec loop () =
          match input_line stdin with
          | exception End_of_file -> ()
          | line -> (
              (* echo the command so a piped script yields a readable —
                 and golden-testable — transcript *)
              print_string ("chop> " ^ line ^ "\n");
              match String.trim line with
              | "quit" | "exit" -> ()
              | cmd ->
                  (match cmd with
                  | "" -> ()
                  | _ when cmd.[0] = '#' -> ()
                  | "help" -> help ()
                  | "parts" ->
                      print_string
                        (Ops.render_parts (Chop.Explore.Session.spec session))
                  | "run" ->
                      let report = Chop.Explore.Session.run session in
                      print_string
                        (Ops.render_explore
                           (Chop.Explore.Session.spec session)
                           ~keep_all:false ~csv:false ~verbose report);
                      Printf.printf "predict: %d cache hit(s), %d miss(es)\n"
                        report.Chop.Explore.cache_hits
                        report.Chop.Explore.cache_misses
                  | "undo" | "redo" -> (
                      let step =
                        if cmd = "undo" then Chop.Explore.Session.undo
                        else Chop.Explore.Session.redo
                      in
                      match step session with
                      | Error msg -> Printf.printf "error: %s\n" msg
                      | Ok dirty -> print_string (Ops.render_dirty dirty))
                  | ":sessions" ->
                      print_string
                        (Ops.render_sessions
                           [
                             {
                               Ops.ses_id = "local";
                               ses_revision =
                                 Chop.Explore.Session.revision session;
                               ses_age_s = 0.;
                               ses_writer = "";
                               ses_observers = 0;
                             };
                           ])
                  | _ -> (
                      let spec = Chop.Explore.Session.spec session in
                      match Ops.parse_edit spec cmd with
                      | Error msg -> Printf.printf "error: %s\n" msg
                      | Ok edit -> (
                          match Chop.Explore.Session.edit session [ edit ] with
                          | Error e ->
                              Format.printf "error: %a@."
                                Chop.Spec.pp_update_error e
                          | Ok dirty -> print_string (Ops.render_dirty dirty))));
                  flush stdout;
                  loop ())
        in
        loop ());
    0
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print designer guidelines.")
  in
  Cmd.v
    (Cmd.info "repl"
       ~doc:"Interactive session on a benchmark spec: partition edits from \
             stdin (one command per line; $(b,help) lists them), with \
             $(b,run) re-predicting only the partitions the edits touched. \
             Scriptable: pipe a command file in; every command is echoed, so \
             the transcript reads like the session.")
    Term.(
      const run $ graph_arg $ partitions_arg $ package_arg $ perf_arg
      $ delay_arg $ multicycle_arg $ heuristic_arg $ strategy_arg $ file_arg
      $ verbose $ jobs_arg)

let predict_cmd =
  let run graph k package perf delay multicycle strategy index top jobs =
    let spec = build_spec graph k package perf delay multicycle strategy in
    let per_partition, stats =
      Chop.Explore.with_engine
        (Chop.Explore.Config.make ~jobs:(resolve_jobs jobs) ())
        spec Chop.Explore.Engine.predictions
    in
    print_string (Ops.render_predict spec ~index ~top per_partition stats);
    0
  in
  let index =
    Arg.(value & opt int (-1) & info [ "i"; "index" ] ~docv:"N"
           ~doc:"Partition index to show (-1 for all).")
  in
  let top =
    Arg.(value & opt int 3 & info [ "t"; "top" ] ~docv:"N"
           ~doc:"Predictions to print per partition.")
  in
  Cmd.v
    (Cmd.info "predict" ~doc:"Show BAD's predicted implementations per partition")
    Term.(
      const run $ graph_arg $ partitions_arg $ package_arg $ perf_arg
      $ delay_arg $ multicycle_arg $ strategy_arg $ index $ top $ jobs_arg)

let dot_cmd =
  let run graph k strategy =
    if k <= 1 then print_string (Chop_dfg.Dot.of_graph graph)
    else begin
      let pg = Chop_baseline.Autopart.generate graph ~k strategy in
      print_string (Chop_dfg.Dot.of_partitioning pg)
    end;
    0
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz for a (partitioned) benchmark graph")
    Term.(const run $ graph_arg $ partitions_arg $ strategy_arg)

let advise_cmd =
  let run graph k package perf delay multicycle strategy jobs =
    let spec = build_spec graph k package perf delay multicycle strategy in
    let config = Chop.Explore.Config.make ~jobs:(resolve_jobs jobs) () in
    let j = Chop.Advisor.what_if ~config spec in
    print_string (Ops.render_advice j);
    if j.Chop.Advisor.feasible then 0 else 1
  in
  Cmd.v
    (Cmd.info "advise" ~doc:"Quick feasibility probe (exit 1 when infeasible)")
    Term.(
      const run $ graph_arg $ partitions_arg $ package_arg $ perf_arg
      $ delay_arg $ multicycle_arg $ strategy_arg $ jobs_arg)

let auto_cmd =
  let run graph k package perf delay multicycle strategy file seed max_moves
      time_limit coarse pins together stats jobs impl =
    match
      match Ops.parse_impl_bindings impl with
      | Error _ as e -> e
      | Ok impls -> (
          match
            match file with
            | Some path -> Chop.Specfile.load path
            | None ->
                build_spec ~impls graph k package perf delay multicycle
                  strategy
          with
          | spec -> Ok spec
          | exception Chop.Spec.Invalid_spec reason -> Error reason)
    with
    | Error msg ->
        prerr_endline ("chop auto: " ^ msg);
        2
    | Ok spec -> (
    match Ops.parse_constraints spec ~pins ~together with
    | Error msg ->
        prerr_endline ("chop auto: " ^ msg);
        2
    | Ok constraints -> (
        let config = Chop.Explore.Config.make ~jobs:(resolve_jobs jobs) () in
        match
          Chop_auto.run ~seed ~constraints ~max_moves
            ?time_limit_s:(if time_limit > 0. then Some time_limit else None)
            ?coarse_target:(if coarse > 0 then Some coarse else None)
            ~config spec
        with
        | exception Chop_auto.Invalid_constraints msg ->
            prerr_endline ("chop auto: " ^ msg);
            2
        | o ->
            (* deterministic block first (shared with session/optimize —
               byte-identical to a serve response), wall-clock after *)
            print_string (Ops.render_auto o.Chop_auto.spec o);
            print_newline ();
            print_string (Ops.render_auto_timing o);
            if stats then print_string (Ops.render_auto_stats o);
            if Ops.explore_feasible_count o.Chop_auto.report > 0 then 0 else 1))
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N"
             ~doc:"Deterministic tie-breaking seed for matching and move \
                   ordering.")
  in
  let max_moves =
    Arg.(value & opt int 1024
         & info [ "max-moves" ] ~docv:"N"
             ~doc:"Candidate-move budget across all refinement levels.")
  in
  let time_limit =
    Arg.(value & opt float 0.
         & info [ "time-limit" ] ~docv:"S"
             ~doc:"Refinement time budget in seconds; 0 is unlimited.")
  in
  let coarse =
    Arg.(value & opt int 0
         & info [ "coarse" ] ~docv:"N"
             ~doc:"Coarsening target: stop matching at roughly $(docv) \
                   clusters.  0 (the default) picks max(2*partitions, 8) \
                   automatically so multilevel coarsening engages.")
  in
  let pins =
    Arg.(value & opt_all string []
         & info [ "pin" ] ~docv:"OP=PART"
             ~doc:"Fix an operation (node id or name) to a partition \
                   (repeatable).")
  in
  let together =
    Arg.(value & opt_all string []
         & info [ "together" ] ~docv:"OP,OP,..."
             ~doc:"Keep these operations in one partition; they coarsen into \
                   one cluster and move as a unit (repeatable).")
  in
  let auto_strategy_arg =
    let strategy_conv =
      Arg.conv
        ( (fun s ->
            Result.map_error (fun m -> `Msg m) (Ops.strategy_of_string s)),
          fun ppf s ->
            Format.pp_print_string ppf (Chop_baseline.Autopart.strategy_name s)
        )
    in
    Arg.(
      value
      & opt strategy_conv (Chop_baseline.Autopart.Min_cut 1)
      & info [ "s"; "strategy" ] ~docv:"STRAT"
          ~doc:"Seed partitioning strategy the refinement starts from: \
                levels, min-cut or random.")
  in
  Cmd.v
    (Cmd.info "auto"
       ~doc:"Automatic partitioning: multilevel coarsen-refine driven by BAD \
             prediction (exit 1 when the result is infeasible)")
    Term.(
      const run $ graph_arg $ partitions_arg $ package_arg $ perf_arg
      $ delay_arg $ multicycle_arg $ auto_strategy_arg $ file_arg $ seed
      $ max_moves $ time_limit $ coarse $ pins $ together
      $ Arg.(value & flag
             & info [ "stats" ]
                 ~doc:"Print the speculative-refinement breakdown: job \
                       count, probe runs, batch rounds, pool busy/wall \
                       seconds and per-round averages.")
      $ jobs_arg $ impl_arg)

let autosearch_cmd =
  let run graph max_partitions package perf delay multicycle =
    let clocks =
      if multicycle then
        Chop_tech.Clocking.make ~main:Chop_tech.Mosis.main_clock
          ~datapath_ratio:1 ~transfer_ratio:1
      else
        Chop_tech.Clocking.make ~main:Chop_tech.Mosis.main_clock
          ~datapath_ratio:10 ~transfer_ratio:1
    in
    let style =
      Chop_tech.Style.both
        (if multicycle then Chop_tech.Style.Multi_cycle
         else Chop_tech.Style.Single_cycle)
    in
    let candidates =
      Chop_baseline.Autosearch.run ~max_partitions
        ~library:Chop_tech.Mosis.extended_library ~graph ~package ~clocks
        ~style
        ~criteria:(Chop_bad.Feasibility.criteria ~perf ~delay ())
        ()
    in
    List.iter
      (fun c -> print_endline ("  " ^ Chop_baseline.Autosearch.describe c))
      candidates;
    match Chop_baseline.Autosearch.best candidates with
    | Some _ -> 0
    | None ->
        print_endline "no feasible partitioning";
        1
  in
  let max_partitions =
    Arg.(value & opt int 4
         & info [ "m"; "max-partitions" ] ~docv:"K" ~doc:"Largest partition count to try.")
  in
  Cmd.v
    (Cmd.info "autosearch"
       ~doc:"Automatically search partition counts and strategies")
    Term.(
      const run $ graph_arg $ max_partitions $ package_arg $ perf_arg
      $ delay_arg $ multicycle_arg)

let synth_cmd =
  let run graph k package perf delay multicycle strategy file board =
    let spec =
      match file with
      | Some path -> Chop.Specfile.load path
      | None -> build_spec graph k package perf delay multicycle strategy
    in
    (* with_engine: the engine is closed even when synthesis raises *)
    Chop.Explore.with_engine Chop.Explore.Config.default spec @@ fun engine ->
    let ctx = Chop.Explore.Engine.context engine in
    let report = Chop.Explore.Engine.run engine in
    match report.Chop.Explore.outcome.Chop.Search.feasible with
    | [] ->
        print_endline "no feasible implementation to synthesize";
        1
    | best :: _ ->
        let sys = Chop_rtl.System.synthesize ctx best in
        print_string (Chop_rtl.System.summary sys);
        print_newline ();
        if board then print_string (Chop_rtl.System.board_verilog ctx best sys)
        else
          List.iter
            (fun (_, v) ->
              print_string v;
              print_newline ())
            sys.Chop_rtl.System.verilog;
        if Chop_rtl.System.all_fit sys then 0 else 1
  in
  let board =
    Arg.(value & flag
         & info [ "board" ] ~doc:"Emit only the board-level top module.")
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Synthesize the best feasible implementation to netlists, \
             floorplans and Verilog")
    Term.(
      const run $ graph_arg $ partitions_arg $ package_arg $ perf_arg
      $ delay_arg $ multicycle_arg $ strategy_arg $ file_arg $ board)

let spec_dump_cmd =
  let run graph k package perf delay multicycle strategy =
    let spec = build_spec graph k package perf delay multicycle strategy in
    print_string (Chop.Specfile.print spec);
    0
  in
  Cmd.v
    (Cmd.info "spec-dump"
       ~doc:"Write a built-in benchmark setup as a chopspec file (a template \
             for external problems)")
    Term.(
      const run $ graph_arg $ partitions_arg $ package_arg $ perf_arg
      $ delay_arg $ multicycle_arg $ strategy_arg)

let serve_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to listen on. Without it, requests \
              are read from stdin and answered on stdout.")

let request_socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the serve daemon.")

let deadline_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Per-request budget in milliseconds; an expired request gets a \
              structured $(i,deadline) error instead of a result.")

let state_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:"Persist interactive sessions as snapshot files in $(docv): \
              evicted and shut-down sessions are written there, \
              $(b,session/save) writes on demand, and $(b,session/open) \
              with $(b,restore) reloads them.  Point every backend of a \
              gateway cluster at one directory to enable migration.")

let serve_cmd =
  let run socket concurrency queue jobs deadline_ms quiet session_ttl
      max_sessions state_dir =
    let server =
      Chop_server.Server.create
        {
          Chop_server.Server.socket_path = socket;
          concurrency;
          queue;
          jobs = resolve_jobs jobs;
          default_deadline_ms = deadline_ms;
          log = (if quiet then None else Some stderr);
          handle_signals = true;
          session_ttl_s = session_ttl;
          max_sessions;
          state_dir;
        }
    in
    Chop_server.Server.serve server;
    0
  in
  let concurrency =
    Arg.(value & opt int 2
         & info [ "c"; "concurrency" ] ~docv:"N"
             ~doc:"Requests executed concurrently (scheduler threads).")
  in
  let queue =
    Arg.(value & opt int 8
         & info [ "q"; "queue" ] ~docv:"K"
             ~doc:"Bounded request queue length; past $(b,K) waiting + \
                   $(b,N) running, submissions are rejected with a \
                   structured $(i,overloaded) error.")
  in
  let quiet =
    Arg.(value & flag
         & info [ "quiet" ] ~doc:"Suppress the per-request access log (stderr).")
  in
  let session_ttl =
    Arg.(value
         & opt float Chop_server.Server.default_config.Chop_server.Server.session_ttl_s
         & info [ "session-ttl" ] ~docv:"S"
             ~doc:"Evict interactive sessions idle for more than $(docv) \
                   seconds.")
  in
  let max_sessions =
    Arg.(value
         & opt int Chop_server.Server.default_config.Chop_server.Server.max_sessions
         & info [ "max-sessions" ] ~docv:"N"
             ~doc:"Cap on concurrently open interactive sessions; opening \
                   past it evicts the least-recently-used idle one.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent exploration service: newline-delimited JSON \
             requests over a Unix socket (or stdin/stdout), answered from \
             warm engines sharing one domain pool and prediction cache")
    Term.(
      const run $ serve_socket_arg $ concurrency $ queue $ jobs_arg
      $ deadline_ms_arg $ quiet $ session_ttl $ max_sessions $ state_dir_arg)

let request_cmd =
  let run socket op id benchmark partitions package perf delay multicycle
      heuristic strategy keep_all csv no_prune verbose index top parameter
      values session edits seed max_moves time_limit_ms coarse pins together
      client restore close retry retry_seed deadline_ms raw =
    let module P = Chop_server.Protocol in
    match P.op_of_string op with
    | Error msg ->
        prerr_endline ("chop request: " ^ msg);
        2
    | Ok op -> (
        let req =
          {
            P.id;
            op;
            deadline_ms;
            params =
              {
                P.benchmark;
                partitions;
                package;
                perf;
                delay;
                multicycle;
                heuristic;
                strategy;
                keep_all;
                csv;
                no_prune;
                verbose;
                index;
                top;
                parameter;
                values;
                session;
                edits;
                seed;
                max_moves;
                time_limit_ms;
                coarse;
                pins;
                together;
                client;
                restore;
                close;
                slice_index = 0;
                slice_count = 1;
              };
          }
        in
        match
          Chop_server.Client.rpc_retrying ~retries:retry ~seed:retry_seed
            ~socket (P.request_to_json req)
        with
        | Error msg ->
            prerr_endline ("chop request: " ^ msg);
            2
        | Ok resp -> (
            if raw then begin
              print_endline (Chop_util.Json.print resp);
              match P.response_ok resp with Some true -> 0 | _ -> 1
            end
            else
              match P.response_ok resp with
              | Some true ->
                  (match P.response_text resp with
                  | Some text -> print_string text
                  | None -> print_endline (Chop_util.Json.print resp));
                  0
              | _ ->
                  let code =
                    Option.value ~default:"?" (P.response_error_code resp)
                  in
                  let message =
                    match
                      Option.bind (Chop_util.Json.member "error" resp)
                        (fun e ->
                          Option.bind (Chop_util.Json.member "message" e)
                            Chop_util.Json.to_string_opt)
                    with
                    | Some m -> m
                    | None -> Chop_util.Json.print resp
                  in
                  Printf.eprintf "chop request: %s: %s\n" code message;
                  1))
  in
  let op =
    Arg.(value & opt string "explore"
         & info [ "op" ] ~docv:"OP"
             ~doc:"Operation: explore, predict, advise, sensitivity, stats, \
                   ping, session/open, session/edit, session/undo, \
                   session/redo, session/run, session/optimize, \
                   session/attach, session/detach, session/list, \
                   session/save, session/close or (through a gateway) \
                   gateway/migrate.")
  in
  let id =
    Arg.(value & opt string "cli"
         & info [ "id" ] ~docv:"ID" ~doc:"Request id echoed on the response.")
  in
  let benchmark =
    Arg.(value & opt string "ar"
         & info [ "g"; "graph" ] ~docv:"NAME"
             ~doc:"Benchmark graph: ar, ewf, fir8, fir16, diffeq, dct8, pcm_pwm \
              (the HW/SW co-design case study), ewf2 (ewf rebuilt in a \
              shuffled construction order — exercises structural cache \
              sharing).")
  in
  let partitions =
    Arg.(value & opt int 2
         & info [ "k"; "partitions" ] ~docv:"K" ~doc:"Number of partitions.")
  in
  let package =
    Arg.(value & opt int 84
         & info [ "p"; "package" ] ~docv:"PINS" ~doc:"MOSIS package: 64 or 84.")
  in
  let perf =
    Arg.(value & opt float 30000.
         & info [ "perf" ] ~docv:"NS" ~doc:"Performance constraint (ns).")
  in
  let delay =
    Arg.(value & opt float 30000.
         & info [ "delay" ] ~docv:"NS" ~doc:"System delay constraint (ns).")
  in
  let multicycle =
    Arg.(value & flag
         & info [ "multi-cycle" ] ~doc:"Multi-cycle operation style.")
  in
  let heuristic =
    Arg.(value & opt string "i"
         & info [ "H"; "heuristic" ] ~docv:"E|I|B" ~doc:"Search heuristic.")
  in
  let strategy =
    Arg.(value & opt string "levels"
         & info [ "s"; "strategy" ] ~docv:"STRAT"
             ~doc:"Partition generation strategy: levels, min-cut or random.")
  in
  let keep_all =
    Arg.(value & flag
         & info [ "keep-all" ]
             ~doc:"Deterministic CSV dump of the feasible front and every \
                   explored design point.")
  in
  let csv =
    Arg.(value & flag
         & info [ "csv" ] ~doc:"Deterministic CSV dump of the explored points.")
  in
  let no_prune =
    Arg.(value & flag
         & info [ "no-prune" ] ~doc:"Disable dominance pre-pruning.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Designer guidelines.")
  in
  let index =
    Arg.(value & opt int (-1)
         & info [ "i"; "index" ] ~docv:"N"
             ~doc:"predict: partition index (-1 for all).")
  in
  let top =
    Arg.(value & opt int 3
         & info [ "t"; "top" ] ~docv:"N"
             ~doc:"predict: predictions per partition.")
  in
  let parameter =
    Arg.(value & opt string "perf"
         & info [ "parameter" ] ~docv:"P"
             ~doc:"sensitivity: perf, delay, clock or pins.")
  in
  let values =
    Arg.(value & opt (list float) []
         & info [ "values" ] ~docv:"V1,V2,..."
             ~doc:"sensitivity: swept values, in order.")
  in
  let session =
    Arg.(value & opt string ""
         & info [ "session" ] ~docv:"SID"
             ~doc:"session/*: the session id returned by session/open.")
  in
  let edits =
    Arg.(value & opt_all string []
         & info [ "edit" ] ~docv:"CMD"
             ~doc:"session/edit: an edit command line (repeatable, applied \
                   in order).")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N"
             ~doc:"session/optimize: deterministic tie-breaking seed.")
  in
  let max_moves =
    Arg.(value & opt int 1024
         & info [ "max-moves" ] ~docv:"N"
             ~doc:"session/optimize: candidate-move budget.")
  in
  let time_limit_ms =
    Arg.(value & opt float 0.
         & info [ "time-limit-ms" ] ~docv:"MS"
             ~doc:"session/optimize: refinement time budget; 0 is unlimited.")
  in
  let coarse =
    Arg.(value & opt int 2048
         & info [ "coarse" ] ~docv:"N"
             ~doc:"session/optimize: coarsening target cluster count.")
  in
  let pins =
    Arg.(value & opt_all string []
         & info [ "pin" ] ~docv:"OP=PART"
             ~doc:"session/optimize: fix an operation to a partition \
                   (repeatable).")
  in
  let together =
    Arg.(value & opt_all string []
         & info [ "together" ] ~docv:"OP,OP,..."
             ~doc:"session/optimize: keep these operations in one partition \
                   (repeatable).")
  in
  let client =
    Arg.(value & opt string ""
         & info [ "client" ] ~docv:"NAME"
             ~doc:"Client identity attributed in the access log; the opener \
                   becomes the session's writer and $(b,session/attach) \
                   requires it.")
  in
  let restore =
    Arg.(value & flag
         & info [ "restore" ]
             ~doc:"session/open: require the session to be restored from a \
                   snapshot in the server's $(b,--state-dir) (error when \
                   none exists).")
  in
  let close =
    Arg.(value & flag
         & info [ "close" ]
             ~doc:"session/save: release the session after snapshotting (a \
                   migration handoff — the snapshot is kept).")
  in
  let retry =
    Arg.(value & opt int 0
         & info [ "retry" ] ~docv:"N"
             ~doc:"Retry up to $(docv) extra times on $(i,overloaded) \
                   rejections and transient connect errors, with seeded \
                   deterministic exponential backoff.  Exit codes are \
                   unchanged: the final outcome maps exactly as without \
                   retries.")
  in
  let retry_seed =
    Arg.(value & opt int 1
         & info [ "retry-seed" ] ~docv:"N"
             ~doc:"Seed for the deterministic backoff jitter.")
  in
  let raw =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the raw JSON response instead of the result text.")
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:"Send one request to a running serve daemon and print the result \
             (byte-identical to the corresponding subcommand's deterministic \
             output)")
    Term.(
      const run $ request_socket_arg $ op $ id $ benchmark $ partitions
      $ package $ perf $ delay $ multicycle $ heuristic $ strategy $ keep_all
      $ csv $ no_prune $ verbose $ index $ top $ parameter $ values
      $ session $ edits $ seed $ max_moves $ time_limit_ms $ coarse $ pins
      $ together $ client $ restore $ close $ retry $ retry_seed
      $ deadline_ms_arg $ raw)

let gateway_cmd =
  let run socket backends vnodes fanout quiet health_interval =
    if backends = [] then begin
      prerr_endline "chop gateway: at least one --backend is required";
      2
    end
    else begin
      let gw =
        Chop_gateway.Gateway.create
          {
            Chop_gateway.Gateway.socket_path = socket;
            backends;
            vnodes;
            fanout;
            log = (if quiet then None else Some stderr);
            handle_signals = true;
            health_interval_s =
              (if health_interval > 0. then Some health_interval else None);
          }
      in
      Chop_gateway.Gateway.serve gw;
      0
    end
  in
  let backends =
    Arg.(value & opt_all string []
         & info [ "b"; "backend" ] ~docv:"PATH"
             ~doc:"Unix-domain socket of a backend $(b,chop serve) process \
                   (repeatable).  Start the backends with a shared \
                   $(b,--state-dir) so sessions can migrate and fail over.")
  in
  let vnodes =
    Arg.(value & opt int 64
         & info [ "vnodes" ] ~docv:"N"
             ~doc:"Virtual points per backend on the consistent-hash ring.")
  in
  let fanout =
    Arg.(value & flag
         & info [ "fanout" ]
             ~doc:"Split eligible stateless explores across every backend \
                   as $(i,explore/slice) requests and merge the slices \
                   deterministically; the response stays byte-identical to \
                   a single backend's.")
  in
  let quiet =
    Arg.(value & flag
         & info [ "quiet" ] ~doc:"Suppress the per-request log (stderr).")
  in
  let health_interval =
    Arg.(value & opt float 0.
         & info [ "health-interval" ] ~docv:"S"
             ~doc:"Ping every backend this often (seconds) and mark \
                   failures dead ahead of time: routing prefers live \
                   backends and session ops fail over preemptively.  0 \
                   (the default) disables the prober.")
  in
  Cmd.v
    (Cmd.info "gateway"
       ~doc:"Front a cluster of $(b,chop serve) backends on one socket: \
             requests are consistent-hashed across the backends, sessions \
             stick to (and migrate between) them through snapshots, and \
             responses are byte-identical to a single-process serve")
    Term.(
      const run $ serve_socket_arg $ backends $ vnodes $ fanout $ quiet
      $ health_interval)

let bench_info_cmd =
  let run () =
    List.iter
      (fun (name, f) ->
        let g = f () in
        Printf.printf "%-8s %3d operations, %2d levels, io %d/%d bits\n" name
          (Chop_dfg.Graph.op_count g)
          (List.length (Chop_dfg.Analysis.levels g))
          (Chop_dfg.Graph.total_input_bits g)
          (Chop_dfg.Graph.total_output_bits g))
      benchmarks;
    0
  in
  Cmd.v (Cmd.info "bench-info" ~doc:"List built-in benchmark graphs")
    Term.(const run $ const ())

let main_cmd =
  Cmd.group
    (Cmd.info "chop" ~version:"1.0"
       ~doc:"CHOP: a constraint-driven system-level partitioner (DAC 1991)")
    [ explore_cmd; predict_cmd; repl_cmd; dot_cmd; advise_cmd; auto_cmd;
      autosearch_cmd; synth_cmd; spec_dump_cmd; serve_cmd; request_cmd;
      gateway_cmd; bench_info_cmd ]

let () = exit (Cmd.eval' main_cmd)
