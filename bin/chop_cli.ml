(* chop — command-line driver for the CHOP constraint-driven system-level
   partitioner.

   Subcommands:
     explore   run the full CHOP exploration on a benchmark graph
     predict   show BAD's predicted implementations for one partition
     dot       emit a Graphviz rendering of a (partitioned) benchmark
     advise    what-if feasibility probe while varying chips/constraints
     bench-info  list built-in benchmark graphs *)

open Cmdliner

let benchmarks =
  [
    ("ar", fun () -> Chop_dfg.Benchmarks.ar_lattice_filter ());
    ("ewf", fun () -> Chop_dfg.Benchmarks.elliptic_wave_filter ());
    ("fir16", fun () -> Chop_dfg.Benchmarks.fir_filter ~taps:16 ());
    ("fir8", fun () -> Chop_dfg.Benchmarks.fir_filter ~taps:8 ());
    ("diffeq", fun () -> Chop_dfg.Benchmarks.diffeq ());
    ("dct8", fun () -> Chop_dfg.Benchmarks.dct8 ());
  ]

let graph_of_name name =
  match List.assoc_opt name benchmarks with
  | Some f -> Ok (f ())
  | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown benchmark %S (try: %s)" name
              (String.concat ", " (List.map fst benchmarks))))

let graph_conv =
  let parse s = graph_of_name s in
  let print ppf g = Format.fprintf ppf "%s" (Chop_dfg.Graph.name g) in
  Arg.conv (parse, print)

let graph_arg =
  Arg.(
    value
    & opt graph_conv (Chop_dfg.Benchmarks.ar_lattice_filter ())
    & info [ "g"; "graph" ] ~docv:"NAME"
        ~doc:"Benchmark graph: ar, ewf, fir8, fir16, diffeq, dct8.")

let partitions_arg =
  Arg.(
    value & opt int 2
    & info [ "k"; "partitions" ] ~docv:"K" ~doc:"Number of partitions (level cuts).")

let package_arg =
  let package_conv =
    Arg.conv
      ( (fun s ->
          match s with
          | "64" | "pkg64" -> Ok Chop_tech.Mosis.package_64
          | "84" | "pkg84" -> Ok Chop_tech.Mosis.package_84
          | _ -> Error (`Msg "package must be 64 or 84")),
        fun ppf c -> Format.fprintf ppf "%s" c.Chop_tech.Chip.pkg_name )
  in
  Arg.(
    value
    & opt package_conv Chop_tech.Mosis.package_84
    & info [ "p"; "package" ] ~docv:"PINS" ~doc:"MOSIS package: 64 or 84 pins.")

let perf_arg =
  Arg.(
    value & opt float 30000.
    & info [ "perf" ] ~docv:"NS" ~doc:"Performance constraint (ns).")

let delay_arg =
  Arg.(
    value & opt float 30000.
    & info [ "delay" ] ~docv:"NS" ~doc:"System delay constraint (ns).")

let multicycle_arg =
  Arg.(
    value & flag
    & info [ "multi-cycle" ]
        ~doc:"Multi-cycle operation style with the data-path clock at main \
              speed (experiment-2 conditions); default is single-cycle with \
              the data-path clock at 10x main.")

let heuristic_arg =
  let heuristic_conv =
    Arg.conv
      ( (fun s ->
          match s with
          | "e" | "E" | "enum" -> Ok Chop.Explore.Enumeration
          | "i" | "I" | "iter" -> Ok Chop.Explore.Iterative
          | "b" | "B" | "bb" -> Ok Chop.Explore.Branch_bound
          | _ ->
              Error
                (`Msg
                   "heuristic must be 'e' (enumeration), 'i' (iterative) or \
                    'b' (branch-and-bound)")),
        fun ppf h -> Chop.Explore.pp_heuristic ppf h )
  in
  Arg.(
    value
    & opt heuristic_conv Chop.Explore.Iterative
    & info [ "H"; "heuristic" ] ~docv:"E|I" ~doc:"Search heuristic.")

let strategy_arg =
  let strategy_conv =
    Arg.conv
      ( (fun s ->
          match s with
          | "levels" -> Ok Chop_baseline.Autopart.Levels
          | "min-cut" -> Ok (Chop_baseline.Autopart.Min_cut 1)
          | "random" -> Ok (Chop_baseline.Autopart.Random_balanced 42)
          | _ -> Error (`Msg "strategy must be levels, min-cut or random")),
        fun ppf s ->
          Format.pp_print_string ppf (Chop_baseline.Autopart.strategy_name s) )
  in
  Arg.(
    value
    & opt strategy_conv Chop_baseline.Autopart.Levels
    & info [ "s"; "strategy" ] ~docv:"STRAT"
        ~doc:"Partition generation strategy: levels, min-cut or random.")

let build_spec graph k package perf delay multicycle strategy =
  let partitioning =
    if k = 1 then Chop_dfg.Partition.whole graph
    else Chop_baseline.Autopart.generate graph ~k strategy
  in
  let clocks =
    if multicycle then
      Chop_tech.Clocking.make ~main:Chop_tech.Mosis.main_clock ~datapath_ratio:1
        ~transfer_ratio:1
    else
      Chop_tech.Clocking.make ~main:Chop_tech.Mosis.main_clock ~datapath_ratio:10
        ~transfer_ratio:1
  in
  let style =
    Chop_tech.Style.both
      (if multicycle then Chop_tech.Style.Multi_cycle else Chop_tech.Style.Single_cycle)
  in
  Chop.Rig.custom ~graph ~partitioning ~package ~clocks ~style
    ~criteria:(Chop_bad.Feasibility.criteria ~perf ~delay ()) ()

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for prediction and search. Defaults to the \
              $(b,CHOP_JOBS) environment variable when set, otherwise to \
              the available cores.")

let resolve_jobs = function
  | Some n -> max 1 n
  | None -> Chop_util.Pool.default_jobs ()

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"SPEC"
        ~doc:"Load the full problem from a chopspec file (overrides the \
              graph/partition/chip options).")

let explore_cmd =
  let run graph k package perf delay multicycle heuristic strategy verbose file
      csv keep_all no_prune stats jobs =
    let spec =
      match file with
      | Some path -> Chop.Specfile.load path
      | None -> build_spec graph k package perf delay multicycle strategy
    in
    let config =
      Chop.Explore.Config.make ~heuristic ~keep_all:(csv || keep_all)
        ~pre_prune:(not no_prune) ~jobs:(resolve_jobs jobs) ()
    in
    let report = Chop.Explore.with_engine config spec Chop.Explore.Engine.run in
    let outcome = report.Chop.Explore.outcome in
    if keep_all then begin
      (* deterministic dump: no timings, so jobs=1 and jobs=N output are
         byte-identical *)
      print_string "# feasible\n";
      print_string (Chop.Search.to_csv outcome.Chop.Search.feasible);
      print_string "# explored\n";
      print_string (Chop.Search.to_csv outcome.Chop.Search.explored);
      exit 0
    end;
    if csv then begin
      print_string (Chop.Search.to_csv outcome.Chop.Search.explored);
      exit 0
    end;
    List.iter
      (fun b ->
        Printf.printf "BAD %s: %d predictions, %d feasible, %d kept\n"
          b.Chop.Explore.label b.Chop.Explore.total_predictions
          b.Chop.Explore.feasible_predictions b.Chop.Explore.kept)
      report.Chop.Explore.bad;
    Printf.printf
      "BAD: %.3f s wall (%.3f s busy across %d job(s)), cache %d hit(s) / %d \
       miss(es)\n"
      report.Chop.Explore.bad_wall_seconds report.Chop.Explore.bad_busy_seconds
      report.Chop.Explore.jobs report.Chop.Explore.cache_hits
      report.Chop.Explore.cache_misses;
    let st = report.Chop.Explore.outcome.Chop.Search.stats in
    Printf.printf "search: %d trials, %.3f s CPU\n\n"
      st.Chop.Search.implementation_trials st.Chop.Search.cpu_seconds;
    if stats then
      print_string (Chop.Explore.Metrics.summary report.Chop.Explore.metrics);
    (match report.Chop.Explore.outcome.Chop.Search.feasible with
    | [] -> print_endline "no feasible implementation"
    | feas ->
        Printf.printf "%d feasible non-inferior implementation(s):\n" (List.length feas);
        List.iter
          (fun s ->
            Printf.printf "  II %d cycles, delay %d cycles, clock %.0f ns (perf %.0f ns)\n"
              s.Chop.Integration.ii_main s.Chop.Integration.delay_cycles
              s.Chop.Integration.clock s.Chop.Integration.perf_ns)
          feas;
        if verbose then begin
          print_newline ();
          print_string (Chop.Report.guideline spec (List.hd feas))
        end);
    0
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print designer guidelines.")
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Run the CHOP exploration on a benchmark graph")
    Term.(
      const run $ graph_arg $ partitions_arg $ package_arg $ perf_arg
      $ delay_arg $ multicycle_arg $ heuristic_arg $ strategy_arg $ verbose
      $ file_arg
      $ Arg.(value & flag
             & info [ "csv" ]
                 ~doc:"Explore without pruning and dump every design point \
                       as CSV (Figures 7/8-style data).")
      $ Arg.(value & flag
             & info [ "keep-all" ]
                 ~doc:"Explore without pruning and dump both the feasible \
                       front and every explored design point as CSV; output \
                       is deterministic across $(b,--jobs) values.")
      $ Arg.(value & flag
             & info [ "no-prune" ]
                 ~doc:"Disable the dominance pre-pruning of the search \
                       lists.  The feasible front is identical either way; \
                       with $(b,--keep-all) this restores the exhaustive \
                       explored dump at full search cost.")
      $ Arg.(value & flag
             & info [ "stats" ]
                 ~doc:"Print the engine timing breakdown: wall/busy seconds \
                       per phase (predict, search, merge), per-worker busy \
                       time, chunk counts, cache hits/misses, and the \
                       search-side counters (implementations pre-pruned, \
                       integrations avoided, chip-report cache hits).")
      $ jobs_arg)

let predict_cmd =
  let run graph k package perf delay multicycle strategy index top jobs =
    let spec = build_spec graph k package perf delay multicycle strategy in
    let per_partition, stats =
      Chop.Explore.with_engine
        (Chop.Explore.Config.make ~jobs:(resolve_jobs jobs) ())
        spec Chop.Explore.Engine.predictions
    in
    List.iteri
      (fun i (label, preds) ->
        if i = index || index < 0 then begin
          let st = List.nth stats i in
          Printf.printf "partition %s: %d predictions (%d feasible, %d kept)\n"
            label st.Chop.Explore.total_predictions
            st.Chop.Explore.feasible_predictions st.Chop.Explore.kept;
          List.iter
            (fun p ->
              print_endline (Chop_bad.Prediction.describe spec.Chop.Spec.clocks p))
            (Chop_util.Listx.take top preds);
          print_newline ()
        end)
      per_partition;
    0
  in
  let index =
    Arg.(value & opt int (-1) & info [ "i"; "index" ] ~docv:"N"
           ~doc:"Partition index to show (-1 for all).")
  in
  let top =
    Arg.(value & opt int 3 & info [ "t"; "top" ] ~docv:"N"
           ~doc:"Predictions to print per partition.")
  in
  Cmd.v
    (Cmd.info "predict" ~doc:"Show BAD's predicted implementations per partition")
    Term.(
      const run $ graph_arg $ partitions_arg $ package_arg $ perf_arg
      $ delay_arg $ multicycle_arg $ strategy_arg $ index $ top $ jobs_arg)

let dot_cmd =
  let run graph k strategy =
    if k <= 1 then print_string (Chop_dfg.Dot.of_graph graph)
    else begin
      let pg = Chop_baseline.Autopart.generate graph ~k strategy in
      print_string (Chop_dfg.Dot.of_partitioning pg)
    end;
    0
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz for a (partitioned) benchmark graph")
    Term.(const run $ graph_arg $ partitions_arg $ strategy_arg)

let advise_cmd =
  let run graph k package perf delay multicycle strategy jobs =
    let spec = build_spec graph k package perf delay multicycle strategy in
    let config = Chop.Explore.Config.make ~jobs:(resolve_jobs jobs) () in
    let j = Chop.Advisor.what_if ~config spec in
    print_endline j.Chop.Advisor.advice;
    if j.Chop.Advisor.feasible then 0 else 1
  in
  Cmd.v
    (Cmd.info "advise" ~doc:"Quick feasibility probe (exit 1 when infeasible)")
    Term.(
      const run $ graph_arg $ partitions_arg $ package_arg $ perf_arg
      $ delay_arg $ multicycle_arg $ strategy_arg $ jobs_arg)

let autosearch_cmd =
  let run graph max_partitions package perf delay multicycle =
    let clocks =
      if multicycle then
        Chop_tech.Clocking.make ~main:Chop_tech.Mosis.main_clock
          ~datapath_ratio:1 ~transfer_ratio:1
      else
        Chop_tech.Clocking.make ~main:Chop_tech.Mosis.main_clock
          ~datapath_ratio:10 ~transfer_ratio:1
    in
    let style =
      Chop_tech.Style.both
        (if multicycle then Chop_tech.Style.Multi_cycle
         else Chop_tech.Style.Single_cycle)
    in
    let candidates =
      Chop_baseline.Autosearch.run ~max_partitions
        ~library:Chop_tech.Mosis.extended_library ~graph ~package ~clocks
        ~style
        ~criteria:(Chop_bad.Feasibility.criteria ~perf ~delay ())
        ()
    in
    List.iter
      (fun c -> print_endline ("  " ^ Chop_baseline.Autosearch.describe c))
      candidates;
    match Chop_baseline.Autosearch.best candidates with
    | Some _ -> 0
    | None ->
        print_endline "no feasible partitioning";
        1
  in
  let max_partitions =
    Arg.(value & opt int 4
         & info [ "m"; "max-partitions" ] ~docv:"K" ~doc:"Largest partition count to try.")
  in
  Cmd.v
    (Cmd.info "autosearch"
       ~doc:"Automatically search partition counts and strategies")
    Term.(
      const run $ graph_arg $ max_partitions $ package_arg $ perf_arg
      $ delay_arg $ multicycle_arg)

let synth_cmd =
  let run graph k package perf delay multicycle strategy file board =
    let spec =
      match file with
      | Some path -> Chop.Specfile.load path
      | None -> build_spec graph k package perf delay multicycle strategy
    in
    let engine = Chop.Explore.Engine.create Chop.Explore.Config.default spec in
    let ctx = Chop.Explore.Engine.context engine in
    let report = Chop.Explore.Engine.run engine in
    Chop.Explore.Engine.close engine;
    match report.Chop.Explore.outcome.Chop.Search.feasible with
    | [] ->
        print_endline "no feasible implementation to synthesize";
        1
    | best :: _ ->
        let sys = Chop_rtl.System.synthesize ctx best in
        print_string (Chop_rtl.System.summary sys);
        print_newline ();
        if board then print_string (Chop_rtl.System.board_verilog ctx best sys)
        else
          List.iter
            (fun (_, v) ->
              print_string v;
              print_newline ())
            sys.Chop_rtl.System.verilog;
        if Chop_rtl.System.all_fit sys then 0 else 1
  in
  let board =
    Arg.(value & flag
         & info [ "board" ] ~doc:"Emit only the board-level top module.")
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Synthesize the best feasible implementation to netlists, \
             floorplans and Verilog")
    Term.(
      const run $ graph_arg $ partitions_arg $ package_arg $ perf_arg
      $ delay_arg $ multicycle_arg $ strategy_arg $ file_arg $ board)

let spec_dump_cmd =
  let run graph k package perf delay multicycle strategy =
    let spec = build_spec graph k package perf delay multicycle strategy in
    print_string (Chop.Specfile.print spec);
    0
  in
  Cmd.v
    (Cmd.info "spec-dump"
       ~doc:"Write a built-in benchmark setup as a chopspec file (a template \
             for external problems)")
    Term.(
      const run $ graph_arg $ partitions_arg $ package_arg $ perf_arg
      $ delay_arg $ multicycle_arg $ strategy_arg)

let bench_info_cmd =
  let run () =
    List.iter
      (fun (name, f) ->
        let g = f () in
        Printf.printf "%-8s %3d operations, %2d levels, io %d/%d bits\n" name
          (Chop_dfg.Graph.op_count g)
          (List.length (Chop_dfg.Analysis.levels g))
          (Chop_dfg.Graph.total_input_bits g)
          (Chop_dfg.Graph.total_output_bits g))
      benchmarks;
    0
  in
  Cmd.v (Cmd.info "bench-info" ~doc:"List built-in benchmark graphs")
    Term.(const run $ const ())

let main_cmd =
  Cmd.group
    (Cmd.info "chop" ~version:"1.0"
       ~doc:"CHOP: a constraint-driven system-level partitioner (DAC 1991)")
    [ explore_cmd; predict_cmd; dot_cmd; advise_cmd; autosearch_cmd;
      synth_cmd; spec_dump_cmd; bench_info_cmd ]

let () = exit (Cmd.eval' main_cmd)
