type t = {
  pname : string;
  issue_slots : int;
  cycle_ns : Chop_util.Units.ns;
  code_bytes_per_op : int;
  data_bytes_per_value : int;
  memory_budget_bytes : float;
  bus_bits : int;
}

let make ~name ~issue_slots ~cycle_ns ~code_bytes_per_op ~data_bytes_per_value
    ~memory_budget_bytes ~bus_bits =
  if name = "" || String.contains name ' ' then
    invalid_arg "Processor.make: name must be a non-empty single token";
  if String.equal name "hw" then
    invalid_arg "Processor.make: \"hw\" names the hardware model";
  if issue_slots < 1 then invalid_arg "Processor.make: issue_slots < 1";
  if cycle_ns <= 0. then invalid_arg "Processor.make: non-positive cycle";
  if code_bytes_per_op < 1 then invalid_arg "Processor.make: code_bytes_per_op < 1";
  if data_bytes_per_value < 1 then
    invalid_arg "Processor.make: data_bytes_per_value < 1";
  if memory_budget_bytes <= 0. then
    invalid_arg "Processor.make: non-positive memory budget";
  if bus_bits < 1 then invalid_arg "Processor.make: bus_bits < 1";
  { pname = name; issue_slots; cycle_ns; code_bytes_per_op;
    data_bytes_per_value; memory_budget_bytes; bus_bits }

(* Stable textual identity: every field that changes the predictions.  The
   "sw:" prefix keeps the digest space disjoint from the hardware
   predictor-config signatures by construction. *)
let signature p =
  Printf.sprintf "sw:%s:%d:%.17g:%d:%d:%.17g:%d" p.pname p.issue_slots
    p.cycle_ns p.code_bytes_per_op p.data_bytes_per_value
    p.memory_budget_bytes p.bus_bits

let digest p = Digest.to_hex (Digest.string (signature p))

let pp ppf p =
  Format.fprintf ppf
    "%s: %d-issue, %a cycle, %.0f byte budget, %d-bit bus" p.pname
    p.issue_slots Chop_util.Units.pp_ns p.cycle_ns p.memory_budget_bytes
    p.bus_bits
