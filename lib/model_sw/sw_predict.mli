(** The software model's analogue of {!Chop_bad.Predictor.predict}: one
    prediction per issue width 1..[issue_slots], each carrying the
    list-scheduled cycle count (as data-path-cycle timing, so the
    system-level II algebra applies unchanged) and the code+data memory
    footprint in bytes in the [area] triplet (checked downstream against
    the processor's memory budget by the generic area screen). *)

val op_cycles : Chop_dfg.Graph.node -> int
(** Per-operation instruction latencies in processor cycles (multiply 2,
    divide 8, memory access 2, everything else 1). *)

val footprint_bytes :
  Processor.t -> issue:int -> cycles:int -> Chop_dfg.Graph.t -> int * int
(** [(code, data)] bytes of a schedule of [cycles] words at [issue] slots. *)

val predict :
  Processor.t ->
  clocks:Chop_tech.Clocking.t ->
  label:string ->
  Chop_dfg.Graph.t ->
  Chop_bad.Prediction.t list
(** Empty on a partition with no computational operations. *)
