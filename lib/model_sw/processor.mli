(** A software implementation target: a partition compiled onto an embedded
    processor instead of synthesized into a custom chip (the SpecC-style
    HW/SW co-design flow).  The resource vocabulary changes with the model:
    "area" is a code+data memory footprint in bytes checked against
    [memory_budget_bytes], and the external interface is a shared bus of
    [bus_bits] data lines instead of a per-chip pin budget. *)

type t = private {
  pname : string;  (** model name; ["hw"] is reserved for the hardware model *)
  issue_slots : int;  (** issue widths 1..N enumerated by the predictor *)
  cycle_ns : Chop_util.Units.ns;  (** processor clock period *)
  code_bytes_per_op : int;  (** bytes per instruction slot per cycle word *)
  data_bytes_per_value : int;  (** bytes per live data-flow value *)
  memory_budget_bytes : float;  (** code+data capacity of the processor *)
  bus_bits : int;  (** external bus width, the model's "pin" resource *)
}

val make :
  name:string ->
  issue_slots:int ->
  cycle_ns:Chop_util.Units.ns ->
  code_bytes_per_op:int ->
  data_bytes_per_value:int ->
  memory_budget_bytes:float ->
  bus_bits:int ->
  t
(** @raise Invalid_argument on a non-token or reserved name, or any
    non-positive parameter. *)

val signature : t -> string
(** Textual identity covering every prediction-relevant field, prefixed
    ["sw:"] so it can never collide with a hardware predictor-config
    signature. *)

val digest : t -> string
(** [Digest.to_hex] of {!signature} — the model identity joined into
    prediction cache keys. *)

val pp : Format.formatter -> t -> unit
