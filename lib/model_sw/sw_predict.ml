(* Cycle-count prediction for the software model.

   The partition's data-flow subgraph is list-scheduled onto a W-wide
   issue window for every W in 1..issue_slots, reusing the same
   resource-constrained scheduler as the hardware BAD path: each
   functional class (including per-block memory ports) gets W units, so
   the schedule length is the cycle count of a W-issue VLIW-style
   executable.  One prediction per issue width gives the feasibility
   screens a real speed/footprint trade-off:

   - time: [length] processor cycles, quantized to whole data-path cycles
     so the system-level initiation-interval algebra (main cycles x main
     clock) holds unchanged; the partition never stretches the system
     clock ([clock_main] = main);
   - space: code is [length x W x code_bytes_per_op] (wider words issue in
     fewer cycles but every slot occupies word space, nops included) plus
     [data_bytes_per_value] per value-producing node.  The total lands in
     the prediction's [area] triplet, so the generic area screen checks
     it against the processor's memory budget with no special casing. *)

let op_cycles (n : Chop_dfg.Graph.node) =
  match n.Chop_dfg.Graph.op with
  | Chop_dfg.Op.Mult -> 2
  | Chop_dfg.Op.Div -> 8
  | Chop_dfg.Op.Mem_read _ | Chop_dfg.Op.Mem_write _ -> 2
  | _ -> 1

(* peak accesses per cycle per block, same measure as the hardware BAD *)
let mem_bandwidth sched =
  let g = sched.Chop_sched.Schedule.graph in
  let blocks = Chop_dfg.Graph.memory_blocks g in
  List.map
    (fun block ->
      let horizon = max 1 sched.Chop_sched.Schedule.length in
      let per_step = Array.make horizon 0 in
      List.iter
        (fun (id, st) ->
          let n = Chop_dfg.Graph.node g id in
          match Chop_dfg.Op.memory_block n.Chop_dfg.Graph.op with
          | Some b when b = block ->
              if st < horizon then per_step.(st) <- per_step.(st) + 1
          | Some _ | None -> ())
        sched.Chop_sched.Schedule.starts;
      (block, Array.fold_left max 0 per_step))
    blocks

(* watts are not the software model's constraint, but the power screen
   still applies: charge a nominal per-slot figure so a power budget can
   steer issue width *)
let power_per_slot = 5.

let footprint_bytes (p : Processor.t) ~issue ~cycles sub =
  let values =
    List.length (Chop_dfg.Graph.nodes sub)
    - List.length (Chop_dfg.Graph.outputs sub)
  in
  let code = p.Processor.code_bytes_per_op * issue * cycles in
  let data = p.Processor.data_bytes_per_value * values in
  (code, data)

let predict (p : Processor.t) ~clocks ~label sub =
  let ops = Chop_dfg.Graph.op_count sub in
  if ops = 0 then []
  else begin
    (* a processor cycle costs a whole number of data-path cycles; a CPU
       faster than the data-path clock is quantized up to it *)
    let dp_cycle = Chop_tech.Clocking.datapath_cycle clocks in
    let proc_dp =
      max 1 (Chop_util.Units.ceil_div_ns p.Processor.cycle_ns dp_cycle)
    in
    let profile = Chop_dfg.Graph.op_profile sub in
    List.init p.Processor.issue_slots (fun i ->
        let issue = i + 1 in
        let alloc = List.map (fun (cls, _) -> (cls, issue)) profile in
        let sched = Chop_sched.List_sched.run ~latency:op_cycles ~alloc sub in
        let cycles = sched.Chop_sched.Schedule.length in
        let code, data = footprint_bytes p ~issue ~cycles sub in
        let bytes = float_of_int (code + data) in
        let dp = cycles * proc_dp in
        {
          Chop_bad.Prediction.partition_label = label;
          style = Chop_tech.Style.Non_pipelined;
          module_set =
            [
              Chop_tech.Component.make ~name:p.Processor.pname
                ~cls:"processor" ~width:p.Processor.bus_bits ~area:1.
                ~delay:p.Processor.cycle_ns ();
            ];
          alloc = [ ("issue", issue) ];
          timing =
            {
              Chop_bad.Prediction.ii_dp = dp;
              latency_dp = dp;
              stages = 1;
              clock_main = clocks.Chop_tech.Clocking.main;
              overhead = 0.;
            };
          area = Chop_util.Triplet.exact bytes;
          breakdown =
            {
              Chop_bad.Prediction.functional_units = float_of_int code;
              registers = float_of_int data;
              multiplexers = 0.;
              controller = 0.;
              wiring = Chop_util.Triplet.zero;
            };
          register_bits = data * 8;
          mux_count = 0;
          controller_shape =
            { Chop_tech.Pla.inputs = 0; outputs = 0; product_terms = 0 };
          mem_bandwidth = mem_bandwidth sched;
          power = power_per_slot *. float_of_int issue;
        })
  end
