type scheduler = List_based | Force_directed

type config = {
  library : Chop_tech.Component.library;
  memories : Chop_tech.Memory.t list;
  clocks : Chop_tech.Clocking.t;
  style : Chop_tech.Style.t;
  alloc_cap : int;
  max_pipelined_iis : int;
  testability_overhead : float;
  scheduler : scheduler;
  chaining : bool;
}

let config ?(alloc_cap = 8) ?(max_pipelined_iis = 8) ?(testability_overhead = 0.)
    ?(memories = []) ?(scheduler = List_based) ?(chaining = false) ~library
    ~clocks ~style () =
  if alloc_cap < 1 then invalid_arg "Predictor.config: alloc_cap < 1";
  if max_pipelined_iis < 1 then invalid_arg "Predictor.config: max_pipelined_iis < 1";
  if testability_overhead < 0. then
    invalid_arg "Predictor.config: negative testability overhead";
  { library; memories; clocks; style; alloc_cap; max_pipelined_iis;
    testability_overhead; scheduler; chaining }

let signature cfg =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun c ->
      add "c:%s:%s:%d:%.17g:%.17g:%.17g;" c.Chop_tech.Component.cname
        c.Chop_tech.Component.cls c.Chop_tech.Component.width
        c.Chop_tech.Component.area c.Chop_tech.Component.delay
        c.Chop_tech.Component.power)
    cfg.library;
  List.iter
    (fun m ->
      add "m:%s:%d:%d:%d:%.17g:%s;" m.Chop_tech.Memory.mname
        m.Chop_tech.Memory.words m.Chop_tech.Memory.word_width
        m.Chop_tech.Memory.ports m.Chop_tech.Memory.access
        (match m.Chop_tech.Memory.placement with
        | Chop_tech.Memory.On_chip a -> Printf.sprintf "on(%.17g)" a
        | Chop_tech.Memory.Off_chip_package p -> Printf.sprintf "off(%d)" p))
    cfg.memories;
  add "k:%.17g:%d:%d;" cfg.clocks.Chop_tech.Clocking.main
    cfg.clocks.Chop_tech.Clocking.datapath_ratio
    cfg.clocks.Chop_tech.Clocking.transfer_ratio;
  add "s:%s:%s;"
    (match cfg.style.Chop_tech.Style.op_timing with
    | Chop_tech.Style.Single_cycle -> "1c"
    | Chop_tech.Style.Multi_cycle -> "mc")
    (String.concat ","
       (List.map
          (function
            | Chop_tech.Style.Pipelined -> "p"
            | Chop_tech.Style.Non_pipelined -> "n")
          cfg.style.Chop_tech.Style.pipelinings));
  add "p:%d:%d:%.17g:%s:%b" cfg.alloc_cap cfg.max_pipelined_iis
    cfg.testability_overhead
    (match cfg.scheduler with List_based -> "lb" | Force_directed -> "fd")
    cfg.chaining;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Nominal data-path overhead used before the real one is known: one
   register write plus one steering-mux level. *)
let nominal_overhead =
  Chop_tech.Mosis.register_cell.Chop_tech.Component.delay
  +. Chop_tech.Mosis.mux_cell.Chop_tech.Component.delay

let memory_of cfg block =
  match
    List.find_opt (fun m -> m.Chop_tech.Memory.mname = block) cfg.memories
  with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Predictor: memory block %S not declared" block)

let module_for mset cls =
  List.find_opt (fun c -> c.Chop_tech.Component.cls = cls) mset

(* Latency (data-path cycles) of one operation under a module set. *)
let op_latency cfg mset ~dp_cycle n =
  match n.Chop_dfg.Graph.op with
  | Chop_dfg.Op.Mem_read b | Chop_dfg.Op.Mem_write b ->
      let m = memory_of cfg b in
      (match cfg.style.Chop_tech.Style.op_timing with
      | Chop_tech.Style.Single_cycle -> 1
      | Chop_tech.Style.Multi_cycle ->
          max 1 (Chop_util.Units.ceil_div_ns m.Chop_tech.Memory.access dp_cycle))
  | op ->
      let cls = Chop_dfg.Op.functional_class op in
      (match module_for mset cls with
      | None -> 1
      | Some c ->
          (match cfg.style.Chop_tech.Style.op_timing with
          | Chop_tech.Style.Single_cycle -> 1
          | Chop_tech.Style.Multi_cycle ->
              max 1
                (Chop_util.Units.ceil_div_ns
                   (c.Chop_tech.Component.delay +. nominal_overhead)
                   dp_cycle)))

(* Slowest single-cycle resource: determines the stretched clock in the
   single-cycle style. *)
let slowest_resource cfg mset g =
  List.fold_left
    (fun acc (cls, _) ->
      if Chop_tech.Component.is_memport_class cls then
        List.fold_left
          (fun acc b -> Float.max acc (memory_of cfg b).Chop_tech.Memory.access)
          acc
          (Chop_dfg.Graph.memory_blocks g)
      else
        match module_for mset cls with
        | Some c -> Float.max acc c.Chop_tech.Component.delay
        | None -> acc)
    0. (Chop_dfg.Graph.op_profile g)

let mem_bandwidth sched =
  let g = sched.Chop_sched.Schedule.graph in
  let blocks = Chop_dfg.Graph.memory_blocks g in
  List.map
    (fun block ->
      let horizon = max 1 sched.Chop_sched.Schedule.length in
      let per_step = Array.make horizon 0 in
      List.iter
        (fun (id, st) ->
          let n = Chop_dfg.Graph.node g id in
          match Chop_dfg.Op.memory_block n.Chop_dfg.Graph.op with
          | Some b when b = block ->
              if st < horizon then per_step.(st) <- per_step.(st) + 1
          | Some _ | None -> ())
        sched.Chop_sched.Schedule.starts;
      (block, Array.fold_left max 0 per_step))
    blocks

let power_estimate mset alloc est shape =
  let fu =
    List.fold_left
      (fun acc (cls, n) ->
        match module_for mset cls with
        | Some c -> acc +. (float_of_int n *. c.Chop_tech.Component.power)
        | None -> acc)
      0. alloc
  in
  fu
  +. (0.01 *. float_of_int est.Datapath.register_bits)
  +. (0.005 *. float_of_int est.Datapath.mux_count)
  +. (0.02 *. float_of_int shape.Chop_tech.Pla.product_terms)

(* Assemble one prediction from a schedule and an initiation interval. *)
let assemble cfg ~label ~mset ~sched ~pipelined ~ii_dp =
  let est =
    if pipelined then Datapath.estimate ~module_set:mset ~ii:ii_dp sched
    else Datapath.estimate ~module_set:mset sched
  in
  let shape = Control.shape ~sched ~est ~ii:ii_dp ~pipelined in
  let ctrl_area = Control.area shape and ctrl_delay = Control.delay shape in
  let active =
    est.Datapath.fu_area +. est.Datapath.register_area +. est.Datapath.mux_area
    +. ctrl_area
  in
  let wiring =
    Chop_tech.Wiring.routing_area ~active_area:active ~nets:est.Datapath.nets
  in
  let raw_total =
    Chop_util.Triplet.add (Chop_util.Triplet.exact active) wiring
  in
  let total =
    Chop_util.Triplet.scale (1. +. cfg.testability_overhead) raw_total
  in
  let overhead =
    Chop_tech.Mosis.register_cell.Chop_tech.Component.delay
    +. est.Datapath.mux_select_delay
    +. Chop_tech.Wiring.wire_delay ~total_area:(Chop_util.Triplet.mean total)
    +. ctrl_delay
  in
  let clocks = cfg.clocks in
  let k_dp = float_of_int clocks.Chop_tech.Clocking.datapath_ratio in
  let t_main = clocks.Chop_tech.Clocking.main in
  let clock_main =
    match cfg.style.Chop_tech.Style.op_timing with
    | Chop_tech.Style.Single_cycle ->
        (* the data-path cycle must cover the slowest module + overhead *)
        let required =
          slowest_resource cfg mset sched.Chop_sched.Schedule.graph +. overhead
        in
        Float.max t_main (required /. k_dp)
    | Chop_tech.Style.Multi_cycle ->
        (* multi-cycle operations absorb module delay; the per-cycle stretch
           is the steering/control overhead amortized over the ratio *)
        t_main +. (overhead /. k_dp)
  in
  let latency_dp = sched.Chop_sched.Schedule.length in
  let stages =
    if pipelined then Chop_sched.Pipeline.stage_count sched ~ii:ii_dp
    else latency_dp
  in
  {
    Prediction.partition_label = label;
    style =
      (if pipelined then Chop_tech.Style.Pipelined
       else Chop_tech.Style.Non_pipelined);
    module_set = mset;
    alloc = sched.Chop_sched.Schedule.alloc;
    timing =
      {
        Prediction.ii_dp;
        latency_dp;
        stages;
        clock_main;
        overhead;
      };
    area = total;
    breakdown =
      {
        Prediction.functional_units = est.Datapath.fu_area;
        registers = est.Datapath.register_area;
        multiplexers = est.Datapath.mux_area;
        controller = ctrl_area;
        wiring;
      };
    register_bits = est.Datapath.register_bits;
    mux_count = est.Datapath.mux_count;
    controller_shape = shape;
    mem_bandwidth = mem_bandwidth sched;
    power = power_estimate mset sched.Chop_sched.Schedule.alloc est shape;
  }

let latency_function cfg ~module_set n =
  op_latency cfg module_set
    ~dp_cycle:(Chop_tech.Clocking.datapath_cycle cfg.clocks)
    n

let predict cfg ~label g =
  (* validate memory references up front *)
  List.iter (fun b -> ignore (memory_of cfg b)) (Chop_dfg.Graph.memory_blocks g);
  if Chop_dfg.Graph.op_count g = 0 then []
  else if not (Chop_tech.Component.covers cfg.library g) then []
  else
    let dp_cycle = Chop_tech.Clocking.datapath_cycle cfg.clocks in
    let memport_units =
      List.map
        (fun b -> ("memport:" ^ b, (memory_of cfg b).Chop_tech.Memory.ports))
        (Chop_dfg.Graph.memory_blocks g)
    in
    let msets = Chop_tech.Component.module_sets cfg.library g in
    (* one schedule per serial-parallel design point: allocation-driven list
       scheduling (default), or length-driven force-directed scheduling *)
    let chain_delay mset n =
      match n.Chop_dfg.Graph.op with
      | Chop_dfg.Op.Mem_read b | Chop_dfg.Op.Mem_write b ->
          (memory_of cfg b).Chop_tech.Memory.access
      | op -> (
          match module_for mset (Chop_dfg.Op.functional_class op) with
          | Some c -> c.Chop_tech.Component.delay
          | None -> nominal_overhead)
    in
    let schedules_for ?mset latency =
      match cfg.scheduler with
      | List_based
        when cfg.chaining
             && cfg.style.Chop_tech.Style.op_timing = Chop_tech.Style.Single_cycle
        -> (
          (* chain dependent operations within the long single-cycle step *)
          match mset with
          | None -> []
          | Some mset ->
              let budget = dp_cycle -. nominal_overhead in
              let allocs =
                Alloc_enum.enumerate ~cap:cfg.alloc_cap ~latency ~memport_units g
              in
              List.filter_map
                (fun alloc ->
                  match
                    Chop_sched.Chain_sched.run ~delay:(chain_delay mset)
                      ~budget ~alloc g
                  with
                  | sched, _ -> Some sched
                  | exception Invalid_argument _ ->
                      None (* a module outgrows the cycle: set unusable *))
                allocs)
      | List_based ->
          let allocs =
            Alloc_enum.enumerate ~cap:cfg.alloc_cap ~latency ~memport_units g
          in
          List.map (fun alloc -> Chop_sched.List_sched.run ~latency ~alloc g) allocs
      | Force_directed ->
          let cp = Chop_dfg.Analysis.critical_path ~latency g in
          let upper = max (cp + 1) (min (4 * cp) (cp + (3 * cfg.alloc_cap))) in
          let step = max 1 ((upper - cp) / (2 * cfg.alloc_cap)) in
          let rec lengths l acc =
            if l > upper then List.rev acc else lengths (l + step) (l :: acc)
          in
          List.filter_map
            (fun length ->
              let sched = Chop_sched.Force_directed.run ~latency ~length g in
              (* a length whose implied memory-port demand exceeds the
                 block's ports is not implementable *)
              let ports_ok =
                List.for_all
                  (fun (cls, used) ->
                    match List.assoc_opt cls memport_units with
                    | Some ports -> used <= ports
                    | None -> true)
                  sched.Chop_sched.Schedule.alloc
              in
              if ports_ok then Some sched else None)
            (lengths cp [])
    in
    List.concat_map
      (fun mset ->
        let latency = op_latency cfg mset ~dp_cycle in
        List.concat_map
          (fun sched ->
            List.concat_map
              (fun pipelining ->
                match pipelining with
                | Chop_tech.Style.Non_pipelined ->
                    [
                      assemble cfg ~label ~mset ~sched ~pipelined:false
                        ~ii_dp:sched.Chop_sched.Schedule.length;
                    ]
                | Chop_tech.Style.Pipelined ->
                    let min_ii = Chop_sched.Pipeline.min_ii sched in
                    if min_ii >= sched.Chop_sched.Schedule.length then
                      (* pipelining cannot beat restarting the schedule *)
                      []
                    else
                      let last =
                        min
                          (sched.Chop_sched.Schedule.length - 1)
                          (min_ii + cfg.max_pipelined_iis - 1)
                      in
                      List.map
                        (fun ii ->
                          assemble cfg ~label ~mset ~sched ~pipelined:true
                            ~ii_dp:ii)
                        (Chop_util.Listx.range min_ii last))
              cfg.style.Chop_tech.Style.pipelinings)
          (schedules_for ~mset latency))
      msets

let prune cfg ~criteria ~chip_area preds =
  let feasible =
    List.filter
      (fun p ->
        Feasibility.is_feasible
          (Feasibility.partition_level criteria ~clocks:cfg.clocks ~chip_area p))
      preds
  in
  (* prune per design style: a non-pipelined prediction dominated by a
     pipelined one must survive, because the rate-compatibility rules of
     system integration can make it the only usable choice *)
  let pipe, seq =
    List.partition
      (fun p -> p.Prediction.style = Chop_tech.Style.Pipelined)
      feasible
  in
  Chop_util.Pareto.frontier ~objectives:(Prediction.objectives cfg.clocks) seq
  @ Chop_util.Pareto.frontier ~objectives:(Prediction.objectives cfg.clocks) pipe
