let enumerate ?(cap = 8) ~latency ~memport_units g =
  let max_useful = Chop_sched.List_sched.maximal_useful_alloc ~latency g in
  let profile = Chop_dfg.Graph.op_profile g in
  let mem_classes, enumerable =
    List.partition
      (fun (cls, _) -> Chop_tech.Component.is_memport_class cls)
      profile
  in
  let fixed =
    List.map
      (fun (cls, _) ->
        match List.assoc_opt cls memport_units with
        | Some ports when ports >= 1 -> (cls, ports)
        | Some _ | None ->
            invalid_arg
              (Printf.sprintf "Alloc_enum.enumerate: no ports declared for %s" cls))
      mem_classes
  in
  match enumerable with
  | [] -> [ fixed ]
  | _ ->
      (* odometer over per-class counts 1..hi, rightmost digit fastest —
         the order a cartesian product of [1..hi] ranges yields, without
         materializing the intermediate range lists *)
      let cls = Array.of_list (List.map fst enumerable) in
      let hi =
        Array.map
          (fun c ->
            min cap (max 1 (Option.value ~default:1 (List.assoc_opt c max_useful))))
          cls
      in
      let k = Array.length cls in
      let counts = Array.make k 1 in
      let acc = ref [] in
      let rolling = ref true in
      while !rolling do
        let alloc = ref [] in
        for i = k - 1 downto 0 do
          alloc := (cls.(i), counts.(i)) :: !alloc
        done;
        acc := (fixed @ !alloc) :: !acc;
        let i = ref (k - 1) in
        while !i >= 0 && counts.(!i) = hi.(!i) do
          counts.(!i) <- 1;
          decr i
        done;
        if !i < 0 then rolling := false else counts.(!i) <- counts.(!i) + 1
      done;
      List.rev !acc
