(** BAD — the Behavioral Area-Delay Predictor.

    Given a behavioral (sub-)specification, BAD enumerates predicted
    implementations across design styles (pipelined / non-pipelined), all
    module-set combinations and serial-parallel allocations, and predicts
    for each: schedule timing, register and multiplexer allocation,
    PLA controller area/delay, standard-cell routing area, the clock-cycle
    stretch, and memory bandwidth requirements (paper, section 2.4). *)

type scheduler =
  | List_based
      (** enumerate functional-unit allocations; critical-path list
          scheduling per allocation (the default) *)
  | Force_directed
      (** enumerate schedule lengths; Paulin–Knight force-directed
          scheduling derives the minimal allocation per length [9] *)

type config = {
  library : Chop_tech.Component.library;
  memories : Chop_tech.Memory.t list;
      (** memory blocks the partition's memory operations may access *)
  clocks : Chop_tech.Clocking.t;
  style : Chop_tech.Style.t;
  alloc_cap : int;  (** per-class enumeration cap (default 8) *)
  max_pipelined_iis : int;
      (** initiation-interval options enumerated per pipelined design *)
  testability_overhead : float;
      (** fractional scan-path area overhead, 0.0 disables (paper §5) *)
  scheduler : scheduler;
  chaining : bool;
      (** single-cycle style only: chain dependent operations
          combinationally within the long data-path cycle, as
          contemporary synthesis tools did *)
}

val config :
  ?alloc_cap:int ->
  ?max_pipelined_iis:int ->
  ?testability_overhead:float ->
  ?memories:Chop_tech.Memory.t list ->
  ?scheduler:scheduler ->
  ?chaining:bool ->
  library:Chop_tech.Component.library ->
  clocks:Chop_tech.Clocking.t ->
  style:Chop_tech.Style.t ->
  unit ->
  config
(** Defaults: cap 8, 8 II options, no testability overhead, no memories,
    list-based scheduling, no chaining. *)

val signature : config -> string
(** A digest of every field that influences prediction — library entries,
    memory blocks, clocks, style, caps, scheduler and chaining.  Two configs
    with equal signatures produce identical [predict] output for the same
    graph.  Used as a cache key by the exploration engine's prediction
    cache. *)

val latency_function :
  config ->
  module_set:Chop_tech.Component.t list ->
  Chop_dfg.Graph.node ->
  int
(** The per-operation latency (data-path cycles) BAD schedules with, for
    the given module set: 1 in the single-cycle style; the module delay
    plus nominal register/mux overhead divided by the data-path cycle in
    the multi-cycle style; memory accesses per their block's access time.
    Exposed so downstream synthesis ({!module:Chop_rtl}-style backends) can
    rebuild exactly the schedule a prediction describes. *)

val predict : config -> label:string -> Chop_dfg.Graph.t -> Prediction.t list
(** Every enumerated predicted implementation of the given behavioral graph
    (no feasibility pruning: that is CHOP's job).  The result is empty when
    the library does not cover the graph's functional classes.
    @raise Invalid_argument when the graph has memory operations that
    reference blocks absent from [memories]. *)

val prune :
  config ->
  criteria:Feasibility.criteria ->
  chip_area:Chop_util.Units.mil2 ->
  Prediction.t list ->
  Prediction.t list
(** First-level pruning (paper, section 2.1): discard predictions that are
    infeasible in isolation on the target chip, then discard inferior
    (Pareto-dominated) ones. *)
