exception Rejected of string

(* Every modification is a [Spec.update] edit list; the advisor merely maps
   the structured rejection onto the historical exception. *)
let apply spec edits =
  match Spec.update spec edits with
  | Ok (spec', _dirty) -> spec'
  | Error e -> raise (Rejected e.Spec.reason)

let move_operation spec ~op ~to_partition =
  apply spec [ Spec.Move_op { op; to_partition } ]

let move_partition spec ~partition ~to_chip =
  apply spec [ Spec.Reassign_chip { partition; chip = to_chip } ]

let rehost_memory spec ~block ~to_chip =
  apply spec [ Spec.Rehost_memory { block; chip = to_chip } ]

let swap_package spec ~chip package =
  apply spec [ Spec.Swap_package { chip; package } ]

let set_constraints spec ~criteria = apply spec [ Spec.Set_criteria criteria ]

type judgement = {
  spec : Spec.t;
  feasible : bool;
  best : Integration.system option;
  advice : string;
}

let judge spec (report : Explore.report) =
  match report.Explore.outcome.Search.feasible with
  | best :: _ ->
      {
        spec;
        feasible = true;
        best = Some best;
        advice =
          Printf.sprintf
            "feasible: best initiation interval %d cycles at %.0f ns clock \
             (delay %d cycles) after %d trials"
            best.Integration.ii_main best.Integration.clock
            best.Integration.delay_cycles
            report.Explore.outcome.Search.stats.Search.implementation_trials;
      }
  | [] ->
      {
        spec;
        feasible = false;
        best = None;
        advice =
          Printf.sprintf
            "infeasible under the current constraints (%d trials); consider \
             relaxing constraints, adding chips or repartitioning"
            report.Explore.outcome.Search.stats.Search.implementation_trials;
      }

let what_if ?(config = Explore.Config.default) spec =
  (* with_engine, not a bare create: a probe configured with jobs > 1
     would otherwise leak its worker domains until the Gc backstop *)
  judge spec (Explore.with_engine config spec Explore.Engine.run)

let optimize_memory_hosts ?config spec =
  let on_chip_blocks =
    List.filter_map
      (fun m ->
        match m.Chop_tech.Memory.placement with
        | Chop_tech.Memory.On_chip _ -> Some m.Chop_tech.Memory.mname
        | Chop_tech.Memory.Off_chip_package _ -> None)
      spec.Spec.memories
  in
  let chip_names = List.map (fun c -> c.Spec.chip_name) spec.Spec.chips in
  let better a b =
    (* a beats b when it is feasible and faster (then shorter delay) *)
    match (a.best, b.best) with
    | Some sa, Some sb ->
        if sa.Integration.perf_ns <> sb.Integration.perf_ns then
          sa.Integration.perf_ns < sb.Integration.perf_ns
        else
          Chop_util.Triplet.(sa.Integration.delay.likely)
          < Chop_util.Triplet.(sb.Integration.delay.likely)
    | Some _, None -> true
    | None, Some _ | None, None -> false
  in
  let placements =
    Chop_util.Listx.cartesian (List.map (fun _ -> chip_names) on_chip_blocks)
  in
  List.fold_left
    (fun (best_spec, best_j) hosts ->
      let edits =
        List.map2
          (fun block chip -> Spec.Rehost_memory { block; chip })
          on_chip_blocks hosts
      in
      match apply spec edits with
      | candidate ->
          let j = what_if ?config candidate in
          if better j best_j then (candidate, j) else (best_spec, best_j)
      | exception Rejected _ -> (best_spec, best_j))
    (spec, what_if ?config spec) placements

let compare_specs ?config before after =
  let jb = what_if ?config before and ja = what_if ?config after in
  let describe j =
    match j.best with
    | Some b ->
        Printf.sprintf "II %d @ %.0f ns (delay %d)" b.Integration.ii_main
          b.Integration.clock b.Integration.delay_cycles
    | None -> "infeasible"
  in
  Printf.sprintf "before: %s; after: %s — %s" (describe jb) (describe ja)
    (match (jb.best, ja.best) with
    | Some b, Some a when a.Integration.perf_ns < b.Integration.perf_ns ->
        "the modification improves performance"
    | Some b, Some a when a.Integration.perf_ns > b.Integration.perf_ns ->
        "the modification degrades performance"
    | Some _, Some _ -> "performance is unchanged"
    | None, Some _ -> "the modification makes the design feasible"
    | Some _, None -> "the modification breaks feasibility"
    | None, None -> "still infeasible")
