exception Rejected of string

let fail fmt = Printf.ksprintf (fun s -> raise (Rejected s)) fmt

let rebuild ?partitioning ?assignment ?chips ?memory_hosts ?criteria spec =
  let partitioning =
    Option.value ~default:spec.Spec.partitioning partitioning
  in
  let assignment = Option.value ~default:spec.Spec.assignment assignment in
  let chips = Option.value ~default:spec.Spec.chips chips in
  let memory_hosts = Option.value ~default:spec.Spec.memory_hosts memory_hosts in
  let criteria = Option.value ~default:spec.Spec.criteria criteria in
  try
    Spec.make ~params:spec.Spec.params ~memories:spec.Spec.memories
      ~memory_hosts ~graph:spec.Spec.graph ~library:spec.Spec.library ~chips
      ~partitioning ~assignment ~clocks:spec.Spec.clocks ~style:spec.Spec.style
      ~criteria ()
  with Spec.Invalid_spec reason -> raise (Rejected reason)

let move_operation spec ~op ~to_partition =
  let pg = spec.Spec.partitioning in
  let current =
    try Chop_dfg.Partition.part_of pg op
    with Not_found -> fail "operation %d is not in any partition" op
  in
  if current.Chop_dfg.Partition.label = to_partition then
    fail "operation %d is already in %s" op to_partition;
  if
    not
      (List.exists
         (fun p -> p.Chop_dfg.Partition.label = to_partition)
         pg.Chop_dfg.Partition.parts)
  then fail "unknown partition %s" to_partition;
  if List.length current.Chop_dfg.Partition.members = 1 then
    fail "moving operation %d would empty partition %s" op
      current.Chop_dfg.Partition.label;
  let parts =
    List.map
      (fun p ->
        let label = p.Chop_dfg.Partition.label in
        let members = p.Chop_dfg.Partition.members in
        if label = current.Chop_dfg.Partition.label then
          Chop_dfg.Partition.make ~label (List.filter (fun m -> m <> op) members)
        else if label = to_partition then
          Chop_dfg.Partition.make ~label (op :: members)
        else p)
      pg.Chop_dfg.Partition.parts
  in
  let partitioning =
    try Chop_dfg.Partition.partitioning spec.Spec.graph parts
    with Chop_dfg.Partition.Invalid_partitioning reason -> raise (Rejected reason)
  in
  rebuild ~partitioning spec

let move_partition spec ~partition ~to_chip =
  if not (List.exists (fun c -> c.Spec.chip_name = to_chip) spec.Spec.chips)
  then fail "unknown chip %s" to_chip;
  let assignment =
    List.map
      (fun (label, chip) -> if label = partition then (label, to_chip) else (label, chip))
      spec.Spec.assignment
  in
  if not (List.mem_assoc partition assignment) then
    fail "unknown partition %s" partition;
  rebuild ~assignment spec

let rehost_memory spec ~block ~to_chip =
  let m =
    try Spec.memory spec block with Not_found -> fail "unknown memory %s" block
  in
  (match m.Chop_tech.Memory.placement with
  | Chop_tech.Memory.Off_chip_package _ ->
      fail "memory %s is an off-chip package; it has no host" block
  | Chop_tech.Memory.On_chip _ -> ());
  let memory_hosts =
    (block, to_chip) :: List.remove_assoc block spec.Spec.memory_hosts
  in
  rebuild ~memory_hosts spec

let swap_package spec ~chip package =
  let chips =
    List.map
      (fun c ->
        if c.Spec.chip_name = chip then { c with Spec.package } else c)
      spec.Spec.chips
  in
  if not (List.exists (fun c -> c.Spec.chip_name = chip) spec.Spec.chips) then
    fail "unknown chip %s" chip;
  rebuild ~chips spec

let set_constraints spec ~criteria = rebuild ~criteria spec

type judgement = {
  spec : Spec.t;
  feasible : bool;
  best : Integration.system option;
  advice : string;
}

let judge spec (report : Explore.report) =
  match report.Explore.outcome.Search.feasible with
  | best :: _ ->
      {
        spec;
        feasible = true;
        best = Some best;
        advice =
          Printf.sprintf
            "feasible: best initiation interval %d cycles at %.0f ns clock \
             (delay %d cycles) after %d trials"
            best.Integration.ii_main best.Integration.clock
            best.Integration.delay_cycles
            report.Explore.outcome.Search.stats.Search.implementation_trials;
      }
  | [] ->
      {
        spec;
        feasible = false;
        best = None;
        advice =
          Printf.sprintf
            "infeasible under the current constraints (%d trials); consider \
             relaxing constraints, adding chips or repartitioning"
            report.Explore.outcome.Search.stats.Search.implementation_trials;
      }

let what_if ?(config = Explore.Config.default) spec =
  (* with_engine, not a bare create: a probe configured with jobs > 1
     would otherwise leak its worker domains until the Gc backstop *)
  judge spec (Explore.with_engine config spec Explore.Engine.run)

let optimize_memory_hosts ?config spec =
  let on_chip_blocks =
    List.filter_map
      (fun m ->
        match m.Chop_tech.Memory.placement with
        | Chop_tech.Memory.On_chip _ -> Some m.Chop_tech.Memory.mname
        | Chop_tech.Memory.Off_chip_package _ -> None)
      spec.Spec.memories
  in
  let chip_names = List.map (fun c -> c.Spec.chip_name) spec.Spec.chips in
  let better a b =
    (* a beats b when it is feasible and faster (then shorter delay) *)
    match (a.best, b.best) with
    | Some sa, Some sb ->
        if sa.Integration.perf_ns <> sb.Integration.perf_ns then
          sa.Integration.perf_ns < sb.Integration.perf_ns
        else
          Chop_util.Triplet.(sa.Integration.delay.likely)
          < Chop_util.Triplet.(sb.Integration.delay.likely)
    | Some _, None -> true
    | None, Some _ | None, None -> false
  in
  let placements =
    Chop_util.Listx.cartesian (List.map (fun _ -> chip_names) on_chip_blocks)
  in
  List.fold_left
    (fun (best_spec, best_j) hosts ->
      let memory_hosts = List.combine on_chip_blocks hosts in
      match rebuild ~memory_hosts spec with
      | candidate ->
          let j = what_if ?config candidate in
          if better j best_j then (candidate, j) else (best_spec, best_j)
      | exception Rejected _ -> (best_spec, best_j))
    (spec, what_if ?config spec) placements

let compare_specs ?config before after =
  let jb = what_if ?config before and ja = what_if ?config after in
  let describe j =
    match j.best with
    | Some b ->
        Printf.sprintf "II %d @ %.0f ns (delay %d)" b.Integration.ii_main
          b.Integration.clock b.Integration.delay_cycles
    | None -> "infeasible"
  in
  Printf.sprintf "before: %s; after: %s — %s" (describe jb) (describe ja)
    (match (jb.best, ja.best) with
    | Some b, Some a when a.Integration.perf_ns < b.Integration.perf_ns ->
        "the modification improves performance"
    | Some b, Some a when a.Integration.perf_ns > b.Integration.perf_ns ->
        "the modification degrades performance"
    | Some _, Some _ -> "performance is unchanged"
    | None, Some _ -> "the modification makes the design feasible"
    | Some _, None -> "the modification breaks feasibility"
    | None, None -> "still infeasible")
