(** System-integration prediction (paper, section 2.5).

    Given one predicted implementation per partition, CHOP predicts the
    data-transfer-module characteristics and the overall system performance
    and delay: transfer bandwidths under the hard pin-count constraints,
    urgency scheduling of all tasks over shared chip pins and memory ports,
    buffer sizes [B = D * (ceil(W/l) + X/l)], data-transfer-module
    controller PLAs, pin-multiplexing overhead, the adjusted clock cycle and
    per-chip area feasibility.

    The work is staged: everything derivable from the spec alone (transfer
    bandwidths and durations, scheduler resources, pin-mux and memory
    areas, bonded pins) is computed once when the {!context} is built;
    per-combination work that many combinations share (the urgency
    schedule and everything derived from it, buffer sizes at a given
    interval, per-chip reports for the picks landing on that chip) is
    memoized in a {!cache}. *)

type combination = (string * Chop_bad.Prediction.t) list
(** One chosen prediction per partition label. *)

type context
(** Precomputed per-spec structure (transfer tasks, pin budgets, scheduler
    resources, per-chip constants); build once and reuse across the many
    combinations a search explores. *)

val context : Spec.t -> context
val spec_of : context -> Spec.t
val tasks_of : context -> Transfer.task list

val data_pins : context -> string -> int
(** Shared data pins available on the chip after infrastructure
    reservations; may be 0 (the chip cannot transfer data). *)

type dtm = {
  task : Transfer.task;
  bandwidth : int;  (** bits moved per data-transfer cycle *)
  transfer_main : int;  (** X: transfer duration in main-clock cycles *)
  wait_main : int;  (** W: wait before pins were available, main cycles *)
  buffer_bits : int;  (** B, from the paper's buffer formula *)
  ctrl_shape : Chop_tech.Pla.shape;  (** controller of each module *)
}

type chip_report = {
  instance : Spec.chip_instance;
  partition_labels : string list;
  signal_pins : int;  (** bonded signal pins: data + control + memory *)
  pin_mux_area : Chop_util.Units.mil2;
  dtm_area : Chop_util.Units.mil2;
  buffer_area : Chop_util.Units.mil2;
  memory_area : Chop_util.Units.mil2;
  area_parts : Chop_util.Triplet.t list;  (** all contributors *)
  available : Chop_util.Units.mil2;
  area_verdict : Chop_bad.Feasibility.verdict;
  power : float;
}

type failure =
  | No_failure
  | Rate_mismatch of string list
      (** pipelined partitions whose data rates disagree *)
  | Area_violation of string list  (** partitions on over-full chips *)
  | Data_clash  (** a transfer outlasts the initiation interval *)
  | Too_slow  (** the performance constraint is violated *)
  | Delay_exceeded  (** the system-delay constraint is violated *)
  | Structural of string  (** pin exhaustion, memory overload, ... *)

type system = {
  combination : combination;
  ii_main : int;  (** global initiation interval, main cycles *)
  clock : Chop_util.Units.ns;  (** adjusted global clock *)
  perf_ns : Chop_util.Units.ns;
  delay_cycles : int;  (** urgency-schedule makespan, main cycles *)
  delay : Chop_util.Triplet.t;  (** system delay prediction, ns *)
  dtms : dtm list;
  chip_reports : chip_report list;
  task_schedule : Chop_sched.Urgency.result option;
  verdict : Chop_bad.Feasibility.verdict;
  failure : failure;  (** structured cause behind an [Infeasible] verdict *)
}

val feasible : system -> bool

val integrate : context -> ?ii_target:int -> combination -> system
(** Runs the full integration prediction.  [ii_target] forces the candidate
    initiation interval (the iterative heuristic explores one [l] at a
    time); otherwise the smallest consistent interval is used.  An
    infeasible rate mix, pin exhaustion or a data clash yields a [system]
    with an [Infeasible] verdict and whatever was computed up to that
    point.  @raise Invalid_argument when the combination does not cover the
    partitioning exactly.

    Equivalent to [integrate_cached (cache ctx)] — a search integrating
    many combinations should hold on to one {!cache} instead. *)

val objectives : system -> float array
(** [| perf_ns; likely delay; likely total area |] for inferiority pruning
    and design-space scatter plots. *)

val total_area : system -> Chop_util.Triplet.t

(** {1 Memoized integration}

    A cache memoizes the stages of the integration that combinations
    share: the urgency schedule (keyed by each partition's latency and
    memory demands), buffer sizing (schedule x interval) and per-chip
    reports (schedule x interval x the picks on that chip).  Results are
    bit-identical to {!integrate}.  A cache is single-domain mutable
    state — do not share one across domains; see {!session}. *)

type cache

val cache : context -> cache
(** A fresh, empty cache for this context. *)

val context_of_cache : cache -> context

val integrate_cached : cache -> ?ii_target:int -> combination -> system
(** As {!integrate}, reusing and filling [cache]. *)

val quick_check : cache -> combination -> bool
(** [quick_check cache comb] is [true] when the combination is provably
    infeasible without running the integration: the optimistic
    interval-times-clock lower bound already violates the performance
    constraint, the rate mix is mismatched, or some chip cannot fit even
    the optimistic (low) areas of its picks.  Sound only for the default
    interval derivation — never consult it when forcing [ii_target].
    [false] means the full integration must decide. *)

type cache_stats = {
  sched_hits : int;
  sched_misses : int;
  chip_hits : int;
  chip_misses : int;
}

val cache_stats : cache -> cache_stats

val chip_cache_hits : cache -> int
(** [= (cache_stats c).chip_hits]: per-chip report fragments reused. *)

(** {2 Per-domain caches}

    Parallel searches run slices on a pool of domains.  A [session]
    identifies one search over one context; {!domain_cache} returns a
    cache private to the calling domain, created on first use and reused
    across all of that domain's slices of the same session. *)

type session

val session : context -> session

val domain_cache : session -> cache
(** The calling domain's cache for this session.  Entering a new session
    drops the domain's previous cache. *)
