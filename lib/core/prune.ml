(* Dominance pre-pruning of per-partition implementation lists.

   Before the combination search runs, each partition's list is reduced to
   implementations that could still contribute to the Pareto front of full
   systems: an implementation is dropped only when another one on the SAME
   chip is provably at least as good in every way the system integration
   can observe.  Because the search cost is the cartesian product of the
   list lengths, this shrinks the space combinatorially before a single
   integration runs.

   Soundness.  Integration reads exactly these fields of a pick: style and
   ii_main (rate-mismatch rule), latency_main and mem_bandwidth (urgency
   schedule, memory floors and port sanity), clock_main (clock adjustment),
   the area triplet (chip area check), and power.  Two picks agreeing on
   (style, ii_main, latency_main, mem_bandwidth) are therefore perfectly
   interchangeable for every schedule-derived quantity — same DTM waits,
   buffers, controller shapes, makespan and transfer overhead — so within
   such a group a pick dominated on (clock_main, area.low, area.likely,
   area.high, area variance, power) can only produce systems that are
   themselves dominated (or identical): the system clock, performance,
   delay and per-chip area/power checks are all monotone in those axes.
   The variance axis matters because the chip-area check is probabilistic:
   a smaller-but-wider area triplet could otherwise have a lower
   probability of fitting than the pick it replaced.  Equal vectors
   collapse to the first occurrence.

   The initiation interval and latency are deliberately part of the group
   key, not the dominance objectives: a faster pick changes the urgency
   schedule and the buffer formula B = D*(ceil(W/l) + X/l) in ways that
   are not monotone (a shorter interval grows buffers), so trading them
   off is the search's job, not the pruner's. *)

let group_key clocks (p : Chop_bad.Prediction.t) =
  ( p.Chop_bad.Prediction.style,
    Chop_bad.Prediction.ii_main clocks p,
    Chop_bad.Prediction.latency_main clocks p,
    p.Chop_bad.Prediction.mem_bandwidth )

let objectives (p : Chop_bad.Prediction.t) =
  let a = p.Chop_bad.Prediction.area in
  [|
    p.Chop_bad.Prediction.timing.Chop_bad.Prediction.clock_main;
    Chop_util.Triplet.(a.low);
    Chop_util.Triplet.(a.likely);
    Chop_util.Triplet.(a.high);
    Chop_util.Triplet.variance a;
    p.Chop_bad.Prediction.power;
  |]

let implementations ~clocks preds =
  let arr = Array.of_list preds in
  let n = Array.length arr in
  let keep = Array.make n true in
  let groups = Hashtbl.create 16 in
  Array.iteri
    (fun i p ->
      let k = group_key clocks p in
      Hashtbl.replace groups k
        (i :: Option.value ~default:[] (Hashtbl.find_opt groups k)))
    arr;
  let dropped = ref 0 in
  Hashtbl.iter
    (fun _ rev_idxs ->
      let idxs = List.rev rev_idxs in
      let kept, _ =
        Chop_util.Pareto.reduce ~objectives:(fun i -> objectives arr.(i)) idxs
      in
      let kept_set = Hashtbl.create (List.length kept) in
      List.iter (fun i -> Hashtbl.replace kept_set i ()) kept;
      List.iter
        (fun i ->
          if not (Hashtbl.mem kept_set i) then begin
            keep.(i) <- false;
            incr dropped
          end)
        idxs)
    groups;
  let kept_rev = ref [] in
  Array.iteri (fun i p -> if keep.(i) then kept_rev := p :: !kept_rev) arr;
  (List.rev !kept_rev, !dropped)

let per_partition ~clocks lists =
  let total = ref 0 in
  let lists =
    List.map
      (fun (label, preds) ->
        let kept, dropped = implementations ~clocks preds in
        total := !total + dropped;
        (label, kept))
      lists
  in
  (lists, !total)
