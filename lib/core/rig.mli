(** Ready-made experiment rigs: the paper's two experimental setups
    (section 3) and helpers for placing a partitioning onto a uniform chip
    set.  Used by the benches, the examples and the tests. *)

val uniform_chips :
  Chop_dfg.Partition.partitioning ->
  Chop_tech.Chip.t ->
  Spec.chip_instance list * (string * string) list
(** One chip instance per partition (named [chip1], [chip2], ...), each
    partition assigned to its own chip — the paper's experiments assign
    "each partition ... manually ... to a separate chip". *)

val experiment1 :
  ?package:Chop_tech.Chip.t ->
  ?params:Spec.params ->
  ?partitions:int ->
  unit ->
  Spec.t
(** Experiment 1 (section 3.1): AR lattice filter, single-cycle-operation
    style, data-path clock 10x the 300 ns main clock, data-transfer clock at
    main speed, performance and delay constraints 30 000 ns, feasibility
    probabilities 1.0 / 1.0 / 0.8.  [package] defaults to the 84-pin MOSIS
    package; [partitions] defaults to 1 (horizontal level cuts beyond 1). *)

val experiment2 :
  ?package:Chop_tech.Chip.t ->
  ?params:Spec.params ->
  ?partitions:int ->
  unit ->
  Spec.t
(** Experiment 2 (section 3.2): multi-cycle operations, both clocks at main
    speed, performance constraint tightened to 20 000 ns. *)

val custom :
  ?params:Spec.params ->
  ?memories:Chop_tech.Memory.t list ->
  ?memory_hosts:(string * string) list ->
  ?library:Chop_tech.Component.library ->
  ?processors:Chop_model_sw.Processor.t list ->
  ?impls:(string * string) list ->
  graph:Chop_dfg.Graph.t ->
  partitioning:Chop_dfg.Partition.partitioning ->
  package:Chop_tech.Chip.t ->
  clocks:Chop_tech.Clocking.t ->
  style:Chop_tech.Style.t ->
  criteria:Chop_bad.Feasibility.criteria ->
  unit ->
  Spec.t
(** A spec with one chip per partition on a uniform package; [library]
    defaults to the Table 1 experiment library.  [processors] and [impls]
    (both default empty, i.e. all-hardware) pass through to {!Spec.make}
    to declare software implementation targets and bind partitions to
    them for HW/SW co-design runs. *)
