(** The iterative search heuristic ("I" in the paper's result tables) —
    Figure 5 of the paper.

    For each feasible initiation interval [l], start every partition at its
    fastest rate-compatible predicted implementation and iteratively
    serialize partitions residing on chips whose area constraint is
    violated, choosing at each step the serialization with the smallest
    expected system delay (found by urgency scheduling).  This favors
    serializing off-critical-path partitions. *)

val candidate_intervals :
  Integration.context -> (string * Chop_bad.Prediction.t list) list -> int list
(** The feasible initiation intervals to explore: the distinct
    partition-implementation rates (in main-clock cycles) that do not
    already violate the performance constraint at the nominal clock,
    ascending. *)

val run :
  ?keep_all:bool ->
  ?metrics:Search.parallel_metrics ref ->
  Integration.context ->
  (string * Chop_bad.Prediction.t list) list ->
  Search.outcome
(** Sequential; one integration cache is reused across the whole walk
    (each serialization step changes a single pick, so the staged
    integration shares nearly everything).  [metrics], when given,
    receives the wall clock (busy = wall) and the cache-hit count. *)
