(** System-level advising: the four partitioning-modification groups of the
    paper's section 2.7, each returning a fresh specification, plus fast
    what-if feedback so "the designer can easily check the effects of
    system-level decisions in real time" (section 4). *)

exception Rejected of string
(** A modification that violates the spec invariants (e.g. moving an
    operation would create mutual data dependency between partitions). *)

val move_operation :
  Spec.t -> op:Chop_dfg.Graph.node_id -> to_partition:string -> Spec.t
(** Behavioral-partition modification: migrate one operation.
    @raise Rejected when the quotient graph would become cyclic, the
    source partition would become empty, or the target does not exist. *)

val move_partition : Spec.t -> partition:string -> to_chip:string -> Spec.t
(** Migrate a partition to another chip. *)

val rehost_memory : Spec.t -> block:string -> to_chip:string -> Spec.t
(** Memory-block modification: change an on-chip block's host.
    @raise Rejected for off-chip blocks. *)

val swap_package : Spec.t -> chip:string -> Chop_tech.Chip.t -> Spec.t
(** Target-chip-set modification: replace a chip's package. *)

val set_constraints :
  Spec.t -> criteria:Chop_bad.Feasibility.criteria -> Spec.t
(** Constraint modification. *)

type judgement = {
  spec : Spec.t;
  feasible : bool;
  best : Integration.system option;  (** fastest feasible implementation *)
  advice : string;
}

val judge : Spec.t -> Explore.report -> judgement
(** The judgement an exploration report supports — {!what_if} without the
    exploration.  Callers holding a warm {!Explore.Engine} (the serving
    layer) run the engine themselves and judge the report, keeping the
    advice text identical to {!what_if}'s by construction. *)

val what_if : ?config:Explore.Config.t -> Spec.t -> judgement
(** Quick feasibility probe: {!judge} over a fresh engine's run.  [config]
    defaults to {!Explore.Config.default} (iterative heuristic, single
    job, shared prediction cache) — repeated probes over related specs
    reuse cached BAD predictions for the partitions the modification did
    not touch. *)

val optimize_memory_hosts :
  ?config:Explore.Config.t -> Spec.t -> Spec.t * judgement
(** Automates the memory/behavior interleaving the paper leaves to the
    designer ("designers interleave iterations of memory and behavioral
    partitioning, a step we intend to automate in the future",
    section 2.2): tries every host chip for every on-chip memory block,
    judges each placement with {!what_if}, and returns the spec whose best
    implementation has the lowest performance (then delay) — the original
    placement when nothing beats it.  Exhaustive over
    [chips ^ on-chip blocks]; intended for the small chip sets CHOP
    targets. *)

val compare_specs : ?config:Explore.Config.t -> Spec.t -> Spec.t -> string
(** One-paragraph comparison of two specs' what-if judgements (before vs
    after a modification). *)
