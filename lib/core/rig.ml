let uniform_chips pg package =
  let chips =
    List.mapi
      (fun i _ ->
        { Spec.chip_name = Printf.sprintf "chip%d" (i + 1); package })
      pg.Chop_dfg.Partition.parts
  in
  let assignment =
    List.mapi
      (fun i p ->
        (p.Chop_dfg.Partition.label, Printf.sprintf "chip%d" (i + 1)))
      pg.Chop_dfg.Partition.parts
  in
  (chips, assignment)

let custom ?(params = Spec.default_params) ?(memories = []) ?(memory_hosts = [])
    ?(library = Chop_tech.Mosis.experiment_library) ?(processors = [])
    ?(impls = []) ~graph ~partitioning ~package ~clocks ~style ~criteria () =
  let chips, assignment = uniform_chips partitioning package in
  Spec.make ~params ~memories ~memory_hosts ~processors ~impls ~graph ~library
    ~chips ~partitioning ~assignment ~clocks ~style ~criteria ()

let ar_partitioning k =
  let graph = Chop_dfg.Benchmarks.ar_lattice_filter () in
  let pg =
    if k <= 1 then Chop_dfg.Partition.whole graph
    else Chop_dfg.Partition.by_levels graph ~k
  in
  (graph, pg)

let experiment1 ?(package = Chop_tech.Mosis.package_84)
    ?(params = Spec.default_params) ?(partitions = 1) () =
  let graph, partitioning = ar_partitioning partitions in
  custom ~params ~graph ~partitioning ~package
    ~clocks:
      (Chop_tech.Clocking.make ~main:Chop_tech.Mosis.main_clock
         ~datapath_ratio:10 ~transfer_ratio:1)
    ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle)
    ~criteria:(Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. ())
    ()

(* "The faster the data path clock, the more design possibilities exist for
   a given set of design constraints" (paper, section 3.2): experiment 2
   considers many more initiation intervals per implementation. *)
let experiment2_params =
  { Spec.default_params with Spec.max_pipelined_iis = 48 }

let experiment2 ?(package = Chop_tech.Mosis.package_84)
    ?(params = experiment2_params) ?(partitions = 1) () =
  let graph, partitioning = ar_partitioning partitions in
  custom ~params ~graph ~partitioning ~package
    ~clocks:
      (Chop_tech.Clocking.make ~main:Chop_tech.Mosis.main_clock
         ~datapath_ratio:1 ~transfer_ratio:1)
    ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
    ~criteria:(Chop_bad.Feasibility.criteria ~perf:20000. ~delay:20000. ())
    ()
