(* The implementation-model seam (DESIGN §14): everything the exploration
   layers need to know about *how* a partition is realised lives behind
   this type, so the hardware BAD stack is one instance rather than the
   assumption.  The hardware arm delegates to exactly the code that ran
   before the seam existed — byte-identity on hw-only specs is by
   construction, not by re-derivation. *)

type t =
  | Hardware
  | Software of Chop_model_sw.Processor.t

let name = function
  | Hardware -> "hw"
  | Software p -> p.Chop_model_sw.Processor.pname

let equal a b =
  match (a, b) with
  | Hardware, Hardware -> true
  | Software p, Software q -> p = q
  | Hardware, Software _ | Software _, Hardware -> false

let of_spec spec ~label =
  match Spec.processor_of_partition spec label with
  | None -> Hardware
  | Some p -> Software p

let of_chip spec ~chip =
  match Spec.processor_of_chip spec chip with
  | None -> Hardware
  | Some p -> Software p

(* Identity joined into Pred_cache raw keys: for hardware this is the
   predictor-config signature the cache always keyed on (so existing
   entries and cross-session structural hits are untouched); for software
   it is the processor signature plus the clock parameters the cycle
   quantization depends on.  The "sw:" prefix keeps the spaces disjoint,
   so hw and sw predictions of one subgraph can never collide. *)
let predictor_signature t (cfg : Chop_bad.Predictor.config) =
  match t with
  | Hardware -> Chop_bad.Predictor.signature cfg
  | Software p ->
      let k = cfg.Chop_bad.Predictor.clocks in
      Printf.sprintf "%s|k:%.17g:%d:%d"
        (Chop_model_sw.Processor.signature p)
        k.Chop_tech.Clocking.main k.Chop_tech.Clocking.datapath_ratio
        k.Chop_tech.Clocking.transfer_ratio

(* The capacity the area screen checks a partition's predictions against:
   usable die area for hardware (half the package pins assumed bonded, as
   always), the processor's memory budget in bytes for software.  Same
   numeric slot, different unit — the feasibility code is generic over
   it. *)
let capacity t spec ~label =
  match t with
  | Hardware ->
      let ci = Spec.chip_of_partition spec label in
      let pkg = ci.Spec.package in
      Chop_tech.Chip.usable_area pkg
        ~signal_pins:(pkg.Chop_tech.Chip.pins / 2)
  | Software p -> p.Chop_model_sw.Processor.memory_budget_bytes

let resource_unit = function Hardware -> "mil^2" | Software _ -> "bytes"

let predict t (cfg : Chop_bad.Predictor.config) ~label sub =
  match t with
  | Hardware -> Chop_bad.Predictor.predict cfg ~label sub
  | Software p ->
      Chop_model_sw.Sw_predict.predict p
        ~clocks:cfg.Chop_bad.Predictor.clocks ~label sub

(* First-level pruning: the feasibility screens and the Pareto reduction
   are already generic over the capacity (the prediction objectives are
   perf/delay/likely-footprint in both models), so both arms share the
   hardware pruner. *)
let prune _t cfg ~criteria ~capacity preds =
  Chop_bad.Predictor.prune cfg ~criteria ~chip_area:capacity preds

let pp ppf t =
  match t with
  | Hardware -> Format.pp_print_string ppf "hw"
  | Software p -> Chop_model_sw.Processor.pp ppf p
