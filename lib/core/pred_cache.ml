type entry = {
  raw : Chop_bad.Prediction.t list;
  feasible_count : int;
  kept : Chop_bad.Prediction.t list;
}

module Key = struct
  type raw = { rid : string; origin : string }
  type full = { parent : raw; fid : string }

  let raw ~sub ~cfg ~model =
    (* content-addressed identity: the canonical structural digest (which
       also interns [sub] into the process-wide sharing table) joined with
       the implementation model's predictor identity.  For the hardware
       model that identity is the predictor-config signature this cache
       always keyed on — hardware keys are byte-identical to the pre-model
       era, so warm entries and structural hits survive the seam; software
       identities carry a disjoint "sw:" prefix, so the two models'
       predictions of one subgraph can never collide.  Each component is
       digested separately, so a component boundary can never be forged by
       crafted contents. *)
    let canon = Chop_dfg.Canon.of_graph sub in
    {
      rid =
        canon.Chop_dfg.Canon.digest ^ "-"
        ^ Digest.to_hex (Digest.string (Model.predictor_signature model cfg));
      (* the per-construction identity the stringly API used to key on —
         kept only to tell structural hits (reuse across constructions)
         from identity hits *)
      origin = Chop_dfg.Graph.signature sub;
    }

  let full ~raw ~chip ~criteria =
    let chip_sig =
      Printf.sprintf "%s:%.17g:%.17g:%d:%.17g:%.17g" chip.Chop_tech.Chip.pkg_name
        chip.Chop_tech.Chip.width chip.Chop_tech.Chip.height
        chip.Chop_tech.Chip.pins chip.Chop_tech.Chip.pad_delay
        chip.Chop_tech.Chip.pad_area
    in
    let c = criteria in
    let crit_sig =
      Printf.sprintf "%.17g:%.17g:%.17g:%.17g:%.17g:%s"
        c.Chop_bad.Feasibility.perf_constraint
        c.Chop_bad.Feasibility.delay_constraint c.Chop_bad.Feasibility.perf_prob
        c.Chop_bad.Feasibility.area_prob c.Chop_bad.Feasibility.delay_prob
        (match c.Chop_bad.Feasibility.power_budget with
        | None -> "-"
        | Some p -> Printf.sprintf "%.17g" p)
    in
    {
      parent = raw;
      fid = raw.rid ^ "/" ^ Digest.to_hex (Digest.string (chip_sig ^ "|" ^ crit_sig));
    }

  let raw_of_full k = k.parent
  let raw_id k = k.rid
  let full_id k = k.fid
end

(* Each layer pairs the stored value with the creator's construction
   identity (for structural-hit accounting) and a last-use stamp drawn
   from the cache-wide clock; eviction drops the oldest-stamped entries
   across both layers until the total count fits the capacity again. *)
type counters = {
  hits : int;
  misses : int;
  evictions : int;
  structural_hits : int;
}

type 'a slot = { value : 'a; origin : string; stamp : int ref }

type t = {
  lock : Mutex.t;
  raw_tbl : (string, Chop_bad.Prediction.t list slot) Hashtbl.t;
  full_tbl : (string, entry slot) Hashtbl.t;
  mutable clock : int;
  mutable capacity : int option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable structural_hits : int;
}

let default_shared_capacity = 1024

let create ?capacity () =
  { lock = Mutex.create (); raw_tbl = Hashtbl.create 64;
    full_tbl = Hashtbl.create 64; clock = 0; capacity; hits = 0; misses = 0;
    evictions = 0; structural_hits = 0 }

let shared = create ~capacity:default_shared_capacity ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.raw_tbl;
      Hashtbl.reset t.full_tbl)

let length t =
  locked t (fun () -> Hashtbl.length t.raw_tbl + Hashtbl.length t.full_tbl)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* caller holds the lock *)
let evict_to t limit =
  let total () = Hashtbl.length t.raw_tbl + Hashtbl.length t.full_tbl in
  if total () > limit then begin
    let stamps = ref [] in
    Hashtbl.iter (fun k s -> stamps := (!(s.stamp), `Raw, k) :: !stamps) t.raw_tbl;
    Hashtbl.iter (fun k s -> stamps := (!(s.stamp), `Full, k) :: !stamps)
      t.full_tbl;
    let oldest_first = List.sort compare !stamps in
    let excess = total () - limit in
    List.iteri
      (fun i (_, layer, k) ->
        if i < excess then begin
          t.evictions <- t.evictions + 1;
          match layer with
          | `Raw -> Hashtbl.remove t.raw_tbl k
          | `Full -> Hashtbl.remove t.full_tbl k
        end)
      oldest_first
  end

let enforce_capacity t =
  match t.capacity with None -> () | Some c -> evict_to t (max 0 c)

let set_capacity t capacity =
  locked t (fun () ->
      t.capacity <- capacity;
      enforce_capacity t)

let capacity t = locked t (fun () -> t.capacity)

let counters t =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions;
        structural_hits = t.structural_hits })

(* caller holds the lock *)
let record_hit t ~probe_origin slot =
  slot.stamp := tick t;
  t.hits <- t.hits + 1;
  (* a hit whose creator was a different construction of the same
     structure is exactly the hit the per-construction keys missed *)
  if not (String.equal slot.origin probe_origin) then
    t.structural_hits <- t.structural_hits + 1

let find_raw t (k : Key.raw) =
  locked t (fun () ->
      match Hashtbl.find_opt t.raw_tbl k.Key.rid with
      | None ->
          t.misses <- t.misses + 1;
          None
      | Some slot ->
          record_hit t ~probe_origin:k.Key.origin slot;
          Some slot.value)

let add_raw t (k : Key.raw) v =
  locked t (fun () ->
      Hashtbl.replace t.raw_tbl k.Key.rid
        { value = v; origin = k.Key.origin; stamp = ref (tick t) };
      enforce_capacity t)

let find_full t (k : Key.full) =
  locked t (fun () ->
      match Hashtbl.find_opt t.full_tbl k.Key.fid with
      | None ->
          t.misses <- t.misses + 1;
          None
      | Some slot ->
          record_hit t ~probe_origin:k.Key.parent.Key.origin slot;
          (* a full-layer hit is also a use of the raw enumeration behind
             it: refresh the parent's age so derived lookups (sensitivity
             sweeps, criteria edits) don't let their own raw working set
             age out *)
          (match Hashtbl.find_opt t.raw_tbl k.Key.parent.Key.rid with
          | Some parent -> parent.stamp := tick t
          | None -> ());
          Some slot.value)

let add_full t (k : Key.full) v =
  locked t (fun () ->
      Hashtbl.replace t.full_tbl k.Key.fid
        { value = v; origin = k.Key.parent.Key.origin; stamp = ref (tick t) };
      enforce_capacity t)
