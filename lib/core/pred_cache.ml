type entry = {
  raw : Chop_bad.Prediction.t list;
  feasible_count : int;
  kept : Chop_bad.Prediction.t list;
}

type t = {
  lock : Mutex.t;
  raw_tbl : (string, Chop_bad.Prediction.t list) Hashtbl.t;
  full_tbl : (string, entry) Hashtbl.t;
}

let create () =
  { lock = Mutex.create (); raw_tbl = Hashtbl.create 64; full_tbl = Hashtbl.create 64 }

let shared = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.raw_tbl;
      Hashtbl.reset t.full_tbl)

let length t =
  locked t (fun () -> Hashtbl.length t.raw_tbl + Hashtbl.length t.full_tbl)

let raw_key ~sub ~cfg =
  Chop_dfg.Graph.signature sub ^ "/" ^ Chop_bad.Predictor.signature cfg

let full_key ~raw_key ~chip ~criteria =
  let chip_sig =
    Printf.sprintf "%s:%.17g:%.17g:%d:%.17g:%.17g" chip.Chop_tech.Chip.pkg_name
      chip.Chop_tech.Chip.width chip.Chop_tech.Chip.height
      chip.Chop_tech.Chip.pins chip.Chop_tech.Chip.pad_delay
      chip.Chop_tech.Chip.pad_area
  in
  let c = criteria in
  let crit_sig =
    Printf.sprintf "%.17g:%.17g:%.17g:%.17g:%.17g:%s"
      c.Chop_bad.Feasibility.perf_constraint
      c.Chop_bad.Feasibility.delay_constraint c.Chop_bad.Feasibility.perf_prob
      c.Chop_bad.Feasibility.area_prob c.Chop_bad.Feasibility.delay_prob
      (match c.Chop_bad.Feasibility.power_budget with
      | None -> "-"
      | Some p -> Printf.sprintf "%.17g" p)
  in
  raw_key ^ "/" ^ Digest.to_hex (Digest.string (chip_sig ^ "|" ^ crit_sig))

let find_raw t k = locked t (fun () -> Hashtbl.find_opt t.raw_tbl k)
let add_raw t k v = locked t (fun () -> Hashtbl.replace t.raw_tbl k v)
let find_full t k = locked t (fun () -> Hashtbl.find_opt t.full_tbl k)
let add_full t k v = locked t (fun () -> Hashtbl.replace t.full_tbl k v)
