type entry = {
  raw : Chop_bad.Prediction.t list;
  feasible_count : int;
  kept : Chop_bad.Prediction.t list;
}

(* Each layer pairs the stored value with a last-use stamp drawn from the
   cache-wide clock; eviction drops the oldest-stamped entries across both
   layers until the total count fits the capacity again. *)
type counters = { hits : int; misses : int; evictions : int }

type t = {
  lock : Mutex.t;
  raw_tbl : (string, Chop_bad.Prediction.t list * int ref) Hashtbl.t;
  full_tbl : (string, entry * int ref) Hashtbl.t;
  mutable clock : int;
  mutable capacity : int option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_shared_capacity = 1024

let create ?capacity () =
  { lock = Mutex.create (); raw_tbl = Hashtbl.create 64;
    full_tbl = Hashtbl.create 64; clock = 0; capacity; hits = 0; misses = 0;
    evictions = 0 }

let shared = create ~capacity:default_shared_capacity ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.raw_tbl;
      Hashtbl.reset t.full_tbl)

let length t =
  locked t (fun () -> Hashtbl.length t.raw_tbl + Hashtbl.length t.full_tbl)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* caller holds the lock *)
let evict_to t limit =
  let total () = Hashtbl.length t.raw_tbl + Hashtbl.length t.full_tbl in
  if total () > limit then begin
    let stamps = ref [] in
    Hashtbl.iter (fun k (_, s) -> stamps := (!s, `Raw, k) :: !stamps) t.raw_tbl;
    Hashtbl.iter (fun k (_, s) -> stamps := (!s, `Full, k) :: !stamps)
      t.full_tbl;
    let oldest_first = List.sort compare !stamps in
    let excess = total () - limit in
    List.iteri
      (fun i (_, layer, k) ->
        if i < excess then begin
          t.evictions <- t.evictions + 1;
          match layer with
          | `Raw -> Hashtbl.remove t.raw_tbl k
          | `Full -> Hashtbl.remove t.full_tbl k
        end)
      oldest_first
  end

let enforce_capacity t =
  match t.capacity with None -> () | Some c -> evict_to t (max 0 c)

let set_capacity t capacity =
  locked t (fun () ->
      t.capacity <- capacity;
      enforce_capacity t)

let capacity t = locked t (fun () -> t.capacity)

let raw_key ~sub ~cfg =
  (* digest each component separately: joining the raw signature strings
     with a separator would let one component's tail masquerade as the
     other's head *)
  Digest.to_hex (Digest.string (Chop_dfg.Graph.signature sub))
  ^ "-"
  ^ Digest.to_hex (Digest.string (Chop_bad.Predictor.signature cfg))

let full_key ~raw_key ~chip ~criteria =
  let chip_sig =
    Printf.sprintf "%s:%.17g:%.17g:%d:%.17g:%.17g" chip.Chop_tech.Chip.pkg_name
      chip.Chop_tech.Chip.width chip.Chop_tech.Chip.height
      chip.Chop_tech.Chip.pins chip.Chop_tech.Chip.pad_delay
      chip.Chop_tech.Chip.pad_area
  in
  let c = criteria in
  let crit_sig =
    Printf.sprintf "%.17g:%.17g:%.17g:%.17g:%.17g:%s"
      c.Chop_bad.Feasibility.perf_constraint
      c.Chop_bad.Feasibility.delay_constraint c.Chop_bad.Feasibility.perf_prob
      c.Chop_bad.Feasibility.area_prob c.Chop_bad.Feasibility.delay_prob
      (match c.Chop_bad.Feasibility.power_budget with
      | None -> "-"
      | Some p -> Printf.sprintf "%.17g" p)
  in
  raw_key ^ "/" ^ Digest.to_hex (Digest.string (chip_sig ^ "|" ^ crit_sig))

let counters t =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions })

let find tbl t k =
  locked t (fun () ->
      match Hashtbl.find_opt tbl k with
      | None ->
          t.misses <- t.misses + 1;
          None
      | Some (v, stamp) ->
          stamp := tick t;
          t.hits <- t.hits + 1;
          Some v)

let add tbl t k v =
  locked t (fun () ->
      Hashtbl.replace tbl k (v, ref (tick t));
      enforce_capacity t)

let find_raw t k = find t.raw_tbl t k
let add_raw t k v = add t.raw_tbl t k v
let find_full t k = find t.full_tbl t k
let add_full t k v = add t.full_tbl t k v
