type heuristic = Enumeration | Iterative | Branch_bound

type bad_stats = {
  label : string;
  total_predictions : int;
  feasible_predictions : int;
  kept : int;
}

module Config = struct
  type cache_scope = Shared | Off | Custom of Pred_cache.t

  type t = {
    heuristic : heuristic;
    keep_all : bool;
    prune : bool option;
    jobs : int;
    cache : cache_scope;
  }

  let default =
    { heuristic = Iterative; keep_all = false; prune = None; jobs = 1;
      cache = Shared }

  let make ?(heuristic = default.heuristic) ?(keep_all = default.keep_all)
      ?prune ?(jobs = default.jobs) ?(cache = default.cache) () =
    if jobs < 1 then invalid_arg "Explore.Config.make: jobs must be >= 1";
    { heuristic; keep_all; prune; jobs; cache }
end

type report = {
  heuristic : heuristic;
  bad : bad_stats list;
  outcome : Search.outcome;
  bad_cpu_seconds : float;
  bad_wall_seconds : float;
  cache_hits : int;
  cache_misses : int;
  jobs : int;
}

let predictor_config spec ~label =
  let params = spec.Spec.params in
  Chop_bad.Predictor.config ~alloc_cap:params.Spec.alloc_cap
    ~max_pipelined_iis:params.Spec.max_pipelined_iis
    ~testability_overhead:params.Spec.testability_overhead
    ~memories:(Spec.memories_of_partition spec label)
    ~library:spec.Spec.library ~clocks:spec.Spec.clocks ~style:spec.Spec.style ()

let partition_chip_area spec ~label =
  let ci = Spec.chip_of_partition spec label in
  let pkg = ci.Spec.package in
  (* at this stage the exact pin usage is unknown; assume half the package
     pins are bonded as signal pads *)
  Chop_tech.Chip.usable_area pkg ~signal_pins:(pkg.Chop_tech.Chip.pins / 2)

module Engine = struct
  type t = {
    config : Config.t;
    spec : Spec.t;
    pool : Chop_util.Pool.t;
    cache : Pred_cache.t option;
    ctx : Integration.context;
  }

  let create (config : Config.t) spec =
    let cache =
      match config.Config.cache with
      | Config.Shared -> Some Pred_cache.shared
      | Config.Off -> None
      | Config.Custom c -> Some c
    in
    { config; spec; pool = Chop_util.Pool.create ~jobs:config.Config.jobs;
      cache; ctx = Integration.context spec }

  let config e = e.config
  let spec e = e.spec
  let context e = e.ctx

  (* One partition's prediction work, run on a pool worker: derive the
     full entry (raw list, feasible count, pruned list) through the cache.
     Returns the entry plus whether the cache served the raw predictions
     and the worker-local busy time. *)
  let predict_partition e part =
    let t0 = Unix.gettimeofday () in
    let spec = e.spec in
    let label = part.Chop_dfg.Partition.label in
    let sub = Chop_dfg.Partition.subgraph spec.Spec.partitioning part in
    let cfg = predictor_config spec ~label in
    let chip_area = partition_chip_area spec ~label in
    let chip = (Spec.chip_of_partition spec label).Spec.package in
    let criteria = spec.Spec.criteria in
    let derive raw =
      let feasible_count =
        List.length
          (List.filter
             (fun pr ->
               Chop_bad.Feasibility.is_feasible
                 (Chop_bad.Feasibility.partition_level criteria
                    ~clocks:spec.Spec.clocks ~chip_area pr))
             raw)
      in
      let kept = Chop_bad.Predictor.prune cfg ~criteria ~chip_area raw in
      { Pred_cache.raw; feasible_count; kept }
    in
    let entry, hit =
      match e.cache with
      | None -> (derive (Chop_bad.Predictor.predict cfg ~label sub), false)
      | Some cache -> (
          let raw_key = Pred_cache.raw_key ~sub ~cfg in
          let full_key = Pred_cache.full_key ~raw_key ~chip ~criteria in
          match Pred_cache.find_full cache full_key with
          | Some entry -> (entry, true)
          | None ->
              let raw, hit =
                match Pred_cache.find_raw cache raw_key with
                | Some raw -> (raw, true)
                | None ->
                    let raw = Chop_bad.Predictor.predict cfg ~label sub in
                    Pred_cache.add_raw cache raw_key raw;
                    (raw, false)
              in
              let entry = derive raw in
              Pred_cache.add_full cache full_key entry;
              (entry, hit))
    in
    (* cached predictions may have been computed under another partition's
       label: restamp, so downstream reports name this partition *)
    let relabel ps =
      List.map
        (fun (p : Chop_bad.Prediction.t) ->
          if p.Chop_bad.Prediction.partition_label = label then p
          else { p with Chop_bad.Prediction.partition_label = label })
        ps
    in
    let entry =
      { entry with
        Pred_cache.raw = relabel entry.Pred_cache.raw;
        kept = relabel entry.Pred_cache.kept }
    in
    (label, entry, hit, Unix.gettimeofday () -. t0)

  let predictions_timed e ~prune =
    let wall0 = Unix.gettimeofday () in
    let results =
      Chop_util.Pool.map_list e.pool (predict_partition e)
        e.spec.Spec.partitioning.Chop_dfg.Partition.parts
    in
    let per_partition =
      List.map
        (fun (label, entry, _, _) ->
          ( label,
            if prune then entry.Pred_cache.kept else entry.Pred_cache.raw ))
        results
    in
    let bad =
      List.map
        (fun (label, entry, _, _) ->
          {
            label;
            total_predictions = List.length entry.Pred_cache.raw;
            feasible_predictions = entry.Pred_cache.feasible_count;
            kept = List.length entry.Pred_cache.kept;
          })
        results
    in
    let hits = List.length (List.filter (fun (_, _, h, _) -> h) results) in
    let misses = List.length results - hits in
    let busy =
      List.fold_left (fun acc (_, _, _, s) -> acc +. s) 0. results
    in
    (per_partition, bad, hits, misses, busy, Unix.gettimeofday () -. wall0)

  let predictions e =
    let prune =
      match e.config.Config.prune with
      | Some p -> p
      | None -> e.spec.Spec.params.Spec.discard_inferior
    in
    let per_partition, bad, _, _, _, _ = predictions_timed e ~prune in
    (per_partition, bad)

  let run e =
    let keep_all = e.config.Config.keep_all in
    let prune =
      match e.config.Config.prune with
      | Some p -> p
      | None -> not keep_all
    in
    let per_partition, bad, cache_hits, cache_misses, bad_cpu_seconds,
        bad_wall_seconds =
      predictions_timed e ~prune
    in
    let outcome =
      match e.config.Config.heuristic with
      | Enumeration ->
          Enum_heuristic.run ~keep_all ~pool:e.pool e.ctx per_partition
      | Iterative -> Iter_heuristic.run ~keep_all e.ctx per_partition
      | Branch_bound ->
          Bb_heuristic.run ~keep_all ~pool:e.pool e.ctx per_partition
    in
    { heuristic = e.config.Config.heuristic; bad; outcome; bad_cpu_seconds;
      bad_wall_seconds; cache_hits; cache_misses;
      jobs = Chop_util.Pool.jobs e.pool }
end

let predictions ?prune spec =
  Engine.predictions
    (Engine.create (Config.make ?prune ()) spec)

let run ?(keep_all = false) heuristic spec =
  Engine.run (Engine.create (Config.make ~heuristic ~keep_all ()) spec)

let unique_designs systems =
  let key s =
    ( s.Integration.ii_main,
      s.Integration.delay_cycles,
      int_of_float Chop_util.Triplet.((Integration.total_area s).likely) )
  in
  Chop_util.Listx.uniq_count ~compare:Stdlib.compare (List.map key systems)

let pp_heuristic ppf = function
  | Enumeration -> Format.pp_print_string ppf "E"
  | Iterative -> Format.pp_print_string ppf "I"
  | Branch_bound -> Format.pp_print_string ppf "B"
