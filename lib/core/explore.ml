type heuristic = Enumeration | Iterative | Branch_bound

exception Cancelled

type bad_stats = {
  label : string;
  total_predictions : int;
  feasible_predictions : int;
  kept : int;
}

module Config = struct
  type cache_scope = Shared | Off | Custom of Pred_cache.t

  type t = {
    heuristic : heuristic;
    keep_all : bool;
    prune : bool option;
    pre_prune : bool;
    jobs : int;
    cache : cache_scope;
  }

  let default =
    { heuristic = Iterative; keep_all = false; prune = None; pre_prune = true;
      jobs = 1; cache = Shared }

  let make ?(heuristic = default.heuristic) ?(keep_all = default.keep_all)
      ?prune ?(pre_prune = default.pre_prune) ?(jobs = default.jobs)
      ?(cache = default.cache) () =
    if jobs < 1 then invalid_arg "Explore.Config.make: jobs must be >= 1";
    { heuristic; keep_all; prune; pre_prune; jobs; cache }
end

module Metrics = struct
  type phase = { wall_seconds : float; busy_seconds : float }

  type t = {
    predict : phase;
    search : phase;
    merge_wall_seconds : float;
    worker_busy_seconds : float array;
    chunk_count : int;
    cache_hits : int;
    cache_misses : int;
    cache_evictions : int;
    cache_structural_hits : int;
    pruned_impls : int;
    integrations_avoided : int;
    chip_cache_hits : int;
  }

  let zero_phase = { wall_seconds = 0.; busy_seconds = 0. }

  let zero =
    { predict = zero_phase; search = zero_phase; merge_wall_seconds = 0.;
      worker_busy_seconds = [||]; chunk_count = 0; cache_hits = 0;
      cache_misses = 0; cache_evictions = 0; cache_structural_hits = 0;
      pruned_impls = 0; integrations_avoided = 0; chip_cache_hits = 0 }

  (* elementwise sum, padding the shorter array with zeros *)
  let add_worker_busy a b =
    let n = max (Array.length a) (Array.length b) in
    Array.init n (fun i ->
        (if i < Array.length a then a.(i) else 0.)
        +. if i < Array.length b then b.(i) else 0.)

  let summary m =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "phase      wall s    busy s\n";
    let phase name p =
      Buffer.add_string buf
        (Printf.sprintf "%-8s %8.3f  %8.3f\n" name p.wall_seconds
           p.busy_seconds)
    in
    phase "predict" m.predict;
    phase "search" m.search;
    Buffer.add_string buf
      (Printf.sprintf "%-8s %8.3f         -\n" "merge" m.merge_wall_seconds);
    Buffer.add_string buf
      (Printf.sprintf "workers: %d busy [%s] s, %d chunk(s), cache %d hit(s) \
                       / %d miss(es) / %d eviction(s) / %d structural\n"
         (Array.length m.worker_busy_seconds)
         (String.concat "/"
            (Array.to_list
               (Array.map (Printf.sprintf "%.3f") m.worker_busy_seconds)))
         m.chunk_count m.cache_hits m.cache_misses m.cache_evictions
         m.cache_structural_hits);
    Buffer.add_string buf
      (Printf.sprintf
         "search: %d impl(s) pre-pruned, %d integration(s) avoided, %d \
          chip-report cache hit(s)\n"
         m.pruned_impls m.integrations_avoided m.chip_cache_hits);
    Buffer.contents buf
end

type report = {
  heuristic : heuristic;
  bad : bad_stats list;
  outcome : Search.outcome;
  bad_busy_seconds : float;
  bad_wall_seconds : float;
  cache_hits : int;
  cache_misses : int;
  jobs : int;
  metrics : Metrics.t;
}

let predictor_config spec ~label =
  let params = spec.Spec.params in
  Chop_bad.Predictor.config ~alloc_cap:params.Spec.alloc_cap
    ~max_pipelined_iis:params.Spec.max_pipelined_iis
    ~testability_overhead:params.Spec.testability_overhead
    ~memories:(Spec.memories_of_partition spec label)
    ~library:spec.Spec.library ~clocks:spec.Spec.clocks ~style:spec.Spec.style ()

(* at this stage the exact pin usage is unknown; Model.capacity assumes
   half the package pins are bonded as signal pads (hardware) or the
   processor's memory budget (software) *)
let partition_chip_area spec ~label = Model.capacity Model.Hardware spec ~label

module Session = struct
  type t = {
    config : Config.t;
    mutable spec : Spec.t;
    pool : Chop_util.Pool.t;
    owns_pool : bool;
        (* a pool passed in by the caller (the serving layer shares one
           pool across every session) outlives the session: close must not
           shut it down *)
    cache : Pred_cache.t option;
    mutable ctx : Integration.context;
    mutable revision : int;
    mutable pending : string list;
        (* labels whose predictions an edit invalidated since the last run
           (plus, before the first run, every partition) *)
    history : int;
    mutable undo_stack : Spec.t list;
        (* previous specs, most recent first, bounded by [history] *)
    mutable redo_stack : Spec.t list;
    mutable closed : bool;
  }

  let part_labels spec =
    List.map
      (fun p -> p.Chop_dfg.Partition.label)
      spec.Spec.partitioning.Chop_dfg.Partition.parts

  let create ?pool ?(history = 32) (config : Config.t) spec =
    if history < 0 then
      invalid_arg "Explore.Session.create: history must be >= 0";
    let cache =
      match config.Config.cache with
      | Config.Shared -> Some Pred_cache.shared
      | Config.Off -> None
      | Config.Custom c -> Some c
    in
    let pool, owns_pool =
      match pool with
      | Some p -> (p, false)
      | None -> (Chop_util.Pool.create ~jobs:config.Config.jobs (), true)
    in
    { config; spec; pool; owns_pool; cache; ctx = Integration.context spec;
      revision = 0; pending = part_labels spec; history; undo_stack = [];
      redo_stack = []; closed = false }

  let close e =
    e.closed <- true;
    if e.owns_pool then Chop_util.Pool.shutdown e.pool

  let config e = e.config
  let spec e = e.spec
  let context e = e.ctx
  let revision e = e.revision
  let pending_dirty e = e.pending
  let jobs e = Chop_util.Pool.jobs e.pool
  let undo_depth e = List.length e.undo_stack
  let redo_depth e = List.length e.redo_stack

  let check_open e name =
    if e.closed then
      invalid_arg (Printf.sprintf "Explore.Session.%s: session is closed" name)

  (* A speculative copy: same config, same (shared) prediction cache, same
     pool — borrowed, so closing the fork never shuts it down — and a
     snapshot of the parent's mutable state.  Edits and runs on the fork
     leave the parent untouched; predictions the fork computes land in the
     shared cache, so whichever speculative state the caller later commits
     on the parent re-serves them as hits. *)
  let fork e =
    check_open e "fork";
    { e with owns_pool = false }

  (* Batched speculative evaluation: each task receives a private fork of
     [e] and the tasks run concurrently on the session's pool.  The parent
     session is not mutated, so a task that raises (the exception is
     re-raised here after the batch drains, per Pool.run semantics) leaves
     both the session and the pool fully usable.  Note: a fork's [run]
     submits its per-partition work to the same (already busy) pool; those
     nested submissions fall back to inline execution, so probes never
     deadlock. *)
  let speculate e fs =
    check_open e "speculate";
    let tasks = Array.map (fun f -> let s = fork e in fun () -> f s) fs in
    Chop_util.Pool.run_timed e.pool tasks

  (* Apply edits to the session's spec.  The integration context is rebuilt
     (its statics are per-spec); predictive work is *not* redone here — the
     next run re-predicts dirty partitions and serves clean ones from the
     cache, whose per-partition raw/full keys survive edits elsewhere in
     the graph. *)
  (* Shared tail of every spec mutation: install the new spec, rebuild the
     integration context, bump the revision and fold the dirty labels into
     the pending set. *)
  let install e spec' (d : Spec.dirty) =
    e.spec <- spec';
    e.ctx <- Integration.context spec';
    e.revision <- e.revision + 1;
    let live = part_labels spec' in
    e.pending <-
      List.sort_uniq String.compare (e.pending @ d.Spec.repredict)
      |> List.filter (fun l -> List.mem l live)

  let edit e edits =
    check_open e "edit";
    match Spec.update e.spec edits with
    | Error _ as err -> err
    | Ok (spec', d) ->
        let prev = e.spec in
        install e spec' d;
        if e.history > 0 then begin
          e.undo_stack <-
            List.filteri (fun i _ -> i < e.history) (prev :: e.undo_stack);
          e.redo_stack <- []
        end;
        Ok d

  let undo e =
    check_open e "undo";
    match e.undo_stack with
    | [] -> Error "nothing to undo"
    | prev :: rest ->
        let d = Spec.diff ~current:e.spec ~target:prev in
        e.undo_stack <- rest;
        e.redo_stack <- e.spec :: e.redo_stack;
        install e prev d;
        Ok d

  let redo e =
    check_open e "redo";
    match e.redo_stack with
    | [] -> Error "nothing to redo"
    | next :: rest ->
        let d = Spec.diff ~current:e.spec ~target:next in
        e.redo_stack <- rest;
        e.undo_stack <- e.spec :: e.undo_stack;
        install e next d;
        Ok d

  (* The durable projection of a session: everything {!restore} needs to
     resurrect it in another process (the pool, cache handle and context
     are rebuilt there).  Specs inside are immutable, so the state shares
     them with the live session at zero cost. *)
  type state = {
    st_spec : Spec.t;
    st_revision : int;
    st_pending : string list;
    st_undo : Spec.t list;
    st_redo : Spec.t list;
  }

  let state e =
    check_open e "state";
    { st_spec = e.spec; st_revision = e.revision; st_pending = e.pending;
      st_undo = e.undo_stack; st_redo = e.redo_stack }

  let restore ?pool ?history config st =
    let e = create ?pool ?history config st.st_spec in
    e.revision <- st.st_revision;
    e.pending <- st.st_pending;
    e.undo_stack <- List.filteri (fun i _ -> i < e.history) st.st_undo;
    e.redo_stack <- st.st_redo;
    e

  (* One partition's prediction work, run on a pool worker: derive the
     full entry (raw list, feasible count, pruned list) through the cache.
     Returns the entry plus whether the cache served the raw predictions
     and the worker-local busy time. *)
  let predict_partition ~interrupt e part =
    if interrupt () then raise Cancelled;
    let t0 = Unix.gettimeofday () in
    let spec = e.spec in
    let label = part.Chop_dfg.Partition.label in
    let sub = Chop_dfg.Partition.subgraph spec.Spec.partitioning part in
    let model = Model.of_spec spec ~label in
    let cfg = predictor_config spec ~label in
    let chip_area = Model.capacity model spec ~label in
    let chip = (Spec.chip_of_partition spec label).Spec.package in
    let criteria = spec.Spec.criteria in
    let derive raw =
      let feasible_count =
        List.length
          (List.filter
             (fun pr ->
               Chop_bad.Feasibility.is_feasible
                 (Chop_bad.Feasibility.partition_level criteria
                    ~clocks:spec.Spec.clocks ~chip_area pr))
             raw)
      in
      let kept = Model.prune model cfg ~criteria ~capacity:chip_area raw in
      { Pred_cache.raw; feasible_count; kept }
    in
    let entry, hit =
      match e.cache with
      | None -> (derive (Model.predict model cfg ~label sub), false)
      | Some cache -> (
          let raw_key = Pred_cache.Key.raw ~sub ~cfg ~model in
          let full_key = Pred_cache.Key.full ~raw:raw_key ~chip ~criteria in
          match Pred_cache.find_full cache full_key with
          | Some entry -> (entry, true)
          | None ->
              let raw, hit =
                match Pred_cache.find_raw cache raw_key with
                | Some raw -> (raw, true)
                | None ->
                    let raw = Model.predict model cfg ~label sub in
                    Pred_cache.add_raw cache raw_key raw;
                    (raw, false)
              in
              let entry = derive raw in
              Pred_cache.add_full cache full_key entry;
              (entry, hit))
    in
    (* cached predictions may have been computed under another partition's
       label: restamp, so downstream reports name this partition *)
    let relabel ps =
      List.map
        (fun (p : Chop_bad.Prediction.t) ->
          if p.Chop_bad.Prediction.partition_label = label then p
          else { p with Chop_bad.Prediction.partition_label = label })
        ps
    in
    let entry =
      { entry with
        Pred_cache.raw = relabel entry.Pred_cache.raw;
        kept = relabel entry.Pred_cache.kept }
    in
    (label, entry, hit, Unix.gettimeofday () -. t0)

  (* Everything the prediction phase yields beyond the lists themselves:
     per-partition stats, cache counters and the timing breakdown. *)
  type predict_phase = {
    per_partition : (string * Chop_bad.Prediction.t list) list;
    bad : bad_stats list;
    hits : int;
    misses : int;
    busy_seconds : float;  (* summed per-partition busy time *)
    wall_seconds : float;
    pool_stats : Chop_util.Pool.run_stats;
  }

  let predictions_timed ?(interrupt = fun () -> false) e ~prune =
    let wall0 = Unix.gettimeofday () in
    let tasks =
      Array.of_list
        (List.map
           (fun part () -> predict_partition ~interrupt e part)
           e.spec.Spec.partitioning.Chop_dfg.Partition.parts)
    in
    let results, pool_stats = Chop_util.Pool.run_timed e.pool tasks in
    let results = Array.to_list results in
    let per_partition =
      List.map
        (fun (label, entry, _, _) ->
          ( label,
            if prune then entry.Pred_cache.kept else entry.Pred_cache.raw ))
        results
    in
    let bad =
      List.map
        (fun (label, entry, _, _) ->
          {
            label;
            total_predictions = List.length entry.Pred_cache.raw;
            feasible_predictions = entry.Pred_cache.feasible_count;
            kept = List.length entry.Pred_cache.kept;
          })
        results
    in
    let hits = List.length (List.filter (fun (_, _, h, _) -> h) results) in
    {
      per_partition;
      bad;
      hits;
      misses = List.length results - hits;
      busy_seconds =
        List.fold_left (fun acc (_, _, _, s) -> acc +. s) 0. results;
      wall_seconds = Unix.gettimeofday () -. wall0;
      pool_stats;
    }

  let predictions e =
    check_open e "predictions";
    let prune =
      match e.config.Config.prune with
      | Some p -> p
      | None -> e.spec.Spec.params.Spec.discard_inferior
    in
    let p = predictions_timed e ~prune in
    (p.per_partition, p.bad)

  let cache_evictions e =
    match e.cache with
    | None -> 0
    | Some c -> (Pred_cache.counters c).Pred_cache.evictions

  let cache_structural_hits e =
    match e.cache with
    | None -> 0
    | Some c -> (Pred_cache.counters c).Pred_cache.structural_hits

  let run_interruptible ~interrupt e =
    check_open e "run";
    if interrupt () then raise Cancelled;
    let keep_all = e.config.Config.keep_all in
    let prune =
      match e.config.Config.prune with
      | Some p -> p
      | None -> not keep_all
    in
    let evictions0 = cache_evictions e in
    let structural0 = cache_structural_hits e in
    let p = predictions_timed ~interrupt e ~prune in
    if interrupt () then raise Cancelled;
    (* second-level dominance pre-pruning: shrink each partition's list to
       picks that can still contribute to the Pareto front of full systems
       (Prune's soundness argument).  Only the exhaustive searches walk the
       whole product; the iterative heuristic's serialization path depends
       on the exact list contents, so it is left untouched. *)
    let search_lists, pruned_impls =
      match e.config.Config.heuristic with
      | (Enumeration | Branch_bound) when e.config.Config.pre_prune ->
          Prune.per_partition ~clocks:e.spec.Spec.clocks p.per_partition
      | Enumeration | Branch_bound | Iterative -> (p.per_partition, 0)
    in
    let search_metrics = ref Search.no_parallel_metrics in
    let search_wall0 = Unix.gettimeofday () in
    let outcome =
      match e.config.Config.heuristic with
      | Enumeration ->
          Enum_heuristic.run ~keep_all ~pool:e.pool ~metrics:search_metrics
            e.ctx search_lists
      | Iterative ->
          Iter_heuristic.run ~keep_all ~metrics:search_metrics e.ctx
            search_lists
      | Branch_bound ->
          Bb_heuristic.run ~keep_all ~pool:e.pool ~metrics:search_metrics
            e.ctx search_lists
    in
    let sm = !search_metrics in
    let search_phase =
      match e.config.Config.heuristic with
      | Iterative ->
          (* sequential: busy time equals the wall clock of the search *)
          let wall = Unix.gettimeofday () -. search_wall0 in
          { Metrics.wall_seconds = wall; busy_seconds = wall }
      | Enumeration | Branch_bound ->
          { Metrics.wall_seconds = sm.Search.search_wall_seconds;
            busy_seconds = sm.Search.search_busy_seconds }
    in
    let metrics =
      {
        Metrics.predict =
          { Metrics.wall_seconds = p.wall_seconds;
            busy_seconds =
              Array.fold_left ( +. ) 0.
                p.pool_stats.Chop_util.Pool.worker_busy };
        search = search_phase;
        merge_wall_seconds = sm.Search.merge_wall_seconds;
        worker_busy_seconds =
          Metrics.add_worker_busy p.pool_stats.Chop_util.Pool.worker_busy
            sm.Search.worker_busy_seconds;
        chunk_count =
          p.pool_stats.Chop_util.Pool.chunk_count + sm.Search.chunk_count;
        cache_hits = p.hits;
        cache_misses = p.misses;
        cache_evictions = cache_evictions e - evictions0;
        cache_structural_hits = cache_structural_hits e - structural0;
        pruned_impls;
        integrations_avoided =
          outcome.Search.stats.Search.integrations_avoided;
        chip_cache_hits = sm.Search.chip_cache_hits;
      }
    in
    e.pending <- [];
    { heuristic = e.config.Config.heuristic; bad = p.bad; outcome;
      bad_busy_seconds = p.busy_seconds; bad_wall_seconds = p.wall_seconds;
      cache_hits = p.hits; cache_misses = p.misses;
      jobs = Chop_util.Pool.jobs e.pool; metrics }

  let run e = run_interruptible ~interrupt:(fun () -> false) e

  (* Distributed fan-out support: run only the first-axis slices whose
     global index is congruent to [index] modulo [count], and expose them
     raw (unmerged) so a front process can replay every backend's
     admissions in global task order — Search.Slice.merge at row
     granularity — and reproduce the sequential outcome byte for byte.
     Prediction and pre-pruning run in full (they are what make the
     restricted search identical to the corresponding slices of a full
     run); pending is left untouched, a partial run is not a run. *)
  type slice_run = {
    slice_bad : bad_stats list;
    first_total : int;
        (* first-axis choices in the full search (1 for the degenerate
           empty product, which index 0 owns) *)
    slice_indices : int list;  (* global indices, aligned with [slices] *)
    slices : Search.Slice.t list;
  }

  let run_slice ~index ~count e =
    check_open e "run_slice";
    if count < 1 || index < 0 || index >= count then
      invalid_arg "Explore.Session.run_slice: slice index out of range";
    let keep_all = e.config.Config.keep_all in
    let prune =
      match e.config.Config.prune with Some p -> p | None -> not keep_all
    in
    let p = predictions_timed e ~prune in
    let search_lists =
      match e.config.Config.heuristic with
      | Iterative ->
          invalid_arg
            "Explore.Session.run_slice: the iterative heuristic does not \
             slice"
      | Enumeration | Branch_bound ->
          if e.config.Config.pre_prune then
            fst (Prune.per_partition ~clocks:e.spec.Spec.clocks p.per_partition)
          else p.per_partition
    in
    let first_total =
      match search_lists with [] -> 1 | (_, ps) :: _ -> List.length ps
    in
    let slice_indices =
      List.filter (fun j -> j mod count = index) (List.init first_total Fun.id)
    in
    let restricted =
      match search_lists with
      | [] -> []
      | (l0, ps0) :: rest ->
          (l0, List.filteri (fun j _ -> j mod count = index) ps0) :: rest
    in
    let slices =
      if slice_indices = [] then []
      else begin
        let out = ref [] in
        (match e.config.Config.heuristic with
        | Enumeration ->
            ignore
              (Enum_heuristic.run ~keep_all ~pool:e.pool ~slices_out:out e.ctx
                 restricted)
        | Branch_bound ->
            ignore
              (Bb_heuristic.run ~keep_all ~pool:e.pool ~slices_out:out e.ctx
                 restricted)
        | Iterative -> assert false);
        !out
      end
    in
    { slice_bad = p.bad; first_total; slice_indices; slices }
end

module Engine = Session

let with_engine ?pool config spec f =
  let e = Session.create ?pool config spec in
  Fun.protect ~finally:(fun () -> Session.close e) (fun () -> f e)

let with_session = with_engine

let unique_designs systems =
  let key s =
    ( s.Integration.ii_main,
      s.Integration.delay_cycles,
      int_of_float Chop_util.Triplet.((Integration.total_area s).likely) )
  in
  Chop_util.Listx.uniq_count ~compare:Stdlib.compare (List.map key systems)

let pp_heuristic ppf = function
  | Enumeration -> Format.pp_print_string ppf "E"
  | Iterative -> Format.pp_print_string ppf "I"
  | Branch_bound -> Format.pp_print_string ppf "B"
