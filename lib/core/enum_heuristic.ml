(* Exhaustive enumeration over the cartesian product of per-partition
   implementation lists.  The product is split on the first axis — one
   independent slice per implementation of the first partition — so a
   domain pool can search slices concurrently; Search.Slice.merge
   recombines them into exactly the sequential outcome. *)

let consider ctx ~clocks ~crit ~keep_all ~labels slice picks =
  let comb = List.combine labels picks in
  (* performance upper bound: the slowest partition sets the pace *)
  let ii_bound =
    List.fold_left
      (fun acc p -> max acc (Chop_bad.Prediction.ii_main clocks p))
      1 picks
  in
  let clock_bound =
    List.fold_left
      (fun acc p -> Float.max acc p.Chop_bad.Prediction.timing.clock_main)
      clocks.Chop_tech.Clocking.main picks
  in
  let hopeless =
    float_of_int ii_bound *. clock_bound
    > crit.Chop_bad.Feasibility.perf_constraint
  in
  (* the slowest-partition bound prunes combinations that cannot meet the
     performance constraint before any integration work — even in
     keep-all mode only evaluated designs are recorded, as in the paper's
     Figures 7 and 8 *)
  if hopeless then Search.Slice.step slice
  else Search.Slice.record ~keep_all slice (Integration.integrate ctx comb)

let run ?(keep_all = false) ?(pool = Chop_util.Pool.sequential) ?metrics ctx
    per_partition =
  let spec = Integration.spec_of ctx in
  let clocks = spec.Spec.clocks in
  let crit = spec.Spec.criteria in
  let t0 = Sys.time () in
  let wall0 = Unix.gettimeofday () in
  let labels = List.map fst per_partition in
  let consider = consider ctx ~clocks ~crit ~keep_all ~labels in
  let slices, pool_stats =
    match List.map snd per_partition with
    | [] ->
        (* degenerate: the empty product still has one (empty) combination *)
        let slice = Search.Slice.create () in
        consider slice [];
        ([ slice ], { Chop_util.Pool.worker_busy = [||]; chunk_count = 0 })
    | first :: rest ->
        let tasks =
          Array.of_list
            (List.map
               (fun pick () ->
                 let slice = Search.Slice.create () in
                 Chop_util.Listx.fold_cartesian
                   (fun () picks -> consider slice (pick :: picks))
                   () rest;
                 slice)
               first)
        in
        let slices, stats = Chop_util.Pool.run_timed pool tasks in
        (Array.to_list slices, stats)
  in
  let search_wall = Unix.gettimeofday () -. wall0 in
  let merge0 = Unix.gettimeofday () in
  let outcome =
    Search.Slice.merge ~keep_all ~cpu_seconds:(Sys.time () -. t0) slices
  in
  Option.iter
    (fun r ->
      r :=
        {
          Search.search_wall_seconds = search_wall;
          search_busy_seconds =
            Array.fold_left ( +. ) 0. pool_stats.Chop_util.Pool.worker_busy;
          merge_wall_seconds = Unix.gettimeofday () -. merge0;
          worker_busy_seconds = pool_stats.Chop_util.Pool.worker_busy;
          chunk_count = pool_stats.Chop_util.Pool.chunk_count;
        })
    metrics;
  outcome
