(* Exhaustive enumeration over the cartesian product of per-partition
   implementation lists.  The product is split on the first axis — one
   independent slice per implementation of the first partition — so a
   domain pool can search slices concurrently; Search.Slice.merge
   recombines them into exactly the sequential outcome.

   The inner loop is allocation-free: picks live in a reused array driven
   by an odometer (first axis slowest, matching Listx.fold_cartesian), and
   the association list a combination needs is only built once the cheap
   bounds have let it through.  Provably-infeasible combinations are
   rejected by Integration.quick_check before any integration work —
   except in keep-all mode, where every evaluated design must be recorded
   exactly as before. *)

let run ?(keep_all = false) ?(pool = Chop_util.Pool.sequential) ?metrics
    ?slices_out ctx per_partition =
  let spec = Integration.spec_of ctx in
  let clocks = spec.Spec.clocks in
  let crit = spec.Spec.criteria in
  let t0 = Sys.time () in
  let wall0 = Unix.gettimeofday () in
  let labels = Array.of_list (List.map fst per_partition) in
  let lists =
    Array.of_list (List.map (fun (_, ps) -> Array.of_list ps) per_partition)
  in
  let k = Array.length labels in
  let session = Integration.session ctx in
  (* bounds over the current picks; smallest-work test first, then the
     quick check, and only then the full integration *)
  let consider slice cache (picks : Chop_bad.Prediction.t array) =
    let ii_bound = ref 1 in
    let clock_bound = ref clocks.Chop_tech.Clocking.main in
    for i = 0 to k - 1 do
      let p = picks.(i) in
      let ii = Chop_bad.Prediction.ii_main clocks p in
      if ii > !ii_bound then ii_bound := ii;
      let c = p.Chop_bad.Prediction.timing.Chop_bad.Prediction.clock_main in
      if c > !clock_bound then clock_bound := c
    done;
    (* performance upper bound: the slowest partition sets the pace.  It
       prunes combinations that cannot meet the performance constraint
       before any integration work — even in keep-all mode only evaluated
       designs are recorded, as in the paper's Figures 7 and 8 *)
    if
      float_of_int !ii_bound *. !clock_bound
      > crit.Chop_bad.Feasibility.perf_constraint
    then Search.Slice.step slice
    else begin
      let comb =
        let rec go i acc =
          if i < 0 then acc else go (i - 1) ((labels.(i), picks.(i)) :: acc)
        in
        go (k - 1) []
      in
      if (not keep_all) && Integration.quick_check cache comb then
        Search.Slice.avoid slice
      else
        Search.Slice.record ~keep_all slice
          (Integration.integrate_cached cache comb)
    end
  in
  let with_cache_counted slice f =
    let cache = Integration.domain_cache session in
    let hits0 = Integration.chip_cache_hits cache in
    f cache;
    Search.Slice.set_cache_hits slice
      (Integration.chip_cache_hits cache - hits0);
    slice
  in
  let slices, pool_stats =
    if k = 0 then begin
      (* degenerate: the empty product still has one (empty) combination *)
      let slice = Search.Slice.create () in
      let slice =
        with_cache_counted slice (fun cache -> consider slice cache [||])
      in
      ([ slice ], { Chop_util.Pool.worker_busy = [||]; chunk_count = 0 })
    end
    else begin
      let rest_nonempty =
        let ok = ref true in
        for i = 1 to k - 1 do
          if Array.length lists.(i) = 0 then ok := false
        done;
        !ok
      in
      let tasks =
        Array.map
          (fun p0 () ->
            let slice = Search.Slice.create () in
            if not rest_nonempty then slice
            else
              with_cache_counted slice (fun cache ->
                  let picks = Array.make k p0 in
                  for i = 1 to k - 1 do
                    picks.(i) <- lists.(i).(0)
                  done;
                  (* odometer over axes 1..k-1, last axis fastest — the
                     same order Listx.fold_cartesian walks *)
                  let digits = Array.make (max 0 (k - 1)) 0 in
                  let rec inc d =
                    d >= 0
                    && begin
                         let axis = lists.(d + 1) in
                         let v = digits.(d) + 1 in
                         if v < Array.length axis then begin
                           digits.(d) <- v;
                           picks.(d + 1) <- axis.(v);
                           true
                         end
                         else begin
                           digits.(d) <- 0;
                           picks.(d + 1) <- axis.(0);
                           inc (d - 1)
                         end
                       end
                  in
                  let continue = ref true in
                  while !continue do
                    consider slice cache picks;
                    continue := inc (k - 2)
                  done))
          lists.(0)
      in
      let slices, stats = Chop_util.Pool.run_timed pool tasks in
      (Array.to_list slices, stats)
    end
  in
  let search_wall = Unix.gettimeofday () -. wall0 in
  Option.iter (fun r -> r := slices) slices_out;
  let merge0 = Unix.gettimeofday () in
  let outcome =
    Search.Slice.merge ~keep_all ~cpu_seconds:(Sys.time () -. t0) slices
  in
  Option.iter
    (fun r ->
      r :=
        {
          Search.search_wall_seconds = search_wall;
          search_busy_seconds =
            Array.fold_left ( +. ) 0. pool_stats.Chop_util.Pool.worker_busy;
          merge_wall_seconds = Unix.gettimeofday () -. merge0;
          worker_busy_seconds = pool_stats.Chop_util.Pool.worker_busy;
          chunk_count = pool_stats.Chop_util.Pool.chunk_count;
          chip_cache_hits = Search.Slice.cache_hit_total slices;
        })
    metrics;
  outcome
