type point = {
  value : float;
  feasible : bool;
  best_ii : int option;
  best_delay_cycles : int option;
  best_perf_ns : float option;
}

type sweep = { parameter : string; points : point list }

let judge ?config ~value spec_opt =
  match spec_opt with
  | None ->
      { value; feasible = false; best_ii = None; best_delay_cycles = None;
        best_perf_ns = None }
  | Some spec -> (
      let j = Advisor.what_if ?config spec in
      match j.Advisor.best with
      | Some s ->
          {
            value;
            feasible = true;
            best_ii = Some s.Integration.ii_main;
            best_delay_cycles = Some s.Integration.delay_cycles;
            best_perf_ns = Some s.Integration.perf_ns;
          }
      | None ->
          { value; feasible = false; best_ii = None; best_delay_cycles = None;
            best_perf_ns = None })

let with_criteria spec criteria =
  try Some (Advisor.set_constraints spec ~criteria)
  with Advisor.Rejected _ -> None

let performance_constraint ?config spec ~values =
  let crit = spec.Spec.criteria in
  let points =
    List.map
      (fun perf ->
        let spec_opt =
          match
            Chop_bad.Feasibility.criteria
              ~perf_prob:crit.Chop_bad.Feasibility.perf_prob
              ~area_prob:crit.Chop_bad.Feasibility.area_prob
              ~delay_prob:crit.Chop_bad.Feasibility.delay_prob
              ?power_budget:crit.Chop_bad.Feasibility.power_budget ~perf
              ~delay:crit.Chop_bad.Feasibility.delay_constraint ()
          with
          | criteria -> with_criteria spec criteria
          | exception Invalid_argument _ -> None
        in
        judge ?config ~value:perf spec_opt)
      values
  in
  { parameter = "performance constraint (ns)"; points }

let delay_constraint ?config spec ~values =
  let crit = spec.Spec.criteria in
  let points =
    List.map
      (fun delay ->
        let spec_opt =
          match
            Chop_bad.Feasibility.criteria
              ~perf_prob:crit.Chop_bad.Feasibility.perf_prob
              ~area_prob:crit.Chop_bad.Feasibility.area_prob
              ~delay_prob:crit.Chop_bad.Feasibility.delay_prob
              ?power_budget:crit.Chop_bad.Feasibility.power_budget
              ~perf:crit.Chop_bad.Feasibility.perf_constraint ~delay ()
          with
          | criteria -> with_criteria spec criteria
          | exception Invalid_argument _ -> None
        in
        judge ?config ~value:delay spec_opt)
      values
  in
  { parameter = "delay constraint (ns)"; points }

let pin_count ?config spec ~values =
  let points =
    List.map
      (fun pins ->
        let spec_opt =
          if pins <= 0 then None
          else
            (* rebuild every chip's package at the new pin count *)
            try
              Some
                (List.fold_left
                   (fun s ci ->
                     let p = ci.Spec.package in
                     let package =
                       Chop_tech.Chip.make
                         ~name:(Printf.sprintf "%s_p%d" p.Chop_tech.Chip.pkg_name pins)
                         ~width:p.Chop_tech.Chip.width
                         ~height:p.Chop_tech.Chip.height ~pins
                         ~pad_delay:p.Chop_tech.Chip.pad_delay
                         ~pad_area:p.Chop_tech.Chip.pad_area
                     in
                     Advisor.swap_package s ~chip:ci.Spec.chip_name package)
                   spec spec.Spec.chips)
            with Advisor.Rejected _ | Invalid_argument _ -> None
        in
        judge ?config ~value:(float_of_int pins) spec_opt)
      values
  in
  { parameter = "package pin count"; points }

let main_clock ?config spec ~values =
  let clocks = spec.Spec.clocks in
  let points =
    List.map
      (fun main ->
        let spec_opt =
          match
            Chop_tech.Clocking.make ~main
              ~datapath_ratio:clocks.Chop_tech.Clocking.datapath_ratio
              ~transfer_ratio:clocks.Chop_tech.Clocking.transfer_ratio
          with
          | clocks -> (
              try
                Some
                  (Spec.make ~params:spec.Spec.params
                     ~memories:spec.Spec.memories
                     ~memory_hosts:spec.Spec.memory_hosts ~graph:spec.Spec.graph
                     ~library:spec.Spec.library ~chips:spec.Spec.chips
                     ~partitioning:spec.Spec.partitioning
                     ~assignment:spec.Spec.assignment ~clocks
                     ~style:spec.Spec.style ~criteria:spec.Spec.criteria ())
              with Spec.Invalid_spec _ -> None)
          | exception Invalid_argument _ -> None
        in
        judge ?config ~value:main spec_opt)
      values
  in
  { parameter = "main clock (ns)"; points }

type grid = {
  perf_values : float list;
  pin_values : int list;
  cells : bool array array;
}

let performance_pins_grid ?config spec ~perf_values ~pin_values =
  let crit = spec.Spec.criteria in
  let cells =
    Array.of_list
      (List.map
         (fun perf ->
           Array.of_list
             (List.map
                (fun pins ->
                  let spec_perf =
                    match
                      Chop_bad.Feasibility.criteria
                        ~perf_prob:crit.Chop_bad.Feasibility.perf_prob
                        ~area_prob:crit.Chop_bad.Feasibility.area_prob
                        ~delay_prob:crit.Chop_bad.Feasibility.delay_prob
                        ?power_budget:crit.Chop_bad.Feasibility.power_budget
                        ~perf
                        ~delay:crit.Chop_bad.Feasibility.delay_constraint ()
                    with
                    | criteria -> with_criteria spec criteria
                    | exception Invalid_argument _ -> None
                  in
                  match spec_perf with
                  | None -> false
                  | Some s ->
                      let swept = pin_count ?config s ~values:[ pins ] in
                      (match swept.points with
                      | [ p ] -> p.feasible
                      | _ -> false))
                pin_values))
         perf_values)
  in
  { perf_values; pin_values; cells }

let render_grid grid =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "  perf ns \\ pins ";
  List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "%5d" p)) grid.pin_values;
  Buffer.add_char buf '\n';
  List.iteri
    (fun i perf ->
      Buffer.add_string buf (Printf.sprintf "  %10.0f     " perf);
      Array.iter
        (fun ok -> Buffer.add_string buf (if ok then "    #" else "    ."))
        grid.cells.(i);
      Buffer.add_char buf '\n')
    grid.perf_values;
  Buffer.contents buf

let cliff sweep =
  let rec scan was_feasible = function
    | [] -> None
    | p :: rest ->
        if was_feasible && not p.feasible then Some p.value
        else scan (was_feasible || p.feasible) rest
  in
  scan false sweep.points

let render sweep =
  let t =
    Chop_util.Texttable.create ~title:("sensitivity: " ^ sweep.parameter)
      [
        ("value", Chop_util.Texttable.Right);
        ("feasible", Chop_util.Texttable.Center);
        ("best II", Chop_util.Texttable.Right);
        ("delay cyc", Chop_util.Texttable.Right);
        ("perf ns", Chop_util.Texttable.Right);
      ]
  in
  List.iter
    (fun p ->
      let opt f = function Some v -> f v | None -> "-" in
      Chop_util.Texttable.add_row t
        [
          Printf.sprintf "%.0f" p.value;
          (if p.feasible then "yes" else "no");
          opt string_of_int p.best_ii;
          opt string_of_int p.best_delay_cycles;
          opt (Printf.sprintf "%.0f") p.best_perf_ns;
        ])
    sweep.points;
  Chop_util.Texttable.render t
