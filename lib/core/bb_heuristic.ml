(* Depth-first branch-and-bound over partition implementations, with
   admissible performance and per-chip area lower bounds.  The tree is
   split at the root — one independent slice per implementation of the
   first partition — so a domain pool can search subtrees concurrently;
   each slice gets private bound-bookkeeping arrays and Search.Slice.merge
   recombines the results into exactly the sequential outcome.

   All per-node bookkeeping is int-indexed: partitions and chips are
   resolved to dense indexes once per run, so a tree node costs two array
   reads and two float adds instead of hash and association lookups.  At a
   leaf, Integration.quick_check rejects provably-infeasible combinations
   before any integration work — except in keep-all mode, where every
   evaluated design must be recorded exactly as before. *)

let run ?(keep_all = false) ?(pool = Chop_util.Pool.sequential) ?metrics
    ?slices_out ctx per_partition =
  let spec = Integration.spec_of ctx in
  let clocks = spec.Spec.clocks in
  let crit = spec.Spec.criteria in
  let t0 = Sys.time () in
  let wall0 = Unix.gettimeofday () in
  let order = Array.of_list per_partition in
  let n = Array.length order in
  let session = Integration.session ctx in
  (* dense chip indexes, in spec order *)
  let chips = Array.of_list spec.Spec.chips in
  let nchips = Array.length chips in
  let capacity =
    Array.map (fun ci -> Chop_tech.Chip.project_area ci.Spec.package) chips
  in
  let chip_index name =
    let rec find i =
      if i >= nchips then invalid_arg "Bb_heuristic: unknown chip"
      else if chips.(i).Spec.chip_name = name then i
      else find (i + 1)
    in
    find 0
  in
  (* per-partition level: its chip index and the area lower bound of its
     cheapest implementation (the admissible per-chip bound: the sum of
     area lower bounds of a chip's partitions can never exceed the raw
     project area) *)
  let chip_of_level =
    Array.map
      (fun (label, _) ->
        chip_index (Spec.chip_of_partition spec label).Spec.chip_name)
      order
  in
  let min_area_of =
    Array.map
      (fun (_, preds) ->
        List.fold_left
          (fun acc p ->
            Float.min acc Chop_util.Triplet.(p.Chop_bad.Prediction.area.low))
          infinity preds)
      order
  in
  (* chip -> area committed by chosen predictions plus lower bounds of the
     chip's still-unchosen partitions; each slice carries its own pair of
     arrays so subtrees never share mutable state *)
  let fresh_tables () =
    let unchosen_low = Array.make nchips 0. in
    Array.iteri
      (fun i _ ->
        let c = chip_of_level.(i) in
        unchosen_low.(c) <- unchosen_low.(c) +. min_area_of.(i))
      order;
    (Array.make nchips 0., unchosen_low)
  in
  let consider slice cache picked =
    let comb = List.rev picked in
    if (not keep_all) && Integration.quick_check cache comb then
      Search.Slice.avoid slice
    else
      Search.Slice.record ~keep_all slice
        (Integration.integrate_cached cache comb)
  in
  (* try one prediction [p] at level [i]; assumes unchosen_low already
     excludes level [i]'s lower bound *)
  let rec branch slice cache ~committed ~unchosen_low i picked ~ii_bound
      ~clock_bound ~chip p =
    let ii = max ii_bound (Chop_bad.Prediction.ii_main clocks p) in
    let clock =
      Float.max clock_bound
        p.Chop_bad.Prediction.timing.Chop_bad.Prediction.clock_main
    in
    let perf_lb = float_of_int ii *. clock in
    let area_low = Chop_util.Triplet.(p.Chop_bad.Prediction.area.low) in
    let chip_lb = committed.(chip) +. area_low +. unchosen_low.(chip) in
    if perf_lb > crit.Chop_bad.Feasibility.perf_constraint then
      Search.Slice.step slice (* pruned: counts as a considered stem *)
    else if chip_lb > capacity.(chip) then Search.Slice.step slice
    else begin
      let label, _ = order.(i) in
      committed.(chip) <- committed.(chip) +. area_low;
      dfs slice cache ~committed ~unchosen_low (i + 1) ((label, p) :: picked)
        ~ii_bound:ii ~clock_bound:clock;
      committed.(chip) <- committed.(chip) -. area_low
    end
  and dfs slice cache ~committed ~unchosen_low i picked ~ii_bound ~clock_bound
      =
    if i = n then consider slice cache picked
    else begin
      let _, preds = order.(i) in
      let chip = chip_of_level.(i) in
      (* this partition leaves the unchosen pool for the bound *)
      unchosen_low.(chip) <- unchosen_low.(chip) -. min_area_of.(i);
      List.iter
        (branch slice cache ~committed ~unchosen_low i picked ~ii_bound
           ~clock_bound ~chip)
        preds;
      unchosen_low.(chip) <- unchosen_low.(chip) +. min_area_of.(i)
    end
  in
  let with_cache_counted slice f =
    let cache = Integration.domain_cache session in
    let hits0 = Integration.chip_cache_hits cache in
    f cache;
    Search.Slice.set_cache_hits slice
      (Integration.chip_cache_hits cache - hits0);
    slice
  in
  let slices, pool_stats =
    if n = 0 then begin
      (* degenerate: integrate the empty combination, as the sequential
         search did *)
      let slice = Search.Slice.create () in
      let slice =
        with_cache_counted slice (fun cache ->
            let committed, unchosen_low = fresh_tables () in
            dfs slice cache ~committed ~unchosen_low 0 [] ~ii_bound:1
              ~clock_bound:clocks.Chop_tech.Clocking.main)
      in
      ([ slice ], { Chop_util.Pool.worker_busy = [||]; chunk_count = 0 })
    end
    else begin
      let _, preds0 = order.(0) in
      let chip0 = chip_of_level.(0) in
      let tasks =
        Array.of_list
          (List.map
             (fun p () ->
               let slice = Search.Slice.create () in
               with_cache_counted slice (fun cache ->
                   let committed, unchosen_low = fresh_tables () in
                   unchosen_low.(chip0) <-
                     unchosen_low.(chip0) -. min_area_of.(0);
                   branch slice cache ~committed ~unchosen_low 0 []
                     ~ii_bound:1 ~clock_bound:clocks.Chop_tech.Clocking.main
                     ~chip:chip0 p))
             preds0)
      in
      let slices, stats = Chop_util.Pool.run_timed pool tasks in
      (Array.to_list slices, stats)
    end
  in
  let search_wall = Unix.gettimeofday () -. wall0 in
  Option.iter (fun r -> r := slices) slices_out;
  let merge0 = Unix.gettimeofday () in
  let outcome =
    Search.Slice.merge ~keep_all ~cpu_seconds:(Sys.time () -. t0) slices
  in
  Option.iter
    (fun r ->
      r :=
        {
          Search.search_wall_seconds = search_wall;
          search_busy_seconds =
            Array.fold_left ( +. ) 0. pool_stats.Chop_util.Pool.worker_busy;
          merge_wall_seconds = Unix.gettimeofday () -. merge0;
          worker_busy_seconds = pool_stats.Chop_util.Pool.worker_busy;
          chunk_count = pool_stats.Chop_util.Pool.chunk_count;
          chip_cache_hits = Search.Slice.cache_hit_total slices;
        })
    metrics;
  outcome
