(* Depth-first branch-and-bound over partition implementations, with
   admissible performance and per-chip area lower bounds.  The tree is
   split at the root — one independent slice per implementation of the
   first partition — so a domain pool can search subtrees concurrently;
   each slice gets private bound-bookkeeping tables and Search.Slice.merge
   recombines the results into exactly the sequential outcome. *)

let run ?(keep_all = false) ?(pool = Chop_util.Pool.sequential) ?metrics ctx
    per_partition =
  let spec = Integration.spec_of ctx in
  let clocks = spec.Spec.clocks in
  let crit = spec.Spec.criteria in
  let t0 = Sys.time () in
  let wall0 = Unix.gettimeofday () in
  let order = Array.of_list per_partition in
  let n = Array.length order in
  (* admissible per-chip area bound: the sum of area lower bounds of the
     chip's partitions can never exceed the raw project area *)
  let chip_of label =
    (Spec.chip_of_partition spec label).Spec.chip_name
  in
  let min_area_of =
    Array.map
      (fun (_, preds) ->
        List.fold_left
          (fun acc p -> Float.min acc Chop_util.Triplet.(p.Chop_bad.Prediction.area.low))
          infinity preds)
      order
  in
  let chip_capacity =
    List.map
      (fun ci -> (ci.Spec.chip_name, Chop_tech.Chip.project_area ci.Spec.package))
      spec.Spec.chips
  in
  (* chip -> area committed by chosen predictions plus lower bounds of the
     chip's still-unchosen partitions; each slice carries its own pair of
     tables so subtrees never share mutable state.  The tables hold refs so
     the per-branch bookkeeping is one lookup, not a find/replace pair. *)
  let fresh_tables () =
    let unchosen_low = Hashtbl.create 8 in
    List.iter
      (fun (c, _) -> Hashtbl.replace unchosen_low c (ref 0.))
      chip_capacity;
    Array.iteri
      (fun i (label, _) ->
        let cell = Hashtbl.find unchosen_low (chip_of label) in
        cell := !cell +. min_area_of.(i))
      order;
    let committed = Hashtbl.create 8 in
    List.iter (fun (c, _) -> Hashtbl.replace committed c (ref 0.)) chip_capacity;
    (committed, unchosen_low)
  in
  (* try one prediction [p] at level [i]; assumes unchosen_low already
     excludes level [i]'s lower bound.  [chip_committed], [chip_unchosen]
     and [capacity] are level [i]'s chip cells, resolved once per level. *)
  let rec branch slice ~committed ~unchosen_low i picked ~ii_bound
      ~clock_bound ~chip_committed ~chip_unchosen ~capacity p =
    let ii = max ii_bound (Chop_bad.Prediction.ii_main clocks p) in
    let clock =
      Float.max clock_bound p.Chop_bad.Prediction.timing.Chop_bad.Prediction.clock_main
    in
    let perf_lb = float_of_int ii *. clock in
    let area_low = Chop_util.Triplet.(p.Chop_bad.Prediction.area.low) in
    let chip_lb = !chip_committed +. area_low +. !chip_unchosen in
    if perf_lb > crit.Chop_bad.Feasibility.perf_constraint then
      Search.Slice.step slice (* pruned: counts as a considered stem *)
    else if chip_lb > capacity then Search.Slice.step slice
    else begin
      let label, _ = order.(i) in
      chip_committed := !chip_committed +. area_low;
      dfs slice ~committed ~unchosen_low (i + 1) ((label, p) :: picked)
        ~ii_bound:ii ~clock_bound:clock;
      chip_committed := !chip_committed -. area_low
    end
  and dfs slice ~committed ~unchosen_low i picked ~ii_bound ~clock_bound =
    if i = n then
      Search.Slice.record ~keep_all slice
        (Integration.integrate ctx (List.rev picked))
    else begin
      let label, preds = order.(i) in
      let chip = chip_of label in
      let chip_committed = Hashtbl.find committed chip in
      let chip_unchosen = Hashtbl.find unchosen_low chip in
      let capacity = List.assoc chip chip_capacity in
      (* this partition leaves the unchosen pool for the bound *)
      chip_unchosen := !chip_unchosen -. min_area_of.(i);
      List.iter
        (branch slice ~committed ~unchosen_low i picked ~ii_bound ~clock_bound
           ~chip_committed ~chip_unchosen ~capacity)
        preds;
      chip_unchosen := !chip_unchosen +. min_area_of.(i)
    end
  in
  let slices, pool_stats =
    if n = 0 then begin
      (* degenerate: integrate the empty combination, as the sequential
         search did *)
      let slice = Search.Slice.create () in
      let committed, unchosen_low = fresh_tables () in
      dfs slice ~committed ~unchosen_low 0 [] ~ii_bound:1
        ~clock_bound:clocks.Chop_tech.Clocking.main;
      ([ slice ], { Chop_util.Pool.worker_busy = [||]; chunk_count = 0 })
    end
    else begin
      let label0, preds0 = order.(0) in
      let chip0 = chip_of label0 in
      let capacity0 = List.assoc chip0 chip_capacity in
      let tasks =
        Array.of_list
          (List.map
             (fun p () ->
               let slice = Search.Slice.create () in
               let committed, unchosen_low = fresh_tables () in
               let chip_committed = Hashtbl.find committed chip0 in
               let chip_unchosen = Hashtbl.find unchosen_low chip0 in
               chip_unchosen := !chip_unchosen -. min_area_of.(0);
               branch slice ~committed ~unchosen_low 0 [] ~ii_bound:1
                 ~clock_bound:clocks.Chop_tech.Clocking.main ~chip_committed
                 ~chip_unchosen ~capacity:capacity0 p;
               slice)
             preds0)
      in
      let slices, stats = Chop_util.Pool.run_timed pool tasks in
      (Array.to_list slices, stats)
    end
  in
  let search_wall = Unix.gettimeofday () -. wall0 in
  let merge0 = Unix.gettimeofday () in
  let outcome =
    Search.Slice.merge ~keep_all ~cpu_seconds:(Sys.time () -. t0) slices
  in
  Option.iter
    (fun r ->
      r :=
        {
          Search.search_wall_seconds = search_wall;
          search_busy_seconds =
            Array.fold_left ( +. ) 0. pool_stats.Chop_util.Pool.worker_busy;
          merge_wall_seconds = Unix.gettimeofday () -. merge0;
          worker_busy_seconds = pool_stats.Chop_util.Pool.worker_busy;
          chunk_count = pool_stats.Chop_util.Pool.chunk_count;
        })
    metrics;
  outcome
