(** The explicit-enumeration search heuristic ("E" in the paper's result
    tables).

    "The heuristic searches all possible combinations of implementing the
    global design ... given the predicted implementations of individual
    partitions" — [N = prod N_i] combinations, assuming the performance of a
    combination is set by the slowest partition implementation (paper,
    section 2.4). *)

val run :
  ?keep_all:bool ->
  ?pool:Chop_util.Pool.t ->
  ?metrics:Search.parallel_metrics ref ->
  ?slices_out:Search.Slice.t list ref ->
  Integration.context ->
  (string * Chop_bad.Prediction.t list) list ->
  Search.outcome
(** [run ctx per_partition] enumerates the cartesian product of the
    prediction lists.  Combinations whose slowest-partition performance
    bound already violates the performance constraint are counted as trials
    but not integrated, and — outside keep-all mode — so are combinations
    {!Integration.quick_check} proves infeasible ([stats.integrations_avoided]);
    [keep_all] records every integrated design to expose the full design
    space, so there the quick check is bypassed.  [pool] (default
    sequential) searches the product in parallel, one slice per
    implementation of the first partition, with deterministic merging: the
    outcome is identical to the sequential one.  [metrics], when given,
    receives the search/merge timing breakdown of this run.  [slices_out],
    when given, receives the raw per-first-implementation slices (in task
    order, before merging) so a caller can ship partial results across
    processes and merge them elsewhere. *)
