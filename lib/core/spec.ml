type chip_instance = { chip_name : string; package : Chop_tech.Chip.t }

type params = {
  alloc_cap : int;
  max_pipelined_iis : int;
  testability_overhead : float;
  discard_inferior : bool;
}

let default_params =
  {
    alloc_cap = 8;
    max_pipelined_iis = 8;
    testability_overhead = 0.;
    discard_inferior = true;
  }

type t = {
  graph : Chop_dfg.Graph.t;
  library : Chop_tech.Component.library;
  chips : chip_instance list;
  memories : Chop_tech.Memory.t list;
  memory_hosts : (string * string) list;
  partitioning : Chop_dfg.Partition.partitioning;
  assignment : (string * string) list;
  clocks : Chop_tech.Clocking.t;
  style : Chop_tech.Style.t;
  criteria : Chop_bad.Feasibility.criteria;
  params : params;
  processors : Chop_model_sw.Processor.t list;
  impls : (string * string) list;
}

exception Invalid_spec of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid_spec s)) fmt

let make ?(params = default_params) ?(memories = []) ?(memory_hosts = [])
    ?(processors = []) ?(impls = []) ~graph
    ~library ~chips ~partitioning ~assignment ~clocks ~style ~criteria () =
  if chips = [] then fail "no chips in the chip set";
  let chip_names = List.map (fun c -> c.chip_name) chips in
  if List.length (List.sort_uniq String.compare chip_names) <> List.length chips
  then fail "duplicate chip name";
  if partitioning.Chop_dfg.Partition.graph != graph then
    fail "partitioning built for a different graph";
  if not (Chop_tech.Component.covers library graph) then
    fail "component library does not cover the graph's functional classes";
  (* every partition assigned exactly once, to a known chip *)
  List.iter
    (fun p ->
      let label = p.Chop_dfg.Partition.label in
      match List.filter (fun (l, _) -> l = label) assignment with
      | [] -> fail "partition %s is not assigned to a chip" label
      | [ (_, chip) ] ->
          if not (List.mem chip chip_names) then
            fail "partition %s assigned to unknown chip %s" label chip
      | _ -> fail "partition %s assigned more than once" label)
    partitioning.Chop_dfg.Partition.parts;
  List.iter
    (fun (label, _) ->
      if
        not
          (List.exists
             (fun p -> p.Chop_dfg.Partition.label = label)
             partitioning.Chop_dfg.Partition.parts)
      then fail "assignment references unknown partition %s" label)
    assignment;
  (* memory declarations *)
  let declared = List.map (fun m -> m.Chop_tech.Memory.mname) memories in
  List.iter
    (fun block ->
      if not (List.mem block declared) then
        fail "graph references undeclared memory block %s" block)
    (Chop_dfg.Graph.memory_blocks graph);
  List.iter
    (fun m ->
      let name = m.Chop_tech.Memory.mname in
      let host = List.assoc_opt name memory_hosts in
      match (m.Chop_tech.Memory.placement, host) with
      | Chop_tech.Memory.On_chip _, None ->
          fail "on-chip memory %s has no host chip" name
      | Chop_tech.Memory.On_chip _, Some h ->
          if not (List.mem h chip_names) then
            fail "memory %s hosted on unknown chip %s" name h
      | Chop_tech.Memory.Off_chip_package _, Some _ ->
          fail "off-chip memory %s must not have a host chip" name
      | Chop_tech.Memory.Off_chip_package _, None -> ())
    memories;
  (* implementation-model bindings: each partition defaults to the
     hardware model; a binding names a declared processor.  Bindings to
     "hw" are normalised away so two specs that mean the same thing
     compare equal. *)
  let proc_names =
    List.map (fun p -> p.Chop_model_sw.Processor.pname) processors
  in
  if
    List.length (List.sort_uniq String.compare proc_names)
    <> List.length proc_names
  then fail "duplicate processor name";
  let impls = List.filter (fun (_, m) -> m <> "hw") impls in
  let impl_labels = List.map fst impls in
  if
    List.length (List.sort_uniq String.compare impl_labels)
    <> List.length impl_labels
  then fail "partition bound to more than one implementation model";
  List.iter
    (fun (label, m) ->
      if
        not
          (List.exists
             (fun p -> p.Chop_dfg.Partition.label = label)
             partitioning.Chop_dfg.Partition.parts)
      then fail "impl binding references unknown partition %s" label;
      if not (List.mem m proc_names) then
        fail "partition %s bound to unknown model %s (declared: %s)" label m
          (String.concat ", " ("hw" :: proc_names)))
    impls;
  (* a chip is either a custom hardware die or one processor instance:
     every partition placed on it must follow the same model *)
  let impl_of label =
    match List.assoc_opt label impls with Some m -> m | None -> "hw"
  in
  List.iter
    (fun chip ->
      let on_chip =
        List.filter_map
          (fun (l, c) -> if c = chip then Some (impl_of l) else None)
          assignment
      in
      match List.sort_uniq String.compare on_chip with
      | [] | [ _ ] -> ()
      | models ->
          fail "chip %s mixes implementation models (%s)" chip
            (String.concat ", " models))
    chip_names;
  {
    graph;
    library;
    chips;
    memories;
    memory_hosts;
    partitioning;
    assignment;
    clocks;
    style;
    criteria;
    params;
    processors;
    impls;
  }

(* Incremental edits (paper, section 2.2: the designer's interactive moves).

   Every edit funnels through [make], so an [Ok] spec satisfies the full
   validator; the dirty sets tell the exploration session how much predictive
   work the edit invalidates. *)

type edit =
  | Move_op of { op : Chop_dfg.Graph.node_id; to_partition : string }
  | Merge_parts of { src : string; dst : string }
  | Split_part of {
      from_partition : string;
      members : Chop_dfg.Graph.node_id list;
      new_label : string;
    }
  | Reassign_chip of { partition : string; chip : string }
  | Swap_package of { chip : string; package : Chop_tech.Chip.t }
  | Rehost_memory of { block : string; chip : string }
  | Set_clocks of Chop_tech.Clocking.t
  | Set_criteria of Chop_bad.Feasibility.criteria
  | Set_impl of { partition : string; impl : string }

type dirty = {
  repredict : string list;
  rederive : string list;
  removed : string list;
}

let no_dirty = { repredict = []; rederive = []; removed = [] }

type update_error = { index : int; reason : string }

let pp_update_error ppf e =
  Format.fprintf ppf "edit %d: %s" e.index e.reason

let labels t =
  List.map (fun p -> p.Chop_dfg.Partition.label) t.partitioning.Chop_dfg.Partition.parts

let rebuild ?partitioning ?assignment ?chips ?memory_hosts ?clocks ?criteria
    ?impls t =
  let value d o = Option.value ~default:d o in
  let partitioning = value t.partitioning partitioning in
  (* bindings of labels the new partitioning no longer has are dropped;
     explicit bindings are still validated in full by [make] *)
  let impls =
    List.filter
      (fun (l, _) ->
        List.exists
          (fun p -> p.Chop_dfg.Partition.label = l)
          partitioning.Chop_dfg.Partition.parts)
      (value t.impls impls)
  in
  match
    make ~params:t.params ~memories:t.memories
      ~memory_hosts:(value t.memory_hosts memory_hosts)
      ~processors:t.processors ~impls ~graph:t.graph
      ~library:t.library ~chips:(value t.chips chips)
      ~partitioning
      ~assignment:(value t.assignment assignment) ~clocks:(value t.clocks clocks)
      ~style:t.style ~criteria:(value t.criteria criteria) ()
  with
  | t' -> Ok t'
  | exception Invalid_spec reason -> Error reason

let apply_edit t edit =
  let open Chop_dfg in
  let ( let* ) = Result.bind in
  match edit with
  | Move_op { op; to_partition } -> (
      match Partition.part_of t.partitioning op with
      | exception Not_found ->
          Error (Printf.sprintf "operation %d is not in any partition" op)
      | src ->
          let* pg = Partition.move_op t.partitioning ~op ~to_:to_partition in
          let* t' = rebuild ~partitioning:pg t in
          Ok
            ( t',
              { no_dirty with
                repredict = [ src.Partition.label; to_partition ] } ))
  | Merge_parts { src; dst } ->
      let* pg = Partition.merge_parts t.partitioning ~src ~dst in
      let assignment = List.remove_assoc src t.assignment in
      let* t' = rebuild ~partitioning:pg ~assignment t in
      Ok (t', { no_dirty with repredict = [ dst ]; removed = [ src ] })
  | Split_part { from_partition; members; new_label } ->
      let* pg =
        Partition.split_part t.partitioning ~label:from_partition ~members
          ~new_label
      in
      let* chip =
        match List.assoc_opt from_partition t.assignment with
        | Some c -> Ok c
        | None -> Error (Printf.sprintf "unknown partition %s" from_partition)
      in
      let assignment = t.assignment @ [ (new_label, chip) ] in
      (* the carved-out partition stays on the same chip, so it must keep
         the source partition's implementation model *)
      let impls =
        match List.assoc_opt from_partition t.impls with
        | Some m -> t.impls @ [ (new_label, m) ]
        | None -> t.impls
      in
      let* t' = rebuild ~partitioning:pg ~assignment ~impls t in
      Ok (t', { no_dirty with repredict = [ from_partition; new_label ] })
  | Reassign_chip { partition; chip } ->
      if not (List.mem_assoc partition t.assignment) then
        Error (Printf.sprintf "unknown partition %s" partition)
      else if not (List.exists (fun c -> c.chip_name = chip) t.chips) then
        Error (Printf.sprintf "unknown chip %s" chip)
      else
        let assignment =
          List.map
            (fun (l, c) -> if l = partition then (l, chip) else (l, c))
            t.assignment
        in
        let* t' = rebuild ~assignment t in
        Ok (t', { no_dirty with rederive = [ partition ] })
  | Swap_package { chip; package } ->
      if not (List.exists (fun c -> c.chip_name = chip) t.chips) then
        Error (Printf.sprintf "unknown chip %s" chip)
      else
        let chips =
          List.map
            (fun c -> if c.chip_name = chip then { c with package } else c)
            t.chips
        in
        let on_chip =
          List.filter_map
            (fun (l, c) -> if c = chip then Some l else None)
            t.assignment
        in
        let* t' = rebuild ~chips t in
        Ok (t', { no_dirty with rederive = on_chip })
  | Rehost_memory { block; chip } -> (
      match List.find_opt (fun m -> m.Chop_tech.Memory.mname = block) t.memories with
      | None -> Error (Printf.sprintf "unknown memory %s" block)
      | Some m -> (
          match m.Chop_tech.Memory.placement with
          | Chop_tech.Memory.Off_chip_package _ ->
              Error
                (Printf.sprintf "memory %s is an off-chip package; it has no host"
                   block)
          | Chop_tech.Memory.On_chip _ ->
              let memory_hosts =
                (block, chip) :: List.remove_assoc block t.memory_hosts
              in
              let* t' = rebuild ~memory_hosts t in
              (* hosting affects integration (transfer paths), not the
                 per-partition BAD prediction *)
              Ok (t', no_dirty)))
  | Set_clocks clocks ->
      let* t' = rebuild ~clocks t in
      Ok (t', { no_dirty with repredict = labels t' })
  | Set_criteria criteria ->
      let* t' = rebuild ~criteria t in
      (* the raw BAD enumeration survives a criteria change; only the
         feasibility screening (the kept set) must be re-derived *)
      Ok (t', { no_dirty with rederive = labels t' })
  | Set_impl { partition; impl } ->
      if not (List.mem_assoc partition t.assignment) then
        Error (Printf.sprintf "unknown partition %s" partition)
      else if
        impl <> "hw"
        && not
             (List.exists
                (fun p -> p.Chop_model_sw.Processor.pname = impl)
                t.processors)
      then
        Error
          (Printf.sprintf "unknown model %s (declared: %s)" impl
             (String.concat ", "
                ("hw"
                :: List.map
                     (fun p -> p.Chop_model_sw.Processor.pname)
                     t.processors)))
      else
        let impls =
          (partition, impl) :: List.remove_assoc partition t.impls
        in
        let* t' = rebuild ~impls t in
        (* a model change invalidates the partition's predictions outright:
           different predictor, different resource vocabulary *)
        Ok (t', { no_dirty with repredict = [ partition ] })

let update t edits =
  let union a b = List.sort_uniq String.compare (a @ b) in
  let rec go i t acc = function
    | [] -> Ok (t, acc)
    | e :: rest -> (
        match apply_edit t e with
        | Ok (t', d) ->
            go (i + 1) t'
              {
                repredict = union acc.repredict d.repredict;
                rederive = union acc.rederive d.rederive;
                removed = union acc.removed d.removed;
              }
              rest
        | Error reason -> Error { index = i; reason })
  in
  match go 0 t no_dirty edits with
  | Error _ as e -> e
  | Ok (t', d) ->
      (* Normalise against the final partitioning: a label removed then
         recreated is live (and marked for re-prediction by the recreating
         edit); a label edited then removed is only removed.  [repredict]
         subsumes [rederive]. *)
      let live = labels t' in
      let keep ls = List.filter (fun l -> List.mem l live) ls in
      let repredict = keep d.repredict in
      let rederive =
        List.filter (fun l -> not (List.mem l repredict)) (keep d.rederive)
      in
      let removed = List.filter (fun l -> not (List.mem l live)) d.removed in
      Ok (t', { repredict; rederive; removed })

let chip t name =
  List.find (fun c -> c.chip_name = name) t.chips

let chip_of_partition t label = chip t (List.assoc label t.assignment)

let impl_of_partition t label =
  match List.assoc_opt label t.impls with Some m -> m | None -> "hw"

let processor t name =
  List.find (fun p -> p.Chop_model_sw.Processor.pname = name) t.processors

let processor_of_partition t label =
  match List.assoc_opt label t.impls with
  | None -> None
  | Some m -> Some (processor t m)

(* the validator guarantees every partition on a chip follows one model,
   so the first partition's binding speaks for the chip *)
let processor_of_chip t chip_name =
  match
    List.find_opt (fun (_, c) -> c = chip_name) t.assignment
  with
  | None -> None
  | Some (label, _) -> processor_of_partition t label

(* Dirty set of a jump between two specs of the same edit chain (undo/redo
   lands on a spec that is not one [update] step away, so the per-edit dirty
   sets don't apply).  Global predictor inputs — clocks, style, params,
   memory declarations — dirty every partition; otherwise a partition
   re-predicts when its member set changed and re-derives when its chip or
   the criteria changed.  Memory hosting is integration-only state (the
   context is rebuilt on every jump), matching [Rehost_memory]'s empty
   dirty set. *)
let diff ~current ~target =
  let live = labels target in
  let removed = List.filter (fun l -> not (List.mem l live)) (labels current) in
  if
    current.clocks <> target.clocks
    || current.style != target.style
    || current.params <> target.params
    || current.memories <> target.memories
    || current.processors <> target.processors
  then { repredict = live; rederive = []; removed }
  else
    let part_of t l =
      List.find_opt
        (fun p -> p.Chop_dfg.Partition.label = l)
        t.partitioning.Chop_dfg.Partition.parts
    in
    let repredict =
      List.filter
        (fun l ->
          match (part_of current l, part_of target l) with
          | None, _ | _, None -> true
          | Some p, Some q ->
              p.Chop_dfg.Partition.members <> q.Chop_dfg.Partition.members
              || impl_of_partition current l <> impl_of_partition target l)
        live
    in
    let chip_changed l =
      let c = chip_of_partition current l and t' = chip_of_partition target l in
      c.chip_name <> t'.chip_name || c.package <> t'.package
    in
    let rederive =
      List.filter
        (fun l ->
          (not (List.mem l repredict))
          && (current.criteria <> target.criteria || chip_changed l))
        live
    in
    { repredict; rederive; removed }

let partitions_on t chip_name =
  Chop_dfg.Partition.topological_parts t.partitioning
  |> List.filter (fun p ->
         List.assoc p.Chop_dfg.Partition.label t.assignment = chip_name)

let memory t name =
  List.find (fun m -> m.Chop_tech.Memory.mname = name) t.memories

let memory_host t name = List.assoc_opt name t.memory_hosts

let partitions_accessing t block =
  List.filter_map
    (fun p ->
      let sub = Chop_dfg.Partition.subgraph t.partitioning p in
      if List.mem block (Chop_dfg.Graph.memory_blocks sub) then
        Some p.Chop_dfg.Partition.label
      else None)
    t.partitioning.Chop_dfg.Partition.parts

let memories_of_partition t label =
  let p = Chop_dfg.Partition.find t.partitioning label in
  let sub = Chop_dfg.Partition.subgraph t.partitioning p in
  List.map (memory t) (Chop_dfg.Graph.memory_blocks sub)

let pp ppf t =
  Format.fprintf ppf "@[<v>spec: %s on %d chip(s)@,%a@]"
    (Chop_dfg.Graph.name t.graph) (List.length t.chips) Chop_dfg.Partition.pp
    t.partitioning
