type chip_instance = { chip_name : string; package : Chop_tech.Chip.t }

type params = {
  alloc_cap : int;
  max_pipelined_iis : int;
  testability_overhead : float;
  discard_inferior : bool;
}

let default_params =
  {
    alloc_cap = 8;
    max_pipelined_iis = 8;
    testability_overhead = 0.;
    discard_inferior = true;
  }

type t = {
  graph : Chop_dfg.Graph.t;
  library : Chop_tech.Component.library;
  chips : chip_instance list;
  memories : Chop_tech.Memory.t list;
  memory_hosts : (string * string) list;
  partitioning : Chop_dfg.Partition.partitioning;
  assignment : (string * string) list;
  clocks : Chop_tech.Clocking.t;
  style : Chop_tech.Style.t;
  criteria : Chop_bad.Feasibility.criteria;
  params : params;
}

exception Invalid_spec of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid_spec s)) fmt

let make ?(params = default_params) ?(memories = []) ?(memory_hosts = []) ~graph
    ~library ~chips ~partitioning ~assignment ~clocks ~style ~criteria () =
  if chips = [] then fail "no chips in the chip set";
  let chip_names = List.map (fun c -> c.chip_name) chips in
  if List.length (List.sort_uniq String.compare chip_names) <> List.length chips
  then fail "duplicate chip name";
  if partitioning.Chop_dfg.Partition.graph != graph then
    fail "partitioning built for a different graph";
  if not (Chop_tech.Component.covers library graph) then
    fail "component library does not cover the graph's functional classes";
  (* every partition assigned exactly once, to a known chip *)
  List.iter
    (fun p ->
      let label = p.Chop_dfg.Partition.label in
      match List.filter (fun (l, _) -> l = label) assignment with
      | [] -> fail "partition %s is not assigned to a chip" label
      | [ (_, chip) ] ->
          if not (List.mem chip chip_names) then
            fail "partition %s assigned to unknown chip %s" label chip
      | _ -> fail "partition %s assigned more than once" label)
    partitioning.Chop_dfg.Partition.parts;
  List.iter
    (fun (label, _) ->
      if
        not
          (List.exists
             (fun p -> p.Chop_dfg.Partition.label = label)
             partitioning.Chop_dfg.Partition.parts)
      then fail "assignment references unknown partition %s" label)
    assignment;
  (* memory declarations *)
  let declared = List.map (fun m -> m.Chop_tech.Memory.mname) memories in
  List.iter
    (fun block ->
      if not (List.mem block declared) then
        fail "graph references undeclared memory block %s" block)
    (Chop_dfg.Graph.memory_blocks graph);
  List.iter
    (fun m ->
      let name = m.Chop_tech.Memory.mname in
      let host = List.assoc_opt name memory_hosts in
      match (m.Chop_tech.Memory.placement, host) with
      | Chop_tech.Memory.On_chip _, None ->
          fail "on-chip memory %s has no host chip" name
      | Chop_tech.Memory.On_chip _, Some h ->
          if not (List.mem h chip_names) then
            fail "memory %s hosted on unknown chip %s" name h
      | Chop_tech.Memory.Off_chip_package _, Some _ ->
          fail "off-chip memory %s must not have a host chip" name
      | Chop_tech.Memory.Off_chip_package _, None -> ())
    memories;
  {
    graph;
    library;
    chips;
    memories;
    memory_hosts;
    partitioning;
    assignment;
    clocks;
    style;
    criteria;
    params;
  }

(* Incremental edits (paper, section 2.2: the designer's interactive moves).

   Every edit funnels through [make], so an [Ok] spec satisfies the full
   validator; the dirty sets tell the exploration session how much predictive
   work the edit invalidates. *)

type edit =
  | Move_op of { op : Chop_dfg.Graph.node_id; to_partition : string }
  | Merge_parts of { src : string; dst : string }
  | Split_part of {
      from_partition : string;
      members : Chop_dfg.Graph.node_id list;
      new_label : string;
    }
  | Reassign_chip of { partition : string; chip : string }
  | Swap_package of { chip : string; package : Chop_tech.Chip.t }
  | Rehost_memory of { block : string; chip : string }
  | Set_clocks of Chop_tech.Clocking.t
  | Set_criteria of Chop_bad.Feasibility.criteria

type dirty = {
  repredict : string list;
  rederive : string list;
  removed : string list;
}

let no_dirty = { repredict = []; rederive = []; removed = [] }

type update_error = { index : int; reason : string }

let pp_update_error ppf e =
  Format.fprintf ppf "edit %d: %s" e.index e.reason

let labels t =
  List.map (fun p -> p.Chop_dfg.Partition.label) t.partitioning.Chop_dfg.Partition.parts

let rebuild ?partitioning ?assignment ?chips ?memory_hosts ?clocks ?criteria t =
  let value d o = Option.value ~default:d o in
  match
    make ~params:t.params ~memories:t.memories
      ~memory_hosts:(value t.memory_hosts memory_hosts) ~graph:t.graph
      ~library:t.library ~chips:(value t.chips chips)
      ~partitioning:(value t.partitioning partitioning)
      ~assignment:(value t.assignment assignment) ~clocks:(value t.clocks clocks)
      ~style:t.style ~criteria:(value t.criteria criteria) ()
  with
  | t' -> Ok t'
  | exception Invalid_spec reason -> Error reason

let apply_edit t edit =
  let open Chop_dfg in
  let ( let* ) = Result.bind in
  match edit with
  | Move_op { op; to_partition } -> (
      match Partition.part_of t.partitioning op with
      | exception Not_found ->
          Error (Printf.sprintf "operation %d is not in any partition" op)
      | src ->
          let* pg = Partition.move_op t.partitioning ~op ~to_:to_partition in
          let* t' = rebuild ~partitioning:pg t in
          Ok
            ( t',
              { no_dirty with
                repredict = [ src.Partition.label; to_partition ] } ))
  | Merge_parts { src; dst } ->
      let* pg = Partition.merge_parts t.partitioning ~src ~dst in
      let assignment = List.remove_assoc src t.assignment in
      let* t' = rebuild ~partitioning:pg ~assignment t in
      Ok (t', { no_dirty with repredict = [ dst ]; removed = [ src ] })
  | Split_part { from_partition; members; new_label } ->
      let* pg =
        Partition.split_part t.partitioning ~label:from_partition ~members
          ~new_label
      in
      let* chip =
        match List.assoc_opt from_partition t.assignment with
        | Some c -> Ok c
        | None -> Error (Printf.sprintf "unknown partition %s" from_partition)
      in
      let assignment = t.assignment @ [ (new_label, chip) ] in
      let* t' = rebuild ~partitioning:pg ~assignment t in
      Ok (t', { no_dirty with repredict = [ from_partition; new_label ] })
  | Reassign_chip { partition; chip } ->
      if not (List.mem_assoc partition t.assignment) then
        Error (Printf.sprintf "unknown partition %s" partition)
      else if not (List.exists (fun c -> c.chip_name = chip) t.chips) then
        Error (Printf.sprintf "unknown chip %s" chip)
      else
        let assignment =
          List.map
            (fun (l, c) -> if l = partition then (l, chip) else (l, c))
            t.assignment
        in
        let* t' = rebuild ~assignment t in
        Ok (t', { no_dirty with rederive = [ partition ] })
  | Swap_package { chip; package } ->
      if not (List.exists (fun c -> c.chip_name = chip) t.chips) then
        Error (Printf.sprintf "unknown chip %s" chip)
      else
        let chips =
          List.map
            (fun c -> if c.chip_name = chip then { c with package } else c)
            t.chips
        in
        let on_chip =
          List.filter_map
            (fun (l, c) -> if c = chip then Some l else None)
            t.assignment
        in
        let* t' = rebuild ~chips t in
        Ok (t', { no_dirty with rederive = on_chip })
  | Rehost_memory { block; chip } -> (
      match List.find_opt (fun m -> m.Chop_tech.Memory.mname = block) t.memories with
      | None -> Error (Printf.sprintf "unknown memory %s" block)
      | Some m -> (
          match m.Chop_tech.Memory.placement with
          | Chop_tech.Memory.Off_chip_package _ ->
              Error
                (Printf.sprintf "memory %s is an off-chip package; it has no host"
                   block)
          | Chop_tech.Memory.On_chip _ ->
              let memory_hosts =
                (block, chip) :: List.remove_assoc block t.memory_hosts
              in
              let* t' = rebuild ~memory_hosts t in
              (* hosting affects integration (transfer paths), not the
                 per-partition BAD prediction *)
              Ok (t', no_dirty)))
  | Set_clocks clocks ->
      let* t' = rebuild ~clocks t in
      Ok (t', { no_dirty with repredict = labels t' })
  | Set_criteria criteria ->
      let* t' = rebuild ~criteria t in
      (* the raw BAD enumeration survives a criteria change; only the
         feasibility screening (the kept set) must be re-derived *)
      Ok (t', { no_dirty with rederive = labels t' })

let update t edits =
  let union a b = List.sort_uniq String.compare (a @ b) in
  let rec go i t acc = function
    | [] -> Ok (t, acc)
    | e :: rest -> (
        match apply_edit t e with
        | Ok (t', d) ->
            go (i + 1) t'
              {
                repredict = union acc.repredict d.repredict;
                rederive = union acc.rederive d.rederive;
                removed = union acc.removed d.removed;
              }
              rest
        | Error reason -> Error { index = i; reason })
  in
  match go 0 t no_dirty edits with
  | Error _ as e -> e
  | Ok (t', d) ->
      (* Normalise against the final partitioning: a label removed then
         recreated is live (and marked for re-prediction by the recreating
         edit); a label edited then removed is only removed.  [repredict]
         subsumes [rederive]. *)
      let live = labels t' in
      let keep ls = List.filter (fun l -> List.mem l live) ls in
      let repredict = keep d.repredict in
      let rederive =
        List.filter (fun l -> not (List.mem l repredict)) (keep d.rederive)
      in
      let removed = List.filter (fun l -> not (List.mem l live)) d.removed in
      Ok (t', { repredict; rederive; removed })

let chip t name =
  List.find (fun c -> c.chip_name = name) t.chips

let chip_of_partition t label = chip t (List.assoc label t.assignment)

(* Dirty set of a jump between two specs of the same edit chain (undo/redo
   lands on a spec that is not one [update] step away, so the per-edit dirty
   sets don't apply).  Global predictor inputs — clocks, style, params,
   memory declarations — dirty every partition; otherwise a partition
   re-predicts when its member set changed and re-derives when its chip or
   the criteria changed.  Memory hosting is integration-only state (the
   context is rebuilt on every jump), matching [Rehost_memory]'s empty
   dirty set. *)
let diff ~current ~target =
  let live = labels target in
  let removed = List.filter (fun l -> not (List.mem l live)) (labels current) in
  if
    current.clocks <> target.clocks
    || current.style != target.style
    || current.params <> target.params
    || current.memories <> target.memories
  then { repredict = live; rederive = []; removed }
  else
    let part_of t l =
      List.find_opt
        (fun p -> p.Chop_dfg.Partition.label = l)
        t.partitioning.Chop_dfg.Partition.parts
    in
    let repredict =
      List.filter
        (fun l ->
          match (part_of current l, part_of target l) with
          | None, _ | _, None -> true
          | Some p, Some q ->
              p.Chop_dfg.Partition.members <> q.Chop_dfg.Partition.members)
        live
    in
    let chip_changed l =
      let c = chip_of_partition current l and t' = chip_of_partition target l in
      c.chip_name <> t'.chip_name || c.package <> t'.package
    in
    let rederive =
      List.filter
        (fun l ->
          (not (List.mem l repredict))
          && (current.criteria <> target.criteria || chip_changed l))
        live
    in
    { repredict; rederive; removed }

let partitions_on t chip_name =
  Chop_dfg.Partition.topological_parts t.partitioning
  |> List.filter (fun p ->
         List.assoc p.Chop_dfg.Partition.label t.assignment = chip_name)

let memory t name =
  List.find (fun m -> m.Chop_tech.Memory.mname = name) t.memories

let memory_host t name = List.assoc_opt name t.memory_hosts

let partitions_accessing t block =
  List.filter_map
    (fun p ->
      let sub = Chop_dfg.Partition.subgraph t.partitioning p in
      if List.mem block (Chop_dfg.Graph.memory_blocks sub) then
        Some p.Chop_dfg.Partition.label
      else None)
    t.partitioning.Chop_dfg.Partition.parts

let memories_of_partition t label =
  let p = Chop_dfg.Partition.find t.partitioning label in
  let sub = Chop_dfg.Partition.subgraph t.partitioning p in
  List.map (memory t) (Chop_dfg.Graph.memory_blocks sub)

let pp ppf t =
  Format.fprintf ppf "@[<v>spec: %s on %d chip(s)@,%a@]"
    (Chop_dfg.Graph.name t.graph) (List.length t.chips) Chop_dfg.Partition.pp
    t.partitioning
