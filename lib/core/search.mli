(** Shared types for the two partition-implementation search heuristics. *)

type stats = {
  implementation_trials : int;
      (** combinations of partition implementations examined
          ("Partitioning Imp. Trials" in the paper's Tables 4 and 6) *)
  integrations : int;  (** full system-integration predictions performed *)
  integrations_avoided : int;
      (** combinations rejected by {!Integration.quick_check} before any
          integration work (a subset of [implementation_trials]) *)
  feasible_trials : int;
  cpu_seconds : float;
}

type outcome = {
  feasible : Integration.system list;
      (** feasible and non-inferior global implementations, fastest first *)
  explored : Integration.system list;
      (** every integrated design, only populated in keep-all mode *)
  stats : stats;
}

val empty_stats : stats

(** Timing breakdown of one parallel search, filled in by the enumeration
    and branch-and-bound heuristics when the caller asks for it (the
    engine's {i metrics} report). *)
type parallel_metrics = {
  search_wall_seconds : float;  (** wall clock of the slice fan-out *)
  search_busy_seconds : float;
      (** busy time summed across pool participants — exceeds the wall
          clock when parallelism pays off *)
  merge_wall_seconds : float;  (** wall clock of {!Slice.merge} *)
  worker_busy_seconds : float array;
      (** per-participant busy seconds (index 0 = calling domain) *)
  chunk_count : int;  (** pool chunks handed out during the search *)
  chip_cache_hits : int;
      (** per-chip report fragments served from the integration cache;
          depends on how slices land on domains, so it varies with [jobs] *)
}

val no_parallel_metrics : parallel_metrics
(** All-zero metrics — the value sequential searches report. *)

(** {1 Design-point rows}

    A {!Row.t} is the printable projection of an {!Integration.system}: the
    seven fields that reach every deterministic output (CSV rows, the human
    feasible lines, the Pareto objectives, the finalize dedup key and sort
    rank).  Everything the search layer renders or ranks factors through a
    row, which is what lets a gateway merge partial results from remote
    backends byte-identically: rows cross the wire (floats as [%h] hex, so
    the transport is exact), and a row-level replay of each slice's
    admissions reproduces the sequential front. *)
module Row : sig
  type t = {
    ii_main : int;
    clock : float;
    perf_ns : float;
    delay_cycles : int;
    delay_likely : float;
    area_likely : float;
    feasible : bool;
  }

  val of_system : Integration.system -> t

  val objectives : t -> float array
  (** Equals [Integration.objectives] of the source system. *)

  val dedup_key : t -> int * int * int * int
  (** The design-point collapse key used by {!finalize}. *)

  val compare_rank : t -> t -> int
  (** The (performance, delay) order {!finalize} sorts by. *)

  val csv_header : string

  val csv_line : t -> string

  val to_csv : t list -> string
  (** Byte-identical to {!Search.to_csv} on the source systems. *)

  val float_to_wire : float -> string
  (** Hex-float ([%h]) encoding; [float_of_wire] inverts it exactly. *)

  val float_of_wire : string -> float
  (** Raises [Invalid_argument] on malformed input. *)

  val admit : t -> t list -> t list * bool
  (** Row image of {!Search.admit}: same dominance test, same front order. *)

  val finalize : t list -> t list
  (** Row image of the feasible half of {!Search.finalize}: frontier,
      design-point dedup, (performance, delay) sort. *)
end

val to_csv : Integration.system list -> string
(** The explored design points as CSV
    ([ii_main,clock_ns,perf_ns,delay_cycles,delay_likely_ns,area_likely,feasible])
    for external plotting of Figures 7/8-style scatters. *)

val finalize :
  keep_all:bool ->
  feasible:Integration.system list ->
  explored:Integration.system list ->
  stats ->
  outcome
(** Sorts feasible systems by (performance, delay) and prunes inferior ones
    (unless [keep_all] asked for the raw space). *)

val admit :
  Integration.system ->
  Integration.system list ->
  Integration.system list * bool
(** [admit system front] inserts a system into a running non-dominated
    front (paper, section 2.1: inferior designs are discarded immediately
    upon detection).  Returns the updated front — unchanged when [system]
    is dominated by a member, otherwise [system] prepended with the members
    it dominates evicted — and whether the system was admitted. *)

(** {1 Parallel search slices}

    Both exhaustive heuristics (enumeration and branch-and-bound) split
    their search space into independent slices, one per first-level
    implementation choice, so a {!Chop_util.Pool} can run them on separate
    domains.  Each slice accumulates results privately; {!Slice.merge}
    recombines them in task order into exactly the lists the sequential
    search would have produced, making parallel runs bit-identical to
    sequential ones. *)

module Slice : sig
  type t = private {
    mutable trials : int;
    mutable integrations : int;
    mutable avoided : int;
        (** combinations {!avoid}ed via {!Integration.quick_check} *)
    mutable cache_hits : int;
        (** integration-cache chip hits attributed to this slice *)
    mutable feasible : int;
        (** feasible integrations seen by this slice — summed by {!merge}
            into [stats.feasible_trials], matching the sequential
            heuristics' count of feasible integrations (not the final
            front size) *)
    mutable front : Integration.system list;
    mutable admitted_rev : Integration.system list;
        (** locally admitted systems, most recent first *)
    mutable explored_rev : Integration.system list;
        (** locally integrated systems, most recent first *)
  }

  val create : unit -> t

  val step : t -> unit
  (** Count a considered combination (or pruned stem) without integrating. *)

  val avoid : t -> unit
  (** Count a combination rejected by {!Integration.quick_check}: a trial,
      but neither an integration nor an explored design. *)

  val set_cache_hits : t -> int -> unit
  (** Attribute integration-cache chip hits to this slice (the delta of
      {!Integration.chip_cache_hits} across the slice's run). *)

  val cache_hit_total : t list -> int

  val record : keep_all:bool -> t -> Integration.system -> unit
  (** Count an integration, append to the explored list when [keep_all],
      and admit the system into the slice-local front when feasible. *)

  val merge : keep_all:bool -> cpu_seconds:float -> t list -> outcome
  (** Recombine slices (given in first-level task order) and {!finalize}.
      The explored list is the task-order concatenation reversed, matching
      the sequential accumulator; the global front is rebuilt by replaying
      each slice's admissions through {!admit} in order — sound because
      Pareto dominance makes local eviction imply global eviction.
      [stats.feasible_trials] is the sum of the per-slice [feasible]
      counters, i.e. the number of feasible integrations, exactly as the
      sequential searches count it. *)
end
