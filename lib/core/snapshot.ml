(* Versioned, durable session snapshots.

   A snapshot is the line-oriented face of Explore.Session.state: header,
   scalar fields, opaque meta lines for the owning layer (the server stores
   the session's open parameters there), then the spec and each undo/redo
   entry as embedded chopspec blocks framed by `spec <<<` ... `>>>`
   sentinels (chopspec lines are keyword-led, so the sentinel cannot
   collide).  Restoring re-parses the specs, which renumbers node ids —
   harmless by design: the prediction store's content-addressed keys serve
   the re-predictions of a renumbered graph as structural hits. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type t = {
  spec : Spec.t;
  revision : int;
  pending : string list;
  undo : Spec.t list;
  redo : Spec.t list;
  meta : (string * string) list;
  unknown : string list;
}

let magic = "# chopsession v1"

let of_state ?(meta = []) (st : Explore.Session.state) =
  List.iter
    (fun (k, v) ->
      if k = "" || String.contains k ' ' || String.contains k '\n' then
        invalid_arg "Snapshot.of_state: meta key must be a single token";
      if String.contains v '\n' then
        invalid_arg "Snapshot.of_state: meta value must be a single line")
    meta;
  {
    spec = st.Explore.Session.st_spec;
    revision = st.Explore.Session.st_revision;
    pending = st.Explore.Session.st_pending;
    undo = st.Explore.Session.st_undo;
    redo = st.Explore.Session.st_redo;
    meta;
    unknown = [];
  }

let to_state s =
  {
    Explore.Session.st_spec = s.spec;
    st_revision = s.revision;
    st_pending = s.pending;
    st_undo = s.undo;
    st_redo = s.redo;
  }

let print s =
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "%s\n" magic;
  addf "revision %d\n" s.revision;
  addf "pending%s\n" (String.concat "" (List.map (( ^ ) " ") s.pending));
  List.iter (fun (k, v) -> addf "meta %s %s\n" k v) s.meta;
  (* statements this binary does not understand, preserved verbatim so a
     newer writer's fields survive a round-trip through an older reader *)
  List.iter (fun l -> addf "%s\n" l) s.unknown;
  let block keyword spec =
    addf "%s <<<\n" keyword;
    let body = Specfile.print spec in
    Buffer.add_string buf body;
    if body = "" || body.[String.length body - 1] <> '\n' then
      Buffer.add_char buf '\n';
    addf ">>>\n"
  in
  block "spec" s.spec;
  List.iter (block "undo") s.undo;
  List.iter (block "redo") s.redo;
  Buffer.contents buf

let parse text =
  let lines = String.split_on_char '\n' text in
  (match lines with
  | first :: _ when String.trim first = magic -> ()
  | _ -> fail "not a chopsession snapshot (missing %S header)" magic);
  let revision = ref None in
  let pending = ref [] in
  let meta = ref [] in
  let spec = ref None in
  let undo = ref [] in
  let redo = ref [] in
  let unknown = ref [] in
  let parse_spec_block body keyword =
    match Specfile.parse body with
    | s -> s
    | exception Specfile.Parse_error (n, reason) ->
        fail "%s block, chopspec line %d: %s" keyword n reason
    | exception Spec.Invalid_spec reason ->
        fail "%s block: invalid spec: %s" keyword reason
  in
  let rec go = function
    | [] -> ()
    | line :: rest -> (
        let trimmed = String.trim line in
        if trimmed = "" || trimmed = magic then go rest
        else
          match String.split_on_char ' ' trimmed with
          | "revision" :: [ n ] -> (
              match int_of_string_opt n with
              | Some n when n >= 0 ->
                  revision := Some n;
                  go rest
              | _ -> fail "bad revision %S" n)
          | "pending" :: labels ->
              pending := List.filter (( <> ) "") labels;
              go rest
          | "meta" :: key :: _ ->
              let prefix = "meta " ^ key ^ " " in
              let value =
                if
                  String.length trimmed >= String.length prefix
                  && String.sub trimmed 0 (String.length prefix) = prefix
                then
                  String.sub trimmed (String.length prefix)
                    (String.length trimmed - String.length prefix)
                else ""
              in
              meta := (key, value) :: !meta;
              go rest
          | [ keyword; "<<<" ]
            when keyword = "spec" || keyword = "undo" || keyword = "redo" ->
              let rec body acc = function
                | [] -> fail "unterminated %s block" keyword
                | l :: tl when String.trim l = ">>>" ->
                    (String.concat "\n" (List.rev acc) ^ "\n", tl)
                | l :: tl -> body (l :: acc) tl
              in
              let text, rest = body [] rest in
              let s = parse_spec_block text keyword in
              (match keyword with
              | "spec" ->
                  if !spec <> None then fail "duplicate spec block";
                  spec := Some s
              | "undo" -> undo := s :: !undo
              | _ -> redo := s :: !redo);
              go rest
          | [ keyword; "<<<" ] ->
              (* a block statement from a newer format revision: keep the
                 frame and body verbatim *)
              let rec body acc = function
                | [] -> fail "unterminated %s block" keyword
                | l :: tl when String.trim l = ">>>" -> (List.rev acc, tl)
                | l :: tl -> body (l :: acc) tl
              in
              let body_lines, rest = body [] rest in
              unknown :=
                !unknown @ ((keyword ^ " <<<") :: body_lines) @ [ ">>>" ];
              go rest
          | _ :: _ ->
              (* a scalar statement from a newer format revision *)
              unknown := !unknown @ [ trimmed ];
              go rest
          | [] -> go rest)
  in
  go lines;
  let spec =
    match !spec with Some s -> s | None -> fail "snapshot has no spec block"
  in
  let revision =
    match !revision with
    | Some r -> r
    | None -> fail "snapshot has no revision"
  in
  {
    spec;
    revision;
    pending = !pending;
    undo = List.rev !undo;
    redo = List.rev !redo;
    meta = List.rev !meta;
    unknown = !unknown;
  }

(* Durable writes are atomic: a crash mid-write leaves the previous
   snapshot (or nothing), never a torn file a restore could half-read. *)
let save path s =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (print s));
  Sys.rename tmp path

let load path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse text
