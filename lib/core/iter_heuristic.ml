let candidate_intervals ctx per_partition =
  let spec = Integration.spec_of ctx in
  let clocks = spec.Spec.clocks in
  let crit = spec.Spec.criteria in
  let all = List.concat_map snd per_partition in
  let min_clock =
    List.fold_left
      (fun acc p -> Float.min acc p.Chop_bad.Prediction.timing.clock_main)
      infinity all
  in
  let min_clock =
    if Float.is_finite min_clock then min_clock else clocks.Chop_tech.Clocking.main
  in
  List.map (fun p -> Chop_bad.Prediction.ii_main clocks p) all
  |> List.filter (fun l ->
         float_of_int l *. min_clock <= crit.Chop_bad.Feasibility.perf_constraint)
  |> List.sort_uniq Int.compare

(* Partitions worth serializing after a failed integration: those on chips
   whose area constraint is violated (Figure 5), and — so the search can
   recover — pipelined partitions involved in a data-rate mismatch. *)
let violated_partitions system =
  match system.Integration.failure with
  | Integration.Area_violation labels | Integration.Rate_mismatch labels ->
      labels
  | Integration.No_failure | Integration.Data_clash | Integration.Too_slow
  | Integration.Delay_exceeded | Integration.Structural _ ->
      []

let run ?(keep_all = false) ?metrics ctx per_partition =
  let t0 = Sys.time () in
  let wall0 = Unix.gettimeofday () in
  let spec = Integration.spec_of ctx in
  let clocks = spec.Spec.clocks in
  let trials = ref 0 and integrations = ref 0 in
  let feasible = ref [] and explored = ref [] in
  (* one cache across every interval and serialization step: the walk
     revisits near-identical combinations constantly (each tentative
     serialization changes a single pick), so the staged integration
     shares the schedule and sibling-chip work.  quick_check is NOT
     consulted: the interval is forced here ([ii_target]), for which the
     early exit is unsound. *)
  let cache = Integration.cache ctx in
  let integrate ~l comb =
    incr trials;
    incr integrations;
    let system = Integration.integrate_cached cache ~ii_target:l comb in
    if keep_all then explored := system :: !explored;
    system
  in
  let intervals = candidate_intervals ctx per_partition in
  List.iter
    (fun l ->
      (* rate-compatible candidates per partition, fastest first (the list
         is the Figure 5 sorted prediction list) *)
      let candidates =
        List.map
          (fun (label, preds) ->
            let compatible =
              List.filter
                (fun p -> Chop_bad.Prediction.ii_main clocks p <= l)
                (List.sort Chop_bad.Prediction.compare_speed preds)
            in
            (label, Array.of_list compatible))
          per_partition
      in
      if List.for_all (fun (_, c) -> Array.length c > 0) candidates then begin
        let cursor = Hashtbl.create 8 in
        List.iter (fun (label, _) -> Hashtbl.replace cursor label 0) candidates;
        let comb () =
          List.map
            (fun (label, c) -> (label, c.(Hashtbl.find cursor label)))
            candidates
        in
        let exception Done in
        (try
           (* bounded by the total number of serialization moves available *)
           let max_moves =
             Chop_util.Listx.sum_by (fun (_, c) -> Array.length c) candidates
           in
           for _ = 0 to max_moves do
             let system = integrate ~l (comb ()) in
             if Integration.feasible system then begin
               feasible := system :: !feasible;
               raise Done
             end;
             let q =
               violated_partitions system |> List.sort_uniq String.compare
             in
             if q = [] then raise Done (* not an area violation: give up on l *);
             (* tentative serialization of each violated partition: pick the
                one minimizing the expected system delay *)
             let best =
               List.fold_left
                 (fun best label ->
                   let c = List.assoc label candidates in
                   let i = Hashtbl.find cursor label in
                   if i + 1 >= Array.length c then best
                   else begin
                     Hashtbl.replace cursor label (i + 1);
                     let tentative = integrate ~l (comb ()) in
                     Hashtbl.replace cursor label i;
                     let expected =
                       if tentative.Integration.chip_reports = [] then infinity
                       else Chop_util.Triplet.(tentative.Integration.delay.likely)
                     in
                     match best with
                     | Some (_, d) when d <= expected -> best
                     | _ -> Some (label, expected)
                   end)
                 None q
             in
             match best with
             | None -> raise Done (* nothing left to serialize *)
             | Some (label, _) ->
                 Hashtbl.replace cursor label (Hashtbl.find cursor label + 1)
           done
         with Done -> ())
      end)
    intervals;
  let stats =
    {
      Search.implementation_trials = !trials;
      integrations = !integrations;
      integrations_avoided = 0;
      feasible_trials = List.length !feasible;
      cpu_seconds = Sys.time () -. t0;
    }
  in
  let wall = Unix.gettimeofday () -. wall0 in
  Option.iter
    (fun r ->
      r :=
        {
          Search.search_wall_seconds = wall;
          search_busy_seconds = wall;
          merge_wall_seconds = 0.;
          worker_busy_seconds = [||];
          chunk_count = 0;
          chip_cache_hits = Integration.chip_cache_hits cache;
        })
    metrics;
  Search.finalize ~keep_all ~feasible:!feasible ~explored:!explored stats
