(** Memoized BAD prediction results.

    The exploration engine predicts each partition of a spec independently;
    advisor what-if probes, {!Sensitivity} sweeps and repeated runs over the
    same spec re-predict structurally identical subgraphs over and over.
    This cache memoizes those predictions behind structural keys so the
    expensive {!Chop_bad.Predictor.predict} enumeration runs once per
    distinct (subgraph, predictor config) pair.

    Two layers are kept:

    - the {e raw} layer maps (subgraph signature, predictor-config
      signature) to the unpruned prediction list — it survives changes to
      feasibility criteria or chip packages, so a sensitivity sweep that
      only moves a constraint still reuses the enumeration;
    - the {e full} layer additionally keys on the chip package and the
      feasibility criteria and stores the derived per-partition results
      (feasible count and pruned list), skipping even the filtering work
      when an identical exploration repeats.

    All operations are thread-safe (a single mutex guards both tables);
    callers are expected to compute predictions {e outside} the lock and
    insert afterwards, accepting the occasional duplicated computation on a
    race.  Cached predictions carry the partition label of the run that
    populated the entry — retrieve with {!Chop_bad.Prediction.relabel}-style
    copying if labels matter (the engine does). *)

type t

type entry = {
  raw : Chop_bad.Prediction.t list;  (** unpruned predictor output *)
  feasible_count : int;  (** predictions feasible in isolation on the chip *)
  kept : Chop_bad.Prediction.t list;  (** after first-level pruning *)
}

val create : ?capacity:int -> unit -> t
(** A fresh, empty cache.  [capacity] bounds the total entry count across
    both layers (default: unbounded); see {!set_capacity}. *)

val shared : t
(** The process-wide cache used by default by [Explore.Engine].  Bounded
    at {!default_shared_capacity} entries so long-running sessions
    (advisor loops, sweeps over many specs) cannot grow it without
    limit. *)

val default_shared_capacity : int
(** The entry bound {!shared} is created with. *)

val clear : t -> unit

val length : t -> int
(** Number of entries across both layers. *)

val set_capacity : t -> int option -> unit
(** Bounds (or, with [None], unbounds) the total entry count.  When a
    bound is in force, inserting beyond it evicts the least-recently-used
    entries — both layers compete for the same budget, and every
    [find_*] hit refreshes its entry's age. *)

val capacity : t -> int option
(** The current entry bound. *)

(** {1 Counters} *)

type counters = {
  hits : int;  (** [find_*] lookups that found their entry *)
  misses : int;  (** [find_*] lookups that came back empty *)
  evictions : int;  (** entries dropped by the capacity bound *)
}

val counters : t -> counters
(** Cumulative over the cache's lifetime (never reset, not even by
    {!clear}).  Counts {e lookups}, not partitions: the engine probes the
    full layer and then, on a miss, the raw layer, so one cold partition
    contributes two misses here but one miss to
    [Explore.report.cache_misses].  The eviction counter is what the
    per-run [Explore.Metrics] eviction delta and the server's [stats]
    request are built from. *)

(** {1 Keys} *)

val raw_key : sub:Chop_dfg.Graph.t -> cfg:Chop_bad.Predictor.config -> string
(** Key of the raw layer: the MD5 digest of the subgraph-structure
    signature joined with the MD5 digest of the predictor-config
    signature.  Each component is digested separately, so a component
    boundary can never be forged by crafted signature contents. *)

val full_key :
  raw_key:string ->
  chip:Chop_tech.Chip.t ->
  criteria:Chop_bad.Feasibility.criteria ->
  string
(** Key of the full layer: the raw key extended with the chip package and
    the feasibility criteria (pruning depends on both). *)

(** {1 Lookup and insertion} *)

val find_raw : t -> string -> Chop_bad.Prediction.t list option
val add_raw : t -> string -> Chop_bad.Prediction.t list -> unit
val find_full : t -> string -> entry option
val add_full : t -> string -> entry -> unit
