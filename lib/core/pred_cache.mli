(** Memoized BAD prediction results, content-addressed.

    The exploration engine predicts each partition of a spec independently;
    advisor what-if probes, {!Sensitivity} sweeps and repeated runs over the
    same spec re-predict structurally identical subgraphs over and over.
    This cache memoizes those predictions behind {e structural} keys — the
    canonical digest of {!Chop_dfg.Canon} rather than the per-construction
    {!Chop_dfg.Graph.signature} — so the expensive
    {!Chop_bad.Predictor.predict} enumeration runs once per distinct
    (subgraph structure, predictor config) pair, process-wide: warm hits
    flow across [Spec.update] edits, [Explore.Session] instances, server
    engine keys and concurrent clients sharing {!shared}, however each of
    them happened to construct its graph.

    Two layers are kept:

    - the {e raw} layer maps {!Key.raw} (canonical-subgraph digest,
      predictor-config digest) to the unpruned prediction list — it
      survives changes to feasibility criteria or chip packages, so a
      sensitivity sweep that only moves a constraint still reuses the
      enumeration;
    - the {e full} layer keys on {!Key.full} (the raw key extended with
      the chip package and the feasibility criteria) and stores the derived
      per-partition results (feasible count and pruned list), skipping even
      the filtering work when an identical exploration repeats.

    All operations are thread-safe: a single mutex guards both tables,
    the LRU stamps {e and} the {!counters}, so concurrent speculative
    writers ({!Explore.Session.speculate} probes racing on one shared
    cache) can never lose a counter update or observe a torn entry —
    lookups and insertions sum exactly across any interleaving.  Callers
    are expected to compute predictions {e outside} the lock and insert
    afterwards, accepting the occasional duplicated computation on a race
    (two probes that both miss on the same fresh subgraph each run the
    predictor; both insertions store the identical value, so only the
    hit/miss split — never a cached value — depends on timing).  Cached
    predictions carry the partition label of the run that populated the
    entry — retrieve with {!Chop_bad.Prediction.relabel}-style copying if
    labels matter (the engine does). *)

type t

type entry = {
  raw : Chop_bad.Prediction.t list;  (** unpruned predictor output *)
  feasible_count : int;  (** predictions feasible in isolation on the chip *)
  kept : Chop_bad.Prediction.t list;  (** after first-level pruning *)
}

(** {1 Keys}

    Typed, spec-independent cache keys.  The former stringly
    [raw_key]/[full_key] entry points are gone: every caller builds a
    {!Key.raw} from the subgraph and predictor config (which also interns
    the subgraph into the {!Chop_dfg.Canon} sharing table) and extends it
    to a {!Key.full} per chip package and criteria. *)

module Key : sig
  type raw
  (** Identity of one BAD enumeration: canonical structural digest of the
      subgraph + predictor-config digest.  Also carries the subgraph's
      per-construction {!Chop_dfg.Graph.signature}, used only to classify
      hits as structural (see {!counters}). *)

  type full
  (** A {!raw} key extended with the chip package and feasibility criteria
      (pruning depends on both). *)

  val raw :
    sub:Chop_dfg.Graph.t ->
    cfg:Chop_bad.Predictor.config ->
    model:Model.t ->
    raw
  (** The model's {!Model.predictor_signature} joins the digest: hardware
      keys are byte-identical to the pre-model keys, software keys live in
      a disjoint space, so predictions never cross models. *)

  val full :
    raw:raw ->
    chip:Chop_tech.Chip.t ->
    criteria:Chop_bad.Feasibility.criteria ->
    full

  val raw_of_full : full -> raw
  (** The raw key a full key was built from — the entry whose age a
      full-layer hit refreshes. *)

  val raw_id : raw -> string
  (** The underlying digest string (diagnostics; stable across processes). *)

  val full_id : full -> string
end

val create : ?capacity:int -> unit -> t
(** A fresh, empty cache.  [capacity] bounds the total entry count across
    both layers (default: unbounded); see {!set_capacity}. *)

val shared : t
(** The process-wide cache used by default by [Explore.Engine].  Bounded
    at {!default_shared_capacity} entries so long-running sessions
    (advisor loops, sweeps over many specs) cannot grow it without
    limit. *)

val default_shared_capacity : int
(** The entry bound {!shared} is created with. *)

val clear : t -> unit

val length : t -> int
(** Number of entries across both layers. *)

val set_capacity : t -> int option -> unit
(** Bounds (or, with [None], unbounds) the total entry count.  When a
    bound is in force, inserting beyond it evicts the least-recently-used
    entries — both layers compete for the same budget.  Every [find_*]
    hit refreshes its entry's age, and a full-layer hit additionally
    refreshes the raw entry its key extends, so repeated derived lookups
    (sensitivity sweeps, criteria edits) keep their raw working set
    alive. *)

val capacity : t -> int option
(** The current entry bound. *)

(** {1 Counters} *)

type counters = {
  hits : int;  (** [find_*] lookups that found their entry *)
  misses : int;  (** [find_*] lookups that came back empty *)
  evictions : int;  (** entries dropped by the capacity bound *)
  structural_hits : int;
      (** the subset of [hits] whose entry was created under a {e
          different} graph construction (the probe's
          {!Chop_dfg.Graph.signature} differs from the creator's) — hits
          that per-construction identity keying would have missed.  The
          measure of cross-session / cross-spec reuse. *)
}

val counters : t -> counters
(** Cumulative over the cache's lifetime (never reset, not even by
    {!clear}).  Counts {e lookups}, not partitions: the engine probes the
    full layer and then, on a miss, the raw layer, so one cold partition
    contributes two misses here but one miss to
    [Explore.report.cache_misses].  The eviction and structural-hit
    counters are what the per-run [Explore.Metrics] deltas and the
    server's [stats] request are built from. *)

(** {1 Lookup and insertion} *)

val find_raw : t -> Key.raw -> Chop_bad.Prediction.t list option
val add_raw : t -> Key.raw -> Chop_bad.Prediction.t list -> unit
val find_full : t -> Key.full -> entry option
val add_full : t -> Key.full -> entry -> unit
