(** Versioned, durable session snapshots.

    The persistence face of {!Explore.Session.state}: a line-oriented text
    format ([# chopsession v1]) carrying the revision counter, the pending
    dirty labels, opaque [meta] key/value lines for the owning layer, and
    the current spec plus every undo/redo entry as embedded {!Specfile}
    blocks.  The serving layer writes one on shutdown or eviction and
    restores it on [session/open]; the gateway migrates sessions between
    backends through the same format.

    Round-tripping re-parses the chopspec blocks, which renumbers node ids
    — by design harmless: the prediction store's content-addressed keys
    ({!Pred_cache.Key}) serve a renumbered graph's re-predictions as
    structural hits, so a restored session's first run performs no raw
    prediction work that any equivalent session has already done. *)

exception Parse_error of string

type t = {
  spec : Spec.t;
  revision : int;
  pending : string list;
  undo : Spec.t list;  (** most recent first, like the live undo stack *)
  redo : Spec.t list;
  meta : (string * string) list;
      (** opaque single-line annotations, owner-defined (the server stores
          the session's open parameters here) *)
  unknown : string list;
      (** statements (and whole [<<< ... >>>] blocks) this binary does not
          understand, verbatim in file order.  A snapshot written by a
          newer format revision parses here instead of failing, and
          {!print} re-emits the lines unchanged — forward fields survive a
          round-trip through an older binary; only {!to_state} drops them
          (the live session has no slot for them). *)
}

val of_state : ?meta:(string * string) list -> Explore.Session.state -> t
(** @raise Invalid_argument when a meta key is not a single token or a
    meta value spans lines. *)

val to_state : t -> Explore.Session.state

val print : t -> string

val parse : string -> t
(** Inverse of {!print}.
    @raise Parse_error on malformed snapshots (including chopspec errors
    inside embedded blocks, with the block and line identified). *)

val save : string -> t -> unit
(** [save path s] writes atomically (temp file + rename): a crash
    mid-write never leaves a torn snapshot. *)

val load : string -> t
(** @raise Parse_error on malformed contents; [Sys_error] on I/O. *)
