(** The CHOP exploration driver: BAD predictions per partition, two-level
    pruning, heuristic search and result collection (paper, Figure 1).

    The API is organised around two values:

    - {!Config.t} gathers every knob of an exploration — heuristic,
      pruning, keep-all, parallelism and caching — in one record;
    - {!Session.t} binds a configuration to a spec that evolves by edits:
      it owns the domain pool, the prediction-cache handle and the
      integration context.  {!Session.edit} applies a {!Spec.edit} list and
      records the dirty partitions; the next {!Session.run} re-predicts
      only those, serving clean partitions from the prediction cache
      (whose per-partition keys survive edits elsewhere in the graph).

    {!Engine} is an alias of {!Session}: a one-shot exploration is simply
    "open session, zero edits, run".

    The session's worker domains are spawned once at {!Session.create} and
    parked between runs; call {!Session.close} when done (or use
    {!with_engine}, which closes for you) to join them.  Sessions dropped
    without closing are caught by the pool's [Gc.finalise] backstop, so
    pre-lifecycle callers don't leak running domains. *)

type heuristic =
  | Enumeration  (** the paper's "E" *)
  | Iterative  (** the paper's "I" (Figure 5) *)
  | Branch_bound
      (** extension: exact DFS with admissible performance/area bounds
          ({!module:Bb_heuristic}); finds the enumeration heuristic's best
          designs with no more integrations *)

exception Cancelled
(** Raised out of {!Engine.run_interruptible} when its interrupt callback
    fires — the serving layer's deadline-cancellation signal. *)

type bad_stats = {
  label : string;
  total_predictions : int;  (** all implementations BAD enumerated *)
  feasible_predictions : int;  (** feasible in isolation on the target chip *)
  kept : int;  (** after first-level pruning (feasible + non-inferior) *)
}

(** {1 Configuration} *)

module Config : sig
  type cache_scope =
    | Shared  (** the process-wide {!Pred_cache.shared} (the default) *)
    | Off  (** always re-predict *)
    | Custom of Pred_cache.t  (** a caller-owned cache *)

  type t = {
    heuristic : heuristic;
    keep_all : bool;
        (** record every integrated design — the mode behind the paper's
            Figures 7 and 8 *)
    prune : bool option;
        (** first-level pruning of the prediction lists; [None] derives it:
            [not keep_all] for searches, the spec's [discard_inferior] for
            bare prediction queries — matching the legacy entry points *)
    pre_prune : bool;
        (** dominance pre-pruning of the search lists (default [true]):
            before an exhaustive search (enumeration or branch-and-bound),
            drop implementations dominated by an interchangeable sibling
            ({!module:Prune}).  Provably preserves the best feasible design
            and the feasible Pareto front; keep-all dumps lose only
            combinations built from dominated picks.  The iterative
            heuristic is never pre-pruned.  [chop explore --no-prune]
            sets this to [false]. *)
    jobs : int;  (** domain-pool size; 1 = fully sequential *)
    cache : cache_scope;
  }

  val default : t
  (** Iterative heuristic, no keep-all, derived pruning, pre-pruning on,
      [jobs = 1], shared cache. *)

  val make :
    ?heuristic:heuristic ->
    ?keep_all:bool ->
    ?prune:bool ->
    ?pre_prune:bool ->
    ?jobs:int ->
    ?cache:cache_scope ->
    unit ->
    t
  (** {!default} with the given fields replaced.
      @raise Invalid_argument when [jobs < 1]. *)
end

(** {1 Metrics}

    The per-phase timing breakdown of one {!Engine.run}.  {e Wall} seconds
    are elapsed time on the calling domain; {e busy} seconds are summed
    across pool participants, so busy exceeding wall is the signature of
    parallelism actually paying off, while wall far exceeding busy points
    at scheduling overhead.  Printed by [chop explore --stats] and written
    into [BENCH_explore.json] by the bench harness. *)

module Metrics : sig
  type phase = { wall_seconds : float; busy_seconds : float }

  type t = {
    predict : phase;  (** per-partition BAD prediction fan-out *)
    search : phase;
        (** the combination search (enumeration / B&B slices, or the
            sequential iterative scan, whose busy equals its wall) *)
    merge_wall_seconds : float;
        (** deterministic slice recombination ({!Search.Slice.merge}) *)
    worker_busy_seconds : float array;
        (** per-participant busy seconds across both parallel phases;
            index 0 is the calling domain *)
    chunk_count : int;  (** pool work chunks handed out across phases *)
    cache_hits : int;
    cache_misses : int;
    cache_evictions : int;
        (** prediction-cache entries evicted by its capacity bound while
            this run's predict phase executed ({!Pred_cache.counters}
            delta).  Under concurrent runs sharing one cache — the
            serving layer — evictions triggered by a neighbour's inserts
            can land in this run's delta. *)
    cache_structural_hits : int;
        (** prediction-cache hits served across graph constructions while
            this run executed ({!Pred_cache.counters} structural delta):
            the entry was created by a differently-built isomorphic
            subgraph — another session, spec revision or client — and
            only the content-addressed keys could find it.  Same
            concurrent-delta caveat as {!field-cache_evictions}. *)
    pruned_impls : int;
        (** implementations dropped by dominance pre-pruning before the
            search ({!Config.t}[.pre_prune]) *)
    integrations_avoided : int;
        (** combinations rejected by {!Integration.quick_check} without
            any integration work *)
    chip_cache_hits : int;
        (** per-chip report fragments served by the staged integration
            cache; varies with [jobs] (each domain fills its own cache) *)
  }

  val zero : t

  val summary : t -> string
  (** A small human-readable table of the breakdown. *)
end

(** {1 Reports} *)

type report = {
  heuristic : heuristic;
  bad : bad_stats list;
  outcome : Search.outcome;
  bad_busy_seconds : float;
      (** prediction-phase busy time summed across pool workers (wall
          clock inside each worker, {e not} scheduler-reported CPU time) —
          under a parallel pool this can exceed {!field-bad_wall_seconds} *)
  bad_wall_seconds : float;  (** prediction-phase wall-clock time *)
  cache_hits : int;
      (** partitions whose predictions were served by the cache *)
  cache_misses : int;  (** partitions that ran the BAD enumeration *)
  jobs : int;  (** pool size the exploration ran with *)
  metrics : Metrics.t;  (** the full per-phase timing breakdown *)
}

(** {1 Sessions}

    The paper's interactive loop (section 2.2): open a session on a spec,
    apply edits, re-run, repeat.  Edits are validated by {!Spec.update};
    a rejected edit list leaves the session untouched. *)

module Session : sig
  type t

  val create : ?pool:Chop_util.Pool.t -> ?history:int -> Config.t -> Spec.t -> t
  (** Binds a configuration to a spec.  The integration context is built
      eagerly and rebuilt after every edit, and the domain pool's
      workers are spawned here, once — see {!close}.  [pool] borrows an
      existing pool instead (the serving layer runs every request session
      over one shared pool): the session then ignores [config.jobs] for
      pool sizing, and {!close} leaves the borrowed pool running — its
      owner shuts it down.  [history] (default 32) bounds the undo stack:
      each successful {!edit} pushes the pre-edit spec, the oldest entry
      falling off beyond the bound; [0] disables undo entirely.
      @raise Invalid_argument when [history < 0]. *)

  val close : t -> unit
  (** Joins the session's worker domains (when the session owns them — a
      pool borrowed at {!create} is left untouched).  Idempotent.
      Subsequent {!run}, {!edit} or {!predictions} calls raise
      [Invalid_argument]. *)

  val config : t -> Config.t
  val spec : t -> Spec.t
  (** The current spec — the result of every edit applied so far. *)

  val context : t -> Integration.context

  val revision : t -> int
  (** Number of successful {!edit} calls so far. *)

  val pending_dirty : t -> string list
  (** Labels of partitions whose predictions must be recomputed by the next
      {!run}: every partition before the first run, then the accumulated
      [repredict] sets of edits applied since the last run.  Sorted;
      cleared by a completed run. *)

  val jobs : t -> int
  (** Effective parallelism of the session's pool (participants, including
      the calling domain) — after the core-count clamp, so it may be lower
      than [config.jobs]. *)

  val fork : t -> t
  (** A cheap speculative copy of the session: it shares the parent's
      configuration, prediction cache and pool (borrowed — {!close} on a
      fork never shuts the pool down) and snapshots the parent's current
      spec, context and dirty set.  Edits and runs on the fork leave the
      parent untouched, while predictions the fork computes land in the
      shared cache — so committing the same edit on the parent afterwards
      re-serves them as cache hits.  Forks hold no resources of their own;
      closing them is optional. *)

  val speculate : t -> (t -> 'a) array -> 'a array * Chop_util.Pool.run_stats
  (** [speculate e fs] evaluates each [f] in [fs] over a private {!fork}
      of [e], concurrently on [e]'s pool, and returns the results in input
      order plus the batch's pool statistics.  The parent session is never
      mutated.  If a task raises, the batch drains fully and the
      lowest-indexed exception is re-raised here ({!Chop_util.Pool.run}
      semantics); the session and the pool both remain usable.  Nested
      pool submissions from a fork's {!run} fall back to inline execution,
      so probes cannot deadlock the shared pool. *)

  val edit : t -> Spec.edit list -> (Spec.dirty, Spec.update_error) result
  (** Apply edits to the session's spec ({!Spec.update} semantics: all or
      nothing, never raises).  On [Ok] the session's spec and integration
      context are replaced and the dirty partitions recorded; clean
      partitions keep their prediction-cache keys, so the next {!run}
      re-predicts only the dirty ones (with caching enabled).  On [Error]
      the session is unchanged.  A successful edit also pushes the
      pre-edit spec onto the bounded undo stack and clears the redo
      stack. *)

  val undo : t -> (Spec.dirty, string) result
  (** Step back to the most recent pre-edit spec.  Specs are immutable, so
      this is a pointer swap plus a context rebuild; the dirty set is
      {!Spec.diff} between the two specs, folded into the pending set
      exactly as an edit's would be, and the revision counter advances (a
      revision counts spec mutations, in whichever direction).  The undone
      spec moves to the redo stack.  [Error] when the undo stack is
      empty. *)

  val redo : t -> (Spec.dirty, string) result
  (** Inverse of {!undo}: replay the most recently undone spec.  [Error]
      when the redo stack is empty (any successful {!edit} clears it). *)

  val undo_depth : t -> int
  val redo_depth : t -> int

  val run : t -> report
  (** Predict every partition (in parallel, through the cache) and search
      the combinations.  For a given spec and configuration the outcome is
      deterministic: any [jobs] value produces the same report apart from
      the timing and cache-counter fields. *)

  val run_interruptible : interrupt:(unit -> bool) -> t -> report
  (** {!run} with cooperative cancellation: [interrupt] is polled at the
      run's phase boundaries and at the start of every per-partition
      prediction task; once it returns [true] the run raises {!Cancelled}
      (after the in-flight prediction batch drains, so the pool is left
      clean).  The search phase itself runs to completion — cancellation
      granularity is one phase, which the serving layer pairs with
      queue-time deadline checks. *)

  val predictions :
    t -> (string * Chop_bad.Prediction.t list) list * bad_stats list
  (** The per-partition prediction lists a search would consume, with
      per-partition BAD statistics — without searching.  Pruning follows
      the config ([prune = None] defers to the spec's [discard_inferior]);
      statistics always report both raw and pruned counts. *)

  (** {2 Durability}

      The serving layer persists sessions across process restarts: a
      {!state} is the durable projection — spec, revision, pending set and
      the undo/redo chains — and {!restore} resurrects it elsewhere.  The
      snapshot text format itself lives in {!module:Snapshot}. *)

  type state = {
    st_spec : Spec.t;
    st_revision : int;
    st_pending : string list;
    st_undo : Spec.t list;  (** most recent first *)
    st_redo : Spec.t list;
  }

  val state : t -> state
  (** Specs are immutable: the state shares them with the live session. *)

  val restore : ?pool:Chop_util.Pool.t -> ?history:int -> Config.t -> state -> t
  (** {!create} on the state's spec, then revision, pending and the
      undo/redo chains reinstated (the undo chain truncated to [history]).
      The pool, cache handle and integration context are rebuilt fresh; in
      a new process the first {!run} re-predicts through the cache, where
      the content-addressed keys turn the re-predictions of a re-parsed
      (node-renumbered) spec into structural hits. *)

  (** {2 Distributed slices}

      A front process (the gateway) can split an exhaustive search across
      backends: each backend runs {!run_slice} over the first-axis slices
      congruent to its index, ships the raw per-slice counters and
      admitted/explored rows, and the front replays every admission in
      global task order — {!Search.Slice.merge} at {!Search.Row} granularity
      — reproducing the single-process outcome byte for byte. *)

  type slice_run = {
    slice_bad : bad_stats list;
    first_total : int;
        (** first-axis choices in the full search (1 for the degenerate
            empty product, owned by index 0) *)
    slice_indices : int list;  (** global indices, aligned with [slices] *)
    slices : Search.Slice.t list;
  }

  val run_slice : index:int -> count:int -> t -> slice_run
  (** Predict (in full, through the cache) and search only the first-axis
      slices assigned to [index] of [count].  Slice-private bound
      bookkeeping makes each returned slice identical to the same slice of
      a full run.  The pending set is left untouched — a partial run is
      not a run.  Only the exhaustive heuristics slice; the iterative
      heuristic raises [Invalid_argument]. *)
end

module Engine = Session
(** One-shot exploration is a session with zero edits; existing callers
    keep reading [Engine.run], new interactive callers use
    [Session.edit]. *)

val with_engine :
  ?pool:Chop_util.Pool.t -> Config.t -> Spec.t -> (Session.t -> 'a) -> 'a
(** [with_engine config spec f] runs [f] over a fresh session and
    {!Session.close}s it afterwards, whether [f] returns or raises.
    [pool] is passed through to {!Session.create}. *)

val with_session :
  ?pool:Chop_util.Pool.t -> Config.t -> Spec.t -> (Session.t -> 'a) -> 'a
(** Alias of {!with_engine}, matching interactive callers' vocabulary. *)

(** {1 Helpers} *)

val predictor_config : Spec.t -> label:string -> Chop_bad.Predictor.config
(** The BAD configuration CHOP derives from the spec for one partition
    (its memory blocks, the global clocks/style and the design params). *)

val partition_chip_area : Spec.t -> label:string -> Chop_util.Units.mil2
(** Usable area of the partition's assigned chip, pads deducted — the
    first-level pruning target. *)

val unique_designs : Integration.system list -> int
(** Distinct (initiation interval, delay cycles, likely area) design points
    among the explored systems — the "unique designs" count of Figures 7
    and 8. *)

val pp_heuristic : Format.formatter -> heuristic -> unit
