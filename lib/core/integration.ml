type combination = (string * Chop_bad.Prediction.t) list

(* ------------------------------------------------------------------ *)
(* Static, per-spec stage.

   A combination search integrates thousands of combinations against one
   spec.  Everything that depends only on the spec — transfer tasks, pin
   budgets, transfer bandwidths and durations, urgency-scheduler resources
   and data-transfer tasks, pin-mux and memory areas, bonded signal pins —
   is computed once here and carried in the context; the per-combination
   path below only touches what the picked predictions actually change. *)

type dtm_static = {
  ds_task : Transfer.task;
  ds_bandwidth : int;
  ds_transfer_main : int;  (* X, main-clock cycles *)
  ds_member : bool array;  (* chip index -> chip appears in chips_of task *)
  ds_on_chip : bool array;  (* chip index -> cross-chip AND member *)
  ds_holder : int;  (* chip index holding the buffer, -1 when none *)
  ds_urg : Chop_sched.Urgency.task;  (* the static data-transfer task *)
}

type chip_static = {
  cs_instance : Spec.chip_instance;
  cs_labels : string list;  (* partitions on this chip, partitioning order *)
  cs_label_idxs : int array;  (* same, as partition indexes *)
  cs_sharers : int;  (* cross-chip transfers sharing this chip's pins *)
  cs_pin_mux_area : float;
  cs_memory_area : float;
  cs_signal_pins : int;
  cs_available : float;  (* usable die mil^2, or memory-budget bytes (sw) *)
  cs_pad_mux : float;  (* 2*pad_delay + mux tree delay, when sharers > 0 *)
  cs_static_area_low : float;  (* pin_mux + memory: lower bound on fixed *)
  cs_sw : bool;  (* chip hosts software partitions; ledger is in bytes *)
}

type statics = {
  st_parts : string array;  (* partition labels, partitioning order *)
  st_pu_names : string array;  (* "pu_<label>" *)
  st_pu_deps : string list array;  (* per partition: incoming dt names *)
  st_dtm : dtm_static array;
  st_dtm_error : string option;  (* first pin-exhausted transfer, if any *)
  st_dt_ii_max : int;
  st_pin_ii_floor : int;
  st_resources : Chop_sched.Urgency.resource list;
  st_chips : chip_static array;
}

type context = {
  spec : Spec.t;
  tasks : Transfer.task list;
  budgets : (string * Chop_tech.Chip.pin_budget) list;
  budget_errors : (string * string) list;
  statics : statics option;  (* [None] exactly when budget_errors <> [] *)
}

let spec_of ctx = ctx.spec
let tasks_of ctx = ctx.tasks

let data_pins ctx chip_name =
  match List.assoc_opt chip_name ctx.budgets with
  | Some b -> b.Chop_tech.Chip.data
  | None -> 0

type dtm = {
  task : Transfer.task;
  bandwidth : int;
  transfer_main : int;
  wait_main : int;
  buffer_bits : int;
  ctrl_shape : Chop_tech.Pla.shape;
}

type chip_report = {
  instance : Spec.chip_instance;
  partition_labels : string list;
  signal_pins : int;
  pin_mux_area : Chop_util.Units.mil2;
  dtm_area : Chop_util.Units.mil2;
  buffer_area : Chop_util.Units.mil2;
  memory_area : Chop_util.Units.mil2;
  area_parts : Chop_util.Triplet.t list;
  available : Chop_util.Units.mil2;
  area_verdict : Chop_bad.Feasibility.verdict;
  power : float;
}

type failure =
  | No_failure
  | Rate_mismatch of string list
  | Area_violation of string list
  | Data_clash
  | Too_slow
  | Delay_exceeded
  | Structural of string

type system = {
  combination : combination;
  ii_main : int;
  clock : Chop_util.Units.ns;
  perf_ns : Chop_util.Units.ns;
  delay_cycles : int;
  delay : Chop_util.Triplet.t;
  dtms : dtm list;
  chip_reports : chip_report list;
  task_schedule : Chop_sched.Urgency.result option;
  verdict : Chop_bad.Feasibility.verdict;
  failure : failure;
}

let feasible s = Chop_bad.Feasibility.is_feasible s.verdict

let total_area s =
  Chop_util.Triplet.sum (List.concat_map (fun cr -> cr.area_parts) s.chip_reports)

let objectives s =
  [| s.perf_ns; Chop_util.Triplet.(s.delay.likely);
     Chop_util.Triplet.((total_area s).likely) |]

(* On-chip transfers ride wide internal buses. *)
let on_chip_bus_bits = 128

let mux_cell_area = Chop_tech.Mosis.mux_cell.Chop_tech.Component.area
let register_cell_area = Chop_tech.Mosis.register_cell.Chop_tech.Component.area

let check_combination spec comb =
  let labels =
    List.map
      (fun p -> p.Chop_dfg.Partition.label)
      spec.Spec.partitioning.Chop_dfg.Partition.parts
  in
  let given = List.map fst comb in
  let sorted = List.sort String.compare in
  if sorted labels <> sorted given then
    invalid_arg "Integration.integrate: combination does not match partitioning"

(* Paper, section 2.4: two or more pipelined partitions with different data
   rates make the global implementation infeasible (rate mismatch); faster
   non-pipelined implementations can accompany slower pipelined ones. *)
let rate_mismatch clocks comb =
  let pipelined_iis =
    List.filter_map
      (fun (_, p) ->
        match p.Chop_bad.Prediction.style with
        | Chop_tech.Style.Pipelined -> Some (Chop_bad.Prediction.ii_main clocks p)
        | Chop_tech.Style.Non_pipelined -> None)
      comb
    |> List.sort_uniq Int.compare
  in
  match pipelined_iis with
  | _ :: _ :: _ ->
      Some
        (Printf.sprintf "data rate mismatch: pipelined partitions at rates {%s}"
           (String.concat ", " (List.map string_of_int pipelined_iis)))
  | [] | [ _ ] -> None

(* ------------------------------------------------------------------ *)
(* Context construction *)

let build_statics spec tasks budgets =
  let clocks = spec.Spec.clocks in
  let k_tr = clocks.Chop_tech.Clocking.transfer_ratio in
  let chips = Array.of_list spec.Spec.chips in
  let nchips = Array.length chips in
  let chip_idx = Hashtbl.create nchips in
  Array.iteri
    (fun i ci -> Hashtbl.replace chip_idx ci.Spec.chip_name i)
    chips;
  let data_pins_of name =
    match List.assoc_opt name budgets with
    | Some b -> b.Chop_tech.Chip.data
    | None -> 0
  in
  let parts =
    Array.of_list
      (List.map
         (fun p -> p.Chop_dfg.Partition.label)
         spec.Spec.partitioning.Chop_dfg.Partition.parts)
  in
  let pu_names = Array.map (fun l -> "pu_" ^ l) parts in
  (* transfer bandwidths and durations; the first pin-exhausted transfer
     poisons the whole context, exactly like the eager Stop used to *)
  let dtm_error = ref None in
  let dtm_rev = ref [] in
  (try
     List.iter
       (fun (t : Transfer.task) ->
         let bandwidth =
           if not t.Transfer.cross_chip then on_chip_bus_bits
           else
             match Transfer.chips_of t with
             | [] -> on_chip_bus_bits
             | task_chips ->
                 (* maximum possible bandwidth (section 2.5) determines the
                    transfer time; the module then bonds only the pins
                    needed to achieve that time *)
                 let budget =
                   List.fold_left
                     (fun acc c -> min acc (data_pins_of c))
                     max_int task_chips
                 in
                 if budget <= 0 then 0
                 else
                   let x_min = Chop_util.Units.ceil_div t.Transfer.bits budget in
                   Chop_util.Units.ceil_div t.Transfer.bits x_min
         in
         if bandwidth <= 0 then begin
           dtm_error :=
             Some
               (Printf.sprintf "no data pins available for transfer %s"
                  t.Transfer.dt_name);
           raise Exit
         end;
         let transfer_main =
           Chop_util.Units.ceil_div t.Transfer.bits bandwidth * k_tr
         in
         let task_chips = Transfer.chips_of t in
         let ds_member = Array.make nchips false in
         List.iter
           (fun c ->
             match Hashtbl.find_opt chip_idx c with
             | Some i -> ds_member.(i) <- true
             | None -> ())
           task_chips;
         let ds_on_chip =
           Array.map (fun m -> t.Transfer.cross_chip && m) ds_member
         in
         let holder_name =
           match t.Transfer.dst_chip with
           | Some c -> c
           | None -> Option.value ~default:"" t.Transfer.src_chip
         in
         let ds_holder =
           match Hashtbl.find_opt chip_idx holder_name with
           | Some i -> i
           | None -> -1
         in
         let demands =
           if t.Transfer.cross_chip then
             List.map (fun c -> ("pins:" ^ c, bandwidth)) task_chips
           else []
         in
         let deps =
           match t.Transfer.src with
           | Transfer.Partition_end l -> [ "pu_" ^ l ]
           | Transfer.World -> []
         in
         let ds_urg =
           { Chop_sched.Urgency.tname = t.Transfer.dt_name;
             duration = transfer_main; demands; deps }
         in
         dtm_rev :=
           { ds_task = t; ds_bandwidth = bandwidth;
             ds_transfer_main = transfer_main; ds_member; ds_on_chip;
             ds_holder; ds_urg }
           :: !dtm_rev)
       tasks
   with Exit -> ());
  let st_dtm = Array.of_list (List.rev !dtm_rev) in
  match !dtm_error with
  | Some _ as err ->
      (* the error fires before anything downstream is consulted *)
      { st_parts = parts; st_pu_names = pu_names;
        st_pu_deps = Array.make (Array.length parts) [];
        st_dtm; st_dtm_error = err; st_dt_ii_max = 1; st_pin_ii_floor = 1;
        st_resources = []; st_chips = [||] }
  | None ->
      let st_dt_ii_max =
        Array.fold_left
          (fun acc d ->
            if d.ds_task.Transfer.cross_chip then max acc d.ds_transfer_main
            else acc)
          1 st_dtm
      in
      (* steady-state pin budget: with one problem instance initiated every
         interval, each chip's shared data pins must carry ALL its
         transfers' bits within one interval — or overlapped instances
         clash *)
      let st_pin_ii_floor =
        List.fold_left
          (fun acc ci ->
            let i = Hashtbl.find chip_idx ci.Spec.chip_name in
            let bits_per_instance =
              Array.fold_left
                (fun acc d ->
                  if d.ds_on_chip.(i) then acc + d.ds_task.Transfer.bits
                  else acc)
                0 st_dtm
            in
            let pins = data_pins_of ci.Spec.chip_name in
            if bits_per_instance = 0 then acc
            else
              max acc (Chop_util.Units.ceil_div bits_per_instance pins * k_tr))
          1 spec.Spec.chips
      in
      let st_resources =
        List.map
          (fun ci ->
            { Chop_sched.Urgency.rname = "pins:" ^ ci.Spec.chip_name;
              capacity = data_pins_of ci.Spec.chip_name })
          spec.Spec.chips
        @ List.map
            (fun m ->
              { Chop_sched.Urgency.rname = "mem:" ^ m.Chop_tech.Memory.mname;
                capacity = m.Chop_tech.Memory.ports })
            spec.Spec.memories
      in
      let st_pu_deps =
        Array.map
          (fun label ->
            Array.to_list st_dtm
            |> List.filter_map (fun d ->
                   match d.ds_task.Transfer.dst with
                   | Transfer.Partition_end l when l = label ->
                       Some d.ds_task.Transfer.dt_name
                   | Transfer.Partition_end _ | Transfer.World -> None))
          parts
      in
      let part_idx = Hashtbl.create (Array.length parts) in
      Array.iteri (fun i l -> Hashtbl.replace part_idx l i) parts;
      let st_chips =
        Array.map
          (fun ci ->
            let name = ci.Spec.chip_name in
            let i = Hashtbl.find chip_idx name in
            let labels =
              List.map
                (fun p -> p.Chop_dfg.Partition.label)
                (Spec.partitions_on spec name)
            in
            let budget = List.assoc name budgets in
            let processor = Spec.processor_of_chip spec name in
            let sharers =
              Array.fold_left
                (fun acc d -> if d.ds_on_chip.(i) then acc + 1 else acc)
                0 st_dtm
            in
            let shared_pins =
              Array.fold_left
                (fun acc d ->
                  if d.ds_on_chip.(i) then max acc d.ds_bandwidth else acc)
                0 st_dtm
            in
            match processor with
            | Some p ->
                (* software chip: the shared bus arbitrates transfers, so
                   there is no pin-mux tree, no pad-delay overhead and no
                   on-chip memory macro; the area ledger is the processor's
                   memory budget in bytes *)
                {
                  cs_instance = ci;
                  cs_labels = labels;
                  cs_label_idxs =
                    Array.of_list (List.map (Hashtbl.find part_idx) labels);
                  cs_sharers = sharers;
                  cs_pin_mux_area = 0.;
                  cs_memory_area = 0.;
                  cs_signal_pins =
                    min ci.Spec.package.Chop_tech.Chip.pins shared_pins;
                  cs_available = p.Chop_model_sw.Processor.memory_budget_bytes;
                  cs_pad_mux = 0.;
                  cs_static_area_low = 0.;
                  cs_sw = true;
                }
            | None ->
                let pin_mux_area =
                  if sharers <= 1 then 0.
                  else
                    float_of_int (shared_pins * (sharers - 1)) *. mux_cell_area
                in
                let memory_area =
                  Chop_util.Listx.sum_byf
                    (fun m ->
                      match
                        ( m.Chop_tech.Memory.placement,
                          Spec.memory_host spec m.Chop_tech.Memory.mname )
                      with
                      | Chop_tech.Memory.On_chip a, Some host when host = name
                        ->
                          a
                      | _ -> 0.)
                    spec.Spec.memories
                in
                let data_pins_used = shared_pins in
                let signal_pins =
                  min ci.Spec.package.Chop_tech.Chip.pins
                    (data_pins_used + budget.Chop_tech.Chip.control
                    + budget.Chop_tech.Chip.memory_lines)
                in
                let available =
                  Chop_tech.Chip.usable_area ci.Spec.package ~signal_pins
                in
                let cs_pad_mux =
                  if sharers = 0 then 0.
                  else
                    (2. *. ci.Spec.package.Chop_tech.Chip.pad_delay)
                    +. Chop_tech.Wiring.mux_tree_delay ~fanin:sharers
                in
                {
                  cs_instance = ci;
                  cs_labels = labels;
                  cs_label_idxs =
                    Array.of_list (List.map (Hashtbl.find part_idx) labels);
                  cs_sharers = sharers;
                  cs_pin_mux_area = pin_mux_area;
                  cs_memory_area = memory_area;
                  cs_signal_pins = signal_pins;
                  cs_available = available;
                  cs_pad_mux;
                  cs_static_area_low = pin_mux_area +. memory_area;
                  cs_sw = false;
                })
          chips
      in
      { st_parts = parts; st_pu_names = pu_names; st_pu_deps; st_dtm;
        st_dtm_error = None; st_dt_ii_max; st_pin_ii_floor; st_resources;
        st_chips }

let context spec =
  let tasks = Transfer.create spec in
  let budgets, budget_errors =
    List.fold_left
      (fun (ok, bad) ci ->
        match Spec.processor_of_chip spec ci.Spec.chip_name with
        | Some p ->
            (* software chip: off-chip data rides the processor bus, so the
               data budget is the bus width and no pins are reserved for
               control lines or memory address/data — pad-bonding
               exhaustion cannot occur here *)
            let budget =
              { Chop_tech.Chip.total = ci.Spec.package.Chop_tech.Chip.pins;
                power_ground = 0; clock = 0; control = 0; memory_lines = 0;
                data = p.Chop_model_sw.Processor.bus_bits }
            in
            ((ci.Spec.chip_name, budget) :: ok, bad)
        | None -> (
            let control =
              Transfer.control_pins_on spec tasks ci.Spec.chip_name
            in
            let memory_lines =
              Transfer.memory_lines_on spec ci.Spec.chip_name
            in
            match
              Chop_tech.Chip.pin_budget ci.Spec.package ~control ~memory_lines
                ()
            with
            | budget -> ((ci.Spec.chip_name, budget) :: ok, bad)
            | exception Invalid_argument reason ->
                (ok, (ci.Spec.chip_name, reason) :: bad)))
      ([], []) spec.Spec.chips
  in
  let statics =
    match budget_errors with
    | [] -> Some (build_statics spec tasks budgets)
    | _ :: _ -> None
  in
  { spec; tasks; budgets; budget_errors; statics }

(* ------------------------------------------------------------------ *)
(* Per-search memoization.

   The per-combination cost decomposes into stages keyed by progressively
   more of the picks:

   - the urgency schedule (and everything derived from it alone: DTM
     waits, controller shapes and areas, the transfer overhead, the
     makespan) depends only on each partition's (latency, memory-demand)
     pair — thousands of combinations share a handful of these vectors;
   - DTM buffer sizes add the initiation interval;
   - a chip's report adds only the picks landing on that chip, so sibling
     combinations differing on other chips share the fragment.

   A cache is single-domain mutable state: use one per worker (the
   heuristics create one per slice via {!domain_cache}, which reuses the
   calling domain's cache across its slices). *)

type sched_stage = {
  ss_id : int;  (* cache-local identity, used in downstream keys *)
  ss_result : Chop_sched.Urgency.result;
  ss_waits : int array;  (* per dtm *)
  ss_shapes : Chop_tech.Pla.shape array;  (* per dtm *)
  ss_dtm_area : float array;  (* per chip *)
  ss_ctrl_delay : float array;  (* per chip: slowest member controller *)
  ss_overhead : float;  (* transfer overhead, ns *)
}

type ii_stage = {
  is_dtms : dtm list;
  is_buffer_area : float array;  (* per chip *)
}

(* Pick identities for chip-fragment keys: predictions are interned by
   physical equality per partition (the search reuses the same list
   objects across combinations).  Structurally equal but physically
   distinct picks get distinct ids — never wrong, only slower. *)
type reg = { mutable r_items : Chop_bad.Prediction.t array; mutable r_len : int }

type cache_stats = {
  sched_hits : int;
  sched_misses : int;
  chip_hits : int;
  chip_misses : int;
}

type cache = {
  c_ctx : context;
  c_sched :
    ((int * (string * int) list) array, (sched_stage, string) result)
    Hashtbl.t;
  mutable c_next_sched : int;
  c_ii : (int * int, ii_stage) Hashtbl.t;
  c_chip : (int * int * int list, chip_report) Hashtbl.t array;
  c_regs : reg array;
  mutable c_sched_hits : int;
  mutable c_sched_misses : int;
  mutable c_chip_hits : int;
  mutable c_chip_misses : int;
}

let cache ctx =
  let nparts, nchips =
    match ctx.statics with
    | Some st -> (Array.length st.st_parts, Array.length st.st_chips)
    | None -> (0, 0)
  in
  {
    c_ctx = ctx;
    c_sched = Hashtbl.create 64;
    c_next_sched = 0;
    c_ii = Hashtbl.create 64;
    c_chip = Array.init nchips (fun _ -> Hashtbl.create 256);
    c_regs = Array.init nparts (fun _ -> { r_items = [||]; r_len = 0 });
    c_sched_hits = 0;
    c_sched_misses = 0;
    c_chip_hits = 0;
    c_chip_misses = 0;
  }

let context_of_cache c = c.c_ctx

let cache_stats c =
  { sched_hits = c.c_sched_hits; sched_misses = c.c_sched_misses;
    chip_hits = c.c_chip_hits; chip_misses = c.c_chip_misses }

let chip_cache_hits c = c.c_chip_hits

let pred_id reg p =
  let rec find i =
    if i >= reg.r_len then -1
    else if reg.r_items.(i) == p then i
    else find (i + 1)
  in
  let i = find 0 in
  if i >= 0 then i
  else begin
    let cap = Array.length reg.r_items in
    if reg.r_len = cap then begin
      let grown = Array.make (max 16 (2 * cap)) p in
      Array.blit reg.r_items 0 grown 0 reg.r_len;
      reg.r_items <- grown
    end;
    reg.r_items.(reg.r_len) <- p;
    reg.r_len <- reg.r_len + 1;
    reg.r_len - 1
  end

(* one cache per domain, shared across that domain's slices of one search *)
type session = { sn_ctx : context; sn_token : int }

let session_counter = Atomic.make 0

let session ctx = { sn_ctx = ctx; sn_token = Atomic.fetch_and_add session_counter 1 }

let cache_slot : (int * cache) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let domain_cache sn =
  let slot = Domain.DLS.get cache_slot in
  match !slot with
  | Some (tok, c) when tok = sn.sn_token -> c
  | _ ->
      let c = cache sn.sn_ctx in
      slot := Some (sn.sn_token, c);
      c

exception Stop of failure * string

let delay_spread = Chop_util.Triplet.make ~low:0.95 ~likely:1.0 ~high:1.08

let integrate_cached cache ?ii_target comb =
  let ctx = cache.c_ctx in
  let spec = ctx.spec in
  check_combination spec comb;
  let clocks = spec.Spec.clocks in
  let crit = spec.Spec.criteria in
  try
    (match ctx.budget_errors with
    | (chip, reason) :: _ ->
        raise
          (Stop
             ( Structural reason,
               Printf.sprintf "chip %s: %s" chip reason ))
    | [] -> ());
    let st =
      match ctx.statics with Some st -> st | None -> assert false
    in
    (match rate_mismatch clocks comb with
    | Some reason ->
        let mismatched =
          List.filter_map
            (fun (label, p) ->
              match p.Chop_bad.Prediction.style with
              | Chop_tech.Style.Pipelined -> Some label
              | Chop_tech.Style.Non_pipelined -> None)
            comb
        in
        raise (Stop (Rate_mismatch mismatched, reason))
    | None -> ());
    (match st.st_dtm_error with
    | Some reason -> raise (Stop (Structural reason, reason))
    | None -> ());
    let prediction_of label = List.assoc label comb in
    let picks = Array.map prediction_of st.st_parts in
    (* --- candidate initiation interval --- *)
    let part_ii_max =
      List.fold_left
        (fun acc (_, p) -> max acc (Chop_bad.Prediction.ii_main clocks p))
        1 comb
    in
    let dt_ii_max = st.st_dt_ii_max in
    let pin_ii_floor = st.st_pin_ii_floor in
    let mem_ii_floor =
      List.fold_left
        (fun acc m ->
          let block = m.Chop_tech.Memory.mname in
          let port_cycles =
            Chop_util.Listx.sum_by
              (fun (_, p) ->
                match List.assoc_opt block p.Chop_bad.Prediction.mem_bandwidth with
                | Some peak when peak > 0 ->
                    min peak m.Chop_tech.Memory.ports
                    * Chop_bad.Prediction.latency_main clocks p
                | Some _ | None -> 0)
              comb
          in
          if port_cycles = 0 then acc
          else
            max acc (Chop_util.Units.ceil_div port_cycles m.Chop_tech.Memory.ports))
        1 spec.Spec.memories
    in
    let floor_ii =
      max (max part_ii_max dt_ii_max) (max pin_ii_floor mem_ii_floor)
    in
    let ii_main = match ii_target with Some l -> l | None -> floor_ii in
    if part_ii_max > ii_main then
      raise
        (Stop
           ( Too_slow,
             Printf.sprintf "partition rate %d exceeds system interval %d"
               part_ii_max ii_main ));
    if dt_ii_max > ii_main then
      raise
        (Stop
           ( Data_clash,
             Printf.sprintf
               "data clash: transfer of %d cycles exceeds interval %d" dt_ii_max
               ii_main ));
    if pin_ii_floor > ii_main then
      raise
        (Stop
           ( Data_clash,
             Printf.sprintf
               "data clash: aggregate pin traffic needs an interval of %d \
                cycles but the target is %d"
               pin_ii_floor ii_main ));
    if mem_ii_floor > ii_main then
      raise
        (Stop
           ( Data_clash,
             Printf.sprintf
               "data clash: memory-port traffic needs an interval of %d \
                cycles but the target is %d"
               mem_ii_floor ii_main ));
    (* --- memory port sanity --- *)
    List.iter
      (fun (_, p) ->
        List.iter
          (fun (block, peak) ->
            let ports = (Spec.memory spec block).Chop_tech.Memory.ports in
            if peak > ports then begin
              let reason =
                Printf.sprintf
                  "memory %s: partition %s needs %d simultaneous accesses (%d \
                   ports)"
                  block p.Chop_bad.Prediction.partition_label peak ports
              in
              raise (Stop (Structural reason, reason))
            end)
          p.Chop_bad.Prediction.mem_bandwidth)
      comb;
    (* --- urgency scheduling over pins and memory ports (memoized) --- *)
    let skey =
      Array.map
        (fun (p : Chop_bad.Prediction.t) ->
          ( Chop_bad.Prediction.latency_main clocks p,
            List.filter (fun (_, peak) -> peak > 0)
              p.Chop_bad.Prediction.mem_bandwidth ))
        picks
    in
    let sched_entry =
      match Hashtbl.find_opt cache.c_sched skey with
      | Some e ->
          cache.c_sched_hits <- cache.c_sched_hits + 1;
          e
      | None ->
          cache.c_sched_misses <- cache.c_sched_misses + 1;
          let nchips = Array.length st.st_chips in
          let pu_tasks =
            Array.to_list
              (Array.mapi
                 (fun i (p : Chop_bad.Prediction.t) ->
                   let duration = Chop_bad.Prediction.latency_main clocks p in
                   let demands =
                     List.filter_map
                       (fun (block, peak) ->
                         if peak <= 0 then None
                         else Some ("mem:" ^ block, peak))
                       p.Chop_bad.Prediction.mem_bandwidth
                   in
                   { Chop_sched.Urgency.tname = st.st_pu_names.(i); duration;
                     demands; deps = st.st_pu_deps.(i) })
                 picks)
          in
          let tasks =
            Array.to_list (Array.map (fun d -> d.ds_urg) st.st_dtm) @ pu_tasks
          in
          let e =
            match Chop_sched.Urgency.run ~resources:st.st_resources tasks with
            | exception Chop_sched.Urgency.Unschedulable reason -> Error reason
            | sched_result ->
                let ss_waits =
                  Array.map
                    (fun d ->
                      Chop_sched.Urgency.wait_of sched_result
                        d.ds_task.Transfer.dt_name)
                    st.st_dtm
                in
                let ss_shapes =
                  Array.mapi
                    (fun j d ->
                      let states = max 1 (ss_waits.(j) + d.ds_transfer_main) in
                      Chop_tech.Pla.controller_shape ~states ~status_inputs:2
                        ~control_outputs:(4 + (d.ds_bandwidth / 4)))
                    st.st_dtm
                in
                let ss_dtm_area = Array.make nchips 0. in
                let ss_ctrl_delay = Array.make nchips 0. in
                Array.iteri
                  (fun j d ->
                    let area = Chop_tech.Pla.area ss_shapes.(j) in
                    let delay = Chop_tech.Pla.delay ss_shapes.(j) in
                    for c = 0 to nchips - 1 do
                      (* a software chip runs its transfer end in code:
                         no controller PLA on the die, no PLA settle time
                         stretching the clock *)
                      if not st.st_chips.(c).cs_sw then begin
                        if d.ds_on_chip.(c) then
                          ss_dtm_area.(c) <- ss_dtm_area.(c) +. area;
                        if d.ds_member.(c) then
                          ss_ctrl_delay.(c) <- Float.max ss_ctrl_delay.(c) delay
                      end
                    done)
                  st.st_dtm;
                let ss_overhead = ref 0. in
                Array.iteri
                  (fun c cs ->
                    if cs.cs_sharers <> 0 then
                      ss_overhead :=
                        Float.max !ss_overhead
                          (cs.cs_pad_mux +. ss_ctrl_delay.(c)))
                  st.st_chips;
                let ss =
                  { ss_id = cache.c_next_sched; ss_result = sched_result;
                    ss_waits; ss_shapes; ss_dtm_area; ss_ctrl_delay;
                    ss_overhead = !ss_overhead }
                in
                cache.c_next_sched <- cache.c_next_sched + 1;
                Ok ss
          in
          Hashtbl.replace cache.c_sched skey e;
          e
    in
    let ss =
      match sched_entry with
      | Ok ss -> ss
      | Error reason -> raise (Stop (Structural reason, reason))
    in
    (* --- buffer sizing at this interval (memoized per schedule) --- *)
    let istage =
      let ikey = (ss.ss_id, ii_main) in
      match Hashtbl.find_opt cache.c_ii ikey with
      | Some i -> i
      | None ->
          let nchips = Array.length st.st_chips in
          let is_buffer_area = Array.make nchips 0. in
          let is_dtms =
            Array.to_list
              (Array.mapi
                 (fun j d ->
                   let t = d.ds_task in
                   let wait_main = ss.ss_waits.(j) in
                   (* B = D * (ceil(W/l) + X/l), section 2.5 *)
                   let buffer_bits =
                     if not t.Transfer.cross_chip then 0
                     else
                       let l = float_of_int ii_main in
                       let dd = float_of_int t.Transfer.bits in
                       let w = float_of_int wait_main in
                       let xf = float_of_int d.ds_transfer_main in
                       int_of_float (ceil (dd *. (ceil (w /. l) +. (xf /. l))))
                   in
                   if d.ds_holder >= 0 then begin
                     (* the buffer costs register cells on a hardware die
                        but plain memory bytes on a software chip — same
                        ledger the chip's availability is denominated in *)
                     let cost =
                       if st.st_chips.(d.ds_holder).cs_sw then
                         float_of_int buffer_bits /. 8.
                       else float_of_int buffer_bits *. register_cell_area
                     in
                     is_buffer_area.(d.ds_holder) <-
                       is_buffer_area.(d.ds_holder) +. cost
                   end;
                   { task = t; bandwidth = d.ds_bandwidth;
                     transfer_main = d.ds_transfer_main; wait_main;
                     buffer_bits; ctrl_shape = ss.ss_shapes.(j) })
                 st.st_dtm)
          in
          let i = { is_dtms; is_buffer_area } in
          Hashtbl.replace cache.c_ii ikey i;
          i
    in
    (* --- clock adjustment --- *)
    let clock_parts =
      List.fold_left
        (fun acc (_, p) -> Float.max acc p.Chop_bad.Prediction.timing.clock_main)
        clocks.Chop_tech.Clocking.main comb
    in
    let clock =
      Float.max clock_parts
        (ss.ss_overhead /. float_of_int clocks.Chop_tech.Clocking.transfer_ratio)
    in
    let perf_ns = float_of_int ii_main *. clock in
    let delay_cycles = ss.ss_result.Chop_sched.Urgency.makespan in
    let delay =
      Chop_util.Triplet.scale (float_of_int delay_cycles *. clock) delay_spread
    in
    (* --- per-chip reports (memoized per picks-on-chip fragment) --- *)
    let chip_reports =
      Array.to_list
        (Array.mapi
           (fun c (cs : chip_static) ->
             let ids =
               Array.fold_right
                 (fun pi acc -> pred_id cache.c_regs.(pi) picks.(pi) :: acc)
                 cs.cs_label_idxs []
             in
             let ckey = (ss.ss_id, ii_main, ids) in
             match Hashtbl.find_opt cache.c_chip.(c) ckey with
             | Some cr ->
                 cache.c_chip_hits <- cache.c_chip_hits + 1;
                 cr
             | None ->
                 cache.c_chip_misses <- cache.c_chip_misses + 1;
                 let dtm_area = ss.ss_dtm_area.(c) in
                 let buffer_area = istage.is_buffer_area.(c) in
                 let part_areas =
                   Array.to_list
                     (Array.map
                        (fun pi -> picks.(pi).Chop_bad.Prediction.area)
                        cs.cs_label_idxs)
                 in
                 let fixed =
                   cs.cs_pin_mux_area +. dtm_area +. buffer_area
                   +. cs.cs_memory_area
                 in
                 let area_parts = Chop_util.Triplet.exact fixed :: part_areas in
                 let area_verdict =
                   Chop_bad.Feasibility.check_area crit
                     ~available:cs.cs_available area_parts
                 in
                 let power =
                   Array.fold_left
                     (fun acc pi ->
                       acc +. picks.(pi).Chop_bad.Prediction.power)
                     0. cs.cs_label_idxs
                 in
                 let cr =
                   {
                     instance = cs.cs_instance;
                     partition_labels = cs.cs_labels;
                     signal_pins = cs.cs_signal_pins;
                     pin_mux_area = cs.cs_pin_mux_area;
                     dtm_area;
                     buffer_area;
                     memory_area = cs.cs_memory_area;
                     area_parts;
                     available = cs.cs_available;
                     area_verdict;
                     power;
                   }
                 in
                 Hashtbl.replace cache.c_chip.(c) ckey cr;
                 cr)
           st.st_chips)
    in
    (* --- overall verdict --- *)
    let verdict, failure =
      let open Chop_bad.Feasibility in
      let area_bad =
        List.find_map
          (fun cr ->
            match cr.area_verdict with
            | Infeasible r ->
                Some (Printf.sprintf "chip %s: %s" cr.instance.Spec.chip_name r)
            | Feasible -> None)
          chip_reports
      in
      let power_bad =
        List.find_map
          (fun cr ->
            match check_power crit cr.power with
            | Infeasible r ->
                Some (Printf.sprintf "chip %s: %s" cr.instance.Spec.chip_name r)
            | Feasible -> None)
          chip_reports
      in
      match
        (area_bad, check_perf crit perf_ns, check_delay crit delay, power_bad)
      with
      | Some r, _, _, _ ->
          let labels =
            List.concat_map
              (fun cr ->
                match cr.area_verdict with
                | Infeasible _ -> cr.partition_labels
                | Feasible -> [])
              chip_reports
          in
          (Infeasible r, Area_violation labels)
      | None, Infeasible r, _, _ -> (Infeasible r, Too_slow)
      | None, _, Infeasible r, _ -> (Infeasible r, Delay_exceeded)
      | None, _, _, Some r -> (Infeasible r, Structural r)
      | None, Feasible, Feasible, None -> (Feasible, No_failure)
    in
    {
      combination = comb;
      ii_main;
      clock;
      perf_ns;
      delay_cycles;
      delay;
      dtms = istage.is_dtms;
      chip_reports;
      task_schedule = Some ss.ss_result;
      verdict;
      failure;
    }
  with Stop (failure, reason) ->
    {
      combination = comb;
      ii_main = Option.value ~default:0 ii_target;
      clock = clocks.Chop_tech.Clocking.main;
      perf_ns = infinity;
      delay_cycles = 0;
      delay = Chop_util.Triplet.exact 0.;
      dtms = [];
      chip_reports = [];
      task_schedule = None;
      verdict = Chop_bad.Feasibility.Infeasible reason;
      failure;
    }

let integrate ctx ?ii_target comb = integrate_cached (cache ctx) ?ii_target comb

(* Provably-infeasible early exit.  Sound only for searches that let the
   integration derive the interval (no [ii_target]): every rejection below
   implies the full integration would have returned an [Infeasible]
   verdict.  The area test relies on [Prob.of_sum] being exactly 0 when
   the bound is below the summed lower bounds, which is decisive only when
   the criteria demand a positive fit probability. *)
let quick_check cache comb =
  let ctx = cache.c_ctx in
  match (ctx.budget_errors, ctx.statics) with
  | _ :: _, _ | _, None -> true
  | [], Some st -> (
      st.st_dtm_error <> None
      ||
      let spec = ctx.spec in
      let clocks = spec.Spec.clocks in
      let crit = spec.Spec.criteria in
      (* performance: the derived interval is at least the static floors
         and the slowest pick; the clock at least the slowest pick's *)
      let part_ii_max =
        List.fold_left
          (fun acc (_, p) -> max acc (Chop_bad.Prediction.ii_main clocks p))
          1 comb
      in
      let ii_lb = max part_ii_max (max st.st_dt_ii_max st.st_pin_ii_floor) in
      let clock_lb =
        List.fold_left
          (fun acc (_, p) ->
            Float.max acc p.Chop_bad.Prediction.timing.clock_main)
          clocks.Chop_tech.Clocking.main comb
      in
      float_of_int ii_lb *. clock_lb > crit.Chop_bad.Feasibility.perf_constraint
      || rate_mismatch clocks comb <> None
      || crit.Chop_bad.Feasibility.area_prob > 0.
         && Array.exists
              (fun cs ->
                let low =
                  List.fold_left
                    (fun acc l ->
                      acc
                      +. Chop_util.Triplet.(
                           (List.assoc l comb).Chop_bad.Prediction.area.low))
                    cs.cs_static_area_low cs.cs_labels
                in
                low > cs.cs_available)
              st.st_chips)
