(** Dominance pre-pruning of per-partition implementation lists.

    Run before the combination search, this drops implementations that
    provably cannot contribute a new point to the Pareto front of full
    systems, shrinking the cartesian product the search walks.  An
    implementation is dropped only in favour of one with the same style,
    initiation interval, latency and memory-bandwidth signature — i.e. one
    that is interchangeable for every schedule-derived integration
    quantity — that dominates it on (clock, area low/likely/high, area
    variance, power).  The best feasible design and the feasible Pareto
    front of the search are preserved exactly; only dominated interior
    points (the grey mass of Figures 7/8) disappear from keep-all dumps.
    [--no-prune] (or {!Explore.Config.t}[.pre_prune = false]) restores the
    exhaustive behaviour. *)

val implementations :
  clocks:Chop_tech.Clocking.t ->
  Chop_bad.Prediction.t list ->
  Chop_bad.Prediction.t list * int
(** [implementations ~clocks preds] returns the kept list (original order
    preserved) and the number of dominated implementations dropped. *)

val per_partition :
  clocks:Chop_tech.Clocking.t ->
  (string * Chop_bad.Prediction.t list) list ->
  (string * Chop_bad.Prediction.t list) list * int
(** {!implementations} applied to every partition's list; the count sums
    the drops across partitions. *)
