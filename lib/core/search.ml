type stats = {
  implementation_trials : int;
  integrations : int;
  integrations_avoided : int;
  feasible_trials : int;
  cpu_seconds : float;
}

type outcome = {
  feasible : Integration.system list;
  explored : Integration.system list;
  stats : stats;
}

let empty_stats =
  { implementation_trials = 0; integrations = 0; integrations_avoided = 0;
    feasible_trials = 0; cpu_seconds = 0. }

type parallel_metrics = {
  search_wall_seconds : float;
  search_busy_seconds : float;
  merge_wall_seconds : float;
  worker_busy_seconds : float array;
  chunk_count : int;
  chip_cache_hits : int;
}

let no_parallel_metrics =
  { search_wall_seconds = 0.; search_busy_seconds = 0.;
    merge_wall_seconds = 0.; worker_busy_seconds = [||]; chunk_count = 0;
    chip_cache_hits = 0 }

module Row = struct
  type t = {
    ii_main : int;
    clock : float;
    perf_ns : float;
    delay_cycles : int;
    delay_likely : float;
    area_likely : float;
    feasible : bool;
  }

  let of_system s =
    {
      ii_main = s.Integration.ii_main;
      clock = s.Integration.clock;
      perf_ns = s.Integration.perf_ns;
      delay_cycles = s.Integration.delay_cycles;
      delay_likely = Chop_util.Triplet.(s.Integration.delay.likely);
      area_likely = Chop_util.Triplet.((Integration.total_area s).likely);
      feasible = Integration.feasible s;
    }

  let objectives r = [| r.perf_ns; r.delay_likely; r.area_likely |]

  let dedup_key r =
    ( r.ii_main,
      r.delay_cycles,
      int_of_float r.clock,
      int_of_float (r.area_likely /. 50.) )

  let compare_rank a b =
    match Float.compare a.perf_ns b.perf_ns with
    | 0 -> Float.compare a.delay_likely b.delay_likely
    | n -> n

  let csv_header =
    "ii_main,clock_ns,perf_ns,delay_cycles,delay_likely_ns,area_likely,feasible\n"

  let csv_line r =
    Printf.sprintf "%d,%.1f,%.1f,%d,%.1f,%.1f,%b\n" r.ii_main r.clock r.perf_ns
      r.delay_cycles r.delay_likely r.area_likely r.feasible

  let to_csv rows =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf csv_header;
    List.iter (fun r -> Buffer.add_string buf (csv_line r)) rows;
    Buffer.contents buf

  (* Exact float transport: OCaml's %h prints the hex significand and
     exponent, and [float_of_string] reverses it bit-for-bit, so a row
     survives a JSON hop without decimal rounding. *)
  let float_to_wire f = Printf.sprintf "%h" f

  let float_of_wire s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "Row.float_of_wire: %S" s)

  let admit row front =
    let objs = objectives row in
    let dominated =
      List.exists
        (fun r -> Chop_util.Pareto.dominates (objectives r) objs)
        front
    in
    if dominated then (front, false)
    else
      ( row
        :: List.filter
             (fun r -> not (Chop_util.Pareto.dominates objs (objectives r)))
             front,
        true )

  let finalize feasible =
    let non_inferior = Chop_util.Pareto.frontier ~objectives feasible in
    let non_inferior =
      let seen = Hashtbl.create 16 in
      List.filter
        (fun r ->
          let key = dedup_key r in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.replace seen key ();
            true
          end)
        non_inferior
    in
    List.sort compare_rank non_inferior
end

let to_csv systems = Row.to_csv (List.map Row.of_system systems)

let admit system front =
  let objs = Integration.objectives system in
  let dominated =
    List.exists
      (fun s -> Chop_util.Pareto.dominates (Integration.objectives s) objs)
      front
  in
  if dominated then (front, false)
  else
    ( system
      :: List.filter
           (fun s ->
             not (Chop_util.Pareto.dominates objs (Integration.objectives s)))
           front,
      true )

let finalize ~keep_all ~feasible ~explored stats =
  let non_inferior =
    Chop_util.Pareto.frontier ~objectives:Integration.objectives feasible
  in
  (* collapse distinct combinations that predict the same design point;
     key and rank are shared with {!Row} so a row-level merge (the gateway
     fan-out) reproduces this ordering byte for byte *)
  let non_inferior =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun s ->
        let key = Row.dedup_key (Row.of_system s) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      non_inferior
  in
  let sorted =
    List.sort
      (fun a b -> Row.compare_rank (Row.of_system a) (Row.of_system b))
      non_inferior
  in
  { feasible = sorted; explored = (if keep_all then explored else []); stats }

module Slice = struct
  type t = {
    mutable trials : int;
    mutable integrations : int;
    mutable avoided : int;
    mutable cache_hits : int;
    mutable feasible : int;
    mutable front : Integration.system list;
    mutable admitted_rev : Integration.system list;
    mutable explored_rev : Integration.system list;
  }

  let create () =
    { trials = 0; integrations = 0; avoided = 0; cache_hits = 0; feasible = 0;
      front = []; admitted_rev = []; explored_rev = [] }

  let step sl = sl.trials <- sl.trials + 1

  let avoid sl =
    sl.trials <- sl.trials + 1;
    sl.avoided <- sl.avoided + 1

  let set_cache_hits sl n = sl.cache_hits <- n

  let cache_hit_total slices =
    List.fold_left (fun acc sl -> acc + sl.cache_hits) 0 slices

  let record ~keep_all sl system =
    sl.trials <- sl.trials + 1;
    sl.integrations <- sl.integrations + 1;
    if keep_all then sl.explored_rev <- system :: sl.explored_rev;
    if Integration.feasible system then begin
      sl.feasible <- sl.feasible + 1;
      let front, admitted = admit system sl.front in
      if admitted then begin
        sl.front <- front;
        sl.admitted_rev <- system :: sl.admitted_rev
      end
    end

  let merge ~keep_all ~cpu_seconds slices =
    (* the sequential accumulator prepends, so it ends up with the last
       integration first: concatenating the per-slice reversed lists in
       reverse task order reproduces it exactly *)
    let explored =
      List.concat (List.rev_map (fun sl -> sl.explored_rev) slices)
    in
    (* replay each slice's admissions, in task order, through the shared
       front.  A system a slice dropped locally was dominated by an earlier
       system of the same slice, which the replay also sees (or evicts only
       for something that dominates it in turn — dominance is transitive),
       so the replayed front equals the sequential one, order included. *)
    let front =
      List.fold_left
        (fun front sl ->
          List.fold_left
            (fun front system -> fst (admit system front))
            front
            (List.rev sl.admitted_rev))
        [] slices
    in
    let stats =
      {
        implementation_trials =
          List.fold_left (fun acc sl -> acc + sl.trials) 0 slices;
        integrations =
          List.fold_left (fun acc sl -> acc + sl.integrations) 0 slices;
        integrations_avoided =
          List.fold_left (fun acc sl -> acc + sl.avoided) 0 slices;
        (* the sequential searches count feasible *integrations*, not the
           final front size — sum the per-slice counters to match *)
        feasible_trials =
          List.fold_left (fun acc sl -> acc + sl.feasible) 0 slices;
        cpu_seconds;
      }
    in
    finalize ~keep_all ~feasible:front ~explored stats
end
