(** First-class implementation models (DESIGN §14).

    A partition's predictions, resource vocabulary and cache identity are
    functions of its implementation model.  [Hardware] is the paper's BAD
    predictor over the component library and chip packages; [Software] maps
    the partition onto an embedded {!Chop_model_sw.Processor} —
    cycle-count timing, code+data bytes against a memory budget, a bus in
    place of pins.  The contract every instance satisfies:

    - {!predict} yields {!Chop_bad.Prediction.t} values whose timing obeys
      the main-cycle algebra (perf = ii_main x clock_main) and whose [area]
      triplet is the model's footprint in its own resource unit;
    - {!capacity} is the bound the area screen checks that footprint
      against, in the same unit;
    - {!predictor_signature} is a stable identity joined into
      {!Pred_cache.Key.raw}, equal across processes for equal inputs and
      disjoint between models (hardware signatures are byte-identical to
      the pre-seam cache keys, so warm hardware entries survive). *)

type t =
  | Hardware
  | Software of Chop_model_sw.Processor.t

val name : t -> string
(** ["hw"] or the processor name — the vocabulary of [Spec.impls]. *)

val equal : t -> t -> bool

val of_spec : Spec.t -> label:string -> t
(** The model the spec binds the partition to. *)

val of_chip : Spec.t -> chip:string -> t
(** The model of every partition on the chip ([Spec.make] enforces there is
    only one); [Hardware] for empty chips. *)

val predictor_signature : t -> Chop_bad.Predictor.config -> string

val capacity : t -> Spec.t -> label:string -> float
(** Usable die area (mil^2) for hardware, memory budget (bytes) for
    software. *)

val resource_unit : t -> string
(** Unit label for report rendering: ["mil^2"] or ["bytes"]. *)

val predict :
  t ->
  Chop_bad.Predictor.config ->
  label:string ->
  Chop_dfg.Graph.t ->
  Chop_bad.Prediction.t list

val prune :
  t ->
  Chop_bad.Predictor.config ->
  criteria:Chop_bad.Feasibility.criteria ->
  capacity:float ->
  Chop_bad.Prediction.t list ->
  Chop_bad.Prediction.t list
(** First-level pruning against the model's capacity (feasibility screens
    + per-style Pareto reduction, shared across models). *)

val pp : Format.formatter -> t -> unit
