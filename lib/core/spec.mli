(** The partitioning problem specification — CHOP's six input groups
    (paper, section 2.2):

    - the behavioral specification (a data-flow graph),
    - a library of components,
    - the chip set onto which the design is to be partitioned,
    - memory modules and their assignments to chips,
    - partitions and assignments of partitions to chips,
    - clocks, architecture style, feasibility criteria, design parameters. *)

type chip_instance = {
  chip_name : string;
  package : Chop_tech.Chip.t;
}

type params = {
  alloc_cap : int;  (** BAD serial-parallel enumeration cap per class *)
  max_pipelined_iis : int;  (** BAD II options per pipelined design *)
  testability_overhead : float;  (** fractional scan overhead; 0 = off *)
  discard_inferior : bool;
      (** first-level pruning: discard infeasible/inferior predictions
          immediately (paper, section 2.1); disable to explore the whole
          design space (Figures 7 and 8) *)
}

val default_params : params

type t = private {
  graph : Chop_dfg.Graph.t;
  library : Chop_tech.Component.library;
  chips : chip_instance list;
  memories : Chop_tech.Memory.t list;
  memory_hosts : (string * string) list;
      (** memory block -> chip carrying it (on-chip blocks only) *)
  partitioning : Chop_dfg.Partition.partitioning;
  assignment : (string * string) list;  (** partition label -> chip name *)
  clocks : Chop_tech.Clocking.t;
  style : Chop_tech.Style.t;
  criteria : Chop_bad.Feasibility.criteria;
  params : params;
  processors : Chop_model_sw.Processor.t list;
      (** software implementation targets a partition may be bound to *)
  impls : (string * string) list;
      (** partition label -> processor name; absent = the hardware model.
          Normalised: explicit ["hw"] bindings are dropped by {!make} *)
}

exception Invalid_spec of string

val make :
  ?params:params ->
  ?memories:Chop_tech.Memory.t list ->
  ?memory_hosts:(string * string) list ->
  ?processors:Chop_model_sw.Processor.t list ->
  ?impls:(string * string) list ->
  graph:Chop_dfg.Graph.t ->
  library:Chop_tech.Component.library ->
  chips:chip_instance list ->
  partitioning:Chop_dfg.Partition.partitioning ->
  assignment:(string * string) list ->
  clocks:Chop_tech.Clocking.t ->
  style:Chop_tech.Style.t ->
  criteria:Chop_bad.Feasibility.criteria ->
  unit ->
  t
(** Validates the six groups together.  @raise Invalid_spec when: a
    partition is unassigned or assigned to an unknown chip, chip names
    repeat, the library misses a functional class, a memory block referenced
    by the graph is undeclared, an on-chip block has no host (or a host that
    does not exist), or an off-chip block is given a host.  Implementation
    models add: processor names must be unique, an [impls] binding must name
    a live partition and a declared processor (or ["hw"]), a partition may
    be bound at most once, and every partition on one chip must follow the
    same model (a chip is either a custom die or one processor instance). *)

(** {1 Incremental edits}

    The paper's interactive workflow (section 2.2) has the designer move
    operations between partitions, reassign partitions to chips, rehost
    memories and retune constraints, then immediately re-check feasibility.
    [update] applies such edits to a validated spec and reports which
    partitions lost predictive work, so an exploration session can re-predict
    only what the edit touched. *)

type edit =
  | Move_op of { op : Chop_dfg.Graph.node_id; to_partition : string }
      (** move one operation into another partition *)
  | Merge_parts of { src : string; dst : string }
      (** absorb [src] into [dst]; [dst] keeps its label *)
  | Split_part of {
      from_partition : string;
      members : Chop_dfg.Graph.node_id list;
      new_label : string;
    }  (** carve [members] out of [from_partition] into a fresh partition,
           assigned to the same chip *)
  | Reassign_chip of { partition : string; chip : string }
  | Swap_package of { chip : string; package : Chop_tech.Chip.t }
  | Rehost_memory of { block : string; chip : string }
      (** on-chip blocks only *)
  | Set_clocks of Chop_tech.Clocking.t
  | Set_criteria of Chop_bad.Feasibility.criteria
  | Set_impl of { partition : string; impl : string }
      (** rebind the partition to a declared processor, or back to ["hw"].
          Dirties the partition for re-prediction (the models' predictors
          share nothing).  Rejected if the move would leave the partition's
          chip hosting two models — reassign the chip first. *)

type dirty = {
  repredict : string list;
      (** partitions whose subgraph or predictor configuration changed: the
          BAD enumeration itself must re-run *)
  rederive : string list;
      (** partitions whose raw enumeration survives but whose feasibility
          screening (chip or criteria) changed: a cache raw-layer hit *)
  removed : string list;  (** labels no longer present *)
}

type update_error = {
  index : int;  (** 0-based position of the rejected edit *)
  reason : string;
}

val pp_update_error : Format.formatter -> update_error -> unit

val update : t -> edit list -> (t * dirty, update_error) result
(** Apply edits left to right, each validated against the spec produced by
    its predecessors; the first invalid edit rejects the whole list (the
    input spec is never mutated — it remains valid and usable).  Never
    raises.  On success the dirty sets are normalised against the final
    partitioning: [repredict] and [rederive] are disjoint sets of live
    labels ([repredict] wins), [removed] holds labels that no longer
    exist. *)

val diff : current:t -> target:t -> dirty
(** The dirty set of jumping from [current] straight to [target] — the
    undo/redo move, which lands on a spec that is not one {!update} step
    away.  Conservative and sound: a change to any global predictor input
    (clocks, style, params, memory or processor declarations) dirties every
    partition of [target]; otherwise partitions whose member sets or
    implementation-model bindings differ [repredict],
    and partitions whose chip (name or package) or whose criteria changed
    [rederive].  Both specs must describe the same graph (undo/redo chains
    always do). *)

val chip : t -> string -> chip_instance
(** @raise Not_found for an unknown chip name. *)

val chip_of_partition : t -> string -> chip_instance
(** @raise Not_found for an unknown partition label. *)

val impl_of_partition : t -> string -> string
(** The partition's implementation-model name; ["hw"] when unbound. *)

val processor : t -> string -> Chop_model_sw.Processor.t
(** @raise Not_found for an unknown processor name. *)

val processor_of_partition : t -> string -> Chop_model_sw.Processor.t option
(** [None] for hardware partitions. *)

val processor_of_chip : t -> string -> Chop_model_sw.Processor.t option
(** The processor instance a chip stands for, [None] for hardware chips
    (and for chips hosting no partition — they carry no model). *)

val partitions_on : t -> string -> Chop_dfg.Partition.t list
(** Partitions assigned to the chip, in quotient-topological order. *)

val memory : t -> string -> Chop_tech.Memory.t
(** @raise Not_found for an unknown block name. *)

val memory_host : t -> string -> string option
(** Chip carrying the block; [None] for off-chip packages. *)

val partitions_accessing : t -> string -> string list
(** Labels of partitions whose operations touch the memory block. *)

val memories_of_partition : t -> string -> Chop_tech.Memory.t list
(** Memory blocks the partition's subgraph references. *)

val pp : Format.formatter -> t -> unit
