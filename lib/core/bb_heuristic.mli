(** Branch-and-bound combination search (an extension heuristic, "B").

    The paper ships two heuristics and notes that "neither ... can be
    claimed to be better than the other"; this third one is exact on the
    pruned prediction lists: a depth-first search over partitions with
    admissible bounds — a partial combination is abandoned when its
    performance lower bound (the slowest partition chosen so far at the
    cheapest possible clock) already violates the constraint, or when the
    partitions already placed on one chip cannot fit it even with the
    smallest possible remaining areas.  The bounds are admissible, so the
    result matches the enumeration heuristic's best designs exactly; on
    first-level-pruned prediction lists the bounds rarely fire (the pruning
    already removed what they would cut), which is itself evidence for the
    paper's claim that pruning carries the search. *)

val run :
  ?keep_all:bool ->
  ?pool:Chop_util.Pool.t ->
  ?metrics:Search.parallel_metrics ref ->
  ?slices_out:Search.Slice.t list ref ->
  Integration.context ->
  (string * Chop_bad.Prediction.t list) list ->
  Search.outcome
(** [pool] (default sequential) searches root subtrees — one per
    implementation of the first partition — on separate domains, each with
    private bound bookkeeping; results are merged deterministically, so the
    outcome is identical to the sequential one.  Outside keep-all mode,
    leaves that {!Integration.quick_check} proves infeasible are counted
    as trials but not integrated.  [metrics], when given, receives the
    search/merge timing breakdown of this run.  [slices_out], when given,
    receives the raw root slices (in task order, before merging); bound
    bookkeeping is slice-private, so a slice computed in a run restricted
    to a subset of first-partition implementations is identical to the
    same slice of the full run. *)
