exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

(* --- tokenizing ------------------------------------------------------ *)

let tokens_of_line line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let attr line key tokens =
  List.find_map
    (fun t ->
      match String.index_opt t '=' with
      | Some i when String.sub t 0 i = key ->
          Some (String.sub t (i + 1) (String.length t - i - 1))
      | _ -> None)
    tokens
  |> function
  | Some v -> v
  | None -> fail line "missing attribute %s=" key

let attr_opt key tokens =
  List.find_map
    (fun t ->
      match String.index_opt t '=' with
      | Some i when String.sub t 0 i = key ->
          Some (String.sub t (i + 1) (String.length t - i - 1))
      | _ -> None)
    tokens

let int_attr line key tokens =
  let v = attr line key tokens in
  match int_of_string_opt v with
  | Some i -> i
  | None -> fail line "attribute %s expects an integer, got %S" key v

let float_attr line key tokens =
  let v = attr line key tokens in
  match float_of_string_opt v with
  | Some f -> f
  | None -> fail line "attribute %s expects a number, got %S" key v

let float_attr_opt line key tokens =
  match attr_opt key tokens with
  | None -> None
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> Some f
      | None -> fail line "attribute %s expects a number, got %S" key v)

(* [attr] is find-first, so a repeated key would silently win by position;
   reject it instead, naming the offending token by 0-based index. *)
let reject_dup_keys line stmt tokens =
  let seen = Hashtbl.create 8 in
  List.iteri
    (fun i t ->
      match String.index_opt t '=' with
      | Some j -> (
          let key = String.sub t 0 j in
          match Hashtbl.find_opt seen key with
          | Some first ->
              fail line
                "duplicate %s key %S at token %d (0-based; first at token %d)"
                stmt key i first
          | None -> Hashtbl.replace seen key i)
      | None -> ())
    tokens

(* --- parsing state --------------------------------------------------- *)

type state = {
  mutable builder : Chop_dfg.Graph.builder option;
  mutable width : int;
  mutable node_ids : (string * Chop_dfg.Graph.node_id) list;
  mutable chips : Spec.chip_instance list;
  mutable memories : Chop_tech.Memory.t list;
  mutable memory_hosts : (string * string) list;
  mutable partitions : (string * string list) list;  (** label -> node names *)
  mutable assignment : (string * string) list;
  mutable extra_components : Chop_tech.Component.t list;
  mutable base_library : Chop_tech.Component.library;
  mutable processors : Chop_model_sw.Processor.t list;
  mutable impls : (string * string) list;
  mutable clocks : Chop_tech.Clocking.t;
  mutable style : Chop_tech.Style.t;
  mutable criteria : Chop_bad.Feasibility.criteria option;
  mutable params : Spec.params;
}

let initial () =
  {
    builder = None;
    width = 16;
    node_ids = [];
    chips = [];
    memories = [];
    memory_hosts = [];
    partitions = [];
    assignment = [];
    extra_components = [];
    base_library = Chop_tech.Mosis.experiment_library;
    processors = [];
    impls = [];
    clocks = Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1;
    style = Chop_tech.Style.both Chop_tech.Style.Multi_cycle;
    criteria = None;
    params = Spec.default_params;
  }

let op_of_string line s =
  let prefixed p =
    if
      String.length s > String.length p
      && String.sub s 0 (String.length p) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  match s with
  | "input" -> Chop_dfg.Op.Input
  | "output" -> Chop_dfg.Op.Output
  | "const" -> Chop_dfg.Op.Const
  | "add" -> Chop_dfg.Op.Add
  | "sub" -> Chop_dfg.Op.Sub
  | "mult" -> Chop_dfg.Op.Mult
  | "div" -> Chop_dfg.Op.Div
  | "compare" -> Chop_dfg.Op.Compare
  | "logic" -> Chop_dfg.Op.Logic
  | "shift" -> Chop_dfg.Op.Shift
  | "select" -> Chop_dfg.Op.Select
  | _ -> (
      match prefixed "mem_read:" with
      | Some b -> Chop_dfg.Op.Mem_read b
      | None -> (
          match prefixed "mem_write:" with
          | Some b -> Chop_dfg.Op.Mem_write b
          | None -> fail line "unknown operation %S" s))

let parse_die line v =
  match String.split_on_char 'x' v with
  | [ w; h ] -> (
      match (float_of_string_opt w, float_of_string_opt h) with
      | Some w, Some h -> (w, h)
      | _ -> fail line "die expects WxH, got %S" v)
  | _ -> fail line "die expects WxH, got %S" v

let statement st line = function
  | [] -> ()
  | "graph" :: name :: rest ->
      if st.builder <> None then fail line "duplicate graph statement";
      st.width <- (match attr_opt "width" rest with
        | Some w -> (match int_of_string_opt w with
            | Some i -> i
            | None -> fail line "width expects an integer")
        | None -> 16);
      st.builder <- Some (Chop_dfg.Graph.builder ~name ())
  | "node" :: name :: op :: operands -> (
      match st.builder with
      | None -> fail line "node before graph"
      | Some b ->
          if List.mem_assoc name st.node_ids then fail line "duplicate node %S" name;
          let op = op_of_string line op in
          let id =
            try Chop_dfg.Graph.add_node b ~name ~op ~width:st.width
            with Invalid_argument reason -> fail line "%s" reason
          in
          List.iter
            (fun operand ->
              match List.assoc_opt operand st.node_ids with
              | Some src -> Chop_dfg.Graph.add_edge b ~src ~dst:id
              | None -> fail line "node %S uses undeclared operand %S" name operand)
            operands;
          st.node_ids <- (name, id) :: st.node_ids)
  | "chip" :: name :: rest ->
      let package =
        match rest with
        | [ "pkg64" ] -> Chop_tech.Mosis.package_64
        | [ "pkg84" ] -> Chop_tech.Mosis.package_84
        | _ ->
            let w, h = parse_die line (attr line "die" rest) in
            (try
               Chop_tech.Chip.make ~name:(name ^ "_pkg") ~width:w ~height:h
                 ~pins:(int_attr line "pins" rest)
                 ~pad_delay:(float_attr line "pad_delay" rest)
                 ~pad_area:(float_attr line "pad_area" rest)
             with Invalid_argument reason -> fail line "%s" reason)
      in
      st.chips <- st.chips @ [ { Spec.chip_name = name; package } ]
  | "memory" :: name :: rest ->
      let placement, host =
        match (attr_opt "on_chip" rest, attr_opt "off_chip_pins" rest) with
        | Some area, None -> (
            match float_of_string_opt area with
            | Some a ->
                (Chop_tech.Memory.On_chip a, Some (attr line "host" rest))
            | None -> fail line "on_chip expects an area")
        | None, Some pins -> (
            match int_of_string_opt pins with
            | Some p -> (Chop_tech.Memory.Off_chip_package p, None)
            | None -> fail line "off_chip_pins expects an integer")
        | _ -> fail line "memory needs exactly one of on_chip= / off_chip_pins="
      in
      let m =
        try
          Chop_tech.Memory.make ~name ~words:(int_attr line "words" rest)
            ~word_width:(int_attr line "width" rest)
            ~ports:(int_attr line "ports" rest)
            ~access:(float_attr line "access" rest)
            ~placement
        with Invalid_argument reason -> fail line "%s" reason
      in
      st.memories <- st.memories @ [ m ];
      (match host with
      | Some h -> st.memory_hosts <- (name, h) :: st.memory_hosts
      | None -> ())
  | "partition" :: label :: "=" :: names ->
      (* node names never contain '='; key=value tokens here are
         per-partition fields from a newer format revision — tolerate and
         drop them so older binaries can restore newer snapshots *)
      let names = List.filter (fun t -> not (String.contains t '=')) names in
      if names = [] then fail line "empty partition %S" label;
      st.partitions <- st.partitions @ [ (label, names) ]
  | [ "assign"; label; chip ] ->
      st.assignment <- st.assignment @ [ (label, chip) ]
  | "component" :: name :: rest ->
      let c =
        try
          Chop_tech.Component.make ~name
            ~cls:(attr line "class" rest)
            ~width:(int_attr line "width" rest)
            ~area:(float_attr line "area" rest)
            ~delay:(float_attr line "delay" rest)
            ()
        with Invalid_argument reason -> fail line "%s" reason
      in
      st.extra_components <- st.extra_components @ [ c ]
  | "processor" :: name :: rest ->
      reject_dup_keys line "processor" rest;
      let p =
        try
          Chop_model_sw.Processor.make ~name
            ~issue_slots:(int_attr line "issue" rest)
            ~cycle_ns:(float_attr line "cycle" rest)
            ~code_bytes_per_op:(int_attr line "code" rest)
            ~data_bytes_per_value:(int_attr line "data" rest)
            ~memory_budget_bytes:(float_attr line "mem" rest)
            ~bus_bits:(int_attr line "bus" rest)
        with Invalid_argument reason -> fail line "%s" reason
      in
      if
        List.exists
          (fun q -> q.Chop_model_sw.Processor.pname = name)
          st.processors
      then fail line "duplicate processor %S" name;
      st.processors <- st.processors @ [ p ]
  | [ "impl"; label; model ] ->
      if
        model <> "hw"
        && not
             (List.exists
                (fun p -> p.Chop_model_sw.Processor.pname = model)
                st.processors)
      then
        fail line "impl %s references unknown model %S (declare the processor first)"
          label model;
      st.impls <- st.impls @ [ (label, model) ]
  | [ "library"; which ] ->
      st.base_library <-
        (match which with
        | "table1" -> Chop_tech.Mosis.experiment_library
        | "extended" -> Chop_tech.Mosis.extended_library
        | "none" -> []
        | _ -> fail line "library expects table1, extended or none, got %S" which)
  | "clock" :: rest ->
      st.clocks <-
        (try
           Chop_tech.Clocking.make
             ~main:(float_attr line "main" rest)
             ~datapath_ratio:(int_attr line "datapath" rest)
             ~transfer_ratio:(int_attr line "transfer" rest)
         with Invalid_argument reason -> fail line "%s" reason)
  | [ "style"; which ] ->
      st.style <-
        (match which with
        | "single_cycle" -> Chop_tech.Style.both Chop_tech.Style.Single_cycle
        | "multi_cycle" -> Chop_tech.Style.both Chop_tech.Style.Multi_cycle
        | _ -> fail line "style expects single_cycle or multi_cycle")
  | "criteria" :: rest ->
      reject_dup_keys line "criteria" rest;
      st.criteria <-
        Some
          (try
             Chop_bad.Feasibility.criteria
               ?perf_prob:(float_attr_opt line "perf_prob" rest)
               ?area_prob:(float_attr_opt line "area_prob" rest)
               ?delay_prob:(float_attr_opt line "delay_prob" rest)
               ?power_budget:(float_attr_opt line "power_budget" rest)
               ~perf:(float_attr line "perf" rest)
               ~delay:(float_attr line "delay" rest)
               ()
           with Invalid_argument reason -> fail line "%s" reason)
  | "params" :: rest ->
      let get key default =
        match attr_opt key rest with
        | None -> default
        | Some v -> (
            match int_of_string_opt v with
            | Some i -> i
            | None -> fail line "%s expects an integer" key)
      in
      let testability =
        match float_attr_opt line "testability" rest with
        | Some t -> t
        | None -> st.params.Spec.testability_overhead
      in
      st.params <-
        {
          st.params with
          Spec.alloc_cap = get "alloc_cap" st.params.Spec.alloc_cap;
          max_pipelined_iis = get "max_iis" st.params.Spec.max_pipelined_iis;
          testability_overhead = testability;
        }
  | keyword :: _ -> fail line "unknown statement %S" keyword

let parse contents =
  let st = initial () in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let tokens = tokens_of_line (strip_comment raw) in
      statement st line tokens)
    (String.split_on_char '\n' contents);
  let builder =
    match st.builder with
    | Some b -> b
    | None -> raise (Parse_error (0, "no graph statement"))
  in
  let graph =
    try Chop_dfg.Graph.build builder
    with Chop_dfg.Graph.Invalid_graph reason -> raise (Parse_error (0, reason))
  in
  let resolve_node label name =
    match List.assoc_opt name st.node_ids with
    | Some id -> id
    | None ->
        raise
          (Parse_error
             (0, Printf.sprintf "partition %s references unknown node %S" label name))
  in
  let parts =
    List.map
      (fun (label, names) ->
        Chop_dfg.Partition.make ~label (List.map (resolve_node label) names))
      st.partitions
  in
  if parts = [] then raise (Parse_error (0, "no partition statements"));
  let partitioning =
    try Chop_dfg.Partition.partitioning graph parts
    with Chop_dfg.Partition.Invalid_partitioning reason ->
      raise (Parse_error (0, reason))
  in
  let criteria =
    match st.criteria with
    | Some c -> c
    | None -> raise (Parse_error (0, "no criteria statement"))
  in
  try
    Spec.make ~params:st.params ~memories:st.memories
      ~memory_hosts:st.memory_hosts ~graph
      ~library:(st.extra_components @ st.base_library)
      ~chips:st.chips ~partitioning ~assignment:st.assignment
      ~processors:st.processors ~impls:st.impls ~clocks:st.clocks
      ~style:st.style ~criteria ()
  with Invalid_argument reason -> raise (Parse_error (0, reason))

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  parse contents

(* --- printing --------------------------------------------------------- *)

let op_to_string = function
  | Chop_dfg.Op.Input -> "input"
  | Chop_dfg.Op.Output -> "output"
  | Chop_dfg.Op.Const -> "const"
  | Chop_dfg.Op.Add -> "add"
  | Chop_dfg.Op.Sub -> "sub"
  | Chop_dfg.Op.Mult -> "mult"
  | Chop_dfg.Op.Div -> "div"
  | Chop_dfg.Op.Compare -> "compare"
  | Chop_dfg.Op.Logic -> "logic"
  | Chop_dfg.Op.Shift -> "shift"
  | Chop_dfg.Op.Select -> "select"
  | Chop_dfg.Op.Mem_read b -> "mem_read:" ^ b
  | Chop_dfg.Op.Mem_write b -> "mem_write:" ^ b

let print (spec : Spec.t) =
  let buf = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let g = spec.Spec.graph in
  let width =
    List.fold_left (fun acc n -> max acc n.Chop_dfg.Graph.width) 1
      (Chop_dfg.Graph.nodes g)
  in
  addf "# chopspec — generated\n";
  addf "graph %s width=%d\n" (Chop_dfg.Graph.name g) width;
  let node_name id = Printf.sprintf "n%d" id in
  List.iter
    (fun n ->
      addf "node %s %s%s\n" (node_name n.Chop_dfg.Graph.id)
        (op_to_string n.Chop_dfg.Graph.op)
        (String.concat ""
           (List.map (fun p -> " " ^ node_name p)
              (Chop_dfg.Graph.preds g n.Chop_dfg.Graph.id))))
    (Chop_dfg.Graph.nodes g);
  List.iter
    (fun ci ->
      let p = ci.Spec.package in
      addf "chip %s pins=%d die=%gx%g pad_delay=%g pad_area=%g\n"
        ci.Spec.chip_name p.Chop_tech.Chip.pins p.Chop_tech.Chip.width
        p.Chop_tech.Chip.height p.Chop_tech.Chip.pad_delay
        p.Chop_tech.Chip.pad_area)
    spec.Spec.chips;
  List.iter
    (fun m ->
      let placement =
        match m.Chop_tech.Memory.placement with
        | Chop_tech.Memory.On_chip a ->
            Printf.sprintf "on_chip=%g host=%s" a
              (Option.value ~default:"?"
                 (Spec.memory_host spec m.Chop_tech.Memory.mname))
        | Chop_tech.Memory.Off_chip_package p ->
            Printf.sprintf "off_chip_pins=%d" p
      in
      addf "memory %s words=%d width=%d ports=%d access=%g %s\n"
        m.Chop_tech.Memory.mname m.Chop_tech.Memory.words
        m.Chop_tech.Memory.word_width m.Chop_tech.Memory.ports
        m.Chop_tech.Memory.access placement)
    spec.Spec.memories;
  List.iter
    (fun p ->
      addf "partition %s =%s\n" p.Chop_dfg.Partition.label
        (String.concat ""
           (List.map (fun id -> " " ^ node_name id) p.Chop_dfg.Partition.members)))
    spec.Spec.partitioning.Chop_dfg.Partition.parts;
  List.iter (fun (l, c) -> addf "assign %s %s\n" l c) spec.Spec.assignment;
  addf "library none\n";
  List.iter
    (fun c ->
      addf "component %s class=%s width=%d area=%g delay=%g\n"
        c.Chop_tech.Component.cname c.Chop_tech.Component.cls
        c.Chop_tech.Component.width c.Chop_tech.Component.area
        c.Chop_tech.Component.delay)
    spec.Spec.library;
  List.iter
    (fun p ->
      addf "processor %s issue=%d cycle=%g code=%d data=%d mem=%g bus=%d\n"
        p.Chop_model_sw.Processor.pname p.Chop_model_sw.Processor.issue_slots
        p.Chop_model_sw.Processor.cycle_ns
        p.Chop_model_sw.Processor.code_bytes_per_op
        p.Chop_model_sw.Processor.data_bytes_per_value
        p.Chop_model_sw.Processor.memory_budget_bytes
        p.Chop_model_sw.Processor.bus_bits)
    spec.Spec.processors;
  List.iter (fun (l, m) -> addf "impl %s %s\n" l m) spec.Spec.impls;
  addf "clock main=%g datapath=%d transfer=%d\n"
    spec.Spec.clocks.Chop_tech.Clocking.main
    spec.Spec.clocks.Chop_tech.Clocking.datapath_ratio
    spec.Spec.clocks.Chop_tech.Clocking.transfer_ratio;
  addf "style %s\n"
    (match spec.Spec.style.Chop_tech.Style.op_timing with
    | Chop_tech.Style.Single_cycle -> "single_cycle"
    | Chop_tech.Style.Multi_cycle -> "multi_cycle");
  let c = spec.Spec.criteria in
  addf "criteria perf=%g delay=%g perf_prob=%g area_prob=%g delay_prob=%g%s\n"
    c.Chop_bad.Feasibility.perf_constraint c.Chop_bad.Feasibility.delay_constraint
    c.Chop_bad.Feasibility.perf_prob c.Chop_bad.Feasibility.area_prob
    c.Chop_bad.Feasibility.delay_prob
    (match c.Chop_bad.Feasibility.power_budget with
    | Some b -> Printf.sprintf " power_budget=%g" b
    | None -> "");
  addf "params alloc_cap=%d max_iis=%d testability=%g\n"
    spec.Spec.params.Spec.alloc_cap spec.Spec.params.Spec.max_pipelined_iis
    spec.Spec.params.Spec.testability_overhead;
  Buffer.contents buf
