(** Constraint and chip-set sensitivity sweeps.

    The paper's section 2.7 describes how feasibility responds to the
    designer's four modification groups; these sweeps quantify that
    response one parameter at a time, so the advisor can show where the
    feasibility cliff sits ("High performance constraints also cause the
    I/O pin usage to increase, which in turn makes some implementations
    infeasible"). *)

type point = {
  value : float;  (** the swept parameter's value *)
  feasible : bool;
  best_ii : int option;  (** main cycles, when feasible *)
  best_delay_cycles : int option;
  best_perf_ns : float option;
}

type sweep = {
  parameter : string;
  points : point list;  (** in the order the values were given *)
}

val performance_constraint :
  ?config:Explore.Config.t -> Spec.t -> values:float list -> sweep
(** Sweep the performance constraint (ns), keeping its delay counterpart.
    Every sweep takes an optional engine [config] (default
    {!Explore.Config.default}) forwarded to {!Advisor.what_if}; with the
    prediction cache on, a sweep that only moves a constraint re-predicts
    nothing — only filtering and search repeat per point. *)

val delay_constraint :
  ?config:Explore.Config.t -> Spec.t -> values:float list -> sweep

val pin_count : ?config:Explore.Config.t -> Spec.t -> values:int list -> sweep
(** Replace every chip's package with a copy rebuilt at the given pin
    count (same die, pad delay and pad area) — the "target chip set"
    modification group.  Non-positive pin counts yield infeasible points. *)

val main_clock : ?config:Explore.Config.t -> Spec.t -> values:float list -> sweep
(** Sweep the main clock cycle (ns), keeping the clock ratios. *)

val cliff : sweep -> float option
(** The first swept value at which feasibility is lost, scanning in the
    given order; [None] when feasibility never flips from true to false. *)

val render : sweep -> string
(** Plain-text table of the sweep. *)

type grid = {
  perf_values : float list;  (** row labels, ns *)
  pin_values : int list;  (** column labels *)
  cells : bool array array;  (** feasibility, indexed [row][col] *)
}

val performance_pins_grid :
  ?config:Explore.Config.t ->
  Spec.t ->
  perf_values:float list ->
  pin_values:int list ->
  grid
(** The two-dimensional feasibility map of the paper's two hardest
    constraint axes: the performance target against the package pin count
    (every chip rebuilt at each count).  Each cell is one full what-if
    probe. *)

val render_grid : grid -> string
(** ASCII map: ['#'] feasible, ['.'] infeasible; rows are performance
    values, columns pin counts. *)
