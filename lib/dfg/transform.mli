(** Behavioral transformations applied before partitioning.

    The behavioral specification must be free of inner loops; loops with
    determinate iteration counts are unrolled so that the resulting DFG is
    acyclic (paper, section 2.3, following Park [7] and Paulin–Knight [9]). *)

type loop = {
  body : Graph.t;
  trip_count : int;  (** determinate iteration count, >= 1 *)
  carried : (string * string) list;
      (** loop-carried dependencies as [(output_name, input_name)] pairs of
          the body: each iteration's named output feeds the next iteration's
          named input *)
}

val unroll : ?name:string -> loop -> Graph.t
(** Fully unrolls [loop] into an acyclic DFG.  Iteration 0 keeps the body's
    carried inputs as primary inputs (initial values); the final iteration's
    carried outputs remain primary outputs.  Non-carried inputs are
    replicated per iteration (streaming inputs).
    @raise Invalid_argument when [trip_count < 1] or a carried name does not
    exist in the body. *)

val common_subexpression_elimination : Graph.t -> Graph.t
(** Merges computational nodes with the same operation and the same operand
    list (order-sensitive: [Sub]/[Select] operands do not commute; [Add],
    [Mult], [Logic] and [Compare]-free commutative operations match under
    operand reordering).  Memory operations are never merged — reads may
    alias intervening writes.  Semantics-preserving (property-tested
    against {!Eval}). *)

val balance_associative : Graph.t -> Graph.t
(** Tree-height reduction: rebuilds maximal chains of same-operation
    associative nodes ([Add], [Mult], [Logic]) whose intermediate values
    have no other consumers into balanced trees, shortening the critical
    path without changing the operation count — one of the "high-level
    transformations" whose system-level effect the paper proposes CHOP to
    study (section 4). *)

val dead_node_elimination : Graph.t -> Graph.t
(** Removes computational nodes and constants whose values can never reach a
    primary output or a memory write. *)

val rename : string -> Graph.t -> Graph.t
(** Copy of the graph under a new name (ids are renumbered compactly). *)

val renumber : ?seed:int -> Graph.t -> Graph.t
(** An isomorphic copy with node ids assigned in a deterministically
    shuffled order ([seed] selects the permutation).  Models the same
    behavior arriving from a different frontend construction order:
    {!Graph.signature} changes, {!Canon.digest} does not — the scenario
    content-addressed prediction caching exists for. *)
