module IntSet = Set.Make (Int)

type loop = {
  body : Graph.t;
  trip_count : int;
  carried : (string * string) list;
}

let find_by_name g name =
  match List.find_opt (fun n -> n.Graph.name = name) (Graph.nodes g) with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Transform: no node named %S" name)

let unroll ?name { body; trip_count; carried } =
  if trip_count < 1 then invalid_arg "Transform.unroll: trip_count < 1";
  let carried_pairs =
    List.map
      (fun (out_name, in_name) ->
        let o = find_by_name body out_name and i = find_by_name body in_name in
        if o.Graph.op <> Op.Output then
          invalid_arg (Printf.sprintf "Transform.unroll: %S is not an output" out_name);
        if i.Graph.op <> Op.Input then
          invalid_arg (Printf.sprintf "Transform.unroll: %S is not an input" in_name);
        (o, i))
      carried
  in
  let carried_out_ids = List.map (fun (o, _) -> o.Graph.id) carried_pairs in
  let carried_in_ids = List.map (fun (_, i) -> i.Graph.id) carried_pairs in
  let gname =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s_x%d" (Graph.name body) trip_count
  in
  let b = Graph.builder ~name:gname () in
  (* clone the body [trip_count] times; [feeders] maps a carried input id of
     the current iteration to the producer (new id) of the previous
     iteration's matching output value. *)
  let clone iter feeders =
    let remap = Hashtbl.create 32 in
    (* Carried inputs of iterations > 0 are replaced by direct wiring. *)
    List.iter
      (fun n ->
        let id = n.Graph.id in
        let is_carried_in = List.mem id carried_in_ids && iter > 0 in
        let is_carried_out = List.mem id carried_out_ids && iter < trip_count - 1 in
        if is_carried_in then
          Hashtbl.replace remap id (List.assoc id feeders)
        else if is_carried_out then
          (* dropped: its single predecessor's value feeds the next iter *)
          ()
        else
          let nid =
            Graph.add_node b
              ~name:(Printf.sprintf "%s_i%d" n.Graph.name iter)
              ~op:n.Graph.op ~width:n.Graph.width
          in
          Hashtbl.replace remap id nid)
      (Graph.nodes body);
    List.iter
      (fun (src, dst) ->
        match (Hashtbl.find_opt remap src, Hashtbl.find_opt remap dst) with
        | Some s, Some d -> Graph.add_edge b ~src:s ~dst:d
        | _ -> () (* edge into a dropped carried output *))
      (Graph.edges body);
    (* next iteration's feeders: for each carried pair, the new id of the
       value feeding this iteration's carried output *)
    List.map
      (fun (o, i) ->
        let producer =
          match Graph.preds body o.Graph.id with
          | [ p ] -> p
          | _ -> invalid_arg "Transform.unroll: carried output arity"
        in
        let new_producer =
          match Hashtbl.find_opt remap producer with
          | Some np -> np
          | None ->
              (* producer itself was a dropped node: cannot happen because
                 carried outputs are distinct nodes from producers *)
              invalid_arg "Transform.unroll: carried output fed by dropped node"
        in
        (i.Graph.id, new_producer))
      carried_pairs
  in
  let rec iterate iter feeders =
    if iter = trip_count then ()
    else
      let feeders' = clone iter feeders in
      iterate (iter + 1) feeders'
  in
  iterate 0 [];
  Graph.build b

let common_subexpression_elimination g =
  let b = Graph.builder ~name:(Graph.name g) () in
  let remap = Hashtbl.create 32 in
  (* canonical key -> representative new id *)
  let seen = Hashtbl.create 32 in
  let commutative = function
    | Op.Add | Op.Mult | Op.Logic -> true
    | _ -> false
  in
  List.iter
    (fun n ->
      let id = n.Graph.id in
      let operands = List.map (fun p -> Hashtbl.find remap p) (Graph.preds g id) in
      let key =
        match n.Graph.op with
        | Op.Const -> Some (Op.Const, [ Hashtbl.hash n.Graph.name ])
        | op when Op.is_computational op && not (Op.is_memory op) ->
            let ops =
              if commutative op then List.sort Int.compare operands else operands
            in
            Some (op, ops)
        | _ -> None
      in
      let existing =
        match key with Some k -> Hashtbl.find_opt seen k | None -> None
      in
      match existing with
      | Some rep -> Hashtbl.replace remap id rep
      | None ->
          let nid =
            Graph.add_node b ~name:n.Graph.name ~op:n.Graph.op ~width:n.Graph.width
          in
          List.iter (fun src -> Graph.add_edge b ~src ~dst:nid) operands;
          Hashtbl.replace remap id nid;
          (match key with Some k -> Hashtbl.replace seen k nid | None -> ()))
    (Graph.nodes g);
  Graph.build b

let is_associative = function
  | Op.Add | Op.Mult | Op.Logic -> true
  | Op.Input | Op.Output | Op.Const | Op.Sub | Op.Div | Op.Compare | Op.Shift
  | Op.Select | Op.Mem_read _ | Op.Mem_write _ ->
      false

let balance_associative g =
  (* interior node: an associative node absorbed into its single same-op
     consumer's tree *)
  let interior id =
    let n = Graph.node g id in
    is_associative n.Graph.op
    && (match Graph.succs g id with
       | [ c ] ->
           let cn = Graph.node g c in
           cn.Graph.op = n.Graph.op && cn.Graph.width = n.Graph.width
       | _ -> false)
  in
  let b = Graph.builder ~name:(Graph.name g) () in
  let remap = Hashtbl.create 32 in
  (* leaves of the tree rooted at a non-interior associative node, in
     operand order *)
  let rec leaves_of root_op width id =
    let n = Graph.node g id in
    if n.Graph.op = root_op && n.Graph.width = width && interior id then
      List.concat_map (leaves_of root_op width) (Graph.preds g id)
    else [ id ]
  in
  List.iter
    (fun n ->
      let id = n.Graph.id in
      if interior id then () (* materialized inside the root's tree *)
      else if is_associative n.Graph.op then begin
        let leaves =
          List.concat_map
            (leaves_of n.Graph.op n.Graph.width)
            (Graph.preds g id)
        in
        let leaf_ids = List.map (fun l -> Hashtbl.find remap l) leaves in
        (* balanced reduction; the final combiner keeps the root's name *)
        let rec reduce = function
          | [] -> invalid_arg "balance_associative: empty tree (internal)"
          | [ v ] -> v
          | vs ->
              let rec pair = function
                | [] -> []
                | [ v ] -> [ v ]
                | v1 :: v2 :: rest ->
                    let nn =
                      Graph.add_node b ~name:(n.Graph.name ^ "_t") ~op:n.Graph.op
                        ~width:n.Graph.width
                    in
                    Graph.add_edge b ~src:v1 ~dst:nn;
                    Graph.add_edge b ~src:v2 ~dst:nn;
                    nn :: pair rest
              in
              reduce (pair vs)
        in
        match leaf_ids with
        | [ a; b_ ] ->
            let nid =
              Graph.add_node b ~name:n.Graph.name ~op:n.Graph.op ~width:n.Graph.width
            in
            Graph.add_edge b ~src:a ~dst:nid;
            Graph.add_edge b ~src:b_ ~dst:nid;
            Hashtbl.replace remap id nid
        | leaf_ids -> Hashtbl.replace remap id (reduce leaf_ids)
      end
      else begin
        let nid =
          Graph.add_node b ~name:n.Graph.name ~op:n.Graph.op ~width:n.Graph.width
        in
        List.iter
          (fun p -> Graph.add_edge b ~src:(Hashtbl.find remap p) ~dst:nid)
          (Graph.preds g id);
        Hashtbl.replace remap id nid
      end)
    (Graph.nodes g);
  Graph.build b

let dead_node_elimination g =
  (* Backward closure from outputs and memory writes. *)
  let live = ref IntSet.empty in
  let rec visit id =
    if not (IntSet.mem id !live) then begin
      live := IntSet.add id !live;
      List.iter visit (Graph.preds g id)
    end
  in
  List.iter
    (fun n ->
      match n.Graph.op with
      | Op.Output | Op.Mem_write _ -> visit n.Graph.id
      | _ -> ())
    (Graph.nodes g);
  let b = Graph.builder ~name:(Graph.name g) () in
  let remap = Hashtbl.create 32 in
  List.iter
    (fun n ->
      if IntSet.mem n.Graph.id !live then
        Hashtbl.replace remap n.Graph.id
          (Graph.add_node b ~name:n.Graph.name ~op:n.Graph.op ~width:n.Graph.width))
    (Graph.nodes g);
  List.iter
    (fun (src, dst) ->
      match (Hashtbl.find_opt remap src, Hashtbl.find_opt remap dst) with
      | Some s, Some d -> Graph.add_edge b ~src:s ~dst:d
      | _ -> ())
    (Graph.edges g);
  Graph.build b

let rename name g =
  let b = Graph.builder ~name () in
  let remap = Hashtbl.create 32 in
  List.iter
    (fun n ->
      Hashtbl.replace remap n.Graph.id
        (Graph.add_node b ~name:n.Graph.name ~op:n.Graph.op ~width:n.Graph.width))
    (Graph.nodes g);
  List.iter
    (fun (src, dst) ->
      Graph.add_edge b ~src:(Hashtbl.find remap src) ~dst:(Hashtbl.find remap dst))
    (Graph.edges g);
  Graph.build b

let renumber ?(seed = 1) g =
  (* a deterministic Lehmer permutation of the node-insertion order: every
     node keeps its operation, width and name but receives a different id,
     so the rebuilt graph is isomorphic to [g] while Graph.signature (and
     any other id-bearing identity) differs *)
  let nodes = Array.of_list (Graph.nodes g) in
  let n = Array.length nodes in
  let state = ref (max 1 (seed land 0x3FFFFFFF)) in
  let next_int bound =
    state := (!state * 48271) mod 0x7FFFFFFF;
    !state mod bound
  in
  for i = n - 1 downto 1 do
    let j = next_int (i + 1) in
    let tmp = nodes.(i) in
    nodes.(i) <- nodes.(j);
    nodes.(j) <- tmp
  done;
  let b = Graph.builder ~name:(Graph.name g) () in
  let remap = Hashtbl.create 32 in
  Array.iter
    (fun (nd : Graph.node) ->
      Hashtbl.replace remap nd.Graph.id
        (Graph.add_node b ~name:nd.Graph.name ~op:nd.Graph.op
           ~width:nd.Graph.width))
    nodes;
  List.iter
    (fun (src, dst) ->
      Graph.add_edge b ~src:(Hashtbl.find remap src) ~dst:(Hashtbl.find remap dst))
    (Graph.edges g);
  Graph.build b
