let default_width = 16

let ar_lattice_filter ?(width = default_width) () =
  let b = Graph.builder ~name:"ar_lattice_filter" () in
  let input name = Graph.add_node b ~name ~op:Op.Input ~width in
  let const name = Graph.add_node b ~name ~op:Op.Const ~width in
  let mul name x y =
    let n = Graph.add_node b ~name ~op:Op.Mult ~width in
    Graph.add_edge b ~src:x ~dst:n;
    Graph.add_edge b ~src:y ~dst:n;
    n
  in
  let add name x y =
    let n = Graph.add_node b ~name ~op:Op.Add ~width in
    Graph.add_edge b ~src:x ~dst:n;
    Graph.add_edge b ~src:y ~dst:n;
    n
  in
  let output name v =
    let o = Graph.add_node b ~name ~op:Op.Output ~width in
    Graph.add_edge b ~src:v ~dst:o
  in
  let f0 = input "f_in" and b0 = input "b_in" in
  (* Four lattice sections; each contributes 4 multiplications and
     3 additions (total 16 mul + 12 add = 28 operations, as in Fig. 6). *)
  let section k (f, b_) =
    let k1 = const (Printf.sprintf "K%d_f" k)
    and k2 = const (Printf.sprintf "K%d_b" k)
    and c = const (Printf.sprintf "C%d" k)
    and d = const (Printf.sprintf "D%d" k) in
    let t1 = mul (Printf.sprintf "m%d_fb" k) k1 b_ in
    let t2 = mul (Printf.sprintf "m%d_bf" k) k2 f in
    let f1 = add (Printf.sprintf "a%d_f" k) f t1 in
    let b1 = add (Printf.sprintf "a%d_b" k) b_ t2 in
    (* the section output taps scale the *incoming* lattice values, keeping
       all four multiplications of a section on one level (the lattice is
       2 levels deep per section, 8 overall) *)
    let u1 = mul (Printf.sprintf "m%d_c" k) c f in
    let u2 = mul (Printf.sprintf "m%d_d" k) d b_ in
    let y = add (Printf.sprintf "a%d_y" k) u1 u2 in
    output (Printf.sprintf "y%d" k) y;
    (f1, b1)
  in
  let f4, b4 =
    List.fold_left (fun fb k -> section k fb) (f0, b0) [ 1; 2; 3; 4 ]
  in
  output "f_out" f4;
  output "b_out" b4;
  Graph.build b

let elliptic_wave_filter ?(width = default_width) () =
  let b = Graph.builder ~name:"elliptic_wave_filter" () in
  let input name = Graph.add_node b ~name ~op:Op.Input ~width in
  let const name = Graph.add_node b ~name ~op:Op.Const ~width in
  let add name x y =
    let n = Graph.add_node b ~name ~op:Op.Add ~width in
    Graph.add_edge b ~src:x ~dst:n;
    Graph.add_edge b ~src:y ~dst:n;
    n
  in
  let mul name c x =
    let n = Graph.add_node b ~name ~op:Op.Mult ~width in
    Graph.add_edge b ~src:c ~dst:n;
    Graph.add_edge b ~src:x ~dst:n;
    n
  in
  let output name v =
    let o = Graph.add_node b ~name ~op:Op.Output ~width in
    Graph.add_edge b ~src:v ~dst:o
  in
  (* Fifth-order wave digital filter, one sample iteration unrolled:
     primary input plus 7 state inputs, 26 additions, 8 constant
     multiplications, 7 next-state outputs and the sample output. *)
  let x = input "x" in
  let s = Array.init 7 (fun i -> input (Printf.sprintf "s%d" i)) in
  let c = Array.init 8 (fun i -> const (Printf.sprintf "c%d" i)) in
  let a1 = add "a1" x s.(0) in
  let a2 = add "a2" s.(1) s.(2) in
  let a3 = add "a3" a1 a2 in
  let m1 = mul "m1" c.(0) a3 in
  let a4 = add "a4" m1 s.(1) in
  let a5 = add "a5" m1 s.(2) in
  let a6 = add "a6" a4 a5 in
  let m2 = mul "m2" c.(1) a6 in
  let a7 = add "a7" m2 a1 in
  let a8 = add "a8" a7 s.(3) in
  let m3 = mul "m3" c.(2) a8 in
  let a9 = add "a9" m3 s.(3) in
  let a10 = add "a10" a9 a7 in
  let a11 = add "a11" s.(4) s.(5) in
  let a12 = add "a12" a10 a11 in
  let m4 = mul "m4" c.(3) a12 in
  let a13 = add "a13" m4 s.(4) in
  let a14 = add "a14" m4 s.(5) in
  let a15 = add "a15" a13 a14 in
  let m5 = mul "m5" c.(4) a15 in
  let a16 = add "a16" m5 a10 in
  let a17 = add "a17" a16 s.(6) in
  let m6 = mul "m6" c.(5) a17 in
  let a18 = add "a18" m6 s.(6) in
  let a19 = add "a19" a18 a16 in
  let m7 = mul "m7" c.(6) a19 in
  let a20 = add "a20" m7 a17 in
  let m8 = mul "m8" c.(7) a20 in
  let a21 = add "a21" m8 a19 in
  let a22 = add "a22" a21 a12 in
  let a23 = add "a23" a4 a8 in
  let a24 = add "a24" a13 a18 in
  let a25 = add "a25" a23 a22 in
  let a26 = add "a26" a24 a25 in
  output "y" a26;
  output "ns0" a3;
  output "ns1" a6;
  output "ns2" a9;
  output "ns3" a15;
  output "ns4" a20;
  output "ns5" a21;
  output "ns6" a22;
  Graph.build b

let fir_filter ?(width = default_width) ~taps () =
  if taps < 2 then invalid_arg "Benchmarks.fir_filter: taps < 2";
  let b = Graph.builder ~name:(Printf.sprintf "fir%d" taps) () in
  let products =
    List.map
      (fun i ->
        let x = Graph.add_node b ~name:(Printf.sprintf "x%d" i) ~op:Op.Input ~width in
        let c = Graph.add_node b ~name:(Printf.sprintf "h%d" i) ~op:Op.Const ~width in
        let m = Graph.add_node b ~name:(Printf.sprintf "p%d" i) ~op:Op.Mult ~width in
        Graph.add_edge b ~src:x ~dst:m;
        Graph.add_edge b ~src:c ~dst:m;
        m)
      (Chop_util.Listx.range 0 (taps - 1))
  in
  (* balanced adder tree *)
  let rec reduce level = function
    | [] -> invalid_arg "Benchmarks.fir_filter: empty"
    | [ v ] -> v
    | vs ->
        let rec pair i = function
          | [] -> []
          | [ v ] -> [ v ]
          | v1 :: v2 :: rest ->
              let a =
                Graph.add_node b
                  ~name:(Printf.sprintf "s%d_%d" level i)
                  ~op:Op.Add ~width
              in
              Graph.add_edge b ~src:v1 ~dst:a;
              Graph.add_edge b ~src:v2 ~dst:a;
              a :: pair (i + 1) rest
        in
        reduce (level + 1) (pair 0 vs)
  in
  let y = reduce 0 products in
  let o = Graph.add_node b ~name:"y" ~op:Op.Output ~width in
  Graph.add_edge b ~src:y ~dst:o;
  Graph.build b

let diffeq ?(width = default_width) () =
  let b = Graph.builder ~name:"diffeq" () in
  let input name = Graph.add_node b ~name ~op:Op.Input ~width in
  let const name = Graph.add_node b ~name ~op:Op.Const ~width in
  let binop op name x y =
    let n = Graph.add_node b ~name ~op ~width in
    Graph.add_edge b ~src:x ~dst:n;
    Graph.add_edge b ~src:y ~dst:n;
    n
  in
  let output name v =
    let o = Graph.add_node b ~name ~op:Op.Output ~width in
    Graph.add_edge b ~src:v ~dst:o
  in
  let x = input "x" and y = input "y" and u = input "u" in
  let dx = input "dx" and a = input "a" in
  let three = const "three" in
  let m1 = binop Op.Mult "m1" three x in
  let m2 = binop Op.Mult "m2" m1 u in
  let m3 = binop Op.Mult "m3" m2 dx in
  let m4 = binop Op.Mult "m4" three y in
  let m5 = binop Op.Mult "m5" m4 dx in
  let m6 = binop Op.Mult "m6" u dx in
  let s1 = binop Op.Sub "s1" u m3 in
  let s2 = binop Op.Sub "s2" s1 m5 in
  let a1 = binop Op.Add "a1" x dx in
  let a2 = binop Op.Add "a2" y m6 in
  let cmp = binop Op.Compare "cmp" a1 a in
  output "u1" s2;
  output "x1" a1;
  output "y1" a2;
  output "cond" cmp;
  Graph.build b

let dct8 ?(width = default_width) () =
  let b = Graph.builder ~name:"dct8" () in
  let input name = Graph.add_node b ~name ~op:Op.Input ~width in
  let const name = Graph.add_node b ~name ~op:Op.Const ~width in
  let add name x y =
    let n = Graph.add_node b ~name ~op:Op.Add ~width in
    Graph.add_edge b ~src:x ~dst:n;
    Graph.add_edge b ~src:y ~dst:n;
    n
  in
  let sub name x y =
    let n = Graph.add_node b ~name ~op:Op.Sub ~width in
    Graph.add_edge b ~src:x ~dst:n;
    Graph.add_edge b ~src:y ~dst:n;
    n
  in
  let mul name c x =
    let n = Graph.add_node b ~name ~op:Op.Mult ~width in
    Graph.add_edge b ~src:c ~dst:n;
    Graph.add_edge b ~src:x ~dst:n;
    n
  in
  let output name v =
    let o = Graph.add_node b ~name ~op:Op.Output ~width in
    Graph.add_edge b ~src:v ~dst:o
  in
  let x = Array.init 8 (fun i -> input (Printf.sprintf "x%d" i)) in
  let c = Array.init 7 (fun i -> const (Printf.sprintf "c%d" i)) in
  (* stage 1: 8 butterflies halves *)
  let s1a = Array.init 4 (fun i -> add (Printf.sprintf "s1a%d" i) x.(i) x.(7 - i)) in
  let s1s = Array.init 4 (fun i -> sub (Printf.sprintf "s1s%d" i) x.(i) x.(7 - i)) in
  (* stage 2: even part butterflies, odd part rotations *)
  let e_a0 = add "e_a0" s1a.(0) s1a.(3) in
  let e_a1 = add "e_a1" s1a.(1) s1a.(2) in
  let e_s0 = sub "e_s0" s1a.(0) s1a.(3) in
  let e_s1 = sub "e_s1" s1a.(1) s1a.(2) in
  (* odd part: two rotators (3 mult + 3 add each in the fast form) *)
  let rot tag k a b =
    (* (a, b) -> (a cos + b sin, -a sin + b cos) via 3 mults, 3 adds *)
    let t = mul (tag ^ "_mt") c.(k) (add (tag ^ "_s") a b) in
    let u = mul (tag ^ "_mu") c.(k + 1) a in
    let v = mul (tag ^ "_mv") c.(k + 2) b in
    (sub (tag ^ "_o0") t u, sub (tag ^ "_o1") t v)
  in
  let o0, o1 = rot "r1" 0 s1s.(0) s1s.(3) in
  let o2, o3 = rot "r2" 3 s1s.(1) s1s.(2) in
  (* stage 3 *)
  let y0 = add "y0pre" e_a0 e_a1 in
  let y4 = sub "y4pre" e_a0 e_a1 in
  let t2, t3 = rot "r3" 0 e_s0 e_s1 in
  let od_a0 = add "od_a0" o0 o2 in
  let od_a1 = add "od_a1" o1 o3 in
  let od_s0 = sub "od_s0" o0 o2 in
  let od_s1 = sub "od_s1" o1 o3 in
  (* stage 4: final scalings *)
  let y1 = add "y1pre" od_a0 od_a1 in
  let y7 = sub "y7pre" od_a0 od_a1 in
  let y3 = mul "y3pre" c.(5) od_s0 in
  let y5 = mul "y5pre" c.(6) od_s1 in
  output "y0" y0;
  output "y1" y1;
  output "y2" t2;
  output "y3" y3;
  output "y4" y4;
  output "y5" y5;
  output "y6" t3;
  output "y7" y7;
  Graph.build b

let memory_pipeline ?(width = default_width) ~blocks () =
  let src, dst = blocks in
  let b = Graph.builder ~name:"memory_pipeline" () in
  let const name = Graph.add_node b ~name ~op:Op.Const ~width in
  let r1 = Graph.add_node b ~name:"load0" ~op:(Op.Mem_read src) ~width in
  let r2 = Graph.add_node b ~name:"load1" ~op:(Op.Mem_read src) ~width in
  let c1 = const "k0" and c2 = const "k1" in
  let m1 = Graph.add_node b ~name:"scale0" ~op:Op.Mult ~width in
  let m2 = Graph.add_node b ~name:"scale1" ~op:Op.Mult ~width in
  Graph.add_edge b ~src:r1 ~dst:m1;
  Graph.add_edge b ~src:c1 ~dst:m1;
  Graph.add_edge b ~src:r2 ~dst:m2;
  Graph.add_edge b ~src:c2 ~dst:m2;
  let s = Graph.add_node b ~name:"acc" ~op:Op.Add ~width in
  Graph.add_edge b ~src:m1 ~dst:s;
  Graph.add_edge b ~src:m2 ~dst:s;
  let w = Graph.add_node b ~name:"store" ~op:(Op.Mem_write dst) ~width in
  Graph.add_edge b ~src:s ~dst:w;
  let o = Graph.add_node b ~name:"y" ~op:Op.Output ~width in
  Graph.add_edge b ~src:s ~dst:o;
  Graph.build b

let pcm_pwm ?(width = default_width) () =
  let b = Graph.builder ~name:"pcm_pwm" () in
  let input name = Graph.add_node b ~name ~op:Op.Input ~width in
  let const name = Graph.add_node b ~name ~op:Op.Const ~width in
  let binop op name x y =
    let n = Graph.add_node b ~name ~op ~width in
    Graph.add_edge b ~src:x ~dst:n;
    Graph.add_edge b ~src:y ~dst:n;
    n
  in
  let add = binop Op.Add
  and sub = binop Op.Sub
  and mul = binop Op.Mult
  and cmp = binop Op.Compare in
  let output name v =
    let o = Graph.add_node b ~name ~op:Op.Output ~width in
    Graph.add_edge b ~src:v ~dst:o
  in
  (* PCM decode stage: a 6-tap reconstruction filter — multiplier-heavy
     and shallow (all taps on one level), a poor fit for a small die but a
     short job for a processor. *)
  let x = input "pcm_in" in
  let taps =
    List.init 6 (fun i ->
        mul (Printf.sprintf "tap%d" i) x (const (Printf.sprintf "h%d" i)))
  in
  let pcm =
    match taps with
    | t0 :: rest ->
        List.fold_left
          (fun acc (i, t) -> add (Printf.sprintf "acc%d" i) acc t)
          t0
          (List.mapi (fun i t -> (i, t)) rest)
    | [] -> assert false
  in
  output "pcm_out" pcm;
  (* PWM modulation stage: the decoded sample against a bank of ramp
     phases — many cheap offset/compare operations plus a duty-count
     reduction tree.  Trivial area in gates, but a long serial grind on a
     narrow processor. *)
  let ramp = input "ramp" in
  let duties =
    List.init 8 (fun i ->
        let phase =
          add (Printf.sprintf "ph%d" i) pcm (const (Printf.sprintf "k%d" i))
        in
        let err = sub (Printf.sprintf "err%d" i) phase ramp in
        cmp (Printf.sprintf "duty%d" i) err phase)
  in
  let pwm =
    match duties with
    | d0 :: rest ->
        List.fold_left
          (fun acc (i, d) -> add (Printf.sprintf "sum%d" i) acc d)
          d0
          (List.mapi (fun i d -> (i, d)) rest)
    | [] -> assert false
  in
  output "pwm_out" pwm;
  Graph.build b

let random_dag ?(width = default_width) ~ops ~seed () =
  if ops < 1 then invalid_arg "Benchmarks.random_dag: ops < 1";
  let rng = Random.State.make [| seed; ops |] in
  let b = Graph.builder ~name:(Printf.sprintf "random_%d_%d" ops seed) () in
  let n_inputs = max 2 (ops / 4) in
  let pool = ref [] in
  for i = 0 to n_inputs - 1 do
    pool := Graph.add_node b ~name:(Printf.sprintf "x%d" i) ~op:Op.Input ~width :: !pool
  done;
  for i = 0 to ops - 1 do
    let op = if Random.State.bool rng then Op.Add else Op.Mult in
    let n = Graph.add_node b ~name:(Printf.sprintf "op%d" i) ~op ~width in
    let avail = Array.of_list !pool in
    let pick () = avail.(Random.State.int rng (Array.length avail)) in
    Graph.add_edge b ~src:(pick ()) ~dst:n;
    Graph.add_edge b ~src:(pick ()) ~dst:n;
    pool := n :: !pool
  done;
  (* the most recent values are the likeliest sinks; expose them as outputs *)
  let sinks = Chop_util.Listx.take (max 1 (ops / 8)) !pool in
  List.iteri
    (fun i v ->
      let o = Graph.add_node b ~name:(Printf.sprintf "y%d" i) ~op:Op.Output ~width in
      Graph.add_edge b ~src:v ~dst:o)
    sinks;
  Graph.build b
