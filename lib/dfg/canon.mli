(** Canonical (content-addressed) identity of data-flow graphs.

    {!Graph.signature} digests a graph {e as constructed}: node ids enter
    the hash, so two isomorphic graphs built in different orders — the same
    benchmark assembled by two frontends, the same partition extracted from
    two differently-numbered parents — get different signatures.  This
    module assigns the {e structural} identity instead: {!digest} is
    invariant under node renumbering and under permutation of the node and
    edge insertion orders, so isomorphic-by-construction graphs share one
    digest process-wide.

    The digest is built from Weisfeiler–Lehman-style cone hashes.  Each
    node's {e upward} hash folds its operation, width and the sorted
    multiset of its predecessors' upward hashes (the full input cone);
    each node's {e downward} hash does the same over successors (the full
    output cone).  The graph digest is the MD5 of the node and edge counts
    plus the sorted multiset of per-node (upward, downward) hash pairs.
    Operand order is deliberately ignored: BAD predictions depend on the
    dependence structure, not on which input feeds which port, so [a - b]
    and [b - a] may share prediction-cache entries.  Like every MD5-based
    key in this codebase the identity is probabilistic; the pair of
    independent cone hashes makes an accidental collision between
    non-isomorphic graphs comparable to an MD5 collision.

    Node and graph {e names} are excluded throughout — relabeling a
    partition never changes its canonical identity. *)

type t = private {
  digest : string;  (** hex MD5 of the canonical form *)
  graph : Graph.t;
      (** the representative: the first graph interned with this digest *)
}

val digest : Graph.t -> string
(** The canonical structural digest, without touching the sharing table. *)

val of_graph : Graph.t -> t
(** Interns the graph: computes {!digest} and returns the process-wide
    canonical value for it.  Two isomorphic graphs — however and whenever
    constructed, on any domain — map to the {e physically} same [t], so
    [==] decides structural equality in O(1) after interning.  The first
    graph seen for a digest becomes the representative kept alive by the
    sharing table. *)

val equal : t -> t -> bool
(** Physical equality — valid because {!of_graph} hash-conses. *)

val table_length : unit -> int
(** Number of distinct structures interned so far (the sharing table lives
    for the process; it is bounded by the number of distinct graph
    structures ever interned, not by call count). *)
