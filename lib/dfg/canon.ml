type t = { digest : string; graph : Graph.t }

(* One cone hash: the node's own shape plus the sorted multiset of its
   neighbours' hashes on one side.  Hex digests are fixed-width, so
   sorting and concatenating them is unambiguous. *)
let cone_hash dir op width neighbour_hashes =
  let hs = List.sort String.compare neighbour_hashes in
  let buf = Buffer.create 128 in
  Buffer.add_char buf dir;
  Buffer.add_string buf (Op.to_string op);
  Buffer.add_char buf ':';
  Buffer.add_string buf (string_of_int width);
  Buffer.add_char buf '[';
  List.iter (Buffer.add_string buf) hs;
  Buffer.add_char buf ']';
  Digest.to_hex (Digest.string (Buffer.contents buf))

let digest g =
  let nodes = Graph.nodes g in
  (* topological order, per Graph.nodes *)
  let up = Hashtbl.create 64 and down = Hashtbl.create 64 in
  List.iter
    (fun (n : Graph.node) ->
      let preds =
        List.map (fun p -> Hashtbl.find up p) (Graph.preds g n.Graph.id)
      in
      Hashtbl.replace up n.Graph.id
        (cone_hash '^' n.Graph.op n.Graph.width preds))
    nodes;
  List.iter
    (fun (n : Graph.node) ->
      let succs =
        List.map (fun s -> Hashtbl.find down s) (Graph.succs g n.Graph.id)
      in
      Hashtbl.replace down n.Graph.id
        (cone_hash 'v' n.Graph.op n.Graph.width succs))
    (List.rev nodes);
  let pairs =
    List.sort String.compare
      (List.map
         (fun (n : Graph.node) ->
           Hashtbl.find up n.Graph.id ^ Hashtbl.find down n.Graph.id)
         nodes)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (string_of_int (List.length nodes));
  Buffer.add_char buf ':';
  Buffer.add_string buf (string_of_int (List.length (Graph.edges g)));
  Buffer.add_char buf '|';
  List.iter (Buffer.add_string buf) pairs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* The process-wide sharing table: digest -> canonical value.  Guarded by
   a mutex so sessions running on separate domains intern concurrently;
   entries live for the process (one per distinct structure ever seen). *)
let table : (string, t) Hashtbl.t = Hashtbl.create 64
let table_mu = Mutex.create ()

let of_graph g =
  let d = digest g in
  Mutex.lock table_mu;
  let v =
    match Hashtbl.find_opt table d with
    | Some v -> v
    | None ->
        let v = { digest = d; graph = g } in
        Hashtbl.add table d v;
        v
  in
  Mutex.unlock table_mu;
  v

let equal a b = a == b

let table_length () =
  Mutex.lock table_mu;
  let n = Hashtbl.length table in
  Mutex.unlock table_mu;
  n
