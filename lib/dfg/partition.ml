module IntMap = Map.Make (Int)
module SMap = Map.Make (String)

type t = { label : string; members : Graph.node_id list }

let make ~label members =
  if members = [] then invalid_arg "Partition.make: empty partition";
  { label; members = List.sort_uniq Int.compare members }

type partitioning = { graph : Graph.t; parts : t list }

exception Invalid_partitioning of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid_partitioning s)) fmt

let owner_map g parts =
  let owners =
    List.fold_left
      (fun acc p ->
        List.fold_left
          (fun acc id ->
            if not (Graph.mem g id) then fail "partition %s: unknown node %d" p.label id;
            let n = Graph.node g id in
            if not (Op.is_computational n.Graph.op) then
              fail "partition %s: node %s is not computational" p.label n.Graph.name;
            if IntMap.mem id acc then
              fail "node %s assigned to both %s and %s" n.Graph.name
                (IntMap.find id acc).label p.label;
            IntMap.add id p acc)
          acc p.members)
      IntMap.empty parts
  in
  List.iter
    (fun n ->
      if Op.is_computational n.Graph.op && not (IntMap.mem n.Graph.id owners) then
        fail "operation %s is not assigned to any partition" n.Graph.name)
    (Graph.nodes g);
  owners

let quotient_edges_raw g owners =
  List.fold_left
    (fun acc (src, dst) ->
      match (IntMap.find_opt src owners, IntMap.find_opt dst owners) with
      | Some p1, Some p2 when p1.label <> p2.label -> (p1.label, p2.label) :: acc
      | _ -> acc)
    [] (Graph.edges g)
  |> List.sort_uniq Stdlib.compare

let check_acyclic labels edges =
  (* Kahn over the quotient graph. *)
  let indeg = Hashtbl.create 8 in
  List.iter (fun l -> Hashtbl.replace indeg l 0) labels;
  List.iter (fun (_, d) -> Hashtbl.replace indeg d (1 + Hashtbl.find indeg d)) edges;
  let queue = Queue.create () in
  Hashtbl.iter (fun l d -> if d = 0 then Queue.add l queue) indeg;
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let l = Queue.pop queue in
    incr visited;
    List.iter
      (fun (s, d) ->
        if s = l then begin
          let deg = Hashtbl.find indeg d - 1 in
          Hashtbl.replace indeg d deg;
          if deg = 0 then Queue.add d queue
        end)
      edges
  done;
  if !visited <> List.length labels then
    fail
      "mutual data dependency between partitions: the quotient graph is cyclic \
       (paper section 2.3 requires independently implementable partitions)"

let partitioning g parts =
  if parts = [] then fail "empty partitioning";
  let labels = List.map (fun p -> p.label) parts in
  if List.length (List.sort_uniq String.compare labels) <> List.length labels then
    fail "duplicate partition label";
  let owners = owner_map g parts in
  check_acyclic labels (quotient_edges_raw g owners);
  { graph = g; parts }

let find pg label = List.find (fun p -> p.label = label) pg.parts

let part_of pg id =
  List.find (fun p -> List.mem id p.members) pg.parts

let subgraph pg p =
  let sub, _, _ = Graph.induced pg.graph ~name:p.label p.members in
  sub

type flow = {
  producer : string;
  consumer : string;
  bits : Chop_util.Units.bits;
  values : Graph.node_id list;
}

let flows pg =
  let g = pg.graph in
  let owners = owner_map g pg.parts in
  (* (producer label, consumer label) -> set of producing node ids *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (src, dst) ->
      match (IntMap.find_opt src owners, IntMap.find_opt dst owners) with
      | Some p1, Some p2 when p1.label <> p2.label ->
          let key = (p1.label, p2.label) in
          let cur = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
          if not (List.mem src cur) then Hashtbl.replace tbl key (src :: cur)
      | _ -> ())
    (Graph.edges g);
  Hashtbl.fold
    (fun (producer, consumer) values acc ->
      let bits =
        Chop_util.Listx.sum_by (fun id -> (Graph.node g id).Graph.width) values
      in
      { producer; consumer; bits; values = List.sort Int.compare values } :: acc)
    tbl []
  |> List.sort (fun a b -> Stdlib.compare (a.producer, a.consumer) (b.producer, b.consumer))

let external_input_bits pg p =
  let g = pg.graph in
  let members = p.members in
  List.filter_map
    (fun n ->
      match n.Graph.op with
      | Op.Input ->
          let feeds =
            List.exists (fun s -> List.mem s members) (Graph.succs g n.Graph.id)
          in
          if feeds then Some n.Graph.width else None
      | _ -> None)
    (Graph.nodes g)
  |> List.fold_left ( + ) 0

let external_output_bits pg p =
  let g = pg.graph in
  List.fold_left
    (fun acc id ->
      let drives_output =
        List.exists
          (fun s -> (Graph.node g s).Graph.op = Op.Output)
          (Graph.succs g id)
      in
      if drives_output then acc + (Graph.node g id).Graph.width else acc)
    0 p.members

let cut_bits_total pg = Chop_util.Listx.sum_by (fun f -> f.bits) (flows pg)

let quotient_edges pg =
  let owners = owner_map pg.graph pg.parts in
  quotient_edges_raw pg.graph owners

let topological_parts pg =
  let edges = quotient_edges pg in
  let remaining = ref pg.parts and order = ref [] in
  let placed l = List.exists (fun p -> p.label = l) !order in
  while !remaining <> [] do
    let ready, rest =
      List.partition
        (fun p ->
          List.for_all (fun (s, d) -> d <> p.label || placed s) edges)
        !remaining
    in
    (match ready with
    | [] -> fail "topological_parts: cyclic quotient graph"
    | _ -> ());
    order := !order @ ready;
    remaining := rest
  done;
  !order

(* Edit primitives.  Each rebuilds the part list and re-runs the full
   [partitioning] validator, so coverage, disjointness and quotient
   acyclicity hold for every [Ok] result by construction. *)

let revalidate pg parts =
  match partitioning pg.graph parts with
  | pg' -> Ok pg'
  | exception Invalid_partitioning msg -> Error msg

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let move_op pg ~op ~to_ =
  match List.find_opt (fun p -> List.mem op p.members) pg.parts with
  | None -> err "operation %d is not in any partition" op
  | Some src ->
      if not (List.exists (fun p -> p.label = to_) pg.parts) then
        err "unknown partition %s" to_
      else if src.label = to_ then err "operation %d is already in %s" op to_
      else if List.compare_length_with src.members 1 = 0 then
        err "moving operation %d would empty partition %s" op src.label
      else
        let parts =
          List.map
            (fun p ->
              if p.label = src.label then
                make ~label:p.label (List.filter (fun id -> id <> op) p.members)
              else if p.label = to_ then make ~label:p.label (op :: p.members)
              else p)
            pg.parts
        in
        revalidate pg parts

let merge_parts pg ~src ~dst =
  match
    ( List.find_opt (fun p -> p.label = src) pg.parts,
      List.find_opt (fun p -> p.label = dst) pg.parts )
  with
  | None, _ -> err "unknown partition %s" src
  | _, None -> err "unknown partition %s" dst
  | Some _, Some _ when src = dst -> err "cannot merge %s with itself" src
  | Some sp, Some _ ->
      let parts =
        List.filter_map
          (fun p ->
            if p.label = src then None
            else if p.label = dst then
              Some (make ~label:p.label (sp.members @ p.members))
            else Some p)
          pg.parts
      in
      revalidate pg parts

let split_part pg ~label ~members ~new_label =
  match List.find_opt (fun p -> p.label = label) pg.parts with
  | None -> err "unknown partition %s" label
  | Some p ->
      if List.exists (fun q -> q.label = new_label) pg.parts then
        err "partition %s already exists" new_label
      else if members = [] then err "split of %s selects no operations" label
      else (
        match List.find_opt (fun id -> not (List.mem id p.members)) members with
        | Some id -> err "operation %d is not in partition %s" id label
        | None ->
            let moved = List.sort_uniq Int.compare members in
            let rest =
              List.filter (fun id -> not (List.mem id moved)) p.members
            in
            if rest = [] then
              err "split would move every operation out of %s" label
            else
              let parts =
                List.concat_map
                  (fun q ->
                    if q.label = label then
                      [ make ~label (rest : Graph.node_id list);
                        make ~label:new_label moved ]
                    else [ q ])
                  pg.parts
              in
              revalidate pg parts)

let whole g =
  let members = List.map (fun n -> n.Graph.id) (Graph.operations g) in
  partitioning g [ make ~label:"P1" members ]

let by_levels g ~k =
  if k < 1 then invalid_arg "Partition.by_levels: k < 1";
  let levels = Analysis.levels g in
  if k > List.length levels then
    invalid_arg
      (Printf.sprintf "Partition.by_levels: k = %d exceeds %d levels" k
         (List.length levels));
  let total = Chop_util.Listx.sum_by List.length levels in
  let target = float_of_int total /. float_of_int k in
  (* greedy contiguous grouping of levels into k balanced buckets *)
  let groups = Array.make k [] in
  let remaining_levels = ref (List.length levels) in
  let idx = ref 0 and count = ref 0 in
  List.iter
    (fun lvl ->
      let must_leave = k - !idx - 1 in
      let close_now =
        !idx < k - 1
        && ((float_of_int (!count + List.length lvl) >= target && !count > 0)
           || !remaining_levels <= must_leave + 1)
      in
      if close_now && !count > 0 then begin
        incr idx;
        count := 0
      end;
      groups.(!idx) <- groups.(!idx) @ lvl;
      count := !count + List.length lvl;
      decr remaining_levels)
    levels;
  let parts =
    Array.to_list groups
    |> List.mapi (fun i members -> (i, members))
    |> List.filter_map (fun (i, members) ->
           if members = [] then None
           else Some (make ~label:(Printf.sprintf "P%d" (i + 1)) members))
  in
  partitioning g parts

let pp ppf pg =
  Format.fprintf ppf "@[<v>partitioning of %s into %d:@," (Graph.name pg.graph)
    (List.length pg.parts);
  List.iter
    (fun p ->
      Format.fprintf ppf "  %s: %d operations@," p.label (List.length p.members))
    pg.parts;
  Format.fprintf ppf "@]"
