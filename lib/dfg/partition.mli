(** Behavioral partitions.

    A partitioning assigns every computational node of a DFG to exactly one
    named partition.  CHOP requires that no two partitions have mutual data
    dependency (paper, section 2.3): the quotient graph over partitions must
    be acyclic, because each partition is predicted and implemented
    independently. *)

type t = private {
  label : string;
  members : Graph.node_id list;  (** computational nodes, sorted *)
}

val make : label:string -> Graph.node_id list -> t
(** @raise Invalid_argument on an empty member list. *)

type partitioning = private {
  graph : Graph.t;
  parts : t list;
}

exception Invalid_partitioning of string

val partitioning : Graph.t -> t list -> partitioning
(** Validates and freezes a partitioning.  @raise Invalid_partitioning when
    members are unknown or non-computational, a node is assigned twice or
    not at all, a partition label repeats, or the quotient graph over the
    partitions is cyclic (mutual data dependency). *)

val find : partitioning -> string -> t
(** @raise Not_found for an unknown label. *)

val part_of : partitioning -> Graph.node_id -> t
(** Partition owning a computational node.  @raise Not_found otherwise. *)

val subgraph : partitioning -> t -> Graph.t
(** The induced sub-DFG of a partition, with boundary [Input]/[Output] nodes
    for cut values (see {!Graph.induced}). *)

(** {1 Cut analysis} *)

type flow = {
  producer : string;  (** producing partition label *)
  consumer : string;  (** consuming partition label *)
  bits : Chop_util.Units.bits;  (** distinct value bits crossing the cut *)
  values : Graph.node_id list;  (** producing nodes of the cut values *)
}

val flows : partitioning -> flow list
(** One flow per ordered (producer, consumer) partition pair with at least
    one cut value.  A value consumed by several partitions appears in each
    consumer's flow. *)

val external_input_bits : partitioning -> t -> Chop_util.Units.bits
(** Bits of primary-input values (of the original graph) consumed by the
    partition — these arrive from off-board. *)

val external_output_bits : partitioning -> t -> Chop_util.Units.bits
(** Bits of values the partition drives to primary outputs. *)

val cut_bits_total : partitioning -> Chop_util.Units.bits
(** Total inter-partition cut size, counting each (value, consumer pair)
    once — the classic min-cut objective, for baseline comparison. *)

val topological_parts : partitioning -> t list
(** Partitions in a topological order of the quotient graph. *)

val quotient_edges : partitioning -> (string * string) list
(** Ordered dependence edges between partition labels, deduplicated. *)

(** {1 Edit primitives}

    Interactive edits from the paper's workflow (section 2.2): each returns a
    freshly validated partitioning, or [Error reason] when the edit would
    violate an invariant (coverage, disjointness, non-empty partitions,
    acyclic quotient graph).  Edits never raise. *)

val move_op :
  partitioning -> op:Graph.node_id -> to_:string -> (partitioning, string) result
(** Move one operation into partition [to_].  Rejected when the operation is
    unknown, already in [to_], or moving it would empty its partition. *)

val merge_parts :
  partitioning -> src:string -> dst:string -> (partitioning, string) result
(** Absorb every operation of [src] into [dst]; [src] disappears and [dst]
    keeps its label.  Rejected when either label is unknown or [src = dst]. *)

val split_part :
  partitioning ->
  label:string ->
  members:Graph.node_id list ->
  new_label:string ->
  (partitioning, string) result
(** Move [members] of partition [label] into a fresh partition [new_label].
    Rejected when a member is outside [label], [new_label] collides with an
    existing label, or either side of the split would be empty. *)

(** {1 Automatic generation} *)

val whole : Graph.t -> partitioning
(** Single partition holding every operation. *)

val by_levels : Graph.t -> k:int -> partitioning
(** Horizontal cuts: splits the ASAP level structure into [k] contiguous
    groups of approximately equal operation count (the paper's experiments
    use exactly this: "a horizontal cut from the middle of the graph", and
    "three partitions of approximately equal size").
    @raise Invalid_argument when [k < 1] or [k] exceeds the level count. *)

val pp : Format.formatter -> partitioning -> unit
