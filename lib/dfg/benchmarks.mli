(** Standard behavioral benchmark graphs.

    [ar_lattice_filter] reconstructs the AR lattice filter element of the
    paper's Figure 6 (28 operations: 16 multiplications, 12 additions); the
    others are the classic high-level-synthesis benchmarks contemporary with
    CHOP, used by the extra examples and tests. *)

val ar_lattice_filter : ?width:int -> unit -> Graph.t
(** Four-section lattice, 16 multiplications + 12 additions, default
    16-bit data path (the paper's library is 16-bit).  Coefficients are
    [Const] nodes. *)

val elliptic_wave_filter : ?width:int -> unit -> Graph.t
(** Fifth-order elliptic wave filter (EWF): 26 additions and
    8 multiplications, the other canonical ADAM-era benchmark. *)

val fir_filter : ?width:int -> taps:int -> unit -> Graph.t
(** Direct-form FIR filter: [taps] multiplications, [taps - 1] additions.
    @raise Invalid_argument when [taps < 2]. *)

val diffeq : ?width:int -> unit -> Graph.t
(** The HAL differential-equation solver kernel (6 multiplications,
    2 additions, 2 subtractions, 1 comparison). *)

val dct8 : ?width:int -> unit -> Graph.t
(** Eight-point DCT butterfly network in the Loeffler style: 29 additions
    and 11 constant multiplications over four butterfly stages — a larger,
    deeper workload than the AR filter. *)

val memory_pipeline : ?width:int -> blocks:string * string -> unit -> Graph.t
(** A kernel that streams data from one named memory block, computes a
    multiply-accumulate stage, and writes to a second block — exercises
    memory-bandwidth prediction and memory-mapped I/O. *)

val pcm_pwm : ?width:int -> unit -> Graph.t
(** The SpecC-style PCM/PWM audio case study in miniature: a
    multiplier-heavy PCM reconstruction filter (6 multiplications feeding
    an adder tree) followed by a PWM modulation stage of many cheap
    offset/compare operations (8 phases plus a duty reduction tree).  The
    two stages stress opposite implementation models — the filter wants a
    processor, the modulator wants gates — making the graph the reference
    workload for HW/SW co-design runs. *)

val random_dag :
  ?width:int -> ops:int -> seed:int -> unit -> Graph.t
(** Pseudo-random layered DAG over add/mult operations; deterministic for a
    given [seed].  Used by property-based tests.
    @raise Invalid_argument when [ops < 1]. *)
