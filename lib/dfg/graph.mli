(** Acyclic data-flow graphs — the behavioral specification input to CHOP.

    Each node produces at most one value whose bit width is the node's
    [width].  Edges carry that value to consumer nodes.  The graph must be
    acyclic (paper, section 2.3: inner loops are unrolled before
    partitioning; see {!Transform.unroll}). *)

type node_id = int

type node = private {
  id : node_id;
  op : Op.t;
  width : Chop_util.Units.bits;  (** width of the value the node produces *)
  name : string;
}

type t

(** {1 Construction} *)

type builder

val builder : ?name:string -> unit -> builder

val add_node :
  ?name:string -> builder -> op:Op.t -> width:Chop_util.Units.bits -> node_id
(** Adds a node and returns its id.  Widths must be positive. *)

val add_edge : builder -> src:node_id -> dst:node_id -> unit
(** Connects the value produced by [src] to an input of [dst].  Duplicate
    edges are allowed (an operation may use the same value twice). *)

exception Invalid_graph of string

val build : builder -> t
(** Freezes the builder.  @raise Invalid_graph when the graph is cyclic, a
    node's in-degree violates its operation arity, or an [Input]/[Const]
    node has predecessors. *)

(** {1 Accessors} *)

val name : t -> string
val size : t -> int
(** Total number of nodes, boundary nodes included. *)

val nodes : t -> node list
val node : t -> node_id -> node
(** @raise Not_found for an unknown id. *)

val mem : t -> node_id -> bool
val succs : t -> node_id -> node_id list
val preds : t -> node_id -> node_id list
val edges : t -> (node_id * node_id) list
val inputs : t -> node list
val outputs : t -> node list
val operations : t -> node list
(** Computational nodes only (see {!Op.is_computational}). *)

val op_count : t -> int
val op_profile : t -> (string * int) list
(** Operation count per functional class, sorted by class name. *)

val memory_blocks : t -> string list
(** Names of memory blocks referenced by memory operations, sorted,
    deduplicated. *)

val total_input_bits : t -> Chop_util.Units.bits
val total_output_bits : t -> Chop_util.Units.bits

val signature : t -> string
(** A structural digest of the graph — node ids, operations and widths plus
    the edge list, hashed.  Two graphs built by the same construction
    sequence (e.g. two {!induced} extractions of the same partition) share a
    signature; the graph [name] is excluded.  Used as a cache key by the
    exploration engine's prediction cache. *)

(** {1 Derived graphs} *)

val induced :
  t ->
  name:string ->
  node_id list ->
  t * (node_id * node_id) list * (node_id * node_id) list
(** [induced g ~name keep] extracts the subgraph induced by the
    computational nodes [keep].  Values produced outside [keep] and consumed
    inside become fresh [Input] nodes — except constants, which are cloned
    locally (coefficients do not travel between chips); values produced
    inside and consumed outside (or by an original [Output]) become fresh
    [Output] nodes.
    Returns [(sub, in_map, out_map)] where [in_map] maps original producer
    ids to the fresh input ids and [out_map] maps original producer ids to
    the fresh output ids.  @raise Invalid_argument if [keep] contains a
    non-computational or unknown node. *)

val pp : Format.formatter -> t -> unit
