module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

type node_id = int

type node = {
  id : node_id;
  op : Op.t;
  width : Chop_util.Units.bits;
  name : string;
}

type t = {
  gname : string;
  node_map : node IntMap.t;
  succ_map : node_id list IntMap.t; (* in edge-insertion order *)
  pred_map : node_id list IntMap.t;
  order : node_id list; (* topological order, computed at build time *)
}

type builder = {
  bname : string;
  mutable next : int;
  mutable bnodes : node list; (* reversed *)
  mutable bedges : (node_id * node_id) list; (* reversed *)
}

exception Invalid_graph of string

let builder ?(name = "dfg") () = { bname = name; next = 0; bnodes = []; bedges = [] }

let add_node ?name b ~op ~width =
  if width <= 0 then invalid_arg "Graph.add_node: width must be positive";
  let id = b.next in
  b.next <- id + 1;
  let name =
    match name with Some n -> n | None -> Printf.sprintf "%s%d" (Op.to_string op) id
  in
  b.bnodes <- { id; op; width; name } :: b.bnodes;
  id

let add_edge b ~src ~dst =
  let known id = id >= 0 && id < b.next in
  if not (known src && known dst) then invalid_arg "Graph.add_edge: unknown node";
  b.bedges <- (src, dst) :: b.bedges

let multi_add key v m =
  IntMap.update key (function None -> Some [ v ] | Some vs -> Some (v :: vs)) m

(* Kahn's algorithm; raises on cycles. *)
let topological node_map pred_map succ_map =
  let indeg =
    IntMap.map (fun _ -> 0) node_map
    |> IntMap.mapi (fun id _ ->
           match IntMap.find_opt id pred_map with
           | None -> 0
           | Some ps -> List.length ps)
  in
  let ready =
    IntMap.fold (fun id d acc -> if d = 0 then id :: acc else acc) indeg []
    |> List.sort Stdlib.compare
  in
  let rec go order indeg = function
    | [] -> order
    | id :: rest ->
        let succs = Option.value ~default:[] (IntMap.find_opt id succ_map) in
        let indeg, newly =
          List.fold_left
            (fun (indeg, newly) s ->
              let d = IntMap.find s indeg - 1 in
              (IntMap.add s d indeg, if d = 0 then s :: newly else newly))
            (indeg, []) succs
        in
        go (id :: order) indeg (List.rev_append newly rest)
  in
  let order = List.rev (go [] indeg ready) in
  if List.length order <> IntMap.cardinal node_map then
    raise (Invalid_graph "cycle detected: behavioral DFGs must be acyclic");
  order

let build b =
  let node_map =
    List.fold_left (fun m n -> IntMap.add n.id n m) IntMap.empty b.bnodes
  in
  let succ_map, pred_map =
    List.fold_left
      (fun (s, p) (src, dst) -> (multi_add src dst s, multi_add dst src p))
      (IntMap.empty, IntMap.empty)
      (List.rev b.bedges)
  in
  (* multi_add prepends: restore edge-insertion order, which carries the
     operand positions of non-commutative operations (Sub, Select, ...) *)
  let succ_map = IntMap.map List.rev succ_map in
  let pred_map = IntMap.map List.rev pred_map in
  IntMap.iter
    (fun id n ->
      let indeg =
        match IntMap.find_opt id pred_map with None -> 0 | Some ps -> List.length ps
      in
      let lo, hi = Op.arity n.op in
      if indeg < lo || indeg > hi then
        raise
          (Invalid_graph
             (Printf.sprintf "node %s (%s) has %d inputs, expected %d..%d" n.name
                (Op.to_string n.op) indeg lo hi)))
    node_map;
  let order = topological node_map pred_map succ_map in
  { gname = b.bname; node_map; succ_map; pred_map; order }

let name g = g.gname
let size g = IntMap.cardinal g.node_map
let nodes g = List.map (fun id -> IntMap.find id g.node_map) g.order

let node g id =
  match IntMap.find_opt id g.node_map with
  | Some n -> n
  | None -> raise Not_found

let mem g id = IntMap.mem id g.node_map
let succs g id = Option.value ~default:[] (IntMap.find_opt id g.succ_map)
let preds g id = Option.value ~default:[] (IntMap.find_opt id g.pred_map)

let edges g =
  List.concat_map
    (fun id -> List.map (fun s -> (id, s)) (succs g id))
    g.order

let inputs g = List.filter (fun n -> n.op = Op.Input) (nodes g)
let outputs g = List.filter (fun n -> n.op = Op.Output) (nodes g)
let operations g = List.filter (fun n -> Op.is_computational n.op) (nodes g)
let op_count g = List.length (operations g)

let op_profile g =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun n ->
      let cls = Op.functional_class n.op in
      Hashtbl.replace tbl cls (1 + Option.value ~default:0 (Hashtbl.find_opt tbl cls)))
    (operations g);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let memory_blocks g =
  List.filter_map (fun n -> Op.memory_block n.op) (nodes g)
  |> List.sort_uniq String.compare

let total_input_bits g = Chop_util.Listx.sum_by (fun n -> n.width) (inputs g)
let total_output_bits g =
  Chop_util.Listx.sum_by
    (fun n ->
      match preds g n.id with
      | [ p ] -> (node g p).width
      | _ -> n.width)
    (outputs g)

let signature g =
  let buf = Buffer.create 256 in
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%s:%d;" n.id (Op.to_string n.op) n.width))
    (nodes g);
  Buffer.add_char buf '|';
  List.iter
    (fun (src, dst) -> Buffer.add_string buf (Printf.sprintf "%d>%d;" src dst))
    (edges g);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let induced g ~name keep =
  List.iter
    (fun id ->
      if not (mem g id) then invalid_arg "Graph.induced: unknown node";
      if not (Op.is_computational (node g id).op) then
        invalid_arg "Graph.induced: boundary nodes cannot be selected")
    keep;
  let keep_set = IntSet.of_list keep in
  let b = builder ~name () in
  let fresh = Hashtbl.create 16 in
  (* map original kept node id -> new id *)
  List.iter
    (fun id ->
      if IntSet.mem id keep_set then
        let n = node g id in
        Hashtbl.replace fresh id (add_node b ~name:n.name ~op:n.op ~width:n.width))
    g.order;
  let in_map = Hashtbl.create 8 and out_map = Hashtbl.create 8 in
  (* External producers feeding kept nodes become Inputs (one per producer). *)
  List.iter
    (fun id ->
      if IntSet.mem id keep_set then
        List.iter
          (fun p ->
            let dst = Hashtbl.find fresh id in
            if IntSet.mem p keep_set then
              add_edge b ~src:(Hashtbl.find fresh p) ~dst
            else
              let src =
                match Hashtbl.find_opt in_map p with
                | Some s -> s
                | None ->
                    let pn = node g p in
                    (* Constants are materialized locally (coefficients do
                       not travel between chips); everything else becomes a
                       boundary input of the partition. *)
                    let op =
                      match pn.op with Op.Const -> Op.Const | _ -> Op.Input
                    in
                    let s = add_node b ~name:("in_" ^ pn.name) ~op ~width:pn.width in
                    Hashtbl.replace in_map p s;
                    s
              in
              add_edge b ~src ~dst)
          (preds g id))
    g.order;
  (* Kept producers feeding external consumers (or original outputs) become
     Outputs (one per producer). *)
  List.iter
    (fun id ->
      if IntSet.mem id keep_set then
        let escapes =
          List.exists (fun s -> not (IntSet.mem s keep_set)) (succs g id)
        in
        if escapes && not (Hashtbl.mem out_map id) then begin
          let n = node g id in
          let o = add_node b ~name:("out_" ^ n.name) ~op:Op.Output ~width:n.width in
          add_edge b ~src:(Hashtbl.find fresh id) ~dst:o;
          Hashtbl.replace out_map id o
        end)
    g.order;
  let assoc tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  (build b, assoc in_map, assoc out_map)

let pp ppf g =
  Format.fprintf ppf "@[<v>graph %s: %d nodes (%d operations)@," g.gname (size g)
    (op_count g);
  List.iter
    (fun (cls, n) -> Format.fprintf ppf "  %s: %d@," cls n)
    (op_profile g);
  Format.fprintf ppf "@]"
