(** Automatic partition generation.

    CHOP's partitions are designer-created (paper, section 2.4); these
    generators automate the step for the examples and benches: horizontal
    level cuts (what the paper's experiments did manually), KL-refined
    min-cut partitions legalized to CHOP's acyclicity restriction, and
    random partitions for property testing. *)

type strategy =
  | Levels  (** contiguous ASAP-level cuts of balanced size *)
  | Min_cut of int  (** recursive KL bisection with the given seed *)
  | Random_balanced of int
      (** random balanced assignment legalized to an acyclic quotient *)

val generate :
  Chop_dfg.Graph.t -> k:int -> strategy -> Chop_dfg.Partition.partitioning
(** Always returns exactly [k] non-empty parts: when KL legalization or
    fallback slicing collapses groups on a small graph, the largest group
    is split along its topological order until [k] is restored (a
    quotient-safe operation, so the partitioning validators still hold).
    @raise Invalid_argument when [k < 1] or the graph has fewer than [k]
    operations. *)

val strategy_name : strategy -> string
