type strategy = Levels | Min_cut of int | Random_balanced of int

let strategy_name = function
  | Levels -> "levels"
  | Min_cut _ -> "min-cut"
  | Random_balanced _ -> "random"

(* Recursive KL bisection; each split is legalized so the final quotient
   graph is acyclic. *)
let rec bisect g ~seed ~k members =
  if k <= 1 then [ members ]
  else
    let sub, in_map, _ = Chop_dfg.Graph.induced g ~name:"bisect" members in
    ignore in_map;
    let r = Kl.bipartition ~seed sub in
    let a, b = Kl.legalize sub r.Kl.side_a r.Kl.side_b in
    (* map the subgraph node ids back: induced preserves names *)
    let name_of id = (Chop_dfg.Graph.node sub id).Chop_dfg.Graph.name in
    let back names =
      let wanted = List.map name_of names in
      List.filter
        (fun id ->
          List.mem (Chop_dfg.Graph.node g id).Chop_dfg.Graph.name wanted)
        members
    in
    let a_ids = back a and b_ids = back b in
    if a_ids = [] || b_ids = [] then [ members ]
    else
      let ka = k / 2 and kb = k - (k / 2) in
      bisect g ~seed:(seed + 1) ~k:ka a_ids @ bisect g ~seed:(seed + 2) ~k:kb b_ids

let random_balanced ~seed ~k members =
  let rng = Random.State.make [| seed; k |] in
  (* shuffle a topological ordering, then slice contiguously: slicing a
     topological order always yields an acyclic quotient, and the shuffle
     below only permutes within a bounded window to keep that property *)
  let arr = Array.of_list members in
  let n = Array.length arr in
  let window = max 1 (n / (2 * k)) in
  for i = 0 to n - 2 do
    let j = min (n - 1) (i + Random.State.int rng (window + 1)) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  let per = max 1 (n / k) in
  let rec slice i acc =
    if i >= n then List.rev acc
    else
      let stop = if List.length acc = k - 1 then n else min n (i + per) in
      slice stop (Array.to_list (Array.sub arr i (stop - i)) :: acc)
  in
  slice 0 []

(* Bisection can hand back a group unsplit when legalization empties one
   side, and the fallback topological slicing can exhaust the operation
   list early — so both non-Levels strategies could yield fewer than [k]
   groups on small graphs.  [top_up] restores the exactly-[k] invariant by
   repeatedly splitting the largest group at the midpoint of its
   topological order.  This is always quotient-safe: in a valid acyclic
   partitioning no path leaves a group and re-enters it, so cutting the
   group into a topological prefix and suffix cannot create a cycle. *)
let top_up g ~k groups =
  let pos = Hashtbl.create 64 in
  List.iteri
    (fun i id -> Hashtbl.replace pos id i)
    (Chop_dfg.Analysis.topological_order g);
  let topo_sort =
    List.sort (fun a b -> compare (Hashtbl.find pos a) (Hashtbl.find pos b))
  in
  let rec go groups =
    if List.length groups >= k then groups
    else
      let _, largest =
        List.fold_left
          (fun ((best_n, _) as best) m ->
            let n = List.length m in
            if n > best_n then (n, Some m) else best)
          (1, None) groups
      in
      match largest with
      | None -> groups (* all singletons: impossible, [generate] checks ops >= k *)
      | Some m ->
          let sorted = topo_sort m in
          let half = List.length sorted / 2 in
          let a = Chop_util.Listx.take half sorted in
          let b = List.filteri (fun i _ -> i >= half) sorted in
          go
            (List.concat_map
               (fun gl -> if gl == m then [ a; b ] else [ gl ])
               groups)
  in
  go groups

let generate g ~k strategy =
  if k < 1 then invalid_arg "Autopart.generate: k < 1";
  let ops = List.map (fun n -> n.Chop_dfg.Graph.id) (Chop_dfg.Graph.operations g) in
  if List.length ops < k then
    invalid_arg "Autopart.generate: fewer operations than partitions";
  match strategy with
  | Levels ->
      if k = 1 then Chop_dfg.Partition.whole g
      else Chop_dfg.Partition.by_levels g ~k
  | Min_cut seed ->
      let groups =
        bisect g ~seed ~k (List.sort Int.compare ops)
        |> List.filter (fun m -> m <> [])
        |> top_up g ~k
      in
      let parts =
        List.mapi
          (fun i members ->
            Chop_dfg.Partition.make ~label:(Printf.sprintf "P%d" (i + 1)) members)
          groups
      in
      Chop_dfg.Partition.partitioning g parts
  | Random_balanced seed -> (
      (* members arrive in topological order because Graph.operations
         follows it *)
      let build groups =
        let groups = List.filter (fun m -> m <> []) groups |> top_up g ~k in
        let parts =
          List.mapi
            (fun i members ->
              Chop_dfg.Partition.make ~label:(Printf.sprintf "P%d" (i + 1)) members)
            groups
        in
        Chop_dfg.Partition.partitioning g parts
      in
      match build (random_balanced ~seed ~k ops) with
      | pg -> pg
      | exception Chop_dfg.Partition.Invalid_partitioning _ ->
          (* the window shuffle broke the quotient order; fall back to
             unshuffled topological slicing, which is always legal *)
          let per = Chop_util.Units.ceil_div (List.length ops) k in
          let rec slice xs acc =
            match xs with
            | [] -> List.rev acc
            | _ ->
                let group = Chop_util.Listx.take per xs in
                let rest = List.filteri (fun i _ -> i >= per) xs in
                slice rest (group :: acc)
          in
          build (slice ops []))
