(** The cluster front process behind [chop gateway]: one socket fronting
    N backend [chop serve] processes.

    The gateway speaks the exact {!Chop_server.Protocol} wire format on
    both sides and forwards request and response lines verbatim, so a
    client cannot tell a gateway from a single backend by the bytes it
    receives.  Routing is deterministic:

    - stateless ops (explore, predict, advise, sensitivity) go to the
      backend owning their {!Chop_server.Ops.engine_key} on a
      consistent-hash {!Ring}, so repeat requests hit the same warm
      engine;
    - [session/*] ops stick to the backend that opened the session; the
      gateway allocates session ids itself so they are unique across the
      cluster;
    - [session/list] fans out to every backend and merges the
      inventories through the shared {!Chop_server.Ops.render_sessions};
    - [gateway/migrate] moves a session between backends through the
      snapshot format ([session/save close] on the source, restoring
      [session/open] on the target) — the backends must share a
      [--state-dir];
    - with [fanout], eligible explores (enumeration/branch-bound, not
      verbose) are split across every live backend as [explore/slice]
      requests and merged deterministically
      ({!Chop_server.Ops.merge_slice_payloads}), which keeps the
      response text byte-identical to a single process's.

    When a backend dies, stateless ops fail over to the next backend on
    the ring; session ops fail over by restoring the session's snapshot
    on the next backend (sessions survive a backend SIGTERM because the
    backend snapshots its sessions on shutdown).  With
    [health_interval_s], a prober thread pings every backend
    periodically and marks failures dead ahead of time: routing prefers
    live backends, fan-out skips dead ones, and a session op whose
    owner is marked dead fails over preemptively instead of waiting for
    its own request to time out. *)

type config = {
  socket_path : string option;
      (** listen here; [None] reads requests from stdin (tests, CI) *)
  backends : string list;  (** backend serve sockets, at least one *)
  vnodes : int;  (** virtual ring points per backend *)
  fanout : bool;  (** split eligible explores across backends *)
  log : out_channel option;
  handle_signals : bool;  (** SIGTERM/SIGINT trigger a clean stop *)
  health_interval_s : float option;
      (** ping every backend this often (seconds) and maintain the dead
          set; [None] (or a non-positive value) disables the prober and
          routing behaves exactly as before *)
}

type t

val create : config -> t
(** Validates the configuration and binds the listening socket; does not
    contact the backends ([connect]ions are opened lazily, per client
    connection).
    @raise Invalid_argument on an empty or duplicated backend list. *)

val serve : t -> unit
(** Accepts connections (or reads stdin) until {!stop}; then closes
    every connection and returns. *)

val stop : t -> unit

val handle_line : t -> string -> string
(** One request line in, one response line out, synchronously — the test
    harness's transport, routing exactly as a socket request would
    (backend connections are cached on [t] across calls). *)

val check_health : t -> string list
(** One synchronous health sweep: ping every backend, update the dead
    set, and return the backends currently marked dead (sorted).  What
    the [health_interval_s] prober runs periodically; exposed so tests
    and operators can force a sweep. *)
