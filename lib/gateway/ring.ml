(* Consistent hashing on an MD5 ring.  Determinism is the point: the
   point set is a pure function of the backend names, so every process
   that knows the backend list — gateways, benches, tests — agrees on
   where a key lives without coordination. *)

type t = {
  order : string list;  (* creation order, for [nodes] *)
  points : (string * string) array;  (* (hex hash, backend), sorted *)
}

let hash s = Digest.to_hex (Digest.string s)

let create ?(vnodes = 64) nodes =
  if nodes = [] then invalid_arg "Ring.create: no backends";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be >= 1";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Ring.create: duplicate backend %S" n);
      Hashtbl.add seen n ())
    nodes;
  let points =
    List.concat_map
      (fun node ->
        List.init vnodes (fun v ->
            (hash (Printf.sprintf "%s#%d" node v), node)))
      nodes
    |> Array.of_list
  in
  Array.sort compare points;
  { order = nodes; points }

let nodes t = t.order

(* first point with hash >= key's hash, wrapping *)
let start_index t key =
  let h = hash key in
  let n = Array.length t.points in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst t.points.(mid) < h then bsearch (mid + 1) hi else bsearch lo mid
  in
  bsearch 0 n mod n

let spread t key =
  let n = Array.length t.points in
  let start = start_index t key in
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  for i = 0 to n - 1 do
    let _, node = t.points.((start + i) mod n) in
    if not (Hashtbl.mem seen node) then begin
      Hashtbl.add seen node ();
      acc := node :: !acc
    end
  done;
  List.rev !acc

let lookup ?(avoid = []) t key =
  List.find_opt (fun node -> not (List.mem node avoid)) (spread t key)
