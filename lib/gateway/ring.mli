(** A consistent-hash ring over backend names.

    Keys (engine identities, session ids) map to backends through MD5
    points on a ring, [vnodes] virtual points per backend, so the
    assignment is a pure function of the backend set — every gateway
    instance (and every restart) routes a key the same way, and removing
    one backend moves only that backend's keys.

    Backends are opaque strings (the gateway uses socket paths). *)

type t

val create : ?vnodes:int -> string list -> t
(** @raise Invalid_argument on an empty backend list, duplicate names or
    a non-positive [vnodes] (default 64). *)

val nodes : t -> string list
(** The backends, in the order given to {!create}. *)

val lookup : ?avoid:string list -> t -> string -> string option
(** The first backend at or clockwise of the key's hash, skipping
    [avoid] (dead backends); [None] when every backend is avoided. *)

val spread : t -> string -> string list
(** Every backend in the key's preference order — {!lookup}'s choice
    first, then each successive fallback.  [lookup ~avoid] equals the
    first element of [spread] not in [avoid]. *)
