(* The sharding front process: consistent-hash routing over backend
   [chop serve] sockets, verbatim line forwarding, snapshot-based
   session migration and failover, and the deterministic fan-out merge
   for stateless explores.  See gateway.mli for the contract. *)

module Json = Chop_util.Json
module P = Chop_server.Protocol
module Ops = Chop_server.Ops
module Client = Chop_server.Client

type config = {
  socket_path : string option;
  backends : string list;
  vnodes : int;
  fanout : bool;
  log : out_channel option;
  handle_signals : bool;
  health_interval_s : float option;
}

type counters = {
  mutable forwarded : int;
  mutable fanned_out : int;
  mutable migrations : int;
  mutable failovers : int;
  mutable errors : int;  (* requests answered with a gateway-made error *)
}

(* Per-client-connection backend connections: each gateway connection
   thread keeps its own, so concurrent clients reach a backend over
   separate connections (the backend scheduler interleaves them) and no
   two threads ever share a send/recv pair. *)
type pconn = (string, Client.t) Hashtbl.t

type t = {
  cfg : config;
  ring : Ring.t;
  mu : Mutex.t;  (* routes, writers, seq *)
  routes : (string, string) Hashtbl.t;  (* session id -> backend *)
  writers : (string, string) Hashtbl.t;  (* session id -> writer client *)
  mutable seq : int;
  counters : counters;
  counters_mu : Mutex.t;
  log_mu : Mutex.t;
  stopping : bool Atomic.t;
  listen_fd : Unix.file_descr option;
  mutable conns : Unix.file_descr list;
  conns_mu : Mutex.t;
  test_pc : pconn;  (* handle_line's cached backend connections *)
  test_mu : Mutex.t;
  (* backends whose last health ping failed; routing prefers live
     backends and session ops fail over preemptively.  Only the prober
     (or an explicit [check_health]) mutates it, under [dead_mu]. *)
  dead : (string, unit) Hashtbl.t;
  dead_mu : Mutex.t;
  health_pc : pconn;  (* the prober's private backend connections *)
}

let create cfg =
  let ring = Ring.create ~vnodes:cfg.vnodes cfg.backends in
  let listen_fd =
    match cfg.socket_path with
    | None -> None
    | Some path ->
        if Sys.file_exists path then Unix.unlink path;
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 16;
        Some fd
  in
  {
    cfg;
    ring;
    mu = Mutex.create ();
    routes = Hashtbl.create 16;
    writers = Hashtbl.create 16;
    seq = 0;
    counters =
      { forwarded = 0; fanned_out = 0; migrations = 0; failovers = 0;
        errors = 0 };
    counters_mu = Mutex.create ();
    log_mu = Mutex.create ();
    stopping = Atomic.make false;
    listen_fd;
    conns = [];
    conns_mu = Mutex.create ();
    test_pc = Hashtbl.create 4;
    test_mu = Mutex.create ();
    dead = Hashtbl.create 4;
    dead_mu = Mutex.create ();
    health_pc = Hashtbl.create 4;
  }

let stop t = Atomic.set t.stopping true

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)

let timestamp now =
  let tm = Unix.gmtime now in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%06.3fZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    (float_of_int tm.Unix.tm_sec +. (now -. Float.of_int (int_of_float now)))

let log_line t line =
  match t.cfg.log with
  | None -> ()
  | Some oc ->
      Mutex.lock t.log_mu;
      (try
         output_string oc line;
         output_char oc '\n';
         flush oc
       with Sys_error _ -> ());
      Mutex.unlock t.log_mu

let logf t fmt =
  Printf.ksprintf
    (fun s ->
      log_line t (Printf.sprintf "%s gateway: %s" (timestamp (Unix.gettimeofday ())) s))
    fmt

let counted t f =
  Mutex.lock t.counters_mu;
  f t.counters;
  Mutex.unlock t.counters_mu

(* ------------------------------------------------------------------ *)
(* Backend transport                                                   *)

let conn_of pc backend =
  match Hashtbl.find_opt pc backend with
  | Some c -> Ok c
  | None -> (
      match Client.connect backend with
      | c ->
          Hashtbl.add pc backend c;
          Ok c
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "backend %s: %s" backend (Unix.error_message e)))

let drop_conn pc backend =
  match Hashtbl.find_opt pc backend with
  | Some c ->
      Client.close c;
      Hashtbl.remove pc backend
  | None -> ()

let close_pconn pc =
  Hashtbl.iter (fun _ c -> Client.close c) pc;
  Hashtbl.reset pc

(* One request line to one backend, one response line back.  Transport
   failures drop the cached connection (the next use reconnects) and
   surface as [Error] so callers can fail over. *)
let rpc_backend pc backend line =
  match conn_of pc backend with
  | Error _ as e -> e
  | Ok c -> (
      match
        Client.send_line c line;
        Client.recv_line c
      with
      | Some resp -> Ok resp
      | None ->
          drop_conn pc backend;
          Error (Printf.sprintf "backend %s closed the connection" backend)
      | exception (Sys_error m | Failure m) ->
          drop_conn pc backend;
          Error (Printf.sprintf "backend %s: %s" backend m)
      | exception Unix.Unix_error (e, _, _) ->
          drop_conn pc backend;
          Error
            (Printf.sprintf "backend %s: %s" backend (Unix.error_message e)))

(* ------------------------------------------------------------------ *)
(* Backend health

   A periodic prober pings every backend over its own connections and
   maintains the dead set; routing then prefers live backends and
   session ops fail over preemptively instead of discovering a dead
   owner one timed-out request at a time.  Without [health_interval_s]
   no prober runs, the dead set stays empty and routing behaves exactly
   as before. *)

let is_dead t b =
  Mutex.lock t.dead_mu;
  let d = Hashtbl.mem t.dead b in
  Mutex.unlock t.dead_mu;
  d

(* Live backends first, in the given (ring-preference) order; dead ones
   keep their order at the tail as a last resort, so a fully-dead
   marking still attempts every backend rather than failing outright. *)
let prefer_live t backends =
  let live, dead = List.partition (fun b -> not (is_dead t b)) backends in
  live @ dead

let health_ping_line = {|{"id":"gw-health","op":"ping"}|}

let check_health t =
  List.iter
    (fun b ->
      let ok =
        match rpc_backend t.health_pc b health_ping_line with
        | Ok resp -> (
            match Json.parse resp with
            | Ok j -> P.response_ok j = Some true
            | Error _ -> false)
        | Error _ -> false
      in
      Mutex.lock t.dead_mu;
      let was_dead = Hashtbl.mem t.dead b in
      if ok then Hashtbl.remove t.dead b else Hashtbl.replace t.dead b ();
      Mutex.unlock t.dead_mu;
      if ok && was_dead then logf t "backend %s is back, marked live" b
      else if (not ok) && not was_dead then
        logf t "backend %s failed its health ping, marked dead" b)
    (Ring.nodes t.ring);
  Mutex.lock t.dead_mu;
  let dead = Hashtbl.fold (fun b () acc -> b :: acc) t.dead [] in
  Mutex.unlock t.dead_mu;
  List.sort String.compare dead

let health_loop t interval =
  (* sleep in short slices so stop is honoured promptly *)
  let rec pause left =
    if left > 0. && not (Atomic.get t.stopping) then begin
      let s = Float.min 0.25 left in
      Thread.delay s;
      pause (left -. s)
    end
  in
  while not (Atomic.get t.stopping) do
    ignore (check_health t);
    pause interval
  done;
  close_pconn t.health_pc

(* Response-line introspection (the line itself is always forwarded
   verbatim; these only steer bookkeeping). *)
let line_json line =
  match Json.parse line with Ok j -> Some j | Error _ -> None

let line_ok line =
  match line_json line with
  | Some j -> P.response_ok j = Some true
  | None -> false

let line_error_message line =
  match
    Option.bind (line_json line) (fun j ->
        Option.bind (Json.member "error" j) (fun e ->
            Option.bind (Json.member "message" e) Json.to_string_opt))
  with
  | Some m -> m
  | None -> line

(* ------------------------------------------------------------------ *)
(* Routing state                                                       *)

let route_of t sid =
  Mutex.lock t.mu;
  let r = Hashtbl.find_opt t.routes sid in
  Mutex.unlock t.mu;
  r

let owner_of t sid =
  match route_of t sid with
  | Some b -> b
  | None -> (
      (* unrouted (gateway restart, or an id opened out of band): the
         ring's home backend is the deterministic guess *)
      match Ring.lookup t.ring sid with
      | Some b -> b
      | None -> assert false (* ring is never empty *))

let set_route t sid backend ~writer =
  Mutex.lock t.mu;
  Hashtbl.replace t.routes sid backend;
  Hashtbl.replace t.writers sid writer;
  Mutex.unlock t.mu

let del_route t sid =
  Mutex.lock t.mu;
  Hashtbl.remove t.routes sid;
  Hashtbl.remove t.writers sid;
  Mutex.unlock t.mu

let writer_of t sid =
  Mutex.lock t.mu;
  let w = Hashtbl.find_opt t.writers sid in
  Mutex.unlock t.mu;
  Option.value ~default:"" w

let fresh_sid t =
  Mutex.lock t.mu;
  let rec next () =
    t.seq <- t.seq + 1;
    let sid = Printf.sprintf "s%d" t.seq in
    if Hashtbl.mem t.routes sid then next () else sid
  in
  let sid = next () in
  Mutex.unlock t.mu;
  sid

(* ------------------------------------------------------------------ *)
(* Stateless ops: route by engine key, fail over along the ring        *)

let forward_stateless t pc (req : P.request) line =
  let key = Ops.engine_key ~op:req.P.op req.P.params in
  let rec go last = function
    | [] -> Error last
    | b :: rest -> (
        match rpc_backend pc b line with
        | Ok resp ->
            counted t (fun c -> c.forwarded <- c.forwarded + 1);
            Ok resp
        | Error e -> go e rest)
  in
  go "no backend configured" (prefer_live t (Ring.spread t.ring key))

(* ------------------------------------------------------------------ *)
(* The fan-out explore: split the first search axis across every live
   backend as explore/slice requests, then replay the merge exactly as
   one process would (Ops.merge_slice_payloads), so the rendered block
   is byte-identical to a single backend's. *)

let fanout_eligible t (req : P.request) =
  t.cfg.fanout
  && req.P.op = P.Explore
  && (not req.P.params.P.verbose)
  && (match req.P.params.P.heuristic with "e" | "b" -> true | _ -> false)

let fanout_explore t pc (req : P.request) =
  let p = req.P.params in
  let live =
    List.filter
      (fun b -> (not (is_dead t b)) && Result.is_ok (conn_of pc b))
      (Ring.nodes t.ring)
  in
  let n = List.length live in
  if n < 2 then `Fallback
  else
    let slice_line i =
      Json.print
        (P.request_to_json
           {
             req with
             P.op = P.Explore_slice;
             params = { p with P.slice_index = i; slice_count = n };
           })
    in
    (* pipeline: every backend computes its slices concurrently *)
    match
      List.iteri
        (fun i b ->
          match conn_of pc b with
          | Ok c -> Client.send_line c (slice_line i)
          | Error _ -> raise Exit)
        live;
      List.map
        (fun b ->
          match conn_of pc b with
          | Ok c -> (
              match Client.recv_line c with
              | Some l -> l
              | None -> raise Exit)
          | Error _ -> raise Exit)
        live
    with
    | exception (Exit | Sys_error _ | Unix.Unix_error _) ->
        (* a backend died mid-flight: drop every pipelined connection
           (responses can no longer be matched up) and run the explore
           whole on one backend — it is stateless and idempotent *)
        List.iter (drop_conn pc) live;
        `Fallback
    | resps -> (
        match List.find_opt (fun l -> not (line_ok l)) resps with
        | Some err ->
            (* a structured backend rejection (overloaded, deadline...)
               carries the original id: forward it verbatim *)
            `Done err
        | None -> (
            let t0 = Unix.gettimeofday () in
            let decoded =
              List.map
                (fun l ->
                  match line_json l with
                  | None -> Error "unparseable slice response"
                  | Some j -> (
                      match Json.member "result" j with
                      | None -> Error "slice response without result"
                      | Some r -> Ops.slice_payload_of_result r))
                resps
            in
            match
              List.fold_right
                (fun r acc ->
                  match (r, acc) with
                  | Ok p, Ok ps -> Ok (p :: ps)
                  | Error e, _ | _, Error e -> Error e)
                decoded (Ok [])
            with
            | Error e ->
                `Done
                  (Json.print
                     (P.error_response ~id:req.P.id ~code:P.Internal
                        (Printf.sprintf "fan-out merge failed: %s" e)))
            | Ok payloads -> (
                match Ops.merge_slice_payloads payloads with
                | Error e ->
                    `Done
                      (Json.print
                         (P.error_response ~id:req.P.id ~code:P.Internal
                            (Printf.sprintf "fan-out merge failed: %s" e)))
                | Ok m ->
                    let text =
                      Ops.render_explore_rows ~keep_all:p.P.keep_all
                        ~csv:p.P.csv ~bad:m.Ops.mx_bad ~trials:m.Ops.mx_trials
                        ~verbose_tail:None ~feasible:m.Ops.mx_feasible
                        ~explored:m.Ops.mx_explored ()
                    in
                    let feasible = List.length m.Ops.mx_feasible in
                    let run_ms = (Unix.gettimeofday () -. t0) *. 1000. in
                    counted t (fun c -> c.fanned_out <- c.fanned_out + 1);
                    `Done
                      (Json.print
                         (P.ok_response ~id:req.P.id ~op:P.Explore
                            ~timing:(P.no_engine_timing ~queue_ms:0. ~run_ms)
                            [
                              ("text", Json.String text);
                              ("feasible", Json.Bool (feasible > 0));
                              ("feasible_count", Json.Int feasible);
                              ("trials", Json.Int m.Ops.mx_trials);
                            ])))))

(* ------------------------------------------------------------------ *)
(* Session ops: sticky routing, snapshot failover, migration           *)

(* Bookkeeping driven by the backend's answer: opens pin a route,
   closes (and migration handoffs) release it. *)
let note_session_response t (req : P.request) ~backend resp =
  if line_ok resp then
    let sid = req.P.params.P.session in
    match req.P.op with
    | P.Session_open -> set_route t sid backend ~writer:req.P.params.P.client
    | P.Session_close -> del_route t sid
    | P.Session_save when req.P.params.P.close -> del_route t sid
    | _ -> ()

let restore_request ~id ~sid ~writer =
  Json.print
    (P.request_to_json
       {
         P.id;
         op = P.Session_open;
         deadline_ms = None;
         params =
           { P.default_params with P.session = sid; restore = true;
             client = writer };
       })

(* The owning backend is gone: restore the session from its snapshot on
   the next backend the ring prefers, then replay the original request
   there.  Works because backends snapshot sessions on shutdown and
   eviction into the shared state dir. *)
let failover_session t pc (req : P.request) line ~sid ~dead =
  counted t (fun c -> c.failovers <- c.failovers + 1);
  match Ring.lookup ~avoid:[ dead ] t.ring sid with
  | None ->
      Json.print
        (P.error_response ~id:req.P.id ~code:P.Internal
           (Printf.sprintf "backend %s is unreachable and no other backend \
                            is configured" dead))
  | Some target -> (
      let writer = writer_of t sid in
      let oline =
        restore_request ~id:(req.P.id ^ ":failover") ~sid ~writer
      in
      match rpc_backend pc target oline with
      | Error e ->
          Json.print (P.error_response ~id:req.P.id ~code:P.Internal e)
      | Ok oresp when not (line_ok oresp) ->
          Json.print
            (P.error_response ~id:req.P.id ~code:P.Internal
               (Printf.sprintf
                  "backend %s died and session %s could not be restored on \
                   %s: %s"
                  dead sid target (line_error_message oresp)))
      | Ok _ -> (
          set_route t sid target ~writer;
          logf t "session %s failed over %s -> %s" sid dead target;
          match rpc_backend pc target line with
          | Ok resp ->
              note_session_response t req ~backend:target resp;
              resp
          | Error e ->
              Json.print (P.error_response ~id:req.P.id ~code:P.Internal e)))

let session_op t pc (req : P.request) line =
  let sid = req.P.params.P.session in
  let owner = owner_of t sid in
  (* a health-marked owner fails over preemptively — no need to wait for
     this request's rpc to time out against a dead socket *)
  if is_dead t owner then failover_session t pc req line ~sid ~dead:owner
  else
    match rpc_backend pc owner line with
    | Ok resp ->
        counted t (fun c -> c.forwarded <- c.forwarded + 1);
        note_session_response t req ~backend:owner resp;
        resp
    | Error _ -> failover_session t pc req line ~sid ~dead:owner

(* session/open routes by the (gateway-allocated) session id and sticks;
   a dead preferred backend just moves the open down the ring — no
   snapshot dance needed unless the open itself is a restore, and then
   the state dir is shared anyway. *)
let open_session t pc (req : P.request) =
  let sid =
    match req.P.params.P.session with "" -> fresh_sid t | sid -> sid
  in
  let req =
    { req with P.params = { req.P.params with P.session = sid } }
  in
  let line = Json.print (P.request_to_json req) in
  let rec go last = function
    | [] ->
        Json.print (P.error_response ~id:req.P.id ~code:P.Internal last)
    | b :: rest -> (
        match rpc_backend pc b line with
        | Ok resp ->
            counted t (fun c -> c.forwarded <- c.forwarded + 1);
            note_session_response t req ~backend:b resp;
            resp
        | Error e -> go e rest)
  in
  go "no backend configured" (prefer_live t (Ring.spread t.ring sid))

(* session/list is an inventory: ask every reachable backend, merge the
   structured lines, render through the one shared renderer. *)
let list_sessions t pc (req : P.request) line =
  let t0 = Unix.gettimeofday () in
  let resps =
    List.filter_map
      (fun b -> Result.to_option (rpc_backend pc b line))
      (Ring.nodes t.ring)
  in
  if resps = [] then
    Json.print
      (P.error_response ~id:req.P.id ~code:P.Internal "no backend reachable")
  else
    match List.find_opt (fun l -> not (line_ok l)) resps with
    | Some err -> err
    | None ->
        let lines =
          List.concat_map
            (fun l ->
              match
                Option.bind (line_json l) (fun j ->
                    Option.bind (Json.member "result" j) (fun r ->
                        Json.member "sessions" r))
              with
              | Some (Json.Array entries) ->
                  List.filter_map
                    (fun e -> Result.to_option (Ops.session_line_of_json e))
                    entries
              | _ -> [])
            resps
        in
        let lines =
          List.sort
            (fun a b ->
              (* length-then-lex: the server's numeric s<n> ids in
                 numeric order, matching Ops.render_sessions *)
              match
                compare (String.length a.Ops.ses_id)
                  (String.length b.Ops.ses_id)
              with
              | 0 -> compare a.Ops.ses_id b.Ops.ses_id
              | n -> n)
            lines
        in
        let run_ms = (Unix.gettimeofday () -. t0) *. 1000. in
        Json.print
          (P.ok_response ~id:req.P.id ~op:P.Session_list
             ~timing:(P.no_engine_timing ~queue_ms:0. ~run_ms)
             [
               ("sessions",
                Json.Array (List.map Ops.session_line_to_json lines));
               ("text", Json.String (Ops.render_sessions lines));
             ])

(* gateway/migrate: snapshot handoff.  [session/save close:true] on the
   source persists the session and frees the slot (keeping the
   snapshot); a restoring [session/open] on the target picks it up.
   Both halves run as the session's writer. *)
let migrate_session t pc (req : P.request) =
  let t0 = Unix.gettimeofday () in
  let sid = req.P.params.P.session in
  if sid = "" then
    Json.print
      (P.error_response ~id:req.P.id ~code:P.Bad_request
         "gateway/migrate: missing session id")
  else
    let source = owner_of t sid in
    match Ring.lookup ~avoid:[ source ] t.ring sid with
    | None ->
        Json.print
          (P.error_response ~id:req.P.id ~code:P.Bad_request
             "gateway/migrate: no other backend to migrate to")
    | Some target -> (
        let writer = writer_of t sid in
        let save_line =
          Json.print
            (P.request_to_json
               {
                 P.id = req.P.id ^ ":save";
                 op = P.Session_save;
                 deadline_ms = None;
                 params =
                   { P.default_params with P.session = sid; close = true;
                     client = writer };
               })
        in
        match rpc_backend pc source save_line with
        | Error e ->
            Json.print (P.error_response ~id:req.P.id ~code:P.Internal e)
        | Ok sresp when not (line_ok sresp) ->
            Json.print
              (P.error_response ~id:req.P.id ~code:P.Internal
                 (Printf.sprintf "gateway/migrate: save on %s failed: %s"
                    source (line_error_message sresp)))
        | Ok _ -> (
            del_route t sid;
            let oline =
              restore_request ~id:(req.P.id ^ ":open") ~sid ~writer
            in
            match rpc_backend pc target oline with
            | Error e ->
                Json.print (P.error_response ~id:req.P.id ~code:P.Internal e)
            | Ok oresp when not (line_ok oresp) ->
                Json.print
                  (P.error_response ~id:req.P.id ~code:P.Internal
                     (Printf.sprintf
                        "gateway/migrate: restore on %s failed: %s" target
                        (line_error_message oresp)))
            | Ok _ ->
                set_route t sid target ~writer;
                counted t (fun c -> c.migrations <- c.migrations + 1);
                logf t "session %s migrated %s -> %s" sid source target;
                let run_ms = (Unix.gettimeofday () -. t0) *. 1000. in
                Json.print
                  (P.ok_response ~id:req.P.id ~op:P.Gateway_migrate
                     ~timing:(P.no_engine_timing ~queue_ms:0. ~run_ms)
                     [
                       ("session", Json.String sid);
                       ("from", Json.String source);
                       ("to", Json.String target);
                       ("text",
                        Json.String
                          (Printf.sprintf "session %s migrated: %s -> %s\n"
                             sid source target));
                     ])))

(* ------------------------------------------------------------------ *)
(* Local ops                                                           *)

let stats_response t (req : P.request) =
  Mutex.lock t.mu;
  let sessions = Hashtbl.length t.routes in
  Mutex.unlock t.mu;
  Mutex.lock t.counters_mu;
  let c = t.counters in
  let forwarded, fanned_out, migrations, failovers, errors =
    (c.forwarded, c.fanned_out, c.migrations, c.failovers, c.errors)
  in
  Mutex.unlock t.counters_mu;
  let backends = Ring.nodes t.ring in
  let buf = Buffer.create 256 in
  Printf.bprintf buf "gateway: %d backend(s), %d routed session(s)\n"
    (List.length backends) sessions;
  List.iter
    (fun b ->
      Printf.bprintf buf "  backend %s%s\n" b
        (if is_dead t b then " (unreachable)" else ""))
    backends;
  Printf.bprintf buf
    "forwarded %d, fanned out %d, migrations %d, failovers %d, errors %d\n"
    forwarded fanned_out migrations failovers errors;
  Json.print
    (P.ok_response ~id:req.P.id ~op:P.Stats
       ~timing:(P.no_engine_timing ~queue_ms:0. ~run_ms:0.)
       [
         ("gateway", Json.Bool true);
         ("backends", Json.Array (List.map (fun b -> Json.String b) backends));
         ("dead",
          Json.Array
            (List.filter_map
               (fun b -> if is_dead t b then Some (Json.String b) else None)
               backends));
         ("sessions", Json.Int sessions);
         ("forwarded", Json.Int forwarded);
         ("fanned_out", Json.Int fanned_out);
         ("migrations", Json.Int migrations);
         ("failovers", Json.Int failovers);
         ("errors", Json.Int errors);
         ("text", Json.String (Buffer.contents buf));
       ])

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

let answer t pc line =
  match P.parse_request line with
  | Error msg ->
      counted t (fun c -> c.errors <- c.errors + 1);
      Json.print (P.error_response ~id:"-" ~code:P.Bad_request msg)
  | Ok req -> (
      let resp =
        match req.P.op with
        | P.Ping ->
            Json.print
              (P.ok_response ~id:req.P.id ~op:P.Ping
                 ~timing:(P.no_engine_timing ~queue_ms:0. ~run_ms:0.)
                 [ ("pong", Json.Bool true) ])
        | P.Stats -> stats_response t req
        | P.Gateway_migrate -> migrate_session t pc req
        | P.Session_open -> open_session t pc req
        | P.Session_list -> list_sessions t pc req line
        | P.Session_edit | P.Session_undo | P.Session_redo | P.Session_run
        | P.Session_optimize | P.Session_attach | P.Session_detach
        | P.Session_save | P.Session_close ->
            session_op t pc req line
        | P.Explore when fanout_eligible t req -> (
            match fanout_explore t pc req with
            | `Done resp -> resp
            | `Fallback -> (
                match forward_stateless t pc req line with
                | Ok resp -> resp
                | Error e ->
                    counted t (fun c -> c.errors <- c.errors + 1);
                    Json.print
                      (P.error_response ~id:req.P.id ~code:P.Internal e)))
        | P.Explore | P.Explore_slice | P.Predict | P.Advise | P.Sensitivity
          -> (
            match forward_stateless t pc req line with
            | Ok resp -> resp
            | Error e ->
                counted t (fun c -> c.errors <- c.errors + 1);
                Json.print (P.error_response ~id:req.P.id ~code:P.Internal e))
      in
      logf t "id=%s op=%s %s" req.P.id
        (P.op_to_string req.P.op)
        (if line_ok resp then "ok" else "error");
      resp)

let handle_line t line =
  Mutex.lock t.test_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.test_mu)
    (fun () -> answer t t.test_pc line)

(* ------------------------------------------------------------------ *)
(* Transports (mirrors Server's: per-connection threads, select-based
   accept so stop is honoured promptly)                                *)

let register_conn t fd =
  Mutex.lock t.conns_mu;
  t.conns <- fd :: t.conns;
  Mutex.unlock t.conns_mu

let unregister_conn t fd =
  Mutex.lock t.conns_mu;
  t.conns <- List.filter (fun c -> c != fd) t.conns;
  Mutex.unlock t.conns_mu

let close_conns t =
  Mutex.lock t.conns_mu;
  let cs = t.conns in
  t.conns <- [];
  Mutex.unlock t.conns_mu;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) cs

let conn_loop t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let pc : pconn = Hashtbl.create 4 in
  (try
     while true do
       let line = input_line ic in
       let resp = answer t pc line in
       output_string oc resp;
       output_char oc '\n';
       flush oc
     done
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  close_pconn pc;
  unregister_conn t fd;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t fd =
  while not (Atomic.get t.stopping) do
    match Unix.select [ fd ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept fd with
        | cfd, _ ->
            register_conn t cfd;
            ignore (Thread.create (conn_loop t) cfd)
        | exception
            Unix.Unix_error
              ( (Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                | Unix.ECONNABORTED),
                _,
                _ ) ->
            ())
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ()
  done

let stdio_loop t =
  let pc : pconn = Hashtbl.create 4 in
  (try
     while not (Atomic.get t.stopping) do
       let line = input_line stdin in
       let resp = answer t pc line in
       output_string stdout resp;
       output_char stdout '\n';
       flush stdout
     done
   with End_of_file | Sys_error _ -> ());
  close_pconn pc

let install_signals t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let h = Sys.Signal_handle (fun _ -> stop t) in
  (try Sys.set_signal Sys.sigterm h with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigint h with Invalid_argument _ | Sys_error _ -> ()

let serve t =
  if t.cfg.handle_signals then install_signals t;
  let prober =
    match t.cfg.health_interval_s with
    | Some s when s > 0. ->
        logf t "health prober every %g s" s;
        Some (Thread.create (health_loop t) s)
    | _ -> None
  in
  (match t.cfg.socket_path with
  | Some path ->
      logf t "listening on %s (%d backend(s)%s)" path
        (List.length t.cfg.backends)
        (if t.cfg.fanout then ", fan-out" else "")
  | None ->
      logf t "reading requests from stdin (%d backend(s)%s)"
        (List.length t.cfg.backends)
        (if t.cfg.fanout then ", fan-out" else ""));
  (match t.listen_fd with
  | Some fd -> accept_loop t fd
  | None -> stdio_loop t);
  close_conns t;
  (match t.listen_fd with
  | Some fd -> (
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match t.cfg.socket_path with
      | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | None -> ())
  | None -> ());
  Option.iter Thread.join prober;
  Mutex.lock t.test_mu;
  close_pconn t.test_pc;
  Mutex.unlock t.test_mu;
  logf t "stopped"
