(* The [chop serve] daemon.  See server.mli for the architecture; the
   short version: one shared domain pool, a cache of warm engines keyed
   by request parameters, a bounded scheduler in front, connection
   threads that only parse and write, and a drain-then-exit shutdown. *)

module Json = Chop_util.Json

type config = {
  socket_path : string option;
  concurrency : int;
  queue : int;
  jobs : int;
  default_deadline_ms : float option;
  log : out_channel option;
  handle_signals : bool;
  session_ttl_s : float;
  max_sessions : int;
  state_dir : string option;
      (** directory for durable session snapshots: written on shutdown,
          eviction and [session/save]; read back by [session/open] *)
}

let default_config =
  {
    socket_path = None;
    concurrency = 2;
    queue = 8;
    jobs = 1;
    default_deadline_ms = None;
    log = Some stderr;
    handle_signals = true;
    session_ttl_s = 600.;
    max_sessions = 32;
    state_dir = None;
  }

type counters = {
  mutable ok : int;
  mutable bad_request : int;
  mutable overloaded : int;
  mutable deadline : int;
  mutable shutting_down : int;
  mutable internal : int;
}

(* A warm engine and the mutex serialising runs on it: one engine serves
   one (spec, config) identity, and concurrent requests for the same
   identity queue on the mutex rather than duplicating the engine. *)
type engine_slot = { engine : Chop.Explore.Engine.t; mu : Mutex.t }

type t = {
  cfg : config;
  pool : Chop_util.Pool.t;
  sched : Scheduler.t;
  engines : (string, engine_slot) Hashtbl.t;
  engines_mu : Mutex.t;
  sessions : Session_table.t;
  log_mu : Mutex.t;
  counters_mu : Mutex.t;
  counters : counters;
  stopping : bool Atomic.t;
  listen_fd : Unix.file_descr option;
  mutable conns : Unix.file_descr list;
  conns_mu : Mutex.t;
  started : float;
}

let create cfg =
  if cfg.concurrency < 1 then invalid_arg "Server.create: concurrency must be >= 1";
  if cfg.queue < 0 then invalid_arg "Server.create: queue must be >= 0";
  if cfg.jobs < 1 then invalid_arg "Server.create: jobs must be >= 1";
  if cfg.max_sessions < 1 then
    invalid_arg "Server.create: max_sessions must be >= 1";
  if cfg.session_ttl_s <= 0. then
    invalid_arg "Server.create: session_ttl_s must be positive";
  (match cfg.state_dir with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | _ -> ());
  let listen_fd =
    match cfg.socket_path with
    | None -> None
    | Some path ->
        if Sys.file_exists path then Unix.unlink path;
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 16;
        Some fd
  in
  {
    cfg;
    pool = Chop_util.Pool.create ~jobs:cfg.jobs ();
    sched = Scheduler.create ~queue:cfg.queue ~concurrency:cfg.concurrency;
    engines = Hashtbl.create 16;
    engines_mu = Mutex.create ();
    sessions =
      Session_table.create ~ttl_s:cfg.session_ttl_s
        ~max_sessions:cfg.max_sessions;
    log_mu = Mutex.create ();
    counters_mu = Mutex.create ();
    counters =
      {
        ok = 0;
        bad_request = 0;
        overloaded = 0;
        deadline = 0;
        shutting_down = 0;
        internal = 0;
      };
    stopping = Atomic.make false;
    listen_fd;
    conns = [];
    conns_mu = Mutex.create ();
    started = Unix.gettimeofday ();
  }

let stop t = Atomic.set t.stopping true

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)

let timestamp now =
  let tm = Unix.gmtime now in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%06.3fZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    (float_of_int tm.Unix.tm_sec +. (now -. Float.of_int (int_of_float now)))

let log_line t line =
  match t.cfg.log with
  | None -> ()
  | Some oc ->
      Mutex.lock t.log_mu;
      (try
         output_string oc line;
         output_char oc '\n';
         flush oc
       with Sys_error _ -> ());
      Mutex.unlock t.log_mu

let access_log ?(client = "") t ~id ~op ~status ~(timing : Protocol.timing)
    ~verdict =
  log_line t
    (Printf.sprintf
       "%s id=%s op=%s status=%s queue_ms=%.1f run_ms=%.1f predict_ms=%.1f \
        search_ms=%.1f merge_ms=%.1f cache=%dh/%dm/%de/%ds verdict=%s%s"
       (timestamp (Unix.gettimeofday ()))
       id op status timing.Protocol.queue_ms timing.Protocol.run_ms
       timing.Protocol.predict_ms timing.Protocol.search_ms
       timing.Protocol.merge_ms timing.Protocol.cache_hits
       timing.Protocol.cache_misses timing.Protocol.cache_evictions
       timing.Protocol.cache_structural_hits verdict
       (* per-client attribution: who performed the op, e.g. which of a
          session's clients made an edit *)
       (if client = "" then "" else " client=" ^ client))

let bump t (code : [ `Ok | `Err of Protocol.error_code ]) =
  Mutex.lock t.counters_mu;
  (match code with
  | `Ok -> t.counters.ok <- t.counters.ok + 1
  | `Err Protocol.Bad_request -> t.counters.bad_request <- t.counters.bad_request + 1
  | `Err Protocol.Overloaded -> t.counters.overloaded <- t.counters.overloaded + 1
  | `Err Protocol.Deadline -> t.counters.deadline <- t.counters.deadline + 1
  | `Err Protocol.Shutting_down ->
      t.counters.shutting_down <- t.counters.shutting_down + 1
  | `Err Protocol.Internal -> t.counters.internal <- t.counters.internal + 1);
  Mutex.unlock t.counters_mu

(* ------------------------------------------------------------------ *)
(* Engines                                                             *)

let engine_slot t ~key spec config =
  Mutex.lock t.engines_mu;
  let slot =
    match Hashtbl.find_opt t.engines key with
    | Some s -> s
    | None ->
        (* created under the table lock so a burst of identical requests
           builds the integration context once, not once per request *)
        let engine = Chop.Explore.Engine.create ~pool:t.pool config spec in
        let s = { engine; mu = Mutex.create () } in
        Hashtbl.add t.engines key s;
        s
  in
  Mutex.unlock t.engines_mu;
  slot

let with_slot slot f =
  Mutex.lock slot.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock slot.mu) (fun () -> f slot.engine)

let close_engines t =
  Mutex.lock t.engines_mu;
  Hashtbl.iter (fun _ s -> Chop.Explore.Engine.close s.engine) t.engines;
  Hashtbl.reset t.engines;
  Mutex.unlock t.engines_mu

(* ------------------------------------------------------------------ *)
(* Interactive sessions: membership in {!Session_table}, durability in
   {!Chop.Snapshot}.  A session is snapshotted whenever it leaves the
   table with a state dir configured — eviction, session/save, shutdown —
   and session/open resurrects the snapshot, so a restart or a gateway
   migration loses no interactive state. *)

let find_session t sid =
  match Session_table.find t.sessions sid with
  | Some slot -> Ok slot
  | None ->
      Error
        ( Protocol.Bad_request,
          Printf.sprintf "unknown session %S (closed or evicted?)" sid )

let with_session_slot (slot : Session_table.slot) f =
  Mutex.lock slot.Session_table.smu;
  Fun.protect ~finally:(fun () -> Mutex.unlock slot.Session_table.smu) f

(* Only the client that opened (or restored) a session may mutate it;
   attached observers and strangers read. *)
let ensure_writer (slot : Session_table.slot) (p : Protocol.params) =
  if slot.Session_table.writer = p.Protocol.client then Ok ()
  else
    Error
      (Printf.sprintf
         "client %S is not this session's writer (%s); read-only clients \
          may session/run and session/attach"
         p.Protocol.client
         (match slot.Session_table.writer with
         | "" -> "opened anonymously"
         | w -> Printf.sprintf "writer %S" w))

let snapshot_path t sid =
  Option.map
    (fun dir -> Filename.concat dir (sid ^ ".chopsession"))
    t.cfg.state_dir

(* The session's open parameters ride in the snapshot's meta section (as
   one request line), so a restore — in this process, after a restart, or
   on another backend — renders session/run exactly as the original open
   would have. *)
let snapshot_meta (p : Protocol.params) =
  let req =
    { Protocol.id = "-"; op = Protocol.Session_open; deadline_ms = None;
      params = p }
  in
  [ ("open", Json.print (Protocol.request_to_json req)) ]

(* caller holds the slot's mutex (or is past any concurrency: shutdown) *)
let save_session t sid (slot : Session_table.slot) =
  match snapshot_path t sid with
  | None -> Ok false
  | Some path -> (
      let st = Chop.Explore.Session.state slot.Session_table.session in
      let snap =
        Chop.Snapshot.of_state
          ~meta:(snapshot_meta slot.Session_table.open_params)
          st
      in
      try
        Chop.Snapshot.save path snap;
        Ok true
      with Sys_error m -> Error m)

let drop_snapshot t sid =
  match snapshot_path t sid with
  | Some path when Sys.file_exists path -> (
      try Sys.remove path with Sys_error _ -> ())
  | _ -> ()

let evict_session t ~reason sid (slot : Session_table.slot) =
  let saved =
    match save_session t sid slot with
    | Ok saved -> saved
    | Error m ->
        log_line t
          (Printf.sprintf "%s serve: session %s snapshot failed: %s"
             (timestamp (Unix.gettimeofday ()))
             sid m);
        false
  in
  Chop.Explore.Session.close slot.Session_table.session;
  log_line t
    (Printf.sprintf "%s serve: session %s evicted (%s%s)"
       (timestamp (Unix.gettimeofday ()))
       sid reason
       (if saved then ", snapshotted" else ""))

let prune_sessions t ~now =
  Session_table.prune t.sessions ~now ~room_for:1
    ~on_evict:(fun ~reason sid slot -> evict_session t ~reason sid slot)

let ( let* ) r f = Result.bind r f

(* session/open with an id names an existing snapshot to resurrect;
   [restore] makes its absence an error instead of a fresh open. *)
let restore_session t ~sid (p : Protocol.params) =
  match snapshot_path t sid with
  | None ->
      if p.Protocol.restore then
        Error "session restore requires the server to run with --state-dir"
      else Ok None
  | Some path ->
      if not (Sys.file_exists path) then
        if p.Protocol.restore then
          Error (Printf.sprintf "no snapshot for session %S" sid)
        else Ok None
      else begin
        match Chop.Snapshot.load path with
        | exception Chop.Snapshot.Parse_error m ->
            Error (Printf.sprintf "snapshot for %S is unreadable: %s" sid m)
        | exception Sys_error m -> Error m
        | snap ->
            let open_params =
              match List.assoc_opt "open" snap.Chop.Snapshot.meta with
              | Some line -> (
                  match Protocol.parse_request line with
                  | Ok req -> req.Protocol.params
                  | Error _ -> p)
              | None -> p
            in
            let* config = Ops.config_of_params ~jobs:t.cfg.jobs open_params in
            let session =
              Chop.Explore.Session.restore ~pool:t.pool config
                (Chop.Snapshot.to_state snap)
            in
            Ok (Some (session, open_params))
      end

let close_sessions t =
  Session_table.drain t.sessions (fun sid slot ->
      (match save_session t sid slot with
      | Ok true ->
          log_line t
            (Printf.sprintf "%s serve: session %s snapshotted"
               (timestamp (Unix.gettimeofday ()))
               sid)
      | Ok false -> ()
      | Error m ->
          log_line t
            (Printf.sprintf "%s serve: session %s snapshot failed: %s"
               (timestamp (Unix.gettimeofday ()))
               sid m));
      Chop.Explore.Session.close slot.Session_table.session)

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)

let scheduler_stats_json t =
  let s = Scheduler.stats t.sched in
  Json.Object
    [
      ("accepted", Json.Int s.Scheduler.accepted);
      ("rejected", Json.Int s.Scheduler.rejected);
      ("completed", Json.Int s.Scheduler.completed);
      ("expired", Json.Int s.Scheduler.expired);
      ("failed", Json.Int s.Scheduler.failed);
      ("queued", Json.Int (Scheduler.queued t.sched));
      ("in_flight", Json.Int (Scheduler.in_flight t.sched));
      ("max_queued", Json.Int s.Scheduler.max_queued);
      ("max_in_flight", Json.Int s.Scheduler.max_in_flight);
    ]

let stats_fields t =
  let c = t.counters in
  Mutex.lock t.counters_mu;
  let requests =
    Json.Object
      [
        ("ok", Json.Int c.ok);
        ("bad_request", Json.Int c.bad_request);
        ("overloaded", Json.Int c.overloaded);
        ("deadline", Json.Int c.deadline);
        ("shutting_down", Json.Int c.shutting_down);
        ("internal", Json.Int c.internal);
      ]
  in
  Mutex.unlock t.counters_mu;
  let cache = Chop.Pred_cache.counters Chop.Pred_cache.shared in
  Mutex.lock t.engines_mu;
  let engines = Hashtbl.length t.engines in
  Mutex.unlock t.engines_mu;
  let sessions = Session_table.length t.sessions in
  let lookups = cache.Chop.Pred_cache.hits + cache.Chop.Pred_cache.misses in
  let hit_rate =
    if lookups = 0 then 0.
    else float_of_int cache.Chop.Pred_cache.hits /. float_of_int lookups
  in
  let uptime = Unix.gettimeofday () -. t.started in
  let text =
    Printf.sprintf
      "uptime: %.1f s, engines: %d, sessions: %d\n\
       cache: %d hit(s) / %d miss(es) / %d eviction(s), %d structural \
       (cross-session) hit(s), hit rate %.1f%%\n"
      uptime engines sessions cache.Chop.Pred_cache.hits
      cache.Chop.Pred_cache.misses cache.Chop.Pred_cache.evictions
      cache.Chop.Pred_cache.structural_hits (100. *. hit_rate)
  in
  [
    ("uptime_s", Json.Float uptime);
    ("engines", Json.Int engines);
    ("sessions", Json.Int sessions);
    ("scheduler", scheduler_stats_json t);
    ("requests", requests);
    ("cache",
     Json.Object
       [
         ("hits", Json.Int cache.Chop.Pred_cache.hits);
         ("misses", Json.Int cache.Chop.Pred_cache.misses);
         ("evictions", Json.Int cache.Chop.Pred_cache.evictions);
         ("structural_hits", Json.Int cache.Chop.Pred_cache.structural_hits);
         ("hit_rate", Json.Float hit_rate);
       ]);
    ("text", Json.String text);
  ]

(* Typed scheduler failures carry their context into the structured
   [internal] error message instead of a bare [Failure] text; everything
   else falls back to [Printexc]. *)
let describe_exn = function
  | Chop_sched.List_sched.No_progress { graph; ops; bound } ->
      Printf.sprintf
        "scheduler stalled on %S (%d ops, %d-iteration bound): internal \
         invariant violation"
        graph ops bound
  | exn -> Printexc.to_string exn

(* What backs a response's [timing] block: a single engine run's report,
   a whole optimize outcome (counters aggregated across its refinement
   runs), or nothing. *)
type timing_source =
  | No_timing
  | Of_report of Chop.Explore.report
  | Of_auto of Chop_auto.outcome

(* One operation, already admitted: returns the result fields, the
   timing source (when an engine ran) and the verdict shown in the
   access log. *)
let exec_op t (req : Protocol.request) ~interrupt :
    ( (string * Json.t) list * timing_source * string,
      Protocol.error_code * string )
    result =
  let p = req.Protocol.params in
  let ( let* ) r f =
    match r with Ok v -> f v | Error e -> Error (Protocol.Bad_request, e)
  in
  match req.Protocol.op with
  | Protocol.Ping -> Ok ([ ("pong", Json.Bool true) ], No_timing, "-")
  | Protocol.Stats -> Ok (stats_fields t, No_timing, "-")
  | Protocol.Explore -> (
      let* spec = Ops.spec_of_params p in
      let* config = Ops.config_of_params ~jobs:t.cfg.jobs p in
      let slot =
        engine_slot t ~key:(Ops.engine_key ~op:req.Protocol.op p) spec config
      in
      match with_slot slot (Chop.Explore.Engine.run_interruptible ~interrupt) with
      | exception Chop.Explore.Cancelled ->
          Error (Protocol.Deadline, "deadline exceeded during the run")
      | report ->
          let text =
            Ops.render_explore spec ~keep_all:p.Protocol.keep_all
              ~csv:p.Protocol.csv ~verbose:p.Protocol.verbose report
          in
          let feasible = Ops.explore_feasible_count report in
          Ok
            ( [
                ("text", Json.String text);
                ("feasible", Json.Bool (feasible > 0));
                ("feasible_count", Json.Int feasible);
                ("trials",
                 Json.Int
                   report.Chop.Explore.outcome.Chop.Search.stats
                     .Chop.Search.implementation_trials);
              ],
              Of_report report,
              if feasible > 0 then "feasible" else "infeasible" ))
  | Protocol.Predict ->
      let* spec = Ops.spec_of_params p in
      let config = Chop.Explore.Config.make ~jobs:t.cfg.jobs () in
      let slot =
        engine_slot t ~key:(Ops.engine_key ~op:req.Protocol.op p) spec config
      in
      let per_partition, stats = with_slot slot Chop.Explore.Engine.predictions in
      let text =
        Ops.render_predict spec ~index:p.Protocol.index ~top:p.Protocol.top
          per_partition stats
      in
      Ok ([ ("text", Json.String text) ], No_timing, "-")
  | Protocol.Advise -> (
      let* spec = Ops.spec_of_params p in
      let* config = Ops.config_of_params ~jobs:t.cfg.jobs p in
      let slot =
        engine_slot t ~key:(Ops.engine_key ~op:req.Protocol.op p) spec config
      in
      match with_slot slot (Chop.Explore.Engine.run_interruptible ~interrupt) with
      | exception Chop.Explore.Cancelled ->
          Error (Protocol.Deadline, "deadline exceeded during the run")
      | report ->
          let j = Chop.Advisor.judge spec report in
          Ok
            ( [
                ("text", Json.String (Ops.render_advice j));
                ("feasible", Json.Bool j.Chop.Advisor.feasible);
              ],
              Of_report report,
              if j.Chop.Advisor.feasible then "feasible" else "infeasible" ))
  | Protocol.Session_open -> (
      let now = Unix.gettimeofday () in
      prune_sessions t ~now;
      let requested = p.Protocol.session in
      let* restored =
        if requested = "" then
          if p.Protocol.restore then
            Error "session/open with restore requires a session id"
          else Ok None
        else restore_session t ~sid:requested p
      in
      let* session, open_params, restored_flag =
        match restored with
        | Some (session, open_params) -> Ok (session, open_params, true)
        | None ->
            Result.bind (Ops.spec_of_params p) (fun spec ->
                Result.bind (Ops.config_of_params ~jobs:t.cfg.jobs p)
                  (fun config ->
                    Ok
                      ( Chop.Explore.Session.create ~pool:t.pool config spec,
                        p, false )))
      in
      let sid =
        if requested = "" then Session_table.fresh_id t.sessions else requested
      in
      let slot =
        {
          Session_table.session;
          smu = Mutex.create ();
          last_used = now;
          open_params;
          writer = p.Protocol.client;
          observers = [];
          edits = 0;
        }
      in
      match Session_table.add t.sessions sid slot with
      | Error m ->
          Chop.Explore.Session.close session;
          Error (Protocol.Bad_request, m)
      | Ok () ->
          Ok
            ( [
                ("session", Json.String sid);
                ("restored", Json.Bool restored_flag);
                ("revision", Json.Int (Chop.Explore.Session.revision session));
                ("text",
                 Json.String
                   (Ops.render_parts (Chop.Explore.Session.spec session)));
              ],
              No_timing,
              if restored_flag then "restored" else "-" ))
  | Protocol.Session_edit -> (
      match find_session t p.Protocol.session with
      | Error _ as e -> e
      | Ok slot ->
          with_session_slot slot (fun () ->
              let* () = ensure_writer slot p in
              let spec = Chop.Explore.Session.spec slot.Session_table.session in
              let* edits = Ops.parse_edits spec p.Protocol.edits in
              match
                Chop.Explore.Session.edit slot.Session_table.session edits
              with
              | Error e ->
                  Error
                    ( Protocol.Bad_request,
                      Format.asprintf "%a" Chop.Spec.pp_update_error e )
              | Ok dirty ->
                  slot.Session_table.last_used <- Unix.gettimeofday ();
                  slot.Session_table.edits <- slot.Session_table.edits + 1;
                  let labels ls = Json.Array (List.map (fun l -> Json.String l) ls) in
                  Ok
                    ( [
                        ("session", Json.String p.Protocol.session);
                        ("text", Json.String (Ops.render_dirty dirty));
                        ("repredict", labels dirty.Chop.Spec.repredict);
                        ("rederive", labels dirty.Chop.Spec.rederive);
                        ("removed", labels dirty.Chop.Spec.removed);
                        ("revision",
                         Json.Int
                           (Chop.Explore.Session.revision
                              slot.Session_table.session));
                      ],
                      No_timing,
                      "-" )))
  | (Protocol.Session_undo | Protocol.Session_redo) as op -> (
      match find_session t p.Protocol.session with
      | Error _ as e -> e
      | Ok slot ->
          with_session_slot slot (fun () ->
              let* () = ensure_writer slot p in
              let step =
                if op = Protocol.Session_undo then Chop.Explore.Session.undo
                else Chop.Explore.Session.redo
              in
              let* dirty = step slot.Session_table.session in
              slot.Session_table.last_used <- Unix.gettimeofday ();
              slot.Session_table.edits <- slot.Session_table.edits + 1;
              Ok
                ( [
                    ("session", Json.String p.Protocol.session);
                    ("text", Json.String (Ops.render_dirty dirty));
                    ("revision",
                     Json.Int
                       (Chop.Explore.Session.revision
                          slot.Session_table.session));
                    ("undo_depth",
                     Json.Int
                       (Chop.Explore.Session.undo_depth
                          slot.Session_table.session));
                    ("redo_depth",
                     Json.Int
                       (Chop.Explore.Session.redo_depth
                          slot.Session_table.session));
                  ],
                  No_timing,
                  "-" )))
  | Protocol.Session_attach -> (
      match find_session t p.Protocol.session with
      | Error _ as e -> e
      | Ok slot ->
          with_session_slot slot (fun () ->
              if p.Protocol.client = "" then
                Error
                  ( Protocol.Bad_request,
                    "session/attach requires a client identity" )
              else if p.Protocol.client = slot.Session_table.writer then
                Error
                  ( Protocol.Bad_request,
                    Printf.sprintf "client %S is already the writer"
                      p.Protocol.client )
              else if List.mem p.Protocol.client slot.Session_table.observers
              then
                Error
                  ( Protocol.Bad_request,
                    Printf.sprintf "client %S is already attached"
                      p.Protocol.client )
              else begin
                slot.Session_table.observers <-
                  p.Protocol.client :: slot.Session_table.observers;
                slot.Session_table.last_used <- Unix.gettimeofday ();
                Ok
                  ( [
                      ("session", Json.String p.Protocol.session);
                      ("observers",
                       Json.Int (List.length slot.Session_table.observers));
                      ("text",
                       Json.String
                         (Printf.sprintf
                            "attached to session %s as observer (writer %s)\n"
                            p.Protocol.session
                            (match slot.Session_table.writer with
                            | "" -> "-"
                            | w -> w)));
                    ],
                    No_timing,
                    "-" )
              end))
  | Protocol.Session_detach -> (
      match find_session t p.Protocol.session with
      | Error _ as e -> e
      | Ok slot ->
          with_session_slot slot (fun () ->
              if not (List.mem p.Protocol.client slot.Session_table.observers)
              then
                Error
                  ( Protocol.Bad_request,
                    Printf.sprintf "client %S is not attached to session %s"
                      p.Protocol.client p.Protocol.session )
              else begin
                slot.Session_table.observers <-
                  List.filter
                    (fun c -> c <> p.Protocol.client)
                    slot.Session_table.observers;
                Ok
                  ( [
                      ("session", Json.String p.Protocol.session);
                      ("observers",
                       Json.Int (List.length slot.Session_table.observers));
                      ("text",
                       Json.String
                         (Printf.sprintf "detached from session %s\n"
                            p.Protocol.session));
                    ],
                    No_timing,
                    "-" )
              end))
  | Protocol.Session_list ->
      let now = Unix.gettimeofday () in
      let lines =
        List.map
          (fun (sid, (slot : Session_table.slot)) ->
            {
              Ops.ses_id = sid;
              ses_revision =
                Chop.Explore.Session.revision slot.Session_table.session;
              ses_age_s = Float.max 0. (now -. slot.Session_table.last_used);
              ses_writer = slot.Session_table.writer;
              ses_observers = List.length slot.Session_table.observers;
            })
          (Session_table.entries t.sessions)
      in
      Ok
        ( [
            ("sessions", Json.Array (List.map Ops.session_line_to_json lines));
            ("text", Json.String (Ops.render_sessions lines));
          ],
          No_timing,
          "-" )
  | Protocol.Session_save -> (
      match find_session t p.Protocol.session with
      | Error _ as e -> e
      | Ok slot ->
          with_session_slot slot (fun () ->
              let* () = ensure_writer slot p in
              if t.cfg.state_dir = None then
                Error
                  ( Protocol.Bad_request,
                    "session/save requires the server to run with --state-dir"
                  )
              else
                match save_session t p.Protocol.session slot with
                | Error m -> Error (Protocol.Internal, m)
                | Ok _ ->
                    let closing = p.Protocol.close in
                    if closing then begin
                      (* the migration handoff: persist, then free the
                         slot so the target backend owns the session *)
                      ignore (Session_table.remove t.sessions p.Protocol.session);
                      Chop.Explore.Session.close slot.Session_table.session
                    end;
                    Ok
                      ( [
                          ("session", Json.String p.Protocol.session);
                          ("saved", Json.Bool true);
                          ("closed", Json.Bool closing);
                          ("text",
                           Json.String
                             (Printf.sprintf "session %s saved\n"
                                p.Protocol.session
                             ^
                             if closing then
                               Ops.render_session_closed p.Protocol.session
                             else ""));
                        ],
                        No_timing,
                        "-" )))
  | Protocol.Session_run -> (
      match find_session t p.Protocol.session with
      | Error _ as e -> e
      | Ok slot ->
          with_session_slot slot (fun () ->
              match
                Chop.Explore.Session.run_interruptible ~interrupt
                  slot.Session_table.session
              with
              | exception Chop.Explore.Cancelled ->
                  Error (Protocol.Deadline, "deadline exceeded during the run")
              | report ->
                  slot.Session_table.last_used <- Unix.gettimeofday ();
                  let sp = slot.Session_table.open_params in
                  let text =
                    Ops.render_explore
                      (Chop.Explore.Session.spec slot.Session_table.session)
                      ~keep_all:sp.Protocol.keep_all ~csv:sp.Protocol.csv
                      ~verbose:sp.Protocol.verbose report
                  in
                  let feasible = Ops.explore_feasible_count report in
                  Ok
                    ( [
                        ("session", Json.String p.Protocol.session);
                        ("text", Json.String text);
                        ("feasible", Json.Bool (feasible > 0));
                        ("feasible_count", Json.Int feasible);
                        ("trials",
                         Json.Int
                           report.Chop.Explore.outcome.Chop.Search.stats
                             .Chop.Search.implementation_trials);
                      ],
                      Of_report report,
                      if feasible > 0 then "feasible" else "infeasible" )))
  | Protocol.Session_optimize -> (
      match find_session t p.Protocol.session with
      | Error _ as e -> e
      | Ok slot ->
          with_session_slot slot (fun () ->
              let* () = ensure_writer slot p in
              let* constraints =
                Ops.constraints_of_params
                  (Chop.Explore.Session.spec slot.Session_table.session)
                  p
              in
              let time_limit_s =
                if p.Protocol.time_limit_ms > 0. then
                  Some (p.Protocol.time_limit_ms /. 1000.)
                else None
              in
              match
                Chop_auto.refine ~seed:p.Protocol.seed ~constraints
                  ~max_moves:p.Protocol.max_moves ?time_limit_s
                  ?coarse_target:
                    (if p.Protocol.coarse > 0 then Some p.Protocol.coarse
                     else None)
                  ~interrupt slot.Session_table.session
              with
              | exception Chop.Explore.Cancelled ->
                  Error (Protocol.Deadline, "deadline exceeded during the run")
              | exception Chop_auto.Invalid_constraints m ->
                  Error (Protocol.Bad_request, m)
              | o ->
                  slot.Session_table.last_used <- Unix.gettimeofday ();
                  slot.Session_table.edits <- slot.Session_table.edits + 1;
                  let text =
                    Ops.render_auto
                      (Chop.Explore.Session.spec slot.Session_table.session)
                      o
                  in
                  let feasible = Ops.explore_feasible_count o.Chop_auto.report in
                  Ok
                    ( [
                        ("session", Json.String p.Protocol.session);
                        ("text", Json.String text);
                        ("feasible", Json.Bool (feasible > 0));
                        ("feasible_count", Json.Int feasible);
                        ("levels", Json.Int o.Chop_auto.levels);
                        ("moves_tried", Json.Int o.Chop_auto.moves_tried);
                        ("moves_accepted", Json.Int o.Chop_auto.moves_accepted);
                        ("impl_flips", Json.Int o.Chop_auto.impl_flips);
                        ("interrupted", Json.Bool o.Chop_auto.interrupted);
                      ],
                      Of_auto o,
                      if feasible > 0 then "feasible" else "infeasible" )))
  | Protocol.Session_close -> (
      match find_session t p.Protocol.session with
      | Error _ as e -> e
      | Ok probe -> (
          match
            with_session_slot probe (fun () ->
                match ensure_writer probe p with
                | Error m -> Error (Protocol.Bad_request, m)
                | Ok () -> (
                    (* re-check under the session mutex: a concurrent close
                       or migration may have emptied the slot already *)
                    match Session_table.remove t.sessions p.Protocol.session with
                    | None ->
                        Error
                          ( Protocol.Bad_request,
                            Printf.sprintf
                              "unknown session %S (closed or evicted?)"
                              p.Protocol.session )
                    | Some _ ->
                        Chop.Explore.Session.close probe.Session_table.session;
                        (* an explicit close discards durable state too —
                           only eviction, shutdown and session/save keep
                           snapshots *)
                        drop_snapshot t p.Protocol.session;
                        Ok ()))
          with
          | Error _ as e -> e
          | Ok () ->
              Ok
                ( [
                    ("closed", Json.Bool true);
                    ("text",
                     Json.String
                       (Ops.render_session_closed p.Protocol.session));
                  ],
                  No_timing,
                  "-" )))
  | Protocol.Explore_slice -> (
      let* spec = Ops.spec_of_params p in
      let* config = Ops.config_of_params ~jobs:t.cfg.jobs p in
      let slot =
        engine_slot t ~key:(Ops.engine_key ~op:req.Protocol.op p) spec config
      in
      match
        with_slot slot
          (Chop.Explore.Engine.run_slice ~index:p.Protocol.slice_index
             ~count:p.Protocol.slice_count)
      with
      | exception Invalid_argument m -> Error (Protocol.Bad_request, m)
      | sr -> Ok (Ops.slice_payload_fields sr, No_timing, "-"))
  | Protocol.Gateway_migrate ->
      Error
        ( Protocol.Bad_request,
          "gateway/migrate is a gateway operation; this is a backend" )
  | Protocol.Sensitivity ->
      let* spec = Ops.spec_of_params p in
      (* per-point what-if probes build their own single-job engines; the
         shared prediction cache is what keeps repeat sweeps warm *)
      let config = Chop.Explore.Config.make ~jobs:1 () in
      let* sweep = Ops.run_sensitivity ~config spec p in
      let cliff =
        match Chop.Sensitivity.cliff sweep with
        | Some v -> Json.Float v
        | None -> Json.Null
      in
      Ok
        ( [
            ("text", Json.String (Ops.render_sensitivity sweep));
            ("cliff", cliff);
          ],
          No_timing,
          "-" )

(* The full pipeline for one admitted request: execute, time, count,
   log, render the response object. *)
let execute t (req : Protocol.request) ~queue_seconds ~interrupt =
  let t0 = Unix.gettimeofday () in
  let queue_ms = queue_seconds *. 1000. in
  let op_name = Protocol.op_to_string req.Protocol.op in
  let result =
    try exec_op t req ~interrupt
    with exn -> Error (Protocol.Internal, describe_exn exn)
  in
  let run_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  match result with
  | Ok (fields, report, verdict) ->
      let timing =
        match report with
        | Of_report r -> Protocol.timing_of_report ~queue_ms ~run_ms r
        | Of_auto o -> Protocol.optimize_timing ~queue_ms ~run_ms o
        | No_timing -> Protocol.no_engine_timing ~queue_ms ~run_ms
      in
      bump t `Ok;
      access_log t ~client:req.Protocol.params.Protocol.client
        ~id:req.Protocol.id ~op:op_name ~status:"ok" ~timing ~verdict;
      Protocol.ok_response ~id:req.Protocol.id ~op:req.Protocol.op ~timing fields
  | Error (code, msg) ->
      let timing = Protocol.no_engine_timing ~queue_ms ~run_ms in
      bump t (`Err code);
      access_log t ~client:req.Protocol.params.Protocol.client
        ~id:req.Protocol.id ~op:op_name
        ~status:(Protocol.error_code_to_string code)
        ~timing ~verdict:"-";
      Protocol.error_response ~id:req.Protocol.id ~code msg

(* Rejections that never execute still get a counter bump and a log
   line, so the access log accounts for every request seen. *)
let reject t ~id ~op ~code ~queue_seconds msg =
  let timing =
    Protocol.no_engine_timing ~queue_ms:(queue_seconds *. 1000.) ~run_ms:0.
  in
  bump t (`Err code);
  access_log t ~id ~op ~status:(Protocol.error_code_to_string code) ~timing
    ~verdict:"-";
  Protocol.error_response ~id ~code msg

let effective_deadline t (req : Protocol.request) ~now =
  match
    (match req.Protocol.deadline_ms with
    | Some _ as d -> d
    | None -> t.cfg.default_deadline_ms)
  with
  | None -> None
  | Some ms -> Some (now +. (ms /. 1000.))

(* Parse + dispatch for one request line; [send] delivers each response
   line (possibly from a scheduler thread, later). *)
let dispatch_line t ~send line =
  match Protocol.parse_request line with
  | Error msg ->
      send
        (Json.print
           (reject t ~id:"-" ~op:"-" ~code:Protocol.Bad_request ~queue_seconds:0.
              msg))
  | Ok req -> (
      let id = req.Protocol.id in
      let op = Protocol.op_to_string req.Protocol.op in
      match req.Protocol.op with
      | Protocol.Stats | Protocol.Ping ->
          (* answered inline, bypassing the queue: the service stays
             observable when the scheduler is saturated *)
          send
            (Json.print
               (execute t req ~queue_seconds:0. ~interrupt:(fun () -> false)))
      | _ -> (
          let deadline = effective_deadline t req ~now:(Unix.gettimeofday ()) in
          let outcome =
            Scheduler.submit t.sched ?deadline
              ~expired:(fun ~queue_seconds ->
                send
                  (Json.print
                     (reject t ~id ~op ~code:Protocol.Deadline ~queue_seconds
                        "deadline exceeded while queued")))
              ~run:(fun ~interrupt ~queue_seconds ->
                send (Json.print (execute t req ~queue_seconds ~interrupt)))
              ()
          in
          match outcome with
          | Scheduler.Accepted -> ()
          | Scheduler.Overloaded ->
              send
                (Json.print
                   (reject t ~id ~op ~code:Protocol.Overloaded ~queue_seconds:0.
                      (Printf.sprintf
                         "queue full (%d queued + %d running); retry later"
                         t.cfg.queue t.cfg.concurrency)))
          | Scheduler.Draining ->
              send
                (Json.print
                   (reject t ~id ~op ~code:Protocol.Shutting_down
                      ~queue_seconds:0. "server is draining"))))

let handle_line t line =
  let buf = Buffer.create 256 in
  (* synchronous path: every send lands before dispatch_line returns
     because stats/ping run inline and this caller is expected to be
     used without the scheduler racing (tests, the CLI parity check) —
     scheduled sends block on the buffer mutex-free single thread. *)
  let done_mu = Mutex.create () in
  let done_cv = Condition.create () in
  let got = ref false in
  let send s =
    Mutex.lock done_mu;
    Buffer.add_string buf s;
    got := true;
    Condition.signal done_cv;
    Mutex.unlock done_mu
  in
  dispatch_line t ~send line;
  Mutex.lock done_mu;
  while not !got do
    Condition.wait done_cv done_mu
  done;
  Mutex.unlock done_mu;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)

let register_conn t fd =
  Mutex.lock t.conns_mu;
  t.conns <- fd :: t.conns;
  Mutex.unlock t.conns_mu

let unregister_conn t fd =
  Mutex.lock t.conns_mu;
  t.conns <- List.filter (fun c -> c != fd) t.conns;
  Mutex.unlock t.conns_mu

let close_conns t =
  Mutex.lock t.conns_mu;
  let cs = t.conns in
  t.conns <- [];
  Mutex.unlock t.conns_mu;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) cs

let conn_loop t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let write_mu = Mutex.create () in
  let send line =
    Mutex.lock write_mu;
    (try
       output_string oc line;
       output_char oc '\n';
       flush oc
     with Sys_error _ | Unix.Unix_error _ -> ());
    Mutex.unlock write_mu
  in
  (try
     while true do
       dispatch_line t ~send (input_line ic)
     done
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  unregister_conn t fd;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t fd =
  while not (Atomic.get t.stopping) do
    match Unix.select [ fd ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept fd with
        | cfd, _ ->
            register_conn t cfd;
            ignore (Thread.create (conn_loop t) cfd)
        | exception
            Unix.Unix_error
              ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
          ->
            ())
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ()
  done

let stdio_loop t =
  let write_mu = Mutex.create () in
  let send line =
    Mutex.lock write_mu;
    (try
       output_string stdout line;
       output_char stdout '\n';
       flush stdout
     with Sys_error _ -> ());
    Mutex.unlock write_mu
  in
  try
    while not (Atomic.get t.stopping) do
      dispatch_line t ~send (input_line stdin)
    done
  with End_of_file | Sys_error _ -> ()

let install_signals t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let h = Sys.Signal_handle (fun _ -> stop t) in
  (try Sys.set_signal Sys.sigterm h with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigint h with Invalid_argument _ | Sys_error _ -> ()

let serve t =
  if t.cfg.handle_signals then install_signals t;
  (match t.cfg.socket_path with
  | Some path ->
      log_line t
        (Printf.sprintf "%s serve: listening on %s (concurrency %d, queue %d, \
                         jobs %d)"
           (timestamp (Unix.gettimeofday ()))
           path t.cfg.concurrency t.cfg.queue t.cfg.jobs)
  | None ->
      log_line t
        (Printf.sprintf "%s serve: reading requests from stdin (concurrency \
                         %d, queue %d, jobs %d)"
           (timestamp (Unix.gettimeofday ()))
           t.cfg.concurrency t.cfg.queue t.cfg.jobs));
  (match t.listen_fd with
  | Some fd -> accept_loop t fd
  | None -> stdio_loop t);
  (* drain-then-exit: finish and answer everything admitted, then close *)
  log_line t
    (Printf.sprintf "%s serve: shutdown requested, draining %d queued + %d \
                     in-flight request(s)"
       (timestamp (Unix.gettimeofday ()))
       (Scheduler.queued t.sched)
       (Scheduler.in_flight t.sched));
  Scheduler.drain t.sched;
  close_conns t;
  (match t.listen_fd with
  | Some fd -> (
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match t.cfg.socket_path with
      | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | None -> ())
  | None -> ());
  close_sessions t;
  close_engines t;
  Chop_util.Pool.shutdown t.pool;
  let s = Scheduler.stats t.sched in
  log_line t
    (Printf.sprintf
       "%s serve: drained; %d completed, %d expired, %d rejected, %d failed"
       (timestamp (Unix.gettimeofday ()))
       s.Scheduler.completed s.Scheduler.expired s.Scheduler.rejected
       s.Scheduler.failed)
