(** The [chop serve] daemon: a long-running exploration service answering
    newline-delimited JSON requests ({!Protocol}) from persistent warm
    engines.

    One {!t} owns one shared domain pool; every request engine borrows it
    ({!Chop.Explore.Engine.create}[ ?pool]) and all engines share the
    process-wide prediction cache, so a request repeating an earlier
    request's parameters reuses both the engine (integration context,
    staged caches) and the cached BAD predictions — the warm path the
    bench harness measures.

    Requests flow through a {!Scheduler}: bounded queue, fixed
    concurrency, per-request deadlines, and a structured [overloaded]
    rejection past the bound.  [stats] and [ping] requests bypass the
    queue so the service stays observable under saturation.

    Interactive sessions ([session/open] … [session/close]) each own a
    {!Chop.Explore.Session}: [session/edit] applies incremental spec
    edits and reports the dirty partitions; [session/run] re-predicts
    only those, everything else coming from the shared cache.  Sessions
    idle past [session_ttl_s] are evicted, and opening past
    [max_sessions] evicts the least-recently-used idle session; a
    session busy in a run is never evicted mid-run.

    Shutdown is drain-then-exit: on SIGINT/SIGTERM (or {!stop}) the
    listener stops accepting, in-flight and queued requests finish and
    their responses are written, then sockets close and the engines and
    pool are torn down. *)

type config = {
  socket_path : string option;
      (** Unix-domain socket to listen on; [None] serves stdin/stdout
          (one client, responses on stdout, log on stderr) *)
  concurrency : int;  (** scheduler worker threads *)
  queue : int;  (** bounded queue length *)
  jobs : int;  (** shared domain-pool size *)
  default_deadline_ms : float option;
      (** applied to requests that carry no [deadline_ms] *)
  log : out_channel option;  (** access log; [None] is silent *)
  handle_signals : bool;
      (** install SIGINT/SIGTERM handlers that {!stop} the server (and
          ignore SIGPIPE); tests running a server in-process leave this
          off *)
  session_ttl_s : float;
      (** idle time after which an interactive session is evicted (checked
          on every [session/open]) *)
  max_sessions : int;
      (** cap on concurrently open interactive sessions; opening past it
          evicts the least-recently-used idle session *)
  state_dir : string option;
      (** directory for durable session snapshots ({!Chop.Snapshot}):
          written on shutdown, eviction and [session/save], restored by
          [session/open] naming a snapshotted id.  [None] (the default)
          keeps sessions purely in-memory.  The directory is created if
          missing. *)
}

val default_config : config
(** Stdio transport, concurrency 2, queue 8, single-job pool, no default
    deadline, log on stderr, signals handled, 600 s session TTL, 32
    sessions at most, no state dir. *)

type t

val create : config -> t
(** Binds the listener (when [socket_path] is set; an existing socket
    file is replaced) and starts the scheduler workers.  Fails with
    [Unix.Unix_error] when the socket cannot be bound. *)

val stop : t -> unit
(** Requests shutdown: the serve loop stops accepting and begins its
    drain.  Callable from a signal handler or another thread; returns
    immediately. *)

val serve : t -> unit
(** Runs the accept/read loop until {!stop}, a signal (when
    [handle_signals]), or — in stdio mode — end of input; then drains
    the scheduler, closes every connection and tears down engines and
    pool.  Blocks for the server's whole life. *)

val describe_exn : exn -> string
(** The message given to a structured [internal] error when an operation
    raises: typed engine failures (e.g.
    {!Chop_sched.List_sched.No_progress}) render their context — graph,
    operation count, iteration bound — instead of a bare [Failure] text.
    Exposed so tests can pin the mapping. *)

val handle_line : t -> string -> string
(** One request line through the full pipeline — parse, admission,
    scheduling, execution, rendering — waiting for the response and
    returning it without its newline.  The transport layer is bypassed;
    everything else (deadlines, backpressure, counters, the access log)
    behaves exactly as over a socket.  Exposed for tests and tooling. *)
