type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try flush t.oc with Sys_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send t json =
  output_string t.oc (Chop_util.Json.print json);
  output_char t.oc '\n';
  flush t.oc

let recv t =
  match input_line t.ic with
  | line -> (
      match Chop_util.Json.parse line with
      | Ok json -> Ok (Some json)
      | Error msg -> Error (Printf.sprintf "malformed response: %s" msg))
  | exception (End_of_file | Sys_error _) -> Ok None

let rpc t json =
  match send t json with
  | () -> (
      match recv t with
      | Ok (Some resp) -> Ok resp
      | Ok None -> Error "connection closed before a response arrived"
      | Error _ as e -> e)
  | exception (Sys_error msg | Failure msg) -> Error msg
