type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try flush t.oc with Sys_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv_line t =
  match input_line t.ic with
  | line -> Some line
  | exception (End_of_file | Sys_error _) -> None

let send t json = send_line t (Chop_util.Json.print json)

let recv t =
  match input_line t.ic with
  | line -> (
      match Chop_util.Json.parse line with
      | Ok json -> Ok (Some json)
      | Error msg -> Error (Printf.sprintf "malformed response: %s" msg))
  | exception (End_of_file | Sys_error _) -> Ok None

let closed_early = "connection closed before a response arrived"

let rpc t json =
  match send t json with
  | () -> (
      match recv t with
      | Ok (Some resp) -> Ok resp
      | Ok None -> Error closed_early
      | Error _ as e -> e)
  | exception (Sys_error msg | Failure msg) -> Error msg

(* ------------------------------------------------------------------ *)
(* Retries.  The schedule is a pure function of (seed, attempts) — an
   LCG-jittered exponential — so tests pin it exactly and two runs with
   one seed behave identically; the sleeping is injected for the same
   reason.  Retried conditions: the structured [overloaded] rejection and
   transient transport failures (nobody listening yet, peer restarting).
   Everything else — bad requests, deadline errors, malformed replies —
   returns immediately, so exit codes match the unretried client. *)

let backoff_delays ~seed ~attempts =
  let state = ref (seed land 0x3FFFFFFF) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !state /. float_of_int 0x40000000
  in
  List.init attempts (fun i ->
      let base = Float.min (0.05 *. (2. ** float_of_int i)) 2.0 in
      base *. (0.5 +. (0.5 *. next ())))

let transient_errno = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT | Unix.EPIPE
  | Unix.EAGAIN | Unix.EINTR | Unix.ETIMEDOUT ->
      true
  | _ -> false

let rpc_retrying ?(sleep = Unix.sleepf) ?(retries = 0) ?(seed = 1) ~socket json
    =
  let attempt () =
    match connect socket with
    | exception Unix.Unix_error (e, _, _) when transient_errno e ->
        `Transient
          (Error
             (Printf.sprintf "cannot connect to %s: %s" socket
                (Unix.error_message e)))
    | exception Unix.Unix_error (e, _, _) ->
        `Final
          (Error
             (Printf.sprintf "cannot connect to %s: %s" socket
                (Unix.error_message e)))
    | client -> (
        let r = rpc client json in
        close client;
        match r with
        | Ok resp when Protocol.response_error_code resp = Some "overloaded" ->
            `Transient (Ok resp)
        | Error msg when msg = closed_early -> `Transient (Error msg)
        | (Ok _ | Error _) as final -> `Final final)
  in
  let rec go delays =
    match (attempt (), delays) with
    | `Final r, _ -> r
    | `Transient r, [] -> r
    | `Transient _, d :: rest ->
        sleep d;
        go rest
  in
  go (backoff_delays ~seed ~attempts:(max 0 retries))
