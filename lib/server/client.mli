(** A small blocking client for the {!Server} protocol — the engine room
    of [chop request], the serve smoke test and the [bench serve]
    load generator. *)

type t

val connect : string -> t
(** Connects to a server's Unix-domain socket.
    Fails with [Unix.Unix_error] when nobody is listening. *)

val close : t -> unit
(** Idempotent. *)

val send : t -> Chop_util.Json.t -> unit
(** Writes one request line.  Pipelining is fine: send several requests,
    then {!recv} the responses (they may arrive in any order — match on
    the [id]). *)

val recv : t -> (Chop_util.Json.t option, string) result
(** Reads one response line.  [Ok None] on a cleanly closed connection;
    [Error] when the peer sent bytes that are not valid JSON — a
    transport failure the caller reports structurally (the [chop request]
    CLI exits 2), never an exception. *)

val rpc : t -> Chop_util.Json.t -> (Chop_util.Json.t, string) result
(** [send] then [recv]: one request, its response.  [Error] on a closed
    connection or an unparseable reply. *)
