(** A small blocking client for the {!Server} protocol — the engine room
    of [chop request], the serve smoke test and the [bench serve]
    load generator. *)

type t

val connect : string -> t
(** Connects to a server's Unix-domain socket.
    Fails with [Unix.Unix_error] when nobody is listening. *)

val close : t -> unit
(** Idempotent. *)

val send : t -> Chop_util.Json.t -> unit
(** Writes one request line.  Pipelining is fine: send several requests,
    then {!recv} the responses (they may arrive in any order — match on
    the [id]). *)

val send_line : t -> string -> unit
(** Writes one raw, already-encoded request line verbatim.  The gateway
    forwards client bytes with this so proxied responses stay
    byte-identical to a direct connection. *)

val recv_line : t -> string option
(** Reads one raw response line without parsing it; [None] on a closed
    connection.  The verbatim counterpart of {!recv}. *)

val recv : t -> (Chop_util.Json.t option, string) result
(** Reads one response line.  [Ok None] on a cleanly closed connection;
    [Error] when the peer sent bytes that are not valid JSON — a
    transport failure the caller reports structurally (the [chop request]
    CLI exits 2), never an exception. *)

val rpc : t -> Chop_util.Json.t -> (Chop_util.Json.t, string) result
(** [send] then [recv]: one request, its response.  [Error] on a closed
    connection or an unparseable reply. *)

(** {1 Retries} *)

val backoff_delays : seed:int -> attempts:int -> float list
(** The deterministic backoff schedule behind {!rpc_retrying}: attempt
    [i] sleeps [min (0.05 * 2^i) 2.0] seconds, scaled by a factor in
    [[0.5, 1.0)] drawn from an LCG seeded with [seed].  A pure function —
    same seed, same delays — so tests pin the schedule exactly. *)

val rpc_retrying :
  ?sleep:(float -> unit) ->
  ?retries:int ->
  ?seed:int ->
  socket:string ->
  Chop_util.Json.t ->
  (Chop_util.Json.t, string) result
(** One connect–rpc–close cycle, retried up to [retries] extra times on
    the structured [overloaded] rejection and on transient transport
    failures (connection refused, socket file missing, peer closing
    before answering — a backend restarting).  Permanent failures and
    every other response return immediately, and when the budget runs
    out the last outcome is returned as-is — so callers' exit-code
    mapping is unchanged by retrying.  [sleep] (default [Unix.sleepf])
    is injected for fake-clock tests. *)
