(* The single source of the CLI's benchmark table, spec assembly and
   rendering — [bin/chop_cli] and [Server] both call through here, which
   is what makes a serve response byte-identical to the CLI's output. *)

let benchmarks =
  [
    ("ar", fun () -> Chop_dfg.Benchmarks.ar_lattice_filter ());
    ("ewf", fun () -> Chop_dfg.Benchmarks.elliptic_wave_filter ());
    ("fir16", fun () -> Chop_dfg.Benchmarks.fir_filter ~taps:16 ());
    ("fir8", fun () -> Chop_dfg.Benchmarks.fir_filter ~taps:8 ());
    ("diffeq", fun () -> Chop_dfg.Benchmarks.diffeq ());
    ("dct8", fun () -> Chop_dfg.Benchmarks.dct8 ());
    (* the HW/SW co-design reference workload: a multiplier-heavy PCM
       reconstruction filter feeding a cheap-op-heavy PWM modulation stage.
       Specs built on it automatically declare the [reference_cpu]
       processor below, so partitions can be rebound to software. *)
    ("pcm_pwm", fun () -> Chop_dfg.Benchmarks.pcm_pwm ());
    (* ewf rebuilt in a shuffled construction order: structurally identical
       to "ewf" but with different node ids, so its per-construction
       signatures differ while the canonical digests agree.  The probe for
       content-addressed cache sharing — a session on "ewf2" after one on
       "ewf" must hit the prediction cache structurally. *)
    ("ewf2",
     fun () -> Chop_dfg.Transform.renumber (Chop_dfg.Benchmarks.elliptic_wave_filter ()));
  ]

let graph_of_name name =
  match List.assoc_opt name benchmarks with
  | Some f -> Ok (f ())
  | None ->
      Error
        (Printf.sprintf "unknown benchmark %S (try: %s)" name
           (String.concat ", " (List.map fst benchmarks)))

let package_of_pins = function
  | 64 -> Ok Chop_tech.Mosis.package_64
  | 84 -> Ok Chop_tech.Mosis.package_84
  | n -> Error (Printf.sprintf "package must be 64 or 84, not %d" n)

let heuristic_of_string = function
  | "e" | "E" | "enum" -> Ok Chop.Explore.Enumeration
  | "i" | "I" | "iter" -> Ok Chop.Explore.Iterative
  | "b" | "B" | "bb" -> Ok Chop.Explore.Branch_bound
  | s ->
      Error
        (Printf.sprintf
           "heuristic must be 'e' (enumeration), 'i' (iterative) or 'b' \
            (branch-and-bound), not %S"
           s)

let strategy_of_string = function
  | "levels" -> Ok Chop_baseline.Autopart.Levels
  | "min-cut" -> Ok (Chop_baseline.Autopart.Min_cut 1)
  | "random" -> Ok (Chop_baseline.Autopart.Random_balanced 42)
  | s -> Error (Printf.sprintf "strategy must be levels, min-cut or random, not %S" s)

(* The reference embedded processor for HW/SW co-design runs: a 4-issue
   core with a memory budget sized so only the cheap-op pcm_pwm stage
   fits in software at a useful issue width — the feasibility triangle
   the case study turns on: all-hardware is clock-bound, all-software is
   memory-starved into narrow issue, and the hw/sw split beats both. *)
let reference_cpu =
  Chop_model_sw.Processor.make ~name:"cpu" ~issue_slots:4 ~cycle_ns:300.
    ~code_bytes_per_op:4 ~data_bytes_per_value:2 ~memory_budget_bytes:176.
    ~bus_bits:16

(* Declare the reference processor whenever software is in play: on the
   co-design benchmark (so sessions can rebind partitions later) or when
   the caller binds a partition explicitly. *)
let processors_for ~benchmark ~impls =
  if String.equal benchmark "pcm_pwm" || impls <> [] then [ reference_cpu ]
  else []

let build_spec ?(processors = []) ?(impls = []) ~graph ~partitions ~package
    ~perf ~delay ~multicycle ~strategy () =
  let partitioning =
    if partitions = 1 then Chop_dfg.Partition.whole graph
    else Chop_baseline.Autopart.generate graph ~k:partitions strategy
  in
  let clocks =
    if multicycle then
      Chop_tech.Clocking.make ~main:Chop_tech.Mosis.main_clock ~datapath_ratio:1
        ~transfer_ratio:1
    else
      Chop_tech.Clocking.make ~main:Chop_tech.Mosis.main_clock ~datapath_ratio:10
        ~transfer_ratio:1
  in
  let style =
    Chop_tech.Style.both
      (if multicycle then Chop_tech.Style.Multi_cycle
       else Chop_tech.Style.Single_cycle)
  in
  Chop.Rig.custom ~processors ~impls ~graph ~partitioning ~package ~clocks
    ~style ~criteria:(Chop_bad.Feasibility.criteria ~perf ~delay ()) ()

let ( let* ) r f = Result.bind r f

let spec_of_params (p : Protocol.params) =
  let* graph = graph_of_name p.Protocol.benchmark in
  let* package = package_of_pins p.Protocol.package in
  let* strategy = strategy_of_string p.Protocol.strategy in
  if p.Protocol.partitions < 1 then
    Error
      (Printf.sprintf "partitions must be >= 1, not %d" p.Protocol.partitions)
  else
    match
      build_spec
        ~processors:(processors_for ~benchmark:p.Protocol.benchmark ~impls:[])
        ~graph ~partitions:p.Protocol.partitions ~package ~perf:p.Protocol.perf
        ~delay:p.Protocol.delay ~multicycle:p.Protocol.multicycle ~strategy ()
    with
    | spec -> Ok spec
    | exception Chop.Spec.Invalid_spec reason -> Error reason
    | exception Invalid_argument reason -> Error reason

let config_of_params ~jobs (p : Protocol.params) =
  let* heuristic = heuristic_of_string p.Protocol.heuristic in
  Ok
    (Chop.Explore.Config.make ~heuristic
       ~keep_all:(p.Protocol.csv || p.Protocol.keep_all)
       ~pre_prune:(not p.Protocol.no_prune) ~jobs ())

let engine_key ~op (p : Protocol.params) =
  (* predict runs a default-config engine (the CLI parity point), so it
     keys separately from the explore family; explore/advise share (and
     explore/slice runs the same engine as the explore it slices). *)
  let family =
    match op with
    | Protocol.Predict -> "predict"
    | Protocol.Explore | Protocol.Explore_slice | Protocol.Advise
    | Protocol.Sensitivity | Protocol.Stats | Protocol.Ping
    | Protocol.Session_open | Protocol.Session_edit | Protocol.Session_undo
    | Protocol.Session_redo | Protocol.Session_run
    | Protocol.Session_optimize | Protocol.Session_attach
    | Protocol.Session_detach | Protocol.Session_list
    | Protocol.Session_save | Protocol.Session_close
    | Protocol.Gateway_migrate ->
        "explore"
  in
  Printf.sprintf "%s|%s|k=%d|p=%d|perf=%g|delay=%g|mc=%b|h=%s|s=%s|ka=%b|np=%b"
    family p.Protocol.benchmark p.Protocol.partitions p.Protocol.package
    p.Protocol.perf p.Protocol.delay p.Protocol.multicycle
    (match family with "predict" -> "-" | _ -> p.Protocol.heuristic)
    p.Protocol.strategy
    (p.Protocol.keep_all || p.Protocol.csv)
    p.Protocol.no_prune

let explore_feasible_count (report : Chop.Explore.report) =
  List.length report.Chop.Explore.outcome.Chop.Search.feasible

(* The deterministic explore block over design-point rows — the single
   renderer behind the CLI, the server and the gateway's distributed
   merge, which is what makes all three byte-identical.  [verbose_tail]
   carries the report-guideline section when the caller has full systems
   in hand (the gateway never does: fan-out is restricted to non-verbose
   requests). *)
let render_explore_rows ~keep_all ~csv ~bad ~trials ~verbose_tail
    ~(feasible : Chop.Search.Row.t list) ~(explored : Chop.Search.Row.t list)
    () =
  if keep_all then
    (* deterministic dump: no timings, so jobs=1 and jobs=N (and the CLI,
       the server and the gateway) are byte-identical *)
    String.concat ""
      [
        "# feasible\n";
        Chop.Search.Row.to_csv feasible;
        "# explored\n";
        Chop.Search.Row.to_csv explored;
      ]
  else if csv then Chop.Search.Row.to_csv explored
  else begin
    let buf = Buffer.create 512 in
    List.iter
      (fun b ->
        Printf.bprintf buf "BAD %s: %d predictions, %d feasible, %d kept\n"
          b.Chop.Explore.label b.Chop.Explore.total_predictions
          b.Chop.Explore.feasible_predictions b.Chop.Explore.kept)
      bad;
    Printf.bprintf buf "search: %d trials\n\n" trials;
    (match feasible with
    | [] -> Buffer.add_string buf "no feasible implementation\n"
    | feas ->
        Printf.bprintf buf "%d feasible non-inferior implementation(s):\n"
          (List.length feas);
        List.iter
          (fun (r : Chop.Search.Row.t) ->
            Printf.bprintf buf
              "  II %d cycles, delay %d cycles, clock %.0f ns (perf %.0f ns)\n"
              r.Chop.Search.Row.ii_main r.Chop.Search.Row.delay_cycles
              r.Chop.Search.Row.clock r.Chop.Search.Row.perf_ns)
          feas;
        Option.iter
          (fun tail ->
            Buffer.add_char buf '\n';
            Buffer.add_string buf tail)
          verbose_tail);
    Buffer.contents buf
  end

let render_explore spec ~keep_all ~csv ~verbose (report : Chop.Explore.report) =
  let outcome = report.Chop.Explore.outcome in
  let verbose_tail =
    match outcome.Chop.Search.feasible with
    | best :: _ when verbose -> Some (Chop.Report.guideline spec best)
    | _ -> None
  in
  render_explore_rows ~keep_all ~csv ~bad:report.Chop.Explore.bad
    ~trials:outcome.Chop.Search.stats.Chop.Search.implementation_trials
    ~verbose_tail
    ~feasible:(List.map Chop.Search.Row.of_system outcome.Chop.Search.feasible)
    ~explored:(List.map Chop.Search.Row.of_system outcome.Chop.Search.explored)
    ()

let render_explore_timing (report : Chop.Explore.report) =
  let st = report.Chop.Explore.outcome.Chop.Search.stats in
  Printf.sprintf
    "BAD: %.3f s wall (%.3f s busy across %d job(s)), cache %d hit(s) / %d \
     miss(es)\n\
     search: %.3f s CPU\n"
    report.Chop.Explore.bad_wall_seconds report.Chop.Explore.bad_busy_seconds
    report.Chop.Explore.jobs report.Chop.Explore.cache_hits
    report.Chop.Explore.cache_misses st.Chop.Search.cpu_seconds

(* Partitions bound to a software model get a tag; hardware partitions
   render exactly as before, so all-hardware output stays byte-identical. *)
let model_tag spec label =
  match Chop.Spec.impl_of_partition spec label with
  | "hw" -> ""
  | m -> Printf.sprintf " [model %s]" m

let render_predict spec ~index ~top per_partition stats =
  let buf = Buffer.create 512 in
  List.iteri
    (fun i (label, preds) ->
      if i = index || index < 0 then begin
        let st = List.nth stats i in
        Printf.bprintf buf
          "partition %s%s: %d predictions (%d feasible, %d kept)\n" label
          (model_tag spec label) st.Chop.Explore.total_predictions
          st.Chop.Explore.feasible_predictions st.Chop.Explore.kept;
        List.iter
          (fun p ->
            Buffer.add_string buf
              (Chop_bad.Prediction.describe spec.Chop.Spec.clocks p);
            Buffer.add_char buf '\n')
          (Chop_util.Listx.take top preds);
        Buffer.add_char buf '\n'
      end)
    per_partition;
  Buffer.contents buf

let render_advice (j : Chop.Advisor.judgement) = j.Chop.Advisor.advice ^ "\n"

(* ------------------------------------------------------------------ *)
(* The interactive edit-command language, shared by [chop repl] and the
   server's session/edit op so transcripts and responses agree. *)

let edit_commands =
  "move <op> <partition> | merge <src> <dst> | split <from> <new> \
   <op[,op...]> | assign <partition> <chip> | package <chip> <64|84> | \
   rehost <block> <chip> | clocks <main_ns> <datapath_ratio> \
   <transfer_ratio> | criteria <perf_ns> <delay_ns> | impl <partition> \
   <hw|processor>"

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* an operation operand is a node id or a node name *)
let resolve_operand spec tok =
  let g = spec.Chop.Spec.graph in
  match int_of_string_opt tok with
  | Some id ->
      if Chop_dfg.Graph.mem g id then Ok id
      else Error (Printf.sprintf "unknown operation %d" id)
  | None -> (
      match
        List.find_opt
          (fun n -> n.Chop_dfg.Graph.name = tok)
          (Chop_dfg.Graph.nodes g)
      with
      | Some n -> Ok n.Chop_dfg.Graph.id
      | None -> Error (Printf.sprintf "unknown operation %S" tok))

let number name tok =
  match float_of_string_opt tok with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s must be a number, not %S" name tok)

let integer name tok =
  match int_of_string_opt tok with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s must be an integer, not %S" name tok)

let parse_edit spec line =
  match tokens line with
  | [ "move"; op; part ] ->
      let* op = resolve_operand spec op in
      Ok (Chop.Spec.Move_op { op; to_partition = part })
  | [ "merge"; src; dst ] -> Ok (Chop.Spec.Merge_parts { src; dst })
  | [ "split"; from_partition; new_label; members ] ->
      let toks =
        String.split_on_char ',' members |> List.filter (fun t -> t <> "")
      in
      if toks = [] then Error "split: empty operation list"
      else
        let rec conv acc = function
          | [] -> Ok (List.rev acc)
          | t :: tl -> (
              match resolve_operand spec t with
              | Ok id -> conv (id :: acc) tl
              | Error _ as e -> e)
        in
        let* members = conv [] toks in
        Ok (Chop.Spec.Split_part { from_partition; members; new_label })
  | [ "assign"; partition; chip ] ->
      Ok (Chop.Spec.Reassign_chip { partition; chip })
  | [ "package"; chip; pins ] ->
      let* pins = integer "package" pins in
      let* package = package_of_pins pins in
      Ok (Chop.Spec.Swap_package { chip; package })
  | [ "rehost"; block; chip ] -> Ok (Chop.Spec.Rehost_memory { block; chip })
  | [ "clocks"; main; dr; tr ] -> (
      let* main = number "main clock" main in
      let* dr = integer "datapath ratio" dr in
      let* tr = integer "transfer ratio" tr in
      match Chop_tech.Clocking.make ~main ~datapath_ratio:dr ~transfer_ratio:tr with
      | clocks -> Ok (Chop.Spec.Set_clocks clocks)
      | exception Invalid_argument reason -> Error reason)
  | [ "criteria"; perf; delay ] ->
      let* perf = number "perf" perf in
      let* delay = number "delay" delay in
      Ok (Chop.Spec.Set_criteria (Chop_bad.Feasibility.criteria ~perf ~delay ()))
  | [ "impl"; partition; model ] ->
      (* reject unknown model names here, with the declared alternatives,
         rather than letting Spec.update fail later with less context *)
      let known =
        "hw"
        :: List.map
             (fun p -> p.Chop_model_sw.Processor.pname)
             spec.Chop.Spec.processors
      in
      if List.mem model known then
        Ok (Chop.Spec.Set_impl { partition; impl = model })
      else
        Error
          (Printf.sprintf "impl: unknown model %S (declared: %s)" model
             (String.concat ", " known))
  | [] -> Error "empty edit command"
  | cmd :: _ ->
      Error (Printf.sprintf "unknown edit command %S (syntax: %s)" cmd edit_commands)

let parse_edits spec lines =
  (* only graph-node operands resolve at parse time (the graph never
     changes); partition/chip names stay symbolic and are validated by
     [Spec.update] against the spec each edit actually applies to *)
  let rec go acc i = function
    | [] -> Ok (List.rev acc)
    | line :: tl -> (
        match parse_edit spec line with
        | Ok e -> go (e :: acc) (i + 1) tl
        | Error reason -> Error (Printf.sprintf "edit %d: %s" i reason))
  in
  go [] 0 lines

let render_dirty (d : Chop.Spec.dirty) =
  let clause verb = function
    | [] -> None
    | ls -> Some (verb ^ " " ^ String.concat " " ls)
  in
  let clauses =
    List.filter_map Fun.id
      [
        clause "re-predict" d.Chop.Spec.repredict;
        clause "re-screen" d.Chop.Spec.rederive;
        clause "removed" d.Chop.Spec.removed;
      ]
  in
  (match clauses with
  | [] -> "ok: nothing to re-predict"
  | cs -> "ok: " ^ String.concat "; " cs)
  ^ "\n"

let render_parts spec =
  let buf = Buffer.create 128 in
  List.iter
    (fun p ->
      let label = p.Chop_dfg.Partition.label in
      Printf.bprintf buf "%s: %d operation(s) on %s%s\n" label
        (List.length p.Chop_dfg.Partition.members)
        (Chop.Spec.chip_of_partition spec label).Chop.Spec.chip_name
        (model_tag spec label))
    spec.Chop.Spec.partitioning.Chop_dfg.Partition.parts;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* chop auto / session/optimize: constraint parsing and rendering,
   shared so the CLI and the server answer byte-identically. *)

(* [--impl PART=MODEL] bindings from the CLI; validation of the partition
   label and model name is left to [Spec.make], which has both in hand. *)
let parse_impl_bindings strs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: tl -> (
        match String.index_opt s '=' with
        | None -> Error (Printf.sprintf "impl %S: expected partition=model" s)
        | Some i ->
            let part = String.trim (String.sub s 0 i) in
            let model =
              String.trim (String.sub s (i + 1) (String.length s - i - 1))
            in
            if part = "" || model = "" then
              Error (Printf.sprintf "impl %S: expected partition=model" s)
            else go ((part, model) :: acc) tl)
  in
  go [] strs

let parse_constraints spec ~pins ~together =
  let rec conv_pins acc = function
    | [] -> Ok (List.rev acc)
    | s :: tl -> (
        match String.index_opt s '=' with
        | None -> Error (Printf.sprintf "pin %S: expected op=partition" s)
        | Some i ->
            let op = String.trim (String.sub s 0 i) in
            let part =
              String.trim (String.sub s (i + 1) (String.length s - i - 1))
            in
            if part = "" then
              Error (Printf.sprintf "pin %S: empty partition label" s)
            else
              let* op = resolve_operand spec op in
              conv_pins ((op, part) :: acc) tl)
  in
  let rec conv_comms acc = function
    | [] -> Ok (List.rev acc)
    | s :: tl ->
        let toks =
          String.split_on_char ',' s |> List.map String.trim
          |> List.filter (fun t -> t <> "")
        in
        if List.length toks < 2 then
          Error (Printf.sprintf "together %S: need at least two operations" s)
        else
          let rec ops acc2 = function
            | [] -> Ok (List.rev acc2)
            | t :: r -> (
                match resolve_operand spec t with
                | Ok id -> ops (id :: acc2) r
                | Error e -> Error (Printf.sprintf "together %S: %s" s e))
          in
          let* members = ops [] toks in
          conv_comms (members :: acc) tl
  in
  let* pins = conv_pins [] pins in
  let* communities = conv_comms [] together in
  Ok { Chop_auto.pins; communities }

let constraints_of_params spec (p : Protocol.params) =
  parse_constraints spec ~pins:p.Protocol.pins ~together:p.Protocol.together

let report_summary_line (r : Chop.Explore.report) =
  match r.Chop.Explore.outcome.Chop.Search.feasible with
  | [] -> "no feasible implementation"
  | best :: _ as feas ->
      Printf.sprintf
        "%d feasible, best II %d cycles, perf %.0f ns, area %.0f mil^2"
        (List.length feas) best.Chop.Integration.ii_main
        best.Chop.Integration.perf_ns
        (Chop.Integration.objectives best).(2)

let render_auto spec (o : Chop_auto.outcome) =
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "auto: %d level(s) from %d cluster(s), %d move(s) tried, %d accepted%s, \
     %d speculative run(s) over %d round(s)%s\n"
    o.Chop_auto.levels o.Chop_auto.coarse_clusters o.Chop_auto.moves_tried
    o.Chop_auto.moves_accepted
    (* the flip clause appears only when software models are in play, so
       hardware-only output is byte-identical to the pre-model renderer *)
    (if spec.Chop.Spec.processors <> [] then
       Printf.sprintf ", %d model flip(s)" o.Chop_auto.impl_flips
     else "")
    o.Chop_auto.speculative_runs o.Chop_auto.batch_rounds
    (if o.Chop_auto.interrupted then " (stopped at budget)" else "");
  Printf.bprintf buf "seed: %s\n" (report_summary_line o.Chop_auto.seed_report);
  Printf.bprintf buf "auto vs seed: %s\n\n"
    (if o.Chop_auto.moves_accepted > 0 then "improved" else "unchanged");
  Buffer.add_string buf (render_parts spec);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (render_explore spec ~keep_all:false ~csv:false ~verbose:false
       o.Chop_auto.report);
  Buffer.contents buf

let render_auto_timing (o : Chop_auto.outcome) =
  let total = o.Chop_auto.cache_hits + o.Chop_auto.cache_misses in
  Printf.sprintf
    "auto: %.3f s wall (%d job(s), speculative %.3f s busy / %.3f s wall), \
     refinement cache %d hit(s) / %d miss(es), %d structural%s\n"
    o.Chop_auto.wall_seconds o.Chop_auto.jobs o.Chop_auto.spec_busy_seconds
    o.Chop_auto.spec_wall_seconds o.Chop_auto.cache_hits
    o.Chop_auto.cache_misses o.Chop_auto.cache_structural_hits
    (if total = 0 then ""
     else
       Printf.sprintf " (%.1f%% hits)"
         (100. *. float_of_int o.Chop_auto.cache_hits /. float_of_int total))

let render_auto_stats (o : Chop_auto.outcome) =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "auto stats:\n";
  Printf.bprintf buf "  jobs                 %d\n" o.Chop_auto.jobs;
  Printf.bprintf buf "  speculative runs     %d\n" o.Chop_auto.speculative_runs;
  Printf.bprintf buf "  batch rounds         %d\n" o.Chop_auto.batch_rounds;
  Printf.bprintf buf "  speculative wall     %.3f s\n"
    o.Chop_auto.spec_wall_seconds;
  Printf.bprintf buf "  speculative busy     %.3f s%s\n"
    o.Chop_auto.spec_busy_seconds
    (if o.Chop_auto.spec_wall_seconds > 0. then
       Printf.sprintf " (parallelism %.2fx)"
         (o.Chop_auto.spec_busy_seconds /. o.Chop_auto.spec_wall_seconds)
     else "");
  (if o.Chop_auto.batch_rounds > 0 then
     let r = float_of_int o.Chop_auto.batch_rounds in
     Printf.bprintf buf
       "  per round            %.2f run(s), %.1f ms busy / %.1f ms wall\n"
       (float_of_int o.Chop_auto.speculative_runs /. r)
       (1000. *. o.Chop_auto.spec_busy_seconds /. r)
       (1000. *. o.Chop_auto.spec_wall_seconds /. r));
  Printf.bprintf buf "  cache hits/misses    %d/%d, %d structural\n"
    o.Chop_auto.cache_hits o.Chop_auto.cache_misses
    o.Chop_auto.cache_structural_hits;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Distributed explore: the explore/slice wire payload and its merge.

   A backend answers explore/slice with raw per-slice counters and
   admitted/explored rows; the gateway decodes one payload per backend,
   checks the residue classes cover the first axis exactly, and replays
   every admission in global task order through a shared row front —
   {!Chop.Search.Slice.merge} at {!Chop.Search.Row} granularity.  Floats
   cross the wire as hex ([%h]) literals, so the merged rows are
   bit-identical to the single process's and the rendered block is
   byte-identical to [chop serve]'s. *)

module Json = Chop_util.Json
module Row = Chop.Search.Row

let row_to_json (r : Row.t) =
  Json.Array
    [
      Json.Int r.Row.ii_main;
      Json.Int r.Row.delay_cycles;
      Json.String (Row.float_to_wire r.Row.clock);
      Json.String (Row.float_to_wire r.Row.perf_ns);
      Json.String (Row.float_to_wire r.Row.delay_likely);
      Json.String (Row.float_to_wire r.Row.area_likely);
      Json.Bool r.Row.feasible;
    ]

let row_of_json = function
  | Json.Array
      [
        Json.Int ii_main;
        Json.Int delay_cycles;
        Json.String clock;
        Json.String perf_ns;
        Json.String delay_likely;
        Json.String area_likely;
        Json.Bool feasible;
      ] -> (
      try
        Ok
          {
            Row.ii_main;
            delay_cycles;
            clock = Row.float_of_wire clock;
            perf_ns = Row.float_of_wire perf_ns;
            delay_likely = Row.float_of_wire delay_likely;
            area_likely = Row.float_of_wire area_likely;
            feasible;
          }
      with Invalid_argument m -> Error m)
  | _ ->
      Error
        "malformed row (expected \
         [ii,delay_cycles,clock,perf,delay,area,feasible])"

let bad_to_json (b : Chop.Explore.bad_stats) =
  Json.Array
    [
      Json.String b.Chop.Explore.label;
      Json.Int b.Chop.Explore.total_predictions;
      Json.Int b.Chop.Explore.feasible_predictions;
      Json.Int b.Chop.Explore.kept;
    ]

let bad_of_json = function
  | Json.Array
      [ Json.String label; Json.Int total; Json.Int feasible; Json.Int kept ] ->
      Ok
        {
          Chop.Explore.label;
          total_predictions = total;
          feasible_predictions = feasible;
          kept;
        }
  | _ -> Error "malformed bad-stats entry (expected [label,total,feasible,kept])"

type slice_rows = {
  sl_index : int;  (** global first-axis index *)
  sl_trials : int;
  sl_admitted : Row.t list;  (** admission order *)
  sl_explored : Row.t list;  (** integration order *)
}

type slice_payload = {
  sp_first_total : int;
  sp_bad : Chop.Explore.bad_stats list;
  sp_slices : slice_rows list;
}

let slice_payload_fields (sr : Chop.Explore.Session.slice_run) =
  let slice_json gidx (sl : Chop.Search.Slice.t) =
    Json.Object
      [
        ("i", Json.Int gidx);
        ("trials", Json.Int sl.Chop.Search.Slice.trials);
        ("integrations", Json.Int sl.Chop.Search.Slice.integrations);
        ("avoided", Json.Int sl.Chop.Search.Slice.avoided);
        ("feasible", Json.Int sl.Chop.Search.Slice.feasible);
        ( "admitted",
          Json.Array
            (List.rev_map
               (fun s -> row_to_json (Row.of_system s))
               sl.Chop.Search.Slice.admitted_rev) );
        ( "explored",
          Json.Array
            (List.rev_map
               (fun s -> row_to_json (Row.of_system s))
               sl.Chop.Search.Slice.explored_rev) );
      ]
  in
  [
    ("first_total", Json.Int sr.Chop.Explore.Session.first_total);
    ( "bad",
      Json.Array (List.map bad_to_json sr.Chop.Explore.Session.slice_bad) );
    ( "slices",
      Json.Array
        (List.map2 slice_json sr.Chop.Explore.Session.slice_indices
           sr.Chop.Explore.Session.slices) );
  ]

let int_field name j =
  match Option.bind (Json.member name j) Json.to_int_opt with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "slice payload: missing integer %S" name)

let list_field name j =
  match Option.bind (Json.member name j) Json.to_list_opt with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "slice payload: missing array %S" name)

let decode_list decode js =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | j :: tl -> (
        match decode j with Ok v -> go (v :: acc) tl | Error _ as e -> e)
  in
  go [] js

let slice_payload_of_result j =
  let* first_total = int_field "first_total" j in
  let* bad = list_field "bad" j in
  let* bad = decode_list bad_of_json bad in
  let* slices = list_field "slices" j in
  let* slices =
    decode_list
      (fun sj ->
        let* sl_index = int_field "i" sj in
        let* sl_trials = int_field "trials" sj in
        let* admitted = list_field "admitted" sj in
        let* sl_admitted = decode_list row_of_json admitted in
        let* explored = list_field "explored" sj in
        let* sl_explored = decode_list row_of_json explored in
        Ok { sl_index; sl_trials; sl_admitted; sl_explored })
      slices
  in
  Ok { sp_first_total = first_total; sp_bad = bad; sp_slices = slices }

type merged_explore = {
  mx_bad : Chop.Explore.bad_stats list;
  mx_trials : int;
  mx_feasible : Row.t list;
  mx_explored : Row.t list;
}

let merge_slice_payloads payloads =
  match payloads with
  | [] -> Error "no slice payloads to merge"
  | first :: _ ->
      let ft = first.sp_first_total in
      if List.exists (fun p -> p.sp_first_total <> ft) payloads then
        Error "backends disagree on the first-axis size"
      else
        let slices =
          List.concat_map (fun p -> p.sp_slices) payloads
          |> List.sort (fun a b -> compare a.sl_index b.sl_index)
        in
        if List.map (fun s -> s.sl_index) slices <> List.init ft Fun.id then
          Error
            (Printf.sprintf
               "slice coverage mismatch: %d slice(s) over a %d-wide first axis"
               (List.length slices) ft)
        else begin
          (* mirror of {!Chop.Search.Slice.merge}: explored is the
             sequential accumulator (last integration first); the front
             replays every slice's admissions in global task order *)
          let explored =
            List.concat (List.rev_map (fun s -> List.rev s.sl_explored) slices)
          in
          let front =
            List.fold_left
              (fun front s ->
                List.fold_left
                  (fun front row -> fst (Row.admit row front))
                  front s.sl_admitted)
              [] slices
          in
          Ok
            {
              mx_bad = first.sp_bad;
              mx_trials =
                List.fold_left (fun acc s -> acc + s.sl_trials) 0 slices;
              mx_feasible = Row.finalize front;
              mx_explored = explored;
            }
        end

(* ------------------------------------------------------------------ *)
(* Session inventory: one line per open session, shared by the server's
   session/list op, the gateway's fan-out of it and the repl's
   [:sessions] command. *)

type session_line = {
  ses_id : string;
  ses_revision : int;
  ses_age_s : float;  (** seconds since last use *)
  ses_writer : string;  (** "" = anonymous *)
  ses_observers : int;
}

let compare_session_id a b =
  (* "s1" < "s2" < ... < "s10": length-then-lexicographic orders the
     server's numeric ids numerically and everything else predictably *)
  match compare (String.length a) (String.length b) with
  | 0 -> compare a b
  | n -> n

let render_sessions lines =
  match lines with
  | [] -> "no open sessions\n"
  | lines ->
      let lines =
        List.sort (fun a b -> compare_session_id a.ses_id b.ses_id) lines
      in
      let buf = Buffer.create 256 in
      Printf.bprintf buf "%d open session(s):\n" (List.length lines);
      List.iter
        (fun l ->
          Printf.bprintf buf
            "  %s: revision %d, idle %.0f s, writer %s, %d observer(s)\n"
            l.ses_id l.ses_revision l.ses_age_s
            (if l.ses_writer = "" then "-" else l.ses_writer)
            l.ses_observers)
        lines;
      Buffer.contents buf

let render_session_closed sid = Printf.sprintf "session %s closed\n" sid

let session_line_to_json l =
  Json.Object
    [
      ("id", Json.String l.ses_id);
      ("revision", Json.Int l.ses_revision);
      ("age_s", Json.Float l.ses_age_s);
      ("writer", Json.String l.ses_writer);
      ("observers", Json.Int l.ses_observers);
    ]

let session_line_of_json j =
  let str name =
    match Option.bind (Json.member name j) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "session line: missing string %S" name)
  in
  let* ses_id = str "id" in
  let* ses_revision = int_field "revision" j in
  let* ses_age_s =
    match Option.bind (Json.member "age_s" j) Json.to_float_opt with
    | Some f -> Ok f
    | None -> Error "session line: missing number \"age_s\""
  in
  let* ses_writer = str "writer" in
  let* ses_observers = int_field "observers" j in
  Ok { ses_id; ses_revision; ses_age_s; ses_writer; ses_observers }

let render_sensitivity = Chop.Sensitivity.render

let run_sensitivity ~config spec (p : Protocol.params) =
  if p.Protocol.values = [] then Error "sensitivity requires a non-empty values list"
  else
    match p.Protocol.parameter with
    | "perf" ->
        Ok
          (Chop.Sensitivity.performance_constraint ~config spec
             ~values:p.Protocol.values)
    | "delay" ->
        Ok (Chop.Sensitivity.delay_constraint ~config spec ~values:p.Protocol.values)
    | "clock" ->
        Ok (Chop.Sensitivity.main_clock ~config spec ~values:p.Protocol.values)
    | "pins" ->
        Ok
          (Chop.Sensitivity.pin_count ~config spec
             ~values:(List.map int_of_float p.Protocol.values))
    | s ->
        Error
          (Printf.sprintf "parameter must be perf, delay, clock or pins, not %S" s)
