module Json = Chop_util.Json

type op =
  | Explore
  | Explore_slice
  | Predict
  | Advise
  | Sensitivity
  | Stats
  | Ping
  | Session_open
  | Session_edit
  | Session_undo
  | Session_redo
  | Session_run
  | Session_optimize
  | Session_attach
  | Session_detach
  | Session_list
  | Session_save
  | Session_close
  | Gateway_migrate

let op_to_string = function
  | Explore -> "explore"
  | Explore_slice -> "explore/slice"
  | Predict -> "predict"
  | Advise -> "advise"
  | Sensitivity -> "sensitivity"
  | Stats -> "stats"
  | Ping -> "ping"
  | Session_open -> "session/open"
  | Session_edit -> "session/edit"
  | Session_undo -> "session/undo"
  | Session_redo -> "session/redo"
  | Session_run -> "session/run"
  | Session_optimize -> "session/optimize"
  | Session_attach -> "session/attach"
  | Session_detach -> "session/detach"
  | Session_list -> "session/list"
  | Session_save -> "session/save"
  | Session_close -> "session/close"
  | Gateway_migrate -> "gateway/migrate"

let op_of_string = function
  | "explore" -> Ok Explore
  | "explore/slice" -> Ok Explore_slice
  | "predict" -> Ok Predict
  | "advise" -> Ok Advise
  | "sensitivity" -> Ok Sensitivity
  | "stats" -> Ok Stats
  | "ping" -> Ok Ping
  | "session/open" -> Ok Session_open
  | "session/edit" -> Ok Session_edit
  | "session/undo" -> Ok Session_undo
  | "session/redo" -> Ok Session_redo
  | "session/run" -> Ok Session_run
  | "session/optimize" -> Ok Session_optimize
  | "session/attach" -> Ok Session_attach
  | "session/detach" -> Ok Session_detach
  | "session/list" -> Ok Session_list
  | "session/save" -> Ok Session_save
  | "session/close" -> Ok Session_close
  | "gateway/migrate" -> Ok Gateway_migrate
  | s -> Error (Printf.sprintf "unknown op %S" s)

type params = {
  benchmark : string;
  partitions : int;
  package : int;
  perf : float;
  delay : float;
  multicycle : bool;
  heuristic : string;
  strategy : string;
  keep_all : bool;
  csv : bool;
  no_prune : bool;
  verbose : bool;
  index : int;
  top : int;
  parameter : string;
  values : float list;
  session : string;  (** session id for session/* ops *)
  edits : string list;  (** edit-command lines for session/edit *)
  seed : int;  (** tie-breaking seed for session/optimize *)
  max_moves : int;  (** candidate-move budget for session/optimize *)
  time_limit_ms : float;  (** optimize time budget; 0 = unlimited *)
  coarse : int;  (** coarsening target cluster count; 0 = automatic *)
  pins : string list;  (** "op=partition" fixed-vertex constraints *)
  together : string list;  (** "op,op,..." community constraints *)
  client : string;  (** caller identity for multi-client sessions *)
  restore : bool;
      (** session/open: require a state-dir snapshot and restore from it *)
  close : bool;  (** session/save: close the session after persisting *)
  slice_index : int;  (** explore/slice: this backend's slice residue *)
  slice_count : int;  (** explore/slice: number of backends fanning out *)
}

let default_params =
  {
    benchmark = "ar";
    partitions = 2;
    package = 84;
    perf = 30000.;
    delay = 30000.;
    multicycle = false;
    heuristic = "i";
    strategy = "levels";
    keep_all = false;
    csv = false;
    no_prune = false;
    verbose = false;
    index = -1;
    top = 3;
    parameter = "perf";
    values = [];
    session = "";
    edits = [];
    seed = 1;
    max_moves = 1024;
    time_limit_ms = 0.;
    coarse = 0;
    pins = [];
    together = [];
    client = "";
    restore = false;
    close = false;
    slice_index = 0;
    slice_count = 1;
  }

type request = {
  id : string;
  op : op;
  deadline_ms : float option;
  params : params;
}

(* Field decoding: absent -> default; present with the wrong shape -> a
   [bad_request] error naming the field, never a silent fallback. *)
let field name conv json ~default k =
  match Json.member name json with
  | None -> k default
  | Some v -> (
      match conv v with
      | Some x -> k x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let ( let* ) r f = Result.bind r f

let request_of_json json =
  match json with
  | Json.Object _ ->
      let str = Json.to_string_opt
      and int = Json.to_int_opt
      and flt = Json.to_float_opt
      and bool = Json.to_bool_opt in
      let floats v =
        match Json.to_list_opt v with
        | None -> None
        | Some xs ->
            let rec conv acc = function
              | [] -> Some (List.rev acc)
              | x :: tl -> (
                  match Json.to_float_opt x with
                  | Some f -> conv (f :: acc) tl
                  | None -> None)
            in
            conv [] xs
      in
      let d = default_params in
      let* id = field "id" str json ~default:"-" Result.ok in
      let* op_name = field "op" str json ~default:"explore" Result.ok in
      let* op = op_of_string op_name in
      let* deadline_ms =
        field "deadline_ms" (fun v -> Option.map Option.some (flt v)) json
          ~default:None Result.ok
      in
      let* benchmark = field "benchmark" str json ~default:d.benchmark Result.ok in
      let* partitions = field "partitions" int json ~default:d.partitions Result.ok in
      let* package = field "package" int json ~default:d.package Result.ok in
      let* perf = field "perf" flt json ~default:d.perf Result.ok in
      let* delay = field "delay" flt json ~default:d.delay Result.ok in
      let* multicycle = field "multicycle" bool json ~default:d.multicycle Result.ok in
      let* heuristic = field "heuristic" str json ~default:d.heuristic Result.ok in
      let* strategy = field "strategy" str json ~default:d.strategy Result.ok in
      let* keep_all = field "keep_all" bool json ~default:d.keep_all Result.ok in
      let* csv = field "csv" bool json ~default:d.csv Result.ok in
      let* no_prune = field "no_prune" bool json ~default:d.no_prune Result.ok in
      let* verbose = field "verbose" bool json ~default:d.verbose Result.ok in
      let* index = field "index" int json ~default:d.index Result.ok in
      let* top = field "top" int json ~default:d.top Result.ok in
      let* parameter = field "parameter" str json ~default:d.parameter Result.ok in
      let* values = field "values" floats json ~default:d.values Result.ok in
      let strings v =
        match Json.to_list_opt v with
        | None -> None
        | Some xs ->
            let rec conv acc = function
              | [] -> Some (List.rev acc)
              | x :: tl -> (
                  match Json.to_string_opt x with
                  | Some s -> conv (s :: acc) tl
                  | None -> None)
            in
            conv [] xs
      in
      let* session = field "session" str json ~default:d.session Result.ok in
      let* edits = field "edits" strings json ~default:d.edits Result.ok in
      let* seed = field "seed" int json ~default:d.seed Result.ok in
      let* max_moves = field "max_moves" int json ~default:d.max_moves Result.ok in
      let* time_limit_ms =
        field "time_limit_ms" flt json ~default:d.time_limit_ms Result.ok
      in
      let* coarse = field "coarse" int json ~default:d.coarse Result.ok in
      let* pins = field "pins" strings json ~default:d.pins Result.ok in
      let* together = field "together" strings json ~default:d.together Result.ok in
      let* client = field "client" str json ~default:d.client Result.ok in
      let* restore = field "restore" bool json ~default:d.restore Result.ok in
      let* close = field "close" bool json ~default:d.close Result.ok in
      let* slice_index =
        field "slice_index" int json ~default:d.slice_index Result.ok
      in
      let* slice_count =
        field "slice_count" int json ~default:d.slice_count Result.ok
      in
      Ok
        {
          id;
          op;
          deadline_ms;
          params =
            {
              benchmark;
              partitions;
              package;
              perf;
              delay;
              multicycle;
              heuristic;
              strategy;
              keep_all;
              csv;
              no_prune;
              verbose;
              index;
              top;
              parameter;
              values;
              session;
              edits;
              seed;
              max_moves;
              time_limit_ms;
              coarse;
              pins;
              together;
              client;
              restore;
              close;
              slice_index;
              slice_count;
            };
        }
  | _ -> Error "request must be a JSON object"

let parse_request line =
  let* json = Json.parse line in
  request_of_json json

let request_to_json r =
  let p = r.params in
  let deadline =
    match r.deadline_ms with
    | None -> []
    | Some ms -> [ ("deadline_ms", Json.Float ms) ]
  in
  Json.Object
    ([
       ("id", Json.String r.id);
       ("op", Json.String (op_to_string r.op));
     ]
    @ deadline
    @ [
        ("benchmark", Json.String p.benchmark);
        ("partitions", Json.Int p.partitions);
        ("package", Json.Int p.package);
        ("perf", Json.Float p.perf);
        ("delay", Json.Float p.delay);
        ("multicycle", Json.Bool p.multicycle);
        ("heuristic", Json.String p.heuristic);
        ("strategy", Json.String p.strategy);
        ("keep_all", Json.Bool p.keep_all);
        ("csv", Json.Bool p.csv);
        ("no_prune", Json.Bool p.no_prune);
        ("verbose", Json.Bool p.verbose);
        ("index", Json.Int p.index);
        ("top", Json.Int p.top);
        ("parameter", Json.String p.parameter);
        ("values", Json.Array (List.map (fun v -> Json.Float v) p.values));
        ("session", Json.String p.session);
        ("edits", Json.Array (List.map (fun e -> Json.String e) p.edits));
        ("seed", Json.Int p.seed);
        ("max_moves", Json.Int p.max_moves);
        ("time_limit_ms", Json.Float p.time_limit_ms);
        ("coarse", Json.Int p.coarse);
        ("pins", Json.Array (List.map (fun s -> Json.String s) p.pins));
        ("together", Json.Array (List.map (fun s -> Json.String s) p.together));
        ("client", Json.String p.client);
        ("restore", Json.Bool p.restore);
        ("close", Json.Bool p.close);
        ("slice_index", Json.Int p.slice_index);
        ("slice_count", Json.Int p.slice_count);
      ])

type error_code = Overloaded | Deadline | Bad_request | Shutting_down | Internal

let error_code_to_string = function
  | Overloaded -> "overloaded"
  | Deadline -> "deadline"
  | Bad_request -> "bad_request"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

type timing = {
  queue_ms : float;
  run_ms : float;
  predict_ms : float;
  search_ms : float;
  merge_ms : float;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_structural_hits : int;
  moves_tried : int;  (** session/optimize only; 0 elsewhere *)
  moves_accepted : int;  (** session/optimize only; 0 elsewhere *)
  speculative_runs : int;  (** session/optimize only; 0 elsewhere *)
  batch_rounds : int;  (** session/optimize only; 0 elsewhere *)
  spec_busy_ms : float;  (** session/optimize only; 0 elsewhere *)
  spec_wall_ms : float;  (** session/optimize only; 0 elsewhere *)
  jobs : int;  (** effective pool parallelism behind the run *)
}

let timing_of_report ~queue_ms ~run_ms (report : Chop.Explore.report) =
  let m = report.Chop.Explore.metrics in
  {
    queue_ms;
    run_ms;
    predict_ms = m.Chop.Explore.Metrics.predict.Chop.Explore.Metrics.wall_seconds *. 1000.;
    search_ms = m.Chop.Explore.Metrics.search.Chop.Explore.Metrics.wall_seconds *. 1000.;
    merge_ms = m.Chop.Explore.Metrics.merge_wall_seconds *. 1000.;
    cache_hits = m.Chop.Explore.Metrics.cache_hits;
    cache_misses = m.Chop.Explore.Metrics.cache_misses;
    cache_evictions = m.Chop.Explore.Metrics.cache_evictions;
    cache_structural_hits = m.Chop.Explore.Metrics.cache_structural_hits;
    moves_tried = 0;
    moves_accepted = 0;
    speculative_runs = 0;
    batch_rounds = 0;
    spec_busy_ms = 0.;
    spec_wall_ms = 0.;
    jobs = report.Chop.Explore.jobs;
  }

let no_engine_timing ~queue_ms ~run_ms =
  {
    queue_ms;
    run_ms;
    predict_ms = 0.;
    search_ms = 0.;
    merge_ms = 0.;
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
    cache_structural_hits = 0;
    moves_tried = 0;
    moves_accepted = 0;
    speculative_runs = 0;
    batch_rounds = 0;
    spec_busy_ms = 0.;
    spec_wall_ms = 0.;
    jobs = 0;
  }

(* session/optimize timing: cache counters are summed across every
   refinement run; the per-phase breakdown has no single-run meaning, so
   only the aggregate wall time is reported. *)
let optimize_timing ~queue_ms ~run_ms (o : Chop_auto.outcome) =
  {
    queue_ms;
    run_ms;
    predict_ms = 0.;
    search_ms = 0.;
    merge_ms = 0.;
    cache_hits = o.Chop_auto.cache_hits;
    cache_misses = o.Chop_auto.cache_misses;
    cache_evictions = 0;
    cache_structural_hits = o.Chop_auto.cache_structural_hits;
    moves_tried = o.Chop_auto.moves_tried;
    moves_accepted = o.Chop_auto.moves_accepted;
    speculative_runs = o.Chop_auto.speculative_runs;
    batch_rounds = o.Chop_auto.batch_rounds;
    spec_busy_ms = o.Chop_auto.spec_busy_seconds *. 1000.;
    spec_wall_ms = o.Chop_auto.spec_wall_seconds *. 1000.;
    jobs = o.Chop_auto.jobs;
  }

let timing_to_json t =
  Json.Object
    [
      ("queue_ms", Json.Float t.queue_ms);
      ("run_ms", Json.Float t.run_ms);
      ("predict_ms", Json.Float t.predict_ms);
      ("search_ms", Json.Float t.search_ms);
      ("merge_ms", Json.Float t.merge_ms);
      ("cache_hits", Json.Int t.cache_hits);
      ("cache_misses", Json.Int t.cache_misses);
      ("cache_evictions", Json.Int t.cache_evictions);
      ("cache_structural_hits", Json.Int t.cache_structural_hits);
      ("moves_tried", Json.Int t.moves_tried);
      ("moves_accepted", Json.Int t.moves_accepted);
      ("speculative_runs", Json.Int t.speculative_runs);
      ("batch_rounds", Json.Int t.batch_rounds);
      ("spec_busy_ms", Json.Float t.spec_busy_ms);
      ("spec_wall_ms", Json.Float t.spec_wall_ms);
      ("jobs", Json.Int t.jobs);
    ]

let ok_response ~id ~op ?timing fields =
  Json.Object
    ([
       ("id", Json.String id);
       ("ok", Json.Bool true);
       ("op", Json.String (op_to_string op));
       ("result", Json.Object fields);
     ]
    @
    match timing with
    | None -> []
    | Some t -> [ ("timing", timing_to_json t) ])

let error_response ~id ~code message =
  Json.Object
    [
      ("id", Json.String id);
      ("ok", Json.Bool false);
      ("error",
       Json.Object
         [
           ("code", Json.String (error_code_to_string code));
           ("message", Json.String message);
         ]);
    ]

let response_id json = Option.bind (Json.member "id" json) Json.to_string_opt
let response_ok json = Option.bind (Json.member "ok" json) Json.to_bool_opt

let response_error_code json =
  Option.bind (Json.member "error" json) (fun e ->
      Option.bind (Json.member "code" e) Json.to_string_opt)

let response_text json =
  Option.bind (Json.member "result" json) (fun r ->
      Option.bind (Json.member "text" r) Json.to_string_opt)
