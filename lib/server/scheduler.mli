(** The serve loop's admission control and worker pool: a bounded FIFO
    queue drained by a fixed set of system threads.

    Backpressure is explicit and bounded: at most [queue] requests wait
    while [concurrency] run, and the submission that would make the
    outstanding count exceed [queue + concurrency] is rejected
    immediately with {!Overloaded} — so under any load, request
    [queue + concurrency + 1] is the first to see a structured
    rejection rather than an unbounded latency tail.

    Deadlines are absolute timestamps checked twice: at dequeue (a
    request whose budget elapsed while queued runs its [expired]
    callback instead of [run]) and cooperatively during [run] through
    the [interrupt] predicate it receives.

    Worker threads — not domains — run the jobs: a job's engine work
    parks on the shared domain pool, so OCaml-level parallelism comes
    from the pool while these threads merely overlap independent
    requests. *)

type t

type outcome =
  | Accepted
  | Overloaded  (** the bounded queue and the running slots are all full *)
  | Draining  (** {!drain} has begun; no new work is admitted *)

type stats = {
  accepted : int;
  rejected : int;  (** submissions answered {!Overloaded} or {!Draining} *)
  completed : int;  (** jobs whose [run] returned *)
  expired : int;  (** jobs whose deadline elapsed while queued *)
  failed : int;  (** jobs whose [run] raised (a server bug — [run]
                     callbacks are expected to catch their own errors) *)
  max_queued : int;
  max_in_flight : int;
}

val create : queue:int -> concurrency:int -> t
(** Starts [concurrency] worker threads.
    @raise Invalid_argument when [queue < 0] or [concurrency < 1]. *)

val submit :
  t ->
  ?deadline:float ->
  expired:(queue_seconds:float -> unit) ->
  run:(interrupt:(unit -> bool) -> queue_seconds:float -> unit) ->
  unit ->
  outcome
(** Enqueues a job.  [deadline] is an absolute [Unix.gettimeofday]
    timestamp; when it passes before the job is dequeued, [expired] runs
    (on a worker thread) instead of [run].  [run] receives the seconds
    the job waited and an [interrupt] predicate that turns [true] once
    the deadline passes — poll it from long work and abandon the job
    cooperatively.  Both callbacks should catch their own exceptions;
    an escape is counted in [failed] and the worker survives. *)

val queued : t -> int
val in_flight : t -> int

val drain : t -> unit
(** Stops admission ({!submit} returns {!Draining} from this point),
    waits for every queued and in-flight job to finish, and joins the
    worker threads.  Idempotent; concurrent callers all block until the
    drain completes. *)

val stats : t -> stats
