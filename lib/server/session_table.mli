(** The server's session bookkeeping: id allocation, writer/observer
    membership, and TTL + LRU eviction with the drain race closed.

    One {!slot} per open session.  The slot's [smu] serialises engine
    work on the session; the table's own lock only guards membership, so
    a sweep never blocks behind a long run.

    {b The drain race.}  The eviction sweep used to decide expiry from a
    sampled [last_used] and only then try the session mutex — so an edit
    admitted before the sample but still in flight (typical while the
    scheduler drains a backlog) would refresh [last_used] too late, and
    the sweep would evict a session the client had just edited.  {!prune}
    therefore re-reads [last_used] {e after} [Mutex.try_lock] succeeds
    and releases the slot when the session turned out to be fresh.

    Observed sessions — those with at least one attached read-only
    client — are never evicted, by TTL or by LRU; detaching the last
    observer makes the session ordinary again. *)

type slot = {
  session : Chop.Explore.Session.t;
  smu : Mutex.t;  (** serialises engine work on this session *)
  mutable last_used : float;
  open_params : Protocol.params;
      (** rendering parameters fixed at open (keep_all/csv/verbose) *)
  mutable writer : string;
      (** the client that opened the session ("" = anonymous); the only
          client allowed to mutate it *)
  mutable observers : string list;  (** attached read-only clients *)
  mutable edits : int;  (** applied edit/undo/redo batches, for the log *)
}

type t

val create : ttl_s:float -> max_sessions:int -> t
(** @raise Invalid_argument on a non-positive TTL or capacity. *)

val max_sessions : t -> int

val length : t -> int

val find : t -> string -> slot option

val add : t -> string -> slot -> (unit, string) result
(** Registers a slot under an id; [Error] when the id is already live.
    Caller-provided ids of the server's own [s<n>] shape advance the
    allocator past [n], so {!fresh_id} never reuses them. *)

val fresh_id : t -> string
(** The next free [s<n>] id (allocation only — the caller {!add}s). *)

val remove : t -> string -> slot option

val entries : t -> (string * slot) list
(** A membership snapshot, unordered. *)

val prune :
  t ->
  now:float ->
  room_for:int ->
  on_evict:(reason:string -> string -> slot -> unit) ->
  unit
(** One eviction sweep: sessions idle past the TTL go first (expiry
    re-checked under the session mutex — see the drain race above), then
    least-recently-used ones until [room_for] new sessions fit.  Busy
    sessions (mutex held) and observed sessions are skipped, so the cap
    is best-effort under concurrency.  [on_evict] runs with the slot's
    mutex held and already removed from the table — the place to
    snapshot and close. *)

val drain : t -> (string -> slot -> unit) -> unit
(** Empties the table, calling the callback on every slot (shutdown:
    snapshot and close everything, ignoring observers and business). *)
