(** The wire protocol of [chop serve]: newline-delimited JSON.

    Every request is one JSON object on one line; every response is one
    JSON object on one line.  Responses carry the request's [id] and may
    arrive out of order when a connection pipelines several requests —
    clients correlate by id, never by position.

    A request looks like

    {v
    {"id":"r1","op":"explore","benchmark":"ewf","partitions":2,
     "heuristic":"i","keep_all":true,"deadline_ms":5000}
    v}

    Omitted parameters take the CLI defaults ({!default_params}), so an
    empty parameter set explores the [ar] benchmark exactly as a bare
    [chop explore] would.  Responses are either

    {v
    {"id":"r1","ok":true,"op":"explore","result":{...},"timing":{...}}
    {"id":"r1","ok":false,"error":{"code":"overloaded","message":"..."}}
    v}

    The [result.text] field of an explore/predict/advise/sensitivity
    response is byte-identical to the corresponding CLI subcommand's
    deterministic output — both sides render through {!Ops}.

    The [session/*] ops drive a server-held {!Chop.Explore.Session}:
    [session/open] builds a spec from the same parameters as [explore] and
    answers with a session id; [session/edit] applies edit-command lines
    ({!Ops.parse_edit} syntax) to it; [session/run] explores the edited
    spec (re-predicting only partitions edits dirtied) and renders the
    same deterministic block as [explore]; [session/optimize] runs the
    {!Chop_auto} multilevel coarsen–refine partitioner on the session's
    spec (honouring [seed]/[max_moves]/[time_limit_ms]/[coarse]/[pins]/
    [together], deadline-cancellable, moves and refinement cache counters
    reported in [timing]); [session/close] frees it.  Sessions are
    evicted after a TTL of inactivity or by LRU when the session table is
    full. *)

type op =
  | Explore
  | Explore_slice
      (** distributed fan-out: run only the first-axis search slices
          congruent to [slice_index] mod [slice_count] and answer with raw
          per-slice rows for the gateway to merge *)
  | Predict
  | Advise
  | Sensitivity
  | Stats
  | Ping
  | Session_open
  | Session_edit
  | Session_undo
  | Session_redo
  | Session_run
  | Session_optimize
  | Session_attach  (** join an existing session as a read-only observer *)
  | Session_detach
  | Session_list
  | Session_save
      (** persist the session to the state dir now; [close=true] also
          closes it (the migration handoff) *)
  | Session_close
  | Gateway_migrate
      (** gateway-level: move a session to another backend through the
          snapshot format; backends answer it with [bad_request] *)

val op_to_string : op -> string
val op_of_string : string -> (op, string) result

(** Exploration parameters, mirroring the CLI flags of [chop explore] /
    [chop predict] / [chop advise].  [index]/[top] only matter to
    [Predict]; [parameter]/[values] only to [Sensitivity]. *)
type params = {
  benchmark : string;
  partitions : int;
  package : int;  (** MOSIS package pin count: 64 or 84 *)
  perf : float;  (** performance constraint, ns *)
  delay : float;  (** system delay constraint, ns *)
  multicycle : bool;
  heuristic : string;  (** "e" | "i" | "b" *)
  strategy : string;  (** "levels" | "min-cut" | "random" *)
  keep_all : bool;
  csv : bool;
  no_prune : bool;
  verbose : bool;
  index : int;  (** predict: partition index, -1 for all *)
  top : int;  (** predict: predictions shown per partition *)
  parameter : string;  (** sensitivity: "perf" | "delay" | "pins" | "clock" *)
  values : float list;  (** sensitivity: swept values, in order *)
  session : string;  (** session/*: the session id ("" = unset) *)
  edits : string list;  (** session/edit: edit-command lines, applied in order *)
  seed : int;  (** session/optimize: deterministic tie-breaking seed *)
  max_moves : int;  (** session/optimize: candidate-move budget *)
  time_limit_ms : float;  (** session/optimize: time budget; 0 = unlimited *)
  coarse : int;
      (** session/optimize: coarsening target cluster count; 0 (the
          default) picks it automatically from the partition count *)
  pins : string list;
      (** session/optimize: ["op=partition"] fixed-vertex constraints;
          [op] is a node id or name ({!Ops.parse_edit} operand syntax) *)
  together : string list;
      (** session/optimize: ["op,op,..."] community constraints *)
  client : string;
      (** caller identity ("" = anonymous).  The client that opens a
          session is its writer; other clients may [session/attach] as
          read-only observers.  Logged per request for edit attribution. *)
  restore : bool;
      (** session/open: require an existing snapshot in the server's state
          dir for [session] and restore it (otherwise [bad_request]);
          without it, open restores opportunistically when a snapshot for
          the requested id exists *)
  close : bool;  (** session/save: close the session after persisting *)
  slice_index : int;  (** explore/slice: this backend's residue class *)
  slice_count : int;  (** explore/slice: total backends fanning out *)
}

val default_params : params
(** The CLI defaults: [ar], 2 partitions, 84-pin package, 30000 ns
    constraints, single-cycle, iterative heuristic, levels strategy. *)

type request = {
  id : string;  (** echoed on the response; defaults to ["-"] *)
  op : op;
  deadline_ms : float option;
      (** per-request budget in milliseconds, measured from admission;
          a non-positive value is already expired (used by tests for a
          deterministic timeout) *)
  params : params;
}

val request_of_json : Chop_util.Json.t -> (request, string) result
(** Decodes one request object.  Unknown fields are ignored; a wrong
    type on a known field, an unknown [op], or a non-object input is an
    error (the server answers it with code [bad_request]). *)

val parse_request : string -> (request, string) result
(** [request_of_json] composed with {!Chop_util.Json.parse}. *)

val request_to_json : request -> Chop_util.Json.t
(** Encodes a request; the client side of {!request_of_json}.  Emits
    every parameter field explicitly. *)

(** {1 Responses} *)

type error_code = Overloaded | Deadline | Bad_request | Shutting_down | Internal

val error_code_to_string : error_code -> string

(** Per-request wall-clock breakdown, echoed in responses and the access
    log.  The cache counters are the engine-run deltas
    ({!Chop.Explore.Metrics}); they are zero for requests that run no
    engine. *)
type timing = {
  queue_ms : float;  (** admission to dequeue *)
  run_ms : float;  (** dequeue to response built *)
  predict_ms : float;
  search_ms : float;
  merge_ms : float;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_structural_hits : int;
      (** hits served across graph constructions — entries created by
          another session, spec revision or client (see
          {!Chop.Pred_cache.counters}) *)
  moves_tried : int;
      (** session/optimize: candidate moves evaluated; 0 elsewhere *)
  moves_accepted : int;
      (** session/optimize: moves kept; 0 elsewhere *)
  speculative_runs : int;
      (** session/optimize: probe evaluations run on session forks; 0
          elsewhere *)
  batch_rounds : int;
      (** session/optimize: speculative waves dispatched; 0 elsewhere *)
  spec_busy_ms : float;
      (** session/optimize: pool busy time inside speculative waves *)
  spec_wall_ms : float;
      (** session/optimize: wall time inside speculative waves *)
  jobs : int;
      (** effective pool parallelism behind the run (0 when no engine
          ran) *)
}

val timing_of_report : queue_ms:float -> run_ms:float -> Chop.Explore.report -> timing

val no_engine_timing : queue_ms:float -> run_ms:float -> timing
(** A {!timing} with the engine fields zeroed. *)

val optimize_timing :
  queue_ms:float -> run_ms:float -> Chop_auto.outcome -> timing
(** Timing for a [session/optimize] response: cache counters summed
    across every refinement run, plus the move counters. *)

val ok_response :
  id:string -> op:op -> ?timing:timing -> (string * Chop_util.Json.t) list ->
  Chop_util.Json.t
(** [{"id":id,"ok":true,"op":...,"result":{fields},"timing":{...}}]. *)

val error_response :
  id:string -> code:error_code -> string -> Chop_util.Json.t
(** [{"id":id,"ok":false,"error":{"code":...,"message":...}}]. *)

val response_id : Chop_util.Json.t -> string option
val response_ok : Chop_util.Json.t -> bool option
val response_error_code : Chop_util.Json.t -> string option
val response_text : Chop_util.Json.t -> string option
(** [result.text] of an ok response. *)
