(* Bounded-queue request scheduler over system threads.

   Admission is a single comparison under the lock: a submission is
   rejected the moment the outstanding count (queued + in-flight) would
   exceed [queue + concurrency], which makes the overload boundary exact
   and testable — request K+C+1 is the first rejection.  Everything else
   is a plain condition-variable worker loop. *)

type job = {
  enqueued : float;
  deadline : float option;  (* absolute Unix time *)
  expired_cb : queue_seconds:float -> unit;
  run_cb : interrupt:(unit -> bool) -> queue_seconds:float -> unit;
}

type outcome = Accepted | Overloaded | Draining

type stats = {
  accepted : int;
  rejected : int;
  completed : int;
  expired : int;
  failed : int;
  max_queued : int;
  max_in_flight : int;
}

type t = {
  capacity : int;
  concurrency : int;
  m : Mutex.t;
  nonempty : Condition.t;  (* a job was queued, or draining began *)
  idle : Condition.t;  (* the outstanding count may have reached zero *)
  jobs : job Queue.t;
  mutable queued : int;
  mutable in_flight : int;
  mutable draining : bool;
  mutable workers : Thread.t list;
  mutable accepted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable expired : int;
  mutable failed : int;
  mutable max_queued : int;
  mutable max_in_flight : int;
}

let worker t =
  Mutex.lock t.m;
  let rec loop () =
    if Queue.is_empty t.jobs then
      if t.draining then Mutex.unlock t.m
      else begin
        Condition.wait t.nonempty t.m;
        loop ()
      end
    else begin
      let j = Queue.pop t.jobs in
      t.queued <- t.queued - 1;
      t.in_flight <- t.in_flight + 1;
      if t.in_flight > t.max_in_flight then t.max_in_flight <- t.in_flight;
      Mutex.unlock t.m;
      let now = Unix.gettimeofday () in
      let queue_seconds = now -. j.enqueued in
      let result =
        match j.deadline with
        | Some dl when dl <= now -> (
            match j.expired_cb ~queue_seconds with
            | () -> `Expired
            | exception _ -> `Failed)
        | _ -> (
            let interrupt () =
              match j.deadline with
              | Some dl -> Unix.gettimeofday () >= dl
              | None -> false
            in
            match j.run_cb ~interrupt ~queue_seconds with
            | () -> `Completed
            | exception _ -> `Failed)
      in
      Mutex.lock t.m;
      t.in_flight <- t.in_flight - 1;
      (match result with
      | `Completed -> t.completed <- t.completed + 1
      | `Expired -> t.expired <- t.expired + 1
      | `Failed -> t.failed <- t.failed + 1);
      if t.queued = 0 && t.in_flight = 0 then Condition.broadcast t.idle;
      loop ()
    end
  in
  loop ()

let create ~queue ~concurrency =
  if queue < 0 then invalid_arg "Scheduler.create: queue must be >= 0";
  if concurrency < 1 then invalid_arg "Scheduler.create: concurrency must be >= 1";
  let t =
    {
      capacity = queue;
      concurrency;
      m = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      jobs = Queue.create ();
      queued = 0;
      in_flight = 0;
      draining = false;
      workers = [];
      accepted = 0;
      rejected = 0;
      completed = 0;
      expired = 0;
      failed = 0;
      max_queued = 0;
      max_in_flight = 0;
    }
  in
  t.workers <- List.init concurrency (fun _ -> Thread.create worker t);
  t

let submit t ?deadline ~expired ~run () =
  Mutex.lock t.m;
  if t.draining then begin
    t.rejected <- t.rejected + 1;
    Mutex.unlock t.m;
    Draining
  end
  else if t.queued + t.in_flight >= t.capacity + t.concurrency then begin
    t.rejected <- t.rejected + 1;
    Mutex.unlock t.m;
    Overloaded
  end
  else begin
    t.accepted <- t.accepted + 1;
    t.queued <- t.queued + 1;
    if t.queued > t.max_queued then t.max_queued <- t.queued;
    Queue.push
      {
        enqueued = Unix.gettimeofday ();
        deadline;
        expired_cb = expired;
        run_cb = run;
      }
      t.jobs;
    Condition.signal t.nonempty;
    Mutex.unlock t.m;
    Accepted
  end

let queued t =
  Mutex.lock t.m;
  let n = t.queued in
  Mutex.unlock t.m;
  n

let in_flight t =
  Mutex.lock t.m;
  let n = t.in_flight in
  Mutex.unlock t.m;
  n

let drain t =
  Mutex.lock t.m;
  t.draining <- true;
  Condition.broadcast t.nonempty;
  while t.queued > 0 || t.in_flight > 0 do
    Condition.wait t.idle t.m
  done;
  let ws = t.workers in
  t.workers <- [];
  Mutex.unlock t.m;
  List.iter Thread.join ws

let stats t =
  Mutex.lock t.m;
  let s =
    {
      accepted = t.accepted;
      rejected = t.rejected;
      completed = t.completed;
      expired = t.expired;
      failed = t.failed;
      max_queued = t.max_queued;
      max_in_flight = t.max_in_flight;
    }
  in
  Mutex.unlock t.m;
  s
