(** The one implementation of the CLI's benchmark table, spec assembly
    and result rendering, shared by [bin/chop_cli] and the serving layer.

    Byte-identity between [chop explore] and a [chop serve] explore
    response is a guarantee of this module, by construction: both call
    the same renderer on the same report.  Renderers return only the
    {e deterministic} part of the output — no wall-clock times — so two
    runs of the same request compare equal; timings travel separately
    ({!render_explore_timing}, {!Protocol.timing}). *)

val benchmarks : (string * (unit -> Chop_dfg.Graph.t)) list
(** The built-in benchmark graphs: ar, ewf, fir16, fir8, diffeq, dct8,
    pcm_pwm.  Each entry builds a fresh graph. *)

val graph_of_name : string -> (Chop_dfg.Graph.t, string) result
val package_of_pins : int -> (Chop_tech.Chip.t, string) result
val heuristic_of_string : string -> (Chop.Explore.heuristic, string) result
val strategy_of_string : string -> (Chop_baseline.Autopart.strategy, string) result

val reference_cpu : Chop_model_sw.Processor.t
(** The embedded processor declared on HW/SW co-design runs: a 2-issue
    core named ["cpu"] at the 300 ns main clock, with a memory budget and
    bus width sized for the [pcm_pwm] case study. *)

val processors_for :
  benchmark:string ->
  impls:(string * string) list ->
  Chop_model_sw.Processor.t list
(** [[reference_cpu]] on the co-design benchmark ([pcm_pwm]) or whenever
    the caller binds a partition explicitly; [[]] otherwise, so every
    pre-existing benchmark builds the exact spec it always did. *)

val parse_impl_bindings :
  string list -> ((string * string) list, string) result
(** CLI [--impl PART=MODEL] bindings; label and model validation is left
    to {!Chop.Spec.make}. *)

val build_spec :
  ?processors:Chop_model_sw.Processor.t list ->
  ?impls:(string * string) list ->
  graph:Chop_dfg.Graph.t ->
  partitions:int ->
  package:Chop_tech.Chip.t ->
  perf:float ->
  delay:float ->
  multicycle:bool ->
  strategy:Chop_baseline.Autopart.strategy ->
  unit ->
  Chop.Spec.t
(** The CLI's benchmark rig: level-cut (or strategy-driven) partitioning,
    MOSIS chips, single-cycle datapath at 10x main clock (or multi-cycle
    at 1x), performance/delay criteria.  [processors] and [impls] (both
    default empty) declare software implementation models and per-
    partition bindings. *)

val spec_of_params : Protocol.params -> (Chop.Spec.t, string) result
(** {!build_spec} from wire parameters; [Error] on an unknown benchmark,
    package, or strategy, or an invalid partition count. *)

val config_of_params :
  jobs:int -> Protocol.params -> (Chop.Explore.Config.t, string) result
(** The engine configuration [chop explore] would build for these
    parameters: [keep_all] when [keep_all || csv], pre-pruning unless
    [no_prune], the given parallelism. *)

val engine_key : op:Protocol.op -> Protocol.params -> string
(** Canonical identity of the warm engine a request needs: every
    spec-shaping and config-shaping parameter, plus the op family
    (explore-family ops can share an engine; predict has its own
    configuration).  Rendering-only parameters ([verbose], [index],
    [top], sensitivity fields) are excluded, so requests differing only
    in presentation reuse the same engine. *)

(** {1 Renderers} *)

val render_explore_rows :
  keep_all:bool ->
  csv:bool ->
  bad:Chop.Explore.bad_stats list ->
  trials:int ->
  verbose_tail:string option ->
  feasible:Chop.Search.Row.t list ->
  explored:Chop.Search.Row.t list ->
  unit ->
  string
(** The deterministic explore block over design-point rows — the single
    renderer behind {!render_explore} and the gateway's distributed
    merge, which is what makes the CLI, the server and the gateway
    byte-identical.  [verbose_tail] carries the designer-guideline
    section when the caller has full systems in hand (the gateway never
    does: fan-out is restricted to non-verbose requests). *)

val render_explore :
  Chop.Spec.t -> keep_all:bool -> csv:bool -> verbose:bool ->
  Chop.Explore.report -> string
(** The deterministic output of [chop explore]: with [keep_all], the
    feasible-front and explored CSV dump; with [csv], the explored dump;
    otherwise the per-partition BAD lines, the trial count and the
    feasible-implementation list (plus the designer guideline when
    [verbose]). *)

val explore_feasible_count : Chop.Explore.report -> int

val render_explore_timing : Chop.Explore.report -> string
(** The wall-clock lines [chop explore] prints after the deterministic
    block: BAD wall/busy seconds and cache counters, search CPU
    seconds. *)

val render_predict :
  Chop.Spec.t -> index:int -> top:int ->
  (string * Chop_bad.Prediction.t list) list ->
  Chop.Explore.bad_stats list -> string
(** The output of [chop predict]: per-partition statistics and the top
    predictions, for one partition index or all ([index < 0]). *)

val render_advice : Chop.Advisor.judgement -> string
(** The output of [chop advise]: the advice line. *)

(** {1 The interactive edit-command language}

    One command per line, shared by [chop repl] and the server's
    [session/edit] op:

    {v
    move <op> <partition>        merge <src> <dst>
    split <from> <new> <op[,op...]>
    assign <partition> <chip>    package <chip> <64|84>
    rehost <block> <chip>        clocks <main_ns> <dp_ratio> <tr_ratio>
    criteria <perf_ns> <delay_ns> impl <partition> <hw|processor>
    v}

    [<op>] operands are graph node ids or node names. *)

val edit_commands : string
(** One-line syntax summary, used in error messages and [repl] help. *)

val parse_edit : Chop.Spec.t -> string -> (Chop.Spec.edit, string) result
(** Parse one edit command.  Only graph-node operands are resolved here
    (against [spec.graph], which edits never change); partition, chip and
    memory names are validated by {!Chop.Spec.update}. *)

val parse_edits :
  Chop.Spec.t -> string list -> (Chop.Spec.edit list, string) result
(** {!parse_edit} over a list; the first failure rejects the list with its
    0-based position prefixed. *)

val render_dirty : Chop.Spec.dirty -> string
(** The acknowledgement line for an applied edit list:
    ["ok: re-predict P1 P2; removed P3\n"], or
    ["ok: nothing to re-predict\n"] when the edits invalidate no
    predictive work. *)

val render_parts : Chop.Spec.t -> string
(** One line per partition: label, operation count, assigned chip, plus a
    [[model <name>]] tag for partitions bound to a software model
    (hardware partitions render exactly as before). *)

(** {1 Automatic partitioning (chop auto / session/optimize)} *)

val parse_constraints :
  Chop.Spec.t ->
  pins:string list ->
  together:string list ->
  (Chop_auto.constraints, string) result
(** [pins] entries are ["op=partition"], [together] entries are
    ["op,op,..."] with at least two operations; [op] operands are node
    ids or names ({!parse_edit} syntax).  Partition labels stay symbolic
    here — {!Chop_auto.refine} validates them against the spec. *)

val constraints_of_params :
  Chop.Spec.t -> Protocol.params -> (Chop_auto.constraints, string) result
(** {!parse_constraints} on the wire parameters. *)

val render_auto : Chop.Spec.t -> Chop_auto.outcome -> string
(** The deterministic output of [chop auto] and a [session/optimize]
    response: the level/move summary, the seed-vs-final comparison, the
    final partition table and the final state's explore block.  Cache
    counters and wall times are excluded (they depend on cache warmth),
    so CLI and serve renderings of the same seeded run compare equal. *)

val render_auto_timing : Chop_auto.outcome -> string
(** The wall-clock/cache line [chop auto] prints after the deterministic
    block: wall seconds, the pool's job count with the speculative
    busy/wall split, and the refinement cache hit/miss/structural
    counters with the hit rate. *)

val render_auto_stats : Chop_auto.outcome -> string
(** The [chop auto --stats] block: speculative run/round counts, the
    busy/wall split with effective parallelism, per-round averages and
    the cache counters. *)

(** {1 Distributed explore (the gateway fan-out)}

    A backend answers [explore/slice] with {!slice_payload_fields} — raw
    per-slice counters and admitted/explored rows, floats as exact hex
    literals.  The gateway decodes one payload per backend
    ({!slice_payload_of_result}), then {!merge_slice_payloads} replays
    every admission in global task order — {!Chop.Search.Slice.merge} at
    {!Chop.Search.Row} granularity — so the merged block rendered by
    {!render_explore_rows} is byte-identical to a single process's. *)

val row_to_json : Chop.Search.Row.t -> Chop_util.Json.t
val row_of_json : Chop_util.Json.t -> (Chop.Search.Row.t, string) result

type slice_rows = {
  sl_index : int;  (** global first-axis index *)
  sl_trials : int;
  sl_admitted : Chop.Search.Row.t list;  (** admission order *)
  sl_explored : Chop.Search.Row.t list;  (** integration order *)
}

type slice_payload = {
  sp_first_total : int;
  sp_bad : Chop.Explore.bad_stats list;
  sp_slices : slice_rows list;
}

val slice_payload_fields :
  Chop.Explore.Session.slice_run -> (string * Chop_util.Json.t) list
(** The [result] fields of an [explore/slice] response. *)

val slice_payload_of_result :
  Chop_util.Json.t -> (slice_payload, string) result
(** Decodes the [result] object of an [explore/slice] response. *)

type merged_explore = {
  mx_bad : Chop.Explore.bad_stats list;
  mx_trials : int;
  mx_feasible : Chop.Search.Row.t list;
  mx_explored : Chop.Search.Row.t list;
}

val merge_slice_payloads :
  slice_payload list -> (merged_explore, string) result
(** [Error] when the payloads' residue classes do not cover the first
    axis exactly once, or disagree on its size. *)

(** {1 Session inventory} *)

type session_line = {
  ses_id : string;
  ses_revision : int;
  ses_age_s : float;  (** seconds since last use *)
  ses_writer : string;  (** "" = anonymous *)
  ses_observers : int;
}

val render_sessions : session_line list -> string
(** One line per open session (sorted by id, numerically for the
    server's [s<n>] ids), shared by the [session/list] op, the gateway's
    fan-out of it and the repl's [:sessions] command. *)

val render_session_closed : string -> string
(** The acknowledgement text of [session/close] (and of the migration
    handoff's closing half): ["session <id> closed\n"]. *)

val session_line_to_json : session_line -> Chop_util.Json.t
val session_line_of_json :
  Chop_util.Json.t -> (session_line, string) result
(** The structured [sessions] entries of a [session/list] response — what
    the gateway decodes to merge inventories across backends. *)

val render_sensitivity : Chop.Sensitivity.sweep -> string

val run_sensitivity :
  config:Chop.Explore.Config.t -> Chop.Spec.t -> Protocol.params ->
  (Chop.Sensitivity.sweep, string) result
(** Dispatches on [params.parameter]: ["perf"], ["delay"], ["clock"]
    (float sweeps) or ["pins"] (values truncated to ints).  [Error] on an
    unknown parameter or an empty value list. *)
