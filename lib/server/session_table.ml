(* Session bookkeeping for the serving layer.  See session_table.mli for
   the eviction contract; the part worth reading twice is [prune]'s
   re-check of [last_used] *after* try_lock — the fix for the scheduler
   drain race where an in-flight session/edit refreshed the timestamp
   too late to stop its session being TTL-evicted. *)

type slot = {
  session : Chop.Explore.Session.t;
  smu : Mutex.t;
  mutable last_used : float;
  open_params : Protocol.params;
  mutable writer : string;
  mutable observers : string list;
  mutable edits : int;
}

type t = {
  slots : (string, slot) Hashtbl.t;
  mu : Mutex.t;
  mutable seq : int;
  ttl_s : float;
  cap : int;
}

let create ~ttl_s ~max_sessions =
  if ttl_s <= 0. then invalid_arg "Session_table.create: ttl_s must be positive";
  if max_sessions < 1 then
    invalid_arg "Session_table.create: max_sessions must be >= 1";
  {
    slots = Hashtbl.create 16;
    mu = Mutex.create ();
    seq = 0;
    ttl_s;
    cap = max_sessions;
  }

let max_sessions t = t.cap

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let length t = locked t (fun () -> Hashtbl.length t.slots)

let find t sid = locked t (fun () -> Hashtbl.find_opt t.slots sid)

(* Caller-provided ids of our own shape advance the allocator, so a
   gateway-assigned "s7" never collides with a later local "s7". *)
let observe_id t sid =
  if String.length sid > 1 && sid.[0] = 's' then
    match int_of_string_opt (String.sub sid 1 (String.length sid - 1)) with
    | Some n when n > t.seq -> t.seq <- n
    | _ -> ()

let add t sid slot =
  locked t (fun () ->
      if Hashtbl.mem t.slots sid then
        Error (Printf.sprintf "session %S is already open" sid)
      else begin
        observe_id t sid;
        Hashtbl.add t.slots sid slot;
        Ok ()
      end)

let fresh_id t =
  locked t (fun () ->
      let rec next () =
        t.seq <- t.seq + 1;
        let sid = Printf.sprintf "s%d" t.seq in
        if Hashtbl.mem t.slots sid then next () else sid
      in
      next ())

let remove t sid =
  locked t (fun () ->
      let r = Hashtbl.find_opt t.slots sid in
      (match r with Some _ -> Hashtbl.remove t.slots sid | None -> ());
      r)

let entries t =
  locked t (fun () -> Hashtbl.fold (fun sid s acc -> (sid, s) :: acc) t.slots [])

let prune t ~now ~room_for ~on_evict =
  Mutex.lock t.mu;
  let victims = ref [] in
  let grab ~recheck reason sid slot =
    if slot.observers <> [] then false
    else if Mutex.try_lock slot.smu then
      (* the race fix: [last_used] was sampled before the lock; a run or
         edit that held [smu] while we sampled has refreshed it by now,
         so expiry must be re-judged under the mutex *)
      if recheck && now -. slot.last_used <= t.ttl_s then begin
        Mutex.unlock slot.smu;
        false
      end
      else begin
        Hashtbl.remove t.slots sid;
        victims := (sid, slot, reason) :: !victims;
        true
      end
    else false
  in
  Hashtbl.iter
    (fun sid slot ->
      if now -. slot.last_used > t.ttl_s then
        ignore (grab ~recheck:true "ttl" sid slot))
    (Hashtbl.copy t.slots);
  let excess () = Hashtbl.length t.slots - (t.cap - room_for) in
  if excess () > 0 then begin
    let by_age =
      Hashtbl.fold (fun sid s acc -> (sid, s) :: acc) t.slots []
      |> List.sort (fun (_, a) (_, b) -> Float.compare a.last_used b.last_used)
    in
    let rec evict n = function
      | [] -> ()
      | _ when n <= 0 -> ()
      | (sid, slot) :: tl ->
          evict (if grab ~recheck:false "lru" sid slot then n - 1 else n) tl
    in
    evict (excess ()) by_age
  end;
  Mutex.unlock t.mu;
  List.iter
    (fun (sid, slot, reason) ->
      on_evict ~reason sid slot;
      Mutex.unlock slot.smu)
    !victims

let drain t f =
  let all =
    locked t (fun () ->
        let all = Hashtbl.fold (fun sid s acc -> (sid, s) :: acc) t.slots [] in
        Hashtbl.reset t.slots;
        all)
  in
  List.iter (fun (sid, slot) -> f sid slot) all
