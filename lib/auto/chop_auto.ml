(* Multilevel BAD-driven partition refinement.  See the interface for the
   overall shape; implementation notes:

   - Clusters are the move granularity.  The finest level has one cluster
     per operation (communities collapse into one cluster); coarser
     levels come from heavy-edge matching on transfer bits, restricted to
     cluster pairs in the same part, so every level's clustering refines
     the current partitioning and the seed split *is* the coarsest
     initial state.

   - Contracting a same-part cluster pair (A, B) keeps the cluster
     quotient acyclic iff there is no alternate path between them of
     length >= 2.  Such a path can never leave the part: the partition
     quotient over parts is acyclic, so a path that leaves a part cannot
     re-enter it.  The reachability check below therefore only walks
     same-part clusters.  Merges are applied on a live union-find (not
     checked against a frozen snapshot) because two individually-safe
     contractions can jointly create a cycle.

   - Candidate moves are evaluated speculatively, in waves: each probe
     applies one [Session.edit] to a private session fork and runs it
     there, so a wave's probes score concurrently on the domain pool while
     the main session stays untouched (rejection costs nothing to undo).
     Every prediction a probe computes lands in the shared
     content-addressed cache, so committing a wave's winner re-serves them
     as hits.  This is what makes thousands of probes cheap and the
     refinement cache hit rate high by construction.

   - Rounds are deterministic by construction: candidate order, wave
     boundaries (1 doubling to 8 on non-improving waves, reset per pass)
     and the memo of probe scores depend only on the current state and the
     seed, never on the job count; the committed move is the
     lowest-indexed improving candidate of its wave.  jobs-1 and jobs-N
     refinements are therefore byte-identical apart from timing and
     cache-counter fields. *)

module G = Chop_dfg.Graph
module P = Chop_dfg.Partition
module S = Chop.Explore.Session
module IS = Set.Make (Int)

type constraints = {
  pins : (G.node_id * string) list;
  communities : G.node_id list list;
}

let no_constraints = { pins = []; communities = [] }

exception Invalid_constraints of string

let bad fmt = Printf.ksprintf (fun m -> raise (Invalid_constraints m)) fmt

type outcome = {
  spec : Chop.Spec.t;
  report : Chop.Explore.report;
  seed_report : Chop.Explore.report;
  levels : int;
  coarse_clusters : int;
  moves_tried : int;
  moves_accepted : int;
  impl_flips : int;
  speculative_runs : int;
  batch_rounds : int;
  spec_wall_seconds : float;
  spec_busy_seconds : float;
  jobs : int;
  cache_hits : int;
  cache_misses : int;
  cache_structural_hits : int;
  interrupted : bool;
  wall_seconds : float;
}

(* {1 Small graph helpers} *)

let topo_pos g =
  let t = Hashtbl.create 64 in
  List.iteri (fun i id -> Hashtbl.replace t id i)
    (Chop_dfg.Analysis.topological_order g);
  t

let is_comp g id =
  G.mem g id && Chop_dfg.Op.is_computational (G.node g id).G.op

let ancestors g ~from =
  let seen = Hashtbl.create 64 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      List.iter go (G.preds g id)
    end
  in
  List.iter go from;
  seen

let part_label_of spec op =
  (P.part_of spec.Chop.Spec.partitioning op).P.label

let order_members tpos members =
  List.sort
    (fun a b -> compare (Hashtbl.find tpos a) (Hashtbl.find tpos b))
    members

(* {1 Constraint normalization}

   Pins are checked against the graph and the partition labels;
   communities are transitively closed over sandwiched operations and
   merged when they overlap (to a fixpoint, since closing a union can
   reveal new overlaps). *)

let normalize_constraints g spec { pins; communities } =
  let labels =
    List.map (fun p -> p.P.label) spec.Chop.Spec.partitioning.P.parts
  in
  List.iter
    (fun (op, lbl) ->
      if not (is_comp g op) then bad "pin: unknown operation %d" op;
      if not (List.mem lbl labels) then bad "pin: unknown partition %s" lbl)
    pins;
  let pin_tbl = Hashtbl.create 16 in
  List.iter
    (fun (op, lbl) ->
      match Hashtbl.find_opt pin_tbl op with
      | Some l when not (String.equal l lbl) ->
          bad "pin: operation %d pinned to both %s and %s" op l lbl
      | _ -> Hashtbl.replace pin_tbl op lbl)
    pins;
  List.iter
    (List.iter (fun op ->
         if not (is_comp g op) then
           bad "together: unknown operation %d" op))
    communities;
  let close ms =
    let desc = Chop_dfg.Analysis.reachable g ~from:ms in
    let anc = ancestors g ~from:ms in
    List.sort_uniq compare
      (ms @ List.filter (fun x -> is_comp g x && Hashtbl.mem anc x) desc)
  in
  let rec merge_all acc = function
    | [] -> List.rev acc
    | c :: rest ->
        let overlaps, disjoint =
          List.partition (fun c' -> List.exists (fun x -> List.mem x c') c) rest
        in
        if overlaps = [] then merge_all (c :: acc) rest
        else
          merge_all acc
            (List.sort_uniq compare (List.concat (c :: overlaps)) :: disjoint)
  in
  let rec fixpoint cs guard =
    let next = merge_all [] (List.map close cs) in
    if guard = 0 || next = cs then next else fixpoint next (guard - 1)
  in
  let communities =
    fixpoint
      (List.filter (fun c -> c <> []) communities)
      (1 + List.length communities)
  in
  (* every (closed) community must agree on a pinned target, if any *)
  List.iter
    (fun ms ->
      let targets =
        List.sort_uniq String.compare (List.filter_map (Hashtbl.find_opt pin_tbl) ms)
      in
      match targets with
      | [] | [ _ ] -> ()
      | l ->
          bad "together: community pinned to multiple partitions (%s)"
            (String.concat ", " l))
    communities;
  (pin_tbl, communities)

(* {1 Session move plumbing} *)

let move_edits members ~to_ =
  List.map (fun op -> Chop.Spec.Move_op { op; to_partition = to_ }) members

(* Apply "move these members to [to_]" as one all-or-nothing edit.  The
   member order matters for transient validation (moving against the
   dependence direction can create a momentary quotient cycle), so try
   sinks-first then sources-first.  Returns the order that applied. *)
let try_move session tpos members ~to_ =
  let topo = order_members tpos members in
  let rtopo = List.rev topo in
  match S.edit session (move_edits rtopo ~to_) with
  | Ok _ -> Ok rtopo
  | Error e1 -> (
      match S.edit session (move_edits topo ~to_) with
      | Ok _ -> Ok topo
      | Error _ ->
          Error (Format.asprintf "%a" Chop.Spec.pp_update_error e1))

(* Undoing a just-applied move list in reverse order retraces the chain of
   valid intermediate specs, so it can never fail. *)
let revert session ~applied ~to_ =
  let edits =
    List.rev_map (fun op -> Chop.Spec.Move_op { op; to_partition = to_ }) applied
  in
  match S.edit session edits with
  | Ok _ -> ()
  | Error e ->
      invalid_arg
        (Format.asprintf "Chop_auto: revert failed (internal): %a"
           Chop.Spec.pp_update_error e)

(* Establish pins and community co-location on the seed partitioning.
   Groups may depend on each other's moves for transient validity, so
   retry in passes until quiescent. *)
let apply_fixups session tpos groups =
  let pending = ref groups in
  let last_err = ref "unsatisfiable" in
  let progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    pending :=
      List.filter
        (fun (members, target) ->
          let need =
            List.filter
              (fun op -> part_label_of (S.spec session) op <> target)
              members
          in
          if need = [] then false
          else
            match try_move session tpos need ~to_:target with
            | Ok _ ->
                progress := true;
                false
            | Error e ->
                last_err := e;
                true)
        !pending
  done;
  if !pending <> [] then
    bad "constraints cannot be established on the seed partitioning: %s"
      !last_err

(* {1 Clusters and coarsening} *)

type cluster = { members : G.node_id list; pinned : bool }

(* A refinement action is either the classic cluster move between
   partitions or — when the spec declares software processors — rebinding
   a partition to a different implementation model.  Flips carry the
   current model so a commit can be reverted symmetrically. *)
type action =
  | Move_cluster of cluster * string * string  (* cluster, from part, to part *)
  | Flip_impl of string * string * string  (* partition, from model, to model *)

let action_order = function
  | Move_cluster (c, _, q) -> (0, List.hd c.members, "", q)
  | Flip_impl (p, _, m) -> (1, 0, p, m)

let base_clusters tpos ~pin_tbl ~communities ops =
  let in_comm = Hashtbl.create 64 in
  List.iter (List.iter (fun op -> Hashtbl.replace in_comm op ())) communities;
  let comm =
    List.map
      (fun ms ->
        {
          members = order_members tpos ms;
          pinned = List.exists (Hashtbl.mem pin_tbl) ms;
        })
      communities
  in
  let singles =
    List.filter_map
      (fun op ->
        if Hashtbl.mem in_comm op then None
        else Some { members = [ op ]; pinned = Hashtbl.mem pin_tbl op })
      ops
  in
  List.sort
    (fun a b ->
      compare
        (Hashtbl.find tpos (List.hd a.members))
        (Hashtbl.find tpos (List.hd b.members)))
    (comm @ singles)

(* One heavy-edge matching round; returns the coarser clustering (possibly
   unchanged when nothing can contract). *)
let coarsen_round g tpos part_of_op ~seed clusters =
  let clusters = Array.of_list clusters in
  let n = Array.length clusters in
  let cl_of = Hashtbl.create (4 * n) in
  Array.iteri
    (fun i c -> List.iter (fun op -> Hashtbl.replace cl_of op i) c.members)
    clusters;
  let part = Array.map (fun c -> part_of_op (List.hd c.members)) clusters in
  let parent = Array.init n (fun i -> i) in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let succs = Array.make n IS.empty in
  let weight = Hashtbl.create (4 * n) in
  let seen = Hashtbl.create (4 * n) in
  List.iter
    (fun (u, v) ->
      match (Hashtbl.find_opt cl_of u, Hashtbl.find_opt cl_of v) with
      | Some cu, Some cv when cu <> cv ->
          succs.(cu) <- IS.add cv succs.(cu);
          if String.equal part.(cu) part.(cv) then begin
            (* transfer bits: each produced value counts once per
               consuming cluster, matching [Partition.flows] *)
            if not (Hashtbl.mem seen (u, cv)) then begin
              Hashtbl.replace seen (u, cv) ();
              let key = (min cu cv, max cu cv) in
              Hashtbl.replace weight key
                ((G.node g u).G.width
                + Option.value ~default:0 (Hashtbl.find_opt weight key))
            end
          end
      | _ -> ())
    (G.edges g);
  let cands =
    Hashtbl.fold
      (fun (a, b) w acc -> (w, Hashtbl.hash (seed, a, b), a, b) :: acc)
      weight []
    |> List.sort (fun (w1, t1, a1, b1) (w2, t2, a2, b2) ->
           if w1 <> w2 then compare w2 w1
           else if t1 <> t2 then compare t1 t2
           else compare (a1, b1) (a2, b2))
  in
  (* path src ~> dst of length >= 2 over same-part representatives (a
     cross-part excursion can never come back — see the module header) *)
  let reaches_indirect src dst =
    let p = part.(src) in
    let visited = Hashtbl.create 64 in
    let rec go i =
      if i = dst then true
      else if Hashtbl.mem visited i then false
      else begin
        Hashtbl.replace visited i ();
        IS.exists
          (fun j ->
            let j = find j in
            String.equal part.(j) p && go j)
          succs.(i)
      end
    in
    IS.exists
      (fun j ->
        let j = find j in
        j <> dst && String.equal part.(j) p && go j)
      succs.(src)
  in
  let members_acc = Array.map (fun c -> c.members) clusters in
  let pinned_acc = Array.map (fun c -> c.pinned) clusters in
  let matched = Array.make n false in
  List.iter
    (fun (_, _, a, b) ->
      let ra = find a and rb = find b in
      if
        ra <> rb
        && (not matched.(ra))
        && (not matched.(rb))
        && (not (reaches_indirect ra rb))
        && not (reaches_indirect rb ra)
      then begin
        let union = IS.union succs.(ra) succs.(rb) in
        parent.(rb) <- ra;
        succs.(ra) <- IS.filter (fun j -> find j <> ra) union;
        members_acc.(ra) <- members_acc.(ra) @ members_acc.(rb);
        pinned_acc.(ra) <- pinned_acc.(ra) || pinned_acc.(rb);
        matched.(ra) <- true
      end)
    cands;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if find i = i then
      out :=
        { members = order_members tpos members_acc.(i); pinned = pinned_acc.(i) }
        :: !out
  done;
  List.sort
    (fun a b ->
      compare
        (Hashtbl.find tpos (List.hd a.members))
        (Hashtbl.find tpos (List.hd b.members)))
    !out

(* Coarsest level first, finest (the base clustering) last. *)
let build_hierarchy g tpos part_of_op ~seed ~coarse_target base =
  let levels = ref [ base ] in
  let cur = ref base in
  let round = ref 0 in
  let continue_ = ref (List.length base > coarse_target) in
  while !continue_ do
    incr round;
    let next = coarsen_round g tpos part_of_op ~seed:(seed + !round) !cur in
    if List.length next >= List.length !cur then continue_ := false
    else begin
      levels := next :: !levels;
      cur := next;
      if List.length next <= coarse_target then continue_ := false
    end
  done;
  !levels

(* {1 Scoring}

   Total order on exploration reports: feasibility beats everything; among
   feasible states the best design's performance, then likely area, then
   delay, then cut bits; among infeasible states the number of
   BAD-feasible per-partition implementations (more means closer to
   integrating), then cut bits. *)

type score = {
  feas : bool;
  perf : float;
  area : float;
  delay : float;
  badf : int;
  cut : int;
}

let score_of spec (r : Chop.Explore.report) =
  let cut = P.cut_bits_total spec.Chop.Spec.partitioning in
  let badf =
    List.fold_left
      (fun a (b : Chop.Explore.bad_stats) -> a + b.feasible_predictions)
      0 r.bad
  in
  match r.outcome.Chop.Search.feasible with
  | best :: _ ->
      let o = Chop.Integration.objectives best in
      { feas = true; perf = o.(0); delay = o.(1); area = o.(2); badf; cut }
  | [] ->
      { feas = false; perf = infinity; delay = infinity; area = infinity;
        badf; cut }

let better a b =
  if a.feas <> b.feas then a.feas
  else if a.feas then
    (a.perf, a.area, a.delay, a.cut) < (b.perf, b.area, b.delay, b.cut)
  else (-a.badf, a.cut) < (-b.badf, b.cut)

(* {1 Refinement} *)

(* Cut connectivity of a cluster towards every part: bits of values
   crossing between the cluster and each part, counting each produced
   value once per consuming side — the FM gain numerator.  Pure ordering
   heuristic; acceptance is decided by the BAD score. *)
let connectivity g spec c =
  let in_c = Hashtbl.create 16 in
  List.iter (fun op -> Hashtbl.replace in_c op ()) c.members;
  let conn = Hashtbl.create 8 in
  let bump lbl w =
    Hashtbl.replace conn lbl (w + Option.value ~default:0 (Hashtbl.find_opt conn lbl))
  in
  let seen_out = Hashtbl.create 32 in
  let seen_in = Hashtbl.create 32 in
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          if is_comp g v && not (Hashtbl.mem in_c v) then begin
            let lbl = part_label_of spec v in
            if not (Hashtbl.mem seen_out (u, lbl)) then begin
              Hashtbl.replace seen_out (u, lbl) ();
              bump lbl (G.node g u).G.width
            end
          end)
        (G.succs g u);
      List.iter
        (fun p ->
          if is_comp g p && (not (Hashtbl.mem in_c p)) && not (Hashtbl.mem seen_in p)
          then begin
            Hashtbl.replace seen_in p ();
            bump (part_label_of spec p) (G.node g p).G.width
          end)
        (G.preds g u))
    c.members;
  conn

(* Largest speculative wave.  Constant — the wave schedule must not depend
   on the job count, or jobs-1 and jobs-N would diverge. *)
let wave_max = 8

let rec take n = function
  | x :: rest when n > 0 ->
      let wave, rest = take (n - 1) rest in
      (x :: wave, rest)
  | l -> ([], l)

let refine ?(seed = 1) ?(constraints = no_constraints) ?(max_moves = 1024)
    ?time_limit_s ?coarse_target ?(interrupt = fun () -> false)
    session =
  let t0 = Unix.gettimeofday () in
  let spec0 = S.spec session in
  let g = spec0.Chop.Spec.graph in
  let tpos = topo_pos g in
  let pin_tbl, communities = normalize_constraints g spec0 constraints in
  (* constraint fix-up on the seed partitioning *)
  let fixup_groups =
    List.map
      (fun ms ->
        let target =
          match List.filter_map (Hashtbl.find_opt pin_tbl) ms with
          | t :: _ -> t
          | [] ->
              (* plurality of current parts, ties to the lexicographically
                 first label — deterministic *)
              let counts = Hashtbl.create 8 in
              List.iter
                (fun op ->
                  let l = part_label_of spec0 op in
                  Hashtbl.replace counts l
                    (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
                ms;
              Hashtbl.fold (fun l c acc -> (c, l) :: acc) counts []
              |> List.sort (fun (c1, l1) (c2, l2) ->
                     if c1 <> c2 then compare c2 c1 else String.compare l1 l2)
              |> List.hd |> snd
        in
        (ms, target))
      communities
    @ Hashtbl.fold
        (fun op lbl acc ->
          if List.exists (fun ms -> List.mem op ms) communities then acc
          else ([ op ], lbl) :: acc)
        pin_tbl []
  in
  apply_fixups session tpos fixup_groups;
  (* seed evaluation: the only run with no fallback state, so only the
     caller's interrupt can cancel it (and Cancelled propagates) *)
  let seed_report = S.run_interruptible ~interrupt session in
  let part_of_op op = part_label_of (S.spec session) op in
  let ops =
    List.map (fun (n : G.node) -> n.G.id) (G.operations g)
  in
  let part_count = List.length spec0.Chop.Spec.partitioning.P.parts in
  let coarse_target =
    (* absent or <= 0 = automatic: a couple of movable clusters per part
       at the coarsest level — small enough that realistic graphs
       actually coarsen (a fixed large default used to mean the hierarchy
       was always a single level) *)
    match coarse_target with
    | Some c when c > 0 -> c
    | _ -> max (2 * part_count) 8
  in
  let base = base_clusters tpos ~pin_tbl ~communities ops in
  let hierarchy =
    build_hierarchy g tpos part_of_op ~seed ~coarse_target base
  in
  let levels = List.length hierarchy in
  let coarse_clusters = List.length (List.hd hierarchy) in
  let tried = ref 0 and accepted = ref 0 and flips = ref 0 in
  let spec_runs = ref 0 and rounds = ref 0 in
  let spec_wall = ref 0. and spec_busy = ref 0. in
  let hits = ref 0 and misses = ref 0 and structural = ref 0 in
  let interrupted = ref false in
  let stopped = ref false in
  let timed_out () =
    match time_limit_s with
    | Some l -> Unix.gettimeofday () -. t0 > l
    | None -> false
  in
  let stop () = interrupt () || timed_out () || !tried >= max_moves in
  let cur_report = ref seed_report in
  let cur_score = ref (score_of (S.spec session) seed_report) in
  let candidates level_idx clusters =
    let spec = S.spec session in
    let part_sizes = Hashtbl.create 8 in
    List.iter
      (fun (p : P.t) ->
        Hashtbl.replace part_sizes p.P.label (List.length p.P.members))
      spec.Chop.Spec.partitioning.P.parts
    |> ignore;
    let labels =
      List.map (fun (p : P.t) -> p.P.label) spec.Chop.Spec.partitioning.P.parts
      |> List.sort String.compare
    in
    let moves =
      List.concat_map
        (fun c ->
          if c.pinned then []
          else
            let from = part_label_of spec (List.hd c.members) in
            if Hashtbl.find part_sizes from <= List.length c.members then []
            else
              let conn = connectivity g spec c in
              let home = Option.value ~default:0 (Hashtbl.find_opt conn from) in
              List.filter_map
                (fun q ->
                  if String.equal q from then None
                  else
                    let gain =
                      Option.value ~default:0 (Hashtbl.find_opt conn q) - home
                    in
                    Some
                      ( gain,
                        Hashtbl.hash (seed, level_idx, List.hd c.members, q),
                        Move_cluster (c, from, q) ))
                labels)
        clusters
    in
    (* implementation-model flips: only generated when the spec declares
       processors, so hardware-only refinement is byte-identical to the
       pre-model code path *)
    let flips =
      if spec.Chop.Spec.processors = [] then []
      else
        let models =
          "hw"
          :: List.map
               (fun p -> p.Chop_model_sw.Processor.pname)
               spec.Chop.Spec.processors
        in
        List.concat_map
          (fun lbl ->
            let cur = Chop.Spec.impl_of_partition spec lbl in
            List.filter_map
              (fun m ->
                if String.equal m cur then None
                else
                  Some
                    ( 0,
                      Hashtbl.hash (seed, level_idx, lbl, m, "impl"),
                      Flip_impl (lbl, cur, m) ))
              models)
          labels
    in
    moves @ flips
    |> List.sort (fun (g1, t1, a1) (g2, t2, a2) ->
           if g1 <> g2 then compare g2 g1
           else if t1 <> t2 then compare t1 t2
           else compare (action_order a1) (action_order a2))
  in
  (* moves applied since the last best state (kicks, most recent first);
     rolled back at the end unless a later acceptance redeems them *)
  let undo = ref [] in
  let record_stats (r : Chop.Explore.report) =
    hits := !hits + r.Chop.Explore.cache_hits;
    misses := !misses + r.Chop.Explore.cache_misses;
    structural :=
      !structural
      + r.Chop.Explore.metrics.Chop.Explore.Metrics.cache_structural_hits
  in
  (* Memo of probe scores, keyed on a digest of the full partition
     assignment the move would produce.  Sound because only the
     partitioning changes during refinement — graph, chips, clock and
     criteria are fixed — so the assignment alone determines the state.
     A memo hit skips the speculative run entirely; legality of the move
     from the *current* state is still path-dependent, so a commit
     re-applies the edit and deterministically skips a stale entry. *)
  let memo : (string, score) Hashtbl.t = Hashtbl.create 512 in
  let assignment_key action =
    let spec = S.spec session in
    let b = Buffer.create 512 in
    let in_m = Hashtbl.create 16 in
    let moved_to =
      match action with
      | Move_cluster (c, _, q) ->
          List.iter (fun op -> Hashtbl.replace in_m op ()) c.members;
          q
      | Flip_impl _ -> ""
    in
    List.iter
      (fun op ->
        Buffer.add_string b (string_of_int op);
        Buffer.add_char b ':';
        Buffer.add_string b
          (if Hashtbl.mem in_m op then moved_to else part_label_of spec op);
        Buffer.add_char b ';')
      ops;
    (* model bindings join the key only when flips are in play, so the
       hardware-only memo behaves exactly as before *)
    if spec.Chop.Spec.processors <> [] then
      List.iter
        (fun (p : P.t) ->
          let m =
            match action with
            | Flip_impl (lbl, _, to_) when String.equal lbl p.P.label -> to_
            | _ -> Chop.Spec.impl_of_partition spec p.P.label
          in
          Buffer.add_string b p.P.label;
          Buffer.add_char b '=';
          Buffer.add_string b m;
          Buffer.add_char b '|')
        (List.sort
           (fun (a : P.t) (b : P.t) -> String.compare a.P.label b.P.label)
           spec.Chop.Spec.partitioning.P.parts);
    Digest.string (Buffer.contents b)
  in
  (* Apply an action to a session (the main one or a speculative fork).
     Returns the revert token a cancelled or failed commit needs. *)
  let apply_action sess = function
    | Move_cluster (c, from, q) -> (
        match try_move sess tpos c.members ~to_:q with
        | Ok applied -> Ok (`Moved (applied, from))
        | Error _ as e -> e)
    | Flip_impl (p, from, m) -> (
        match S.edit sess [ Chop.Spec.Set_impl { partition = p; impl = m } ] with
        | Ok _ -> Ok (`Flipped (p, from))
        | Error e ->
            Error (Format.asprintf "%a" Chop.Spec.pp_update_error e))
  in
  let revert_action sess = function
    | `Moved (applied, from) -> revert sess ~applied ~to_:from
    | `Flipped (p, from) -> (
        match
          S.edit sess [ Chop.Spec.Set_impl { partition = p; impl = from } ]
        with
        | Ok _ -> ()
        | Error e ->
            invalid_arg
              (Format.asprintf "Chop_auto: impl revert failed (internal): %a"
                 Chop.Spec.pp_update_error e))
  in
  (* One refinement pass: scan the gain-ordered candidates in waves of
     speculative probes, evaluated concurrently on the session's pool via
     {!S.speculate}.  Waves start at 1 and double up to [wave_max] while
     nothing improves, so early accepts stay cheap and the converged tail
     gets full batches.  The whole wave is always evaluated — even at
     jobs = 1 — so counters and commits cannot depend on the job count. *)
  let rec scan_waves ~on_accept wave_size cands =
    if cands <> [] && not !stopped then begin
      if stop () then begin
        interrupted := true;
        stopped := true
      end
      else begin
        let wave, rest = take wave_size cands in
        (* consult the memo sequentially, before any probe dispatches *)
        let entries =
          List.map
            (fun ((_, _, action) as cand) ->
              let key = assignment_key action in
              (cand, key, ref (Hashtbl.find_opt memo key)))
            wave
        in
        let unknown =
          List.filter (fun (_, _, v) -> Option.is_none !v) entries
        in
        let aborted = ref false in
        if unknown <> [] then begin
          let tasks =
            Array.of_list
              (List.map
                 (fun ((_, _, action), _, _) ->
                   fun probe ->
                     match apply_action probe action with
                     | Error _ ->
                         `Illegal (* cycle / would empty the part *)
                     | Ok _ -> (
                         match S.run_interruptible ~interrupt probe with
                         | exception Chop.Explore.Cancelled -> `Aborted
                         | r -> `Scored (score_of (S.spec probe) r, r)))
                 unknown)
          in
          let tw0 = Unix.gettimeofday () in
          let results, pstats = S.speculate session tasks in
          spec_wall := !spec_wall +. (Unix.gettimeofday () -. tw0);
          spec_busy :=
            !spec_busy
            +. Array.fold_left ( +. ) 0. pstats.Chop_util.Pool.worker_busy;
          incr rounds;
          List.iteri
            (fun i (_, key, verdict) ->
              match results.(i) with
              | `Illegal -> ()
              | `Aborted -> aborted := true
              | `Scored (sc, r) ->
                  incr spec_runs;
                  record_stats r;
                  Hashtbl.replace memo key sc;
                  verdict := Some sc)
            unknown
        end;
        if !aborted then begin
          interrupted := true;
          stopped := true
        end
        else begin
          (* every candidate that produced a score counts as a tried move,
             whether a probe ran or the memo served it *)
          let scored =
            List.filter_map
              (fun ((_, _, action), _, v) ->
                Option.map (fun sc -> (action, sc)) !v)
              entries
          in
          tried := !tried + List.length scored;
          (* commit the lowest-indexed improving candidate that re-applies
             cleanly on the main session; its run is served from the cache
             the probe just populated *)
          let rec commit = function
            | [] -> `No_improvement
            | (action, sc) :: more when better sc !cur_score -> (
                match apply_action session action with
                | Error _ -> commit more (* stale memo: illegal from here *)
                | Ok tok -> (
                    match S.run_interruptible ~interrupt session with
                    | exception Chop.Explore.Cancelled ->
                        revert_action session tok;
                        `Cancelled
                    | r ->
                        record_stats r;
                        let sc' = score_of (S.spec session) r in
                        if better sc' !cur_score then begin
                          cur_score := sc';
                          cur_report := r;
                          undo := [];
                          incr accepted;
                          (match action with
                          | Flip_impl _ -> incr flips
                          | Move_cluster _ -> ());
                          `Committed
                        end
                        else begin
                          (* defensive: a probe score replays identically,
                             so this arm should be unreachable *)
                          revert_action session tok;
                          commit more
                        end))
            | _ :: more -> commit more
          in
          match commit scored with
          | `Committed -> on_accept ()
          | `Cancelled ->
              interrupted := true;
              stopped := true
          | `No_improvement ->
              scan_waves ~on_accept (min wave_max (2 * wave_size)) rest
        end
      end
    end
  in
  (* Plateau escape while infeasible: the score (-badf, cut) often cannot
     improve one move at a time — an overloaded partition may need to
     shed several operations before BAD finds anything feasible in it.
     A kick forces the best-gain legal move out of the partition with the
     fewest BAD-feasible predictions without requiring improvement; the
     move stays on [undo] until a later acceptance beats the best state,
     else it is rolled back at the end. *)
  let kick cands =
    let weakest =
      List.fold_left
        (fun acc (b : Chop.Explore.bad_stats) ->
          match acc with
          | Some (best : Chop.Explore.bad_stats)
            when best.feasible_predictions <= b.feasible_predictions ->
              acc
          | _ -> Some b)
        None !cur_report.Chop.Explore.bad
      |> Option.map (fun (b : Chop.Explore.bad_stats) -> b.label)
    in
    match weakest with
    | None -> false
    | Some weak ->
        let rec try_cands = function
          | [] -> false
          | (_, _, Move_cluster (c, from, q)) :: rest
            when String.equal from weak -> (
              match try_move session tpos c.members ~to_:q with
              | Error _ -> try_cands rest
              | Ok applied -> (
                  incr tried;
                  match S.run_interruptible ~interrupt session with
                  | exception Chop.Explore.Cancelled ->
                      revert session ~applied ~to_:from;
                      interrupted := true;
                      stopped := true;
                      false
                  | r ->
                      record_stats r;
                      let sc = score_of (S.spec session) r in
                      if better sc !cur_score then begin
                        cur_score := sc;
                        cur_report := r;
                        undo := [];
                        incr accepted
                      end
                      else undo := (applied, from) :: !undo;
                      true))
          | _ :: rest -> try_cands rest
        in
        try_cands cands
  in
  List.iteri
    (fun level_idx clusters ->
      if not !stopped then begin
        let kicks_left = ref (2 * part_count) in
        let improved = ref true in
        while !improved && not !stopped do
          improved := false;
          if stop () then begin
            interrupted := true;
            stopped := true
          end
          else begin
            (* a committed move rebuilds the candidates: parts (and every
               gain) changed *)
            scan_waves
              ~on_accept:(fun () -> improved := true)
              1
              (candidates level_idx clusters);
            if
              (not !improved) && (not !stopped)
              && (not !cur_score.feas)
              && !kicks_left > 0
              && not (stop ())
            then begin
              decr kicks_left;
              if kick (candidates level_idx clusters) then improved := true
              else kicks_left := 0
            end
          end
        done
      end)
    hierarchy;
  (* roll back kicks that never led to a better state *)
  List.iter (fun (applied, from) -> revert session ~applied ~to_:from) !undo;
  {
    spec = S.spec session;
    report = !cur_report;
    seed_report;
    levels;
    coarse_clusters;
    moves_tried = !tried;
    moves_accepted = !accepted;
    impl_flips = !flips;
    speculative_runs = !spec_runs;
    batch_rounds = !rounds;
    spec_wall_seconds = !spec_wall;
    spec_busy_seconds = !spec_busy;
    jobs = S.jobs session;
    cache_hits = !hits;
    cache_misses = !misses;
    cache_structural_hits = !structural;
    interrupted = !interrupted;
    wall_seconds = Unix.gettimeofday () -. t0;
  }

let run ?seed ?constraints ?max_moves ?time_limit_s ?coarse_target ?interrupt
    ?pool ~config spec =
  Chop.Explore.with_session ?pool config spec (fun session ->
      refine ?seed ?constraints ?max_moves ?time_limit_s ?coarse_target
        ?interrupt session)
