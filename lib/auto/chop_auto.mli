(** Automatic constraint-driven partitioning.

    The paper's thesis — and the [chop_baseline] KL port's empirical
    result — is that min-cut cost does not correlate with behavioral
    feasibility.  This module therefore optimizes the partitioning with
    BAD prediction itself as the gain function: a multilevel
    coarsen–refine loop (heavy-edge matching on transfer bits, in the
    TritonPart / RePart style) whose refinement moves are evaluated
    through {!Chop.Explore.Session} forks — one [Spec.edit] per candidate
    move on a private speculative fork, scoped re-prediction of the two
    touched partitions, and cache-served predictions for everything else.
    Probes of a wave score concurrently on the session's domain pool; a
    rejected probe costs nothing to undo (the session was never touched),
    and the predictions it computed stay in the shared cache, so the
    committed winner's run re-serves them as hits.

    The loop:

    + the spec's own partitioning (typically an {!Chop_baseline.Autopart}
      strategy such as [Min_cut]) is the initial k-way split;
    + the DFG is coarsened inside each part by heavy-edge matching on
      transfer bits, never contracting a pair whose merge would create a
      cycle in the cluster quotient, down to roughly [coarse_target]
      clusters;
    + at each uncoarsening level, FM/KL-style passes move boundary
      clusters between parts in descending cut-gain order, accepting a
      move only when the BAD-predicted score strictly improves:
      feasibility first, then best-design performance, then likely area,
      then delay (for infeasible states: BAD per-partition feasible
      counts, then cut bits);
    + when the spec declares software processors ({!Chop.Spec.processors}),
      every pass also weighs implementation-model flips — rebinding a whole
      partition to a processor, or back to hardware — against the same
      score, so refinement explores the HW/SW co-design space jointly with
      the cut.  Hardware-only specs generate no flip candidates and behave
      exactly as before.

    Constraints: [pin op part] fixes an operation to a partition (the
    cluster containing it never moves); [together op,op,...] keeps a
    community of operations in one partition (they coarsen into one
    cluster and only move as a unit).  Communities are transitively
    closed over sandwiched operations (any op on a dependence path
    between two members is pulled in), since a non-convex community could
    never legally move as a unit anyway.

    Runs are deterministic for a given seed: candidate ordering breaks
    ties by a seeded hash, and session runs are deterministic. *)

type constraints = {
  pins : (Chop_dfg.Graph.node_id * string) list;
      (** operation -> partition label it must end in *)
  communities : Chop_dfg.Graph.node_id list list;
      (** groups of operations that must share a partition *)
}

val no_constraints : constraints

exception Invalid_constraints of string
(** A pin names an unknown operation or partition, a community member is
    unknown, pins inside one (closed) community disagree, or the
    constraints cannot be established on the seed partitioning by any
    sequence of legal moves. *)

type outcome = {
  spec : Chop.Spec.t;  (** the optimized spec (also the session's spec) *)
  report : Chop.Explore.report;
      (** exploration report of the final accepted state *)
  seed_report : Chop.Explore.report;
      (** exploration report of the seed partitioning, after constraint
          fix-up edits *)
  levels : int;  (** refinement levels (1 = no coarsening happened) *)
  coarse_clusters : int;  (** cluster count at the coarsest level *)
  moves_tried : int;
      (** candidate moves evaluated (speculative probe runs plus
          memo-served re-evaluations) *)
  moves_accepted : int;
  impl_flips : int;
      (** accepted moves that rebound a partition's implementation model
          (hardware to a processor or back).  Flip candidates are only
          generated when the spec declares processors, so hardware-only
          runs behave exactly as before and report [0]. *)
  speculative_runs : int;
      (** probe evaluations actually run on session forks (memo hits and
          illegal moves excluded) *)
  batch_rounds : int;  (** speculative waves dispatched to the pool *)
  spec_wall_seconds : float;
      (** wall time spent inside speculative waves, summed over rounds *)
  spec_busy_seconds : float;
      (** pool-participant busy time inside speculative waves, summed over
          rounds — [spec_busy / spec_wall] is the effective parallelism *)
  jobs : int;  (** effective pool parallelism (after the core clamp) *)
  cache_hits : int;  (** prediction-cache hits across refinement runs *)
  cache_misses : int;  (** prediction-cache misses across refinement runs *)
  cache_structural_hits : int;
      (** structural (cross-construction) hits across refinement runs *)
  interrupted : bool;
      (** the move/time budget or [interrupt] stopped refinement early;
          the outcome is still the best state found *)
  wall_seconds : float;
}

val refine :
  ?seed:int ->
  ?constraints:constraints ->
  ?max_moves:int ->
  ?time_limit_s:float ->
  ?coarse_target:int ->
  ?interrupt:(unit -> bool) ->
  Chop.Explore.Session.t ->
  outcome
(** Optimize the partitioning of an open session in place.  On return the
    session's spec is the outcome's spec (candidates are evaluated on
    speculative session forks, so only committed moves ever touch the
    session).  Defaults: [seed = 1], no constraints, [max_moves = 1024],
    no time limit.  [coarse_target] absent or [<= 0] means automatic —
    [max (2 * parts) 8] — so multilevel coarsening actually engages on
    realistic graph sizes; an explicit positive value is honored as
    before.

    Candidate moves are scored in waves of speculative probes run
    concurrently on the session's pool.  Wave composition, probe-score
    memoization and the commit rule (lowest-indexed improving candidate)
    depend only on the current state and [seed], never on the job count,
    so for a given seed the outcome — spec, report, levels, move and
    round counters — is byte-identical at any [jobs]; only timing and
    cache-counter fields vary.  [max_moves] is checked between waves, so
    a full wave may finish past the budget (deterministically).

    [interrupt] is polled between waves and passed through to
    {!Chop.Explore.Session.run_interruptible} for every probe and commit
    run, so a serving deadline cancels mid-prediction; a cancelled wave
    discards its probes, a cancelled commit is reverted, and refinement
    stops cleanly with [interrupted = true].  Exception: if the {e seed}
    run itself is cancelled there is no state to fall back to, and
    {!Chop.Explore.Cancelled} propagates.

    @raise Invalid_constraints (see above).
    @raise Chop.Explore.Cancelled when [interrupt] fires during the seed
    run. *)

val run :
  ?seed:int ->
  ?constraints:constraints ->
  ?max_moves:int ->
  ?time_limit_s:float ->
  ?coarse_target:int ->
  ?interrupt:(unit -> bool) ->
  ?pool:Chop_util.Pool.t ->
  config:Chop.Explore.Config.t ->
  Chop.Spec.t ->
  outcome
(** {!refine} over a fresh session on [spec], closed on return. *)
