(** Automatic constraint-driven partitioning.

    The paper's thesis — and the [chop_baseline] KL port's empirical
    result — is that min-cut cost does not correlate with behavioral
    feasibility.  This module therefore optimizes the partitioning with
    BAD prediction itself as the gain function: a multilevel
    coarsen–refine loop (heavy-edge matching on transfer bits, in the
    TritonPart / RePart style) whose refinement moves are evaluated
    through an {!Chop.Explore.Session} — one [Spec.edit] per candidate
    move, scoped re-prediction of the two touched partitions, and
    cache-served predictions for everything else.  A rejected move is
    reverted without re-running, so the restored partitions are served
    straight from the prediction cache on the next candidate.

    The loop:

    + the spec's own partitioning (typically an {!Chop_baseline.Autopart}
      strategy such as [Min_cut]) is the initial k-way split;
    + the DFG is coarsened inside each part by heavy-edge matching on
      transfer bits, never contracting a pair whose merge would create a
      cycle in the cluster quotient, down to roughly [coarse_target]
      clusters;
    + at each uncoarsening level, FM/KL-style passes move boundary
      clusters between parts in descending cut-gain order, accepting a
      move only when the BAD-predicted score strictly improves:
      feasibility first, then best-design performance, then likely area,
      then delay (for infeasible states: BAD per-partition feasible
      counts, then cut bits).

    Constraints: [pin op part] fixes an operation to a partition (the
    cluster containing it never moves); [together op,op,...] keeps a
    community of operations in one partition (they coarsen into one
    cluster and only move as a unit).  Communities are transitively
    closed over sandwiched operations (any op on a dependence path
    between two members is pulled in), since a non-convex community could
    never legally move as a unit anyway.

    Runs are deterministic for a given seed: candidate ordering breaks
    ties by a seeded hash, and session runs are deterministic. *)

type constraints = {
  pins : (Chop_dfg.Graph.node_id * string) list;
      (** operation -> partition label it must end in *)
  communities : Chop_dfg.Graph.node_id list list;
      (** groups of operations that must share a partition *)
}

val no_constraints : constraints

exception Invalid_constraints of string
(** A pin names an unknown operation or partition, a community member is
    unknown, pins inside one (closed) community disagree, or the
    constraints cannot be established on the seed partitioning by any
    sequence of legal moves. *)

type outcome = {
  spec : Chop.Spec.t;  (** the optimized spec (also the session's spec) *)
  report : Chop.Explore.report;
      (** exploration report of the final accepted state *)
  seed_report : Chop.Explore.report;
      (** exploration report of the seed partitioning, after constraint
          fix-up edits *)
  levels : int;  (** refinement levels (1 = no coarsening happened) *)
  coarse_clusters : int;  (** cluster count at the coarsest level *)
  moves_tried : int;  (** candidate moves evaluated through the session *)
  moves_accepted : int;
  cache_hits : int;  (** prediction-cache hits across refinement runs *)
  cache_misses : int;  (** prediction-cache misses across refinement runs *)
  cache_structural_hits : int;
      (** structural (cross-construction) hits across refinement runs *)
  interrupted : bool;
      (** the move/time budget or [interrupt] stopped refinement early;
          the outcome is still the best state found *)
  wall_seconds : float;
}

val refine :
  ?seed:int ->
  ?constraints:constraints ->
  ?max_moves:int ->
  ?time_limit_s:float ->
  ?coarse_target:int ->
  ?interrupt:(unit -> bool) ->
  Chop.Explore.Session.t ->
  outcome
(** Optimize the partitioning of an open session in place.  On return the
    session's spec is the outcome's spec (every rejected candidate was
    reverted).  Defaults: [seed = 1], no constraints, [max_moves = 1024],
    no time limit, [coarse_target = 2048].

    [interrupt] is polled between candidates and passed through to
    {!Chop.Explore.Session.run_interruptible} for the refinement runs, so
    a serving deadline cancels mid-prediction; a cancelled candidate is
    reverted and refinement stops cleanly with [interrupted = true].
    Exception: if the {e seed} run itself is cancelled there is no state
    to fall back to, and {!Chop.Explore.Cancelled} propagates.

    @raise Invalid_constraints (see above).
    @raise Chop.Explore.Cancelled when [interrupt] fires during the seed
    run. *)

val run :
  ?seed:int ->
  ?constraints:constraints ->
  ?max_moves:int ->
  ?time_limit_s:float ->
  ?coarse_target:int ->
  ?interrupt:(unit -> bool) ->
  ?pool:Chop_util.Pool.t ->
  config:Chop.Explore.Config.t ->
  Chop.Spec.t ->
  outcome
(** {!refine} over a fresh session on [spec], closed on return. *)
