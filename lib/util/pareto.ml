let dominates a b =
  if Array.length a <> Array.length b then
    invalid_arg "Pareto.dominates: objective length mismatch";
  let no_worse = ref true and strictly = ref false in
  Array.iteri
    (fun i ai ->
      if ai > b.(i) then no_worse := false;
      if ai < b.(i) then strictly := true)
    a;
  !no_worse && !strictly

let frontier ~objectives xs =
  let vals = List.map (fun x -> (x, objectives x)) xs in
  List.filter_map
    (fun (x, v) ->
      let dominated =
        List.exists (fun (_, v') -> dominates v' v) vals
      in
      if dominated then None else Some x)
    vals

let frontier_count ~objectives xs = List.length (frontier ~objectives xs)

let reduce ~objectives xs =
  let arr = Array.of_list xs in
  let objs = Array.map objectives arr in
  let n = Array.length arr in
  let dropped = ref 0 in
  let kept = ref [] in
  for i = n - 1 downto 0 do
    let dead = ref false in
    for j = 0 to n - 1 do
      if (not !dead) && j <> i then
        if dominates objs.(j) objs.(i) then dead := true
        else if j < i && objs.(j) = objs.(i) then dead := true
    done;
    if !dead then incr dropped else kept := arr.(i) :: !kept
  done;
  (!kept, !dropped)
