(* A persistent fixed-size worker pool over OCaml 5 domains.

   Helper domains are spawned once at [create] and parked on a condition
   variable between fork-join batches, so repeated [run] calls (the
   exploration engine issues one per prediction batch and one per search)
   pay the domain-spawn cost exactly once per pool instead of once per
   call.  Work is handed out in contiguous index chunks of
   [max 1 (n / (8 * jobs))] tasks drawn from a single atomic cursor:
   large enough to keep cursor contention negligible, small enough to
   balance uneven task costs. *)

type run_stats = {
  worker_busy : float array;
  chunk_count : int;
}

(* One fork-join batch.  [job i] runs task [i] and stores its result (or
   exception) — it never raises, so a task failure can never kill a
   worker domain.  Each participant defers its contribution to [finished]
   until after it has written its [busy] slot; the caller only reads the
   batch's side arrays once [finished] reaches [n], so those writes are
   published by the final atomic add (participants that ran zero tasks
   never write at all). *)
type batch = {
  job : int -> unit;
  n : int;
  chunk : int;
  cursor : int Atomic.t;
  finished : int Atomic.t;
  chunks_taken : int Atomic.t;
  busy : float array;  (* per-participant busy seconds; slot 0 = caller *)
}

type t = {
  size : int;  (* requested parallelism, as reported by [jobs] *)
  helpers : int;  (* helper domains actually spawned; see [create] *)
  lock : Mutex.t;
  submit : Mutex.t;
      (* held for a whole batch by the submitting thread: the batch slot
         below is single-occupancy, so concurrent submitters (server
         request threads sharing one pool) must not overlap.  Taken with
         [try_lock]; a loser runs its batch inline instead of blocking,
         which also keeps nested submissions from a worker domain
         deadlock-free. *)
  work_ready : Condition.t;  (* a new batch was published, or shutdown *)
  work_done : Condition.t;  (* the current batch may be complete *)
  mutable batch : batch option;
  mutable generation : int;  (* bumped when a batch is published *)
  stopped : bool Atomic.t;
  mutable workers : unit Domain.t list;  (* helpers still to be joined *)
}

let jobs t = t.size

let participate b ~slot =
  let t0 = Unix.gettimeofday () in
  let completed = ref 0 in
  let running = ref true in
  while !running do
    let lo = Atomic.fetch_and_add b.cursor b.chunk in
    if lo >= b.n then running := false
    else begin
      ignore (Atomic.fetch_and_add b.chunks_taken 1);
      let hi = min b.n (lo + b.chunk) in
      for i = lo to hi - 1 do
        b.job i
      done;
      completed := !completed + (hi - lo)
    end
  done;
  if !completed > 0 then begin
    b.busy.(slot) <- Unix.gettimeofday () -. t0;
    ignore (Atomic.fetch_and_add b.finished !completed)
  end

let worker_main t ~slot =
  let last_gen = ref 0 in
  Mutex.lock t.lock;
  let rec loop () =
    if Atomic.get t.stopped then Mutex.unlock t.lock
    else if t.generation = !last_gen then begin
      Condition.wait t.work_ready t.lock;
      loop ()
    end
    else begin
      last_gen := t.generation;
      match t.batch with
      | None -> loop ()
      | Some b ->
          Mutex.unlock t.lock;
          participate b ~slot;
          Mutex.lock t.lock;
          if Atomic.get b.finished >= b.n then Condition.broadcast t.work_done;
          loop ()
    end
  in
  loop ()

(* The backstop for pools that are dropped without [shutdown]: ask the
   workers to exit, without taking the pool lock (a finaliser can run on
   a domain that holds it) and without joining (a finaliser must not
   block).  The broadcast-without-mutex can lose a wakeup in a rare race,
   which merely leaves the domain parked — no worse than no backstop. *)
let release t =
  Atomic.set t.stopped true;
  Condition.broadcast t.work_ready

let make_pool ~jobs ~helpers =
  let t =
    {
      size = jobs;
      helpers;
      lock = Mutex.create ();
      submit = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      batch = None;
      generation = 0;
      stopped = Atomic.make false;
      workers = [];
    }
  in
  if helpers > 0 then begin
    t.workers <-
      List.init helpers (fun i ->
          Domain.spawn (fun () -> worker_main t ~slot:(i + 1)));
    Gc.finalise release t
  end;
  t

let sequential = make_pool ~jobs:1 ~helpers:0

let create ?(oversubscribe = false) ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  (* never spawn more domains than the host has cores unless explicitly
     asked to: OCaml 5 minor collections are stop-the-world barriers
     across every running domain, so oversubscribed domains multiply
     wall time instead of hiding latency *)
  let parallelism =
    if oversubscribe then jobs
    else min jobs (Domain.recommended_domain_count ())
  in
  make_pool ~jobs ~helpers:(parallelism - 1)

let shutdown t =
  if t.size > 1 then begin
    Mutex.lock t.lock;
    Atomic.set t.stopped true;
    Condition.broadcast t.work_ready;
    let ws = t.workers in
    t.workers <- [];
    Mutex.unlock t.lock;
    List.iter Domain.join ws
  end

let warned_bad_jobs = Atomic.make false

let default_jobs () =
  match Sys.getenv_opt "CHOP_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          let cores = Domain.recommended_domain_count () in
          if not (Atomic.exchange warned_bad_jobs true) then
            Printf.eprintf
              "chop: ignoring malformed CHOP_JOBS=%S (expected a positive \
               integer); using %d job(s)\n\
               %!"
              s cores;
          cores)
  | None -> Domain.recommended_domain_count ()

let run_inline tasks =
  let t0 = Unix.gettimeofday () in
  let results = Array.map (fun task -> task ()) tasks in
  let stats =
    {
      worker_busy = [| Unix.gettimeofday () -. t0 |];
      chunk_count = (if Array.length tasks = 0 then 0 else 1);
    }
  in
  (results, stats)

let collect results =
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error (exn, bt)) -> Printexc.raise_with_backtrace exn bt
      | None -> assert false (* the cursor visited every index *))
    results

let run_timed t tasks =
  if t.size > 1 && Atomic.get t.stopped then
    invalid_arg "Pool.run: pool is shut down";
  let n = Array.length tasks in
  let participants = t.helpers + 1 in
  if participants = 1 || n <= 1 then run_inline tasks
  else if not (Mutex.try_lock t.submit) then
    (* another thread (or an enclosing batch on this very pool) already
       owns the helpers; degrade to inline execution rather than block —
       correct either way, and deadlock-free for nested submissions *)
    run_inline tasks
  else
    Fun.protect ~finally:(fun () -> Mutex.unlock t.submit) @@ fun () ->
    let results = Array.make n None in
    let job i =
      let r =
        try Ok (tasks.(i) ())
        with exn -> Error (exn, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r
    in
    let b =
      {
        job;
        n;
        chunk = max 1 (n / (8 * participants));
        cursor = Atomic.make 0;
        finished = Atomic.make 0;
        chunks_taken = Atomic.make 0;
        busy = Array.make participants 0.;
      }
    in
    let published = Some b in
    Mutex.lock t.lock;
    t.batch <- published;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    participate b ~slot:0;
    Mutex.lock t.lock;
    while Atomic.get b.finished < b.n do
      Condition.wait t.work_done t.lock
    done;
    t.batch <- None;
    Mutex.unlock t.lock;
    ( collect results,
      { worker_busy = b.busy; chunk_count = Atomic.get b.chunks_taken } )

let run t tasks = fst (run_timed t tasks)
let map_array t f xs = run t (Array.map (fun x () -> f x) xs)
let map_list t f xs = Array.to_list (map_array t f (Array.of_list xs))
