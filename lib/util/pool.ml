type t = { size : int }

let sequential = { size = 1 }

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  { size = jobs }

let jobs t = t.size

let default_jobs () =
  match Sys.getenv_opt "CHOP_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let run_inline tasks = Array.map (fun task -> task ()) tasks

let run t tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else if t.size = 1 || n = 1 then run_inline tasks
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          let r =
            try Ok (tasks.(i) ())
            with exn -> Error (exn, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let helpers = min (t.size - 1) (n - 1) in
    let domains = Array.init helpers (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (exn, bt)) -> Printexc.raise_with_backtrace exn bt
        | None -> assert false (* the cursor visited every index *))
      results
  end

let map_array t f xs = run t (Array.map (fun x () -> f x) xs)
let map_list t f xs = Array.to_list (map_array t f (Array.of_list xs))
