(** Pareto-domination pruning.

    CHOP discards "inferior" predicted designs: designs dominated on every
    objective by some other design.  Objectives are minimized. *)

val dominates : float array -> float array -> bool
(** [dominates a b] holds when [a] is no worse than [b] on every objective
    and strictly better on at least one.  @raise Invalid_argument on length
    mismatch. *)

val frontier : objectives:('a -> float array) -> 'a list -> 'a list
(** [frontier ~objectives xs] keeps the non-dominated elements of [xs],
    preserving their original order.  When two elements have identical
    objective vectors, both are kept. *)

val frontier_count : objectives:('a -> float array) -> 'a list -> int
(** Number of elements on the frontier (without building the list twice). *)

val reduce : objectives:('a -> float array) -> 'a list -> 'a list * int
(** [reduce ~objectives xs] keeps the non-dominated elements of [xs] in
    their original order, like {!frontier}, but additionally collapses
    elements with identical objective vectors to the first occurrence.
    Returns the kept list and the number of elements dropped. *)
