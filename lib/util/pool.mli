(** A small fixed-size fork-join pool built on OCaml 5 domains.

    The pool is a lightweight description of a parallelism budget: tasks are
    executed by freshly spawned worker domains on each fork-join call, so a
    pool value can be stored in long-lived session state without pinning OS
    threads.  Work is distributed with an atomic cursor over a task array and
    results are stored back by index, so {!run}, {!map_array} and {!map_list}
    always return results in task order regardless of which domain ran which
    task — callers get deterministic output for deterministic tasks.

    A pool with [jobs = 1] (see {!sequential}) executes everything inline on
    the calling domain with no spawning at all. *)

type t

val sequential : t
(** The single-job pool: every call runs inline on the caller's domain. *)

val create : jobs:int -> t
(** A pool allowed to use at most [jobs] domains (including the caller's).
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int
(** The parallelism budget the pool was created with. *)

val default_jobs : unit -> int
(** The [CHOP_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val run : t -> (unit -> 'a) array -> 'a array
(** [run t tasks] executes every task and returns their results in task
    order.  At most [jobs t] domains run concurrently (helper domains are
    spawned only when both the pool and the task array allow more than one).
    If a task raises, the exception of the lowest-indexed failing task is
    re-raised on the caller's domain after all domains have joined. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f xs] is [Array.map f xs] evaluated on the pool. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list t f xs] is [List.map f xs] evaluated on the pool. *)
