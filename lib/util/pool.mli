(** A persistent fixed-size worker pool built on OCaml 5 domains.

    Worker domains are spawned once at {!create} and parked on a condition
    variable between fork-join calls, so a pool stored in long-lived
    session state (the exploration engine) pays the domain-spawn cost once
    instead of on every batch.  Work is distributed in contiguous index
    chunks of [max 1 (n / (8 * jobs))] tasks drawn from a single atomic
    cursor — coarse enough to keep cursor contention negligible, fine
    enough to balance uneven task costs — and results are stored back by
    index, so {!run}, {!map_array} and {!map_list} always return results
    in task order regardless of which domain ran which chunk: callers get
    deterministic output for deterministic tasks.

    A pool with [jobs = 1] (see {!sequential}) executes everything inline
    on the calling domain with no spawning at all.

    Lifecycle: call {!shutdown} when done with a pool (idempotent; joins
    the worker domains).  Pools dropped without shutdown are caught by a
    [Gc.finalise] backstop that asks the parked workers to exit, so
    pre-lifecycle callers don't leak running domains.

    One pool can be shared by several submitting threads (the serving
    layer runs every request engine over a single pool): the helper
    domains serve one batch at a time, and a submitter that finds them
    busy — including a nested submission from inside a task — executes
    its batch inline on its own thread instead of blocking.  Results are
    identical either way; only the reported parallelism differs. *)

type t

(** Per-batch execution statistics, as returned by {!run_timed}. *)
type run_stats = {
  worker_busy : float array;
      (** seconds each participant spent executing tasks; index 0 is the
          calling domain, indices 1.. the helper workers.  A participant
          that executed no task reports 0. *)
  chunk_count : int;  (** number of index chunks handed out *)
}

val sequential : t
(** The single-job pool: every call runs inline on the caller's domain. *)

val create : ?oversubscribe:bool -> jobs:int -> unit -> t
(** A pool of at most [jobs] concurrent domains (including the caller's).
    Helper domains are spawned immediately and parked until work arrives;
    their count is [min jobs (Domain.recommended_domain_count ()) - 1]:
    OCaml 5 minor collections are stop-the-world barriers across every
    running domain, so spawning more domains than the host has cores
    multiplies wall time rather than hiding latency — a [--jobs 4] run on
    a single-core host executes inline, within noise of [--jobs 1].
    [oversubscribe] (default [false]) disables the clamp and spawns
    [jobs - 1] helpers unconditionally (used by the pool's own stress
    tests; rarely what production callers want).
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int
(** The parallelism budget the pool was created with — the requested
    [jobs], even when the core-count clamp spawned fewer helpers. *)

val shutdown : t -> unit
(** Wakes the parked helper domains, asks them to exit and joins them.
    Idempotent; a no-op on single-job pools.  Subsequent {!run} calls on a
    shut-down multi-job pool raise [Invalid_argument]. *)

val default_jobs : unit -> int
(** The [CHOP_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()].  A malformed
    [CHOP_JOBS] value falls back to the core count and warns once on
    stderr. *)

val run : t -> (unit -> 'a) array -> 'a array
(** [run t tasks] executes every task and returns their results in task
    order.  At most [jobs t] domains run concurrently.  If a task raises,
    the batch still drains completely (every task executes) and then the
    exception of the lowest-indexed failing task is re-raised on the
    caller's domain with its backtrace.
    @raise Invalid_argument when the pool has been {!shutdown}. *)

val run_timed : t -> (unit -> 'a) array -> 'a array * run_stats
(** {!run} plus per-participant busy times and the chunk count — the raw
    material of the engine's timing breakdown. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f xs] is [Array.map f xs] evaluated on the pool. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list t f xs] is [List.map f xs] evaluated on the pool. *)
