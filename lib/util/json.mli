(** A minimal JSON codec: values, a recursive-descent parser and a compact
    printer, with no dependencies outside the stdlib.

    Written for the serving layer's newline-delimited request protocol, so
    the design goals are: total round-tripping ([parse (print v)] yields
    [v] for every printable value), byte-level predictability (objects
    print their fields in the order given; no whitespace is emitted), and
    small, positional error messages on malformed input.

    Numbers keep the integer/float distinction: a literal without a
    fraction or exponent parses as {!Int}; everything else parses as
    {!Float}.  Floats print with the shortest decimal representation that
    reads back to the identical bit pattern, suffixed to stay a float on
    re-parse, so the distinction survives a round trip.  Non-finite floats
    have no JSON representation — {!print} raises on them.

    Strings are treated as byte sequences: bytes outside the ASCII control
    range pass through the printer untouched (a UTF-8 string stays UTF-8),
    control bytes are escaped, and [\uXXXX] escapes (including surrogate
    pairs) decode to UTF-8 on parse. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Array of t list
  | Object of (string * t) list
      (** fields in printing order; duplicate names are preserved by the
          parser (lookup helpers return the first) *)

(** {1 Printing} *)

val print : t -> string
(** Compact rendering — no spaces, no newlines.
    @raise Invalid_argument on a non-finite {!Float}. *)

val print_hum : t -> string
(** Two-space-indented rendering, for logs and files meant for people.
    @raise Invalid_argument on a non-finite {!Float}. *)

(** {1 Parsing} *)

val parse : string -> (t, string) result
(** Parses one JSON value spanning the whole input (surrounding
    whitespace allowed).  Errors carry the byte offset:
    ["offset 12: expected ':' after object key"]. *)

val parse_exn : string -> t
(** @raise Failure with the {!parse} error message. *)

(** {1 Access helpers}

    Total accessors for decoding requests: each returns [None] on a
    shape mismatch instead of raising. *)

val member : string -> t -> t option
(** First field of that name, when the value is an {!Object}. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option

val to_int_opt : t -> int option
(** Accepts {!Int}, and any {!Float} that is exactly integral. *)

val to_float_opt : t -> float option
(** Accepts {!Float} and {!Int}. *)

val to_list_opt : t -> t list option
