type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Array of t list
  | Object of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

(* Shortest decimal form that reads back to the identical float.  %.17g
   always round-trips a binary64; try the two shorter precisions first so
   common values print as "0.1" rather than "0.1000000000000000056". *)
let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Json.print: non-finite floats have no JSON representation";
  let shortest =
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f
  in
  (* keep the value a float on re-parse: "1" would read back as Int 1 *)
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') shortest then
    shortest
  else shortest ^ ".0"

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec print_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | Array vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          print_to buf v)
        vs;
      Buffer.add_char buf ']'
  | Object fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          print_to buf v)
        fields;
      Buffer.add_char buf '}'

let print v =
  let buf = Buffer.create 256 in
  print_to buf v;
  Buffer.contents buf

let print_hum v =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Int _ | Float _ | String _) as v -> print_to buf v
    | Array [] -> Buffer.add_string buf "[]"
    | Array vs ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            go (depth + 1) v)
          vs;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf ']'
    | Object [] -> Buffer.add_string buf "{}"
    | Object fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            escape_string buf k;
            Buffer.add_string buf ": ";
            go (depth + 1) v)
          fields;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_error of int * string

let parse_exn_raw input =
  let n = String.length input in
  let pos = ref 0 in
  let error fmt =
    Printf.ksprintf (fun msg -> raise (Parse_error (!pos, msg))) fmt
  in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> error "expected '%c', found '%c'" c d
    | None -> error "expected '%c', found end of input" c
  in
  let literal word value =
    if !pos + String.length word <= n
       && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error "invalid literal"
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let c = input.[!pos] in
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> error "invalid hex digit '%c' in \\u escape" c
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string";
      let c = input.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then error "unterminated escape";
          let e = input.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              let cp = hex4 () in
              if cp >= 0xD800 && cp <= 0xDBFF then begin
                (* high surrogate: require the low half *)
                if
                  !pos + 1 < n && input.[!pos] = '\\' && input.[!pos + 1] = 'u'
                then begin
                  advance ();
                  advance ();
                  let lo = hex4 () in
                  if lo < 0xDC00 || lo > 0xDFFF then
                    error "invalid low surrogate \\u%04x" lo;
                  add_utf8 buf
                    (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                end
                else error "unpaired high surrogate \\u%04x" cp
              end
              else if cp >= 0xDC00 && cp <= 0xDFFF then
                error "unpaired low surrogate \\u%04x" cp
              else add_utf8 buf cp
          | c -> error "invalid escape '\\%c'" c);
          loop ())
      | c when Char.code c < 0x20 ->
          error "unescaped control byte 0x%02x in string" (Char.code c)
      | c ->
          Buffer.add_char buf c;
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      while
        !pos < n && match input.[!pos] with '0' .. '9' -> true | _ -> false
      do
        saw := true;
        advance ()
      done;
      if not !saw then error "expected a digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub input start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text) (* beyond int range *)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "expected a value, found end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Object []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            (match peek () with
            | Some ':' -> advance ()
            | _ -> error "expected ':' after object key");
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> error "expected ',' or '}' in object"
          in
          fields_loop ();
          Object (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Array []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> error "expected ',' or ']' in array"
          in
          items_loop ();
          Array (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error "unexpected character '%c'" c
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing input after value";
  v

let parse input =
  match parse_exn_raw input with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "offset %d: %s" pos msg)

let parse_exn input =
  match parse input with Ok v -> v | Error msg -> failwith msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member name = function
  | Object fields -> List.assoc_opt name fields
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 52. ->
      Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_list_opt = function Array vs -> Some vs | _ -> None
