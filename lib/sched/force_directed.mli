(** Time-constrained force-directed scheduling (Paulin and Knight [9],
    cited by the paper as one of the behavioral-synthesis methods whose
    results BAD predicts).

    Given a target schedule length, force-directed scheduling balances the
    expected concurrency of each functional class across control steps: at
    each iteration the (operation, step) assignment with the lowest force —
    the smallest increase in the class's distribution graph — is fixed,
    and mobilities are propagated.  The result minimizes the peak number of
    units needed rather than the latency. *)

val run :
  ?latency:(Chop_dfg.Graph.node -> int) ->
  length:int ->
  Chop_dfg.Graph.t ->
  Schedule.t
(** Schedules every computational node within [length] steps; the returned
    allocation is the per-class peak concurrency actually used (so
    {!Schedule.check} holds).  [latency] defaults to one step per node.
    Operations whose slack window collapses to a single step (common at
    the minimal length, where every op on the critical path has zero
    mobility) are fixed at their ASAP step directly — the degenerate case
    never fails.
    @raise Invalid_argument when [length] is below the critical path. *)

val min_units :
  ?latency:(Chop_dfg.Graph.node -> int) ->
  length:int ->
  Chop_dfg.Graph.t ->
  Schedule.alloc
(** The allocation implied by {!run}: the fewest units per class that
    force-directed scheduling achieves at the given length. *)
