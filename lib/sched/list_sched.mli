(** Resource-constrained list scheduling.

    Critical-path list scheduling: ready operations are issued in order of
    decreasing urgency (longest dependence chain to any sink, the measure of
    Sehwa [8]), limited by the functional-unit allocation.  Functional units
    are not internally pipelined: a multi-cycle operation occupies its unit
    for its whole latency. *)

exception No_progress of { graph : string; ops : int; bound : int }
(** The scheduler's stall guard tripped: more than [bound] loop iterations
    without retiring every operation.  [bound] scales with
    [ops x max latency], so this cannot fire on a well-formed graph of any
    size — it indicates an internal invariant violation.  [graph] is the
    (sub)graph name, which carries the partition label for partition
    subgraphs, so servers can report which partition stalled. *)

val run :
  latency:(Chop_dfg.Graph.node -> int) ->
  alloc:Schedule.alloc ->
  Chop_dfg.Graph.t ->
  Schedule.t
(** @raise Invalid_argument when the allocation misses a class the graph
    needs, gives a non-positive count, or [latency] returns < 1 for a
    computational node.
    @raise No_progress when the internal stall guard trips (never on a
    well-formed graph). *)

val minimal_alloc : Chop_dfg.Graph.t -> Schedule.alloc
(** One unit per functional class used by the graph — the most serial
    allocation. *)

val maximal_useful_alloc :
  ?latency:(Chop_dfg.Graph.node -> int) -> Chop_dfg.Graph.t -> Schedule.alloc
(** Per class, the peak number of simultaneously-ready operations in the
    ASAP schedule — allocating more units can never improve the schedule. *)
