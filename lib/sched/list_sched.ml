(* The scheduler is the innermost loop of BAD prediction: one [run] per
   candidate allocation per partition, thousands per exploration.  All
   per-node state lives in dense arrays indexed by node id (builder ids
   are dense 0..size-1), and the loop below allocates nothing: the ready
   set and the in-flight set are counted array segments, and the urgency
   ordering is an in-place stable insertion sort.

   The issue order is observable through [Schedule.t.starts], so every
   ordering decision replicates the original list-based semantics exactly:

   - the ready set behaves as a stack (newly ready operations are
     considered first among equals).  It is stored reversed — logical
     head at index [ready_n - 1] — so a logical prepend is an append;
   - ties in urgency preserve that logical order (stable sort);
   - retirements are processed newest-issued-first, matching the order a
     prepend-built in-flight list yields. *)

exception No_progress of { graph : string; ops : int; bound : int }

let () =
  Printexc.register_printer (function
    | No_progress { graph; ops; bound } ->
        Some
          (Printf.sprintf
             "List_sched.No_progress(graph %S, %d ops, %d iterations)" graph
             ops bound)
    | _ -> None)

let run ~latency ~alloc g =
  Schedule.validate_alloc alloc;
  let ops = Chop_dfg.Graph.operations g in
  List.iter
    (fun n ->
      let cls = Chop_dfg.Op.functional_class n.Chop_dfg.Graph.op in
      if Schedule.alloc_get alloc cls < 1 then
        invalid_arg (Printf.sprintf "List_sched.run: no units allocated for %s" cls);
      if latency n < 1 then
        invalid_arg
          (Printf.sprintf "List_sched.run: latency of %s must be >= 1"
             n.Chop_dfg.Graph.name))
    ops;
  let n = Chop_dfg.Graph.size g in
  let op_count = List.length ops in
  let classes = Array.of_list (List.map fst alloc) in
  let free = Array.of_list (List.map snd alloc) in
  let class_index cls =
    let rec go i =
      if i >= Array.length classes then
        invalid_arg ("List_sched.run: no units allocated for " ^ cls)
      else if String.equal classes.(i) cls then i
      else go (i + 1)
    in
    go 0
  in
  (* per-node state; [cls_idx]/[pending] stay -1 on boundary nodes *)
  let lat = Array.make (max 1 n) 0 in
  let cls_idx = Array.make (max 1 n) (-1) in
  let pending = Array.make (max 1 n) (-1) in
  let urg = Array.make (max 1 n) 0 in
  List.iter
    (fun nd ->
      let id = nd.Chop_dfg.Graph.id in
      lat.(id) <- latency nd;
      cls_idx.(id) <- class_index (Chop_dfg.Op.functional_class nd.Chop_dfg.Graph.op);
      pending.(id) <-
        List.fold_left
          (fun acc p ->
            if
              Chop_dfg.Op.is_computational
                (Chop_dfg.Graph.node g p).Chop_dfg.Graph.op
            then acc + 1
            else acc)
          0
          (Chop_dfg.Graph.preds g id))
    ops;
  (* urgency: longest latency chain to any sink, inclusive (Sehwa's
     measure); a sweep over reverse topological order *)
  List.iter
    (fun nd ->
      let id = nd.Chop_dfg.Graph.id in
      let downstream =
        List.fold_left
          (fun best s -> max best urg.(s))
          0
          (Chop_dfg.Graph.succs g id)
      in
      urg.(id) <- lat.(id) + downstream)
    (List.rev (Chop_dfg.Graph.nodes g));
  (* ready stack, stored reversed: logical head = ready.(ready_n - 1) *)
  let ready = Array.make (max 1 n) 0 in
  let ready_n = ref 0 in
  let push_ready id =
    ready.(!ready_n) <- id;
    incr ready_n
  in
  List.iter
    (fun nd -> if pending.(nd.Chop_dfg.Graph.id) = 0 then push_ready nd.Chop_dfg.Graph.id)
    ops;
  let order = Array.make (max 1 n) 0 in
  (* operations in flight: finish step + id, newest at the highest index *)
  let fin_step = Array.make (max 1 op_count) 0 in
  let fin_id = Array.make (max 1 op_count) 0 in
  let fin_n = ref 0 in
  let start_id = Array.make (max 1 op_count) 0 in
  let start_at = Array.make (max 1 op_count) 0 in
  let start_n = ref 0 in
  let n_left = ref op_count in
  let step = ref 0 in
  (* Each iteration either issues an operation or fast-forwards [step] to
     the next retirement, so a terminating run takes at most on the order
     of the fully serialized schedule length (op_count x max latency)
     iterations.  The guard is scaled to that bound — a fixed constant
     both under-protects huge graphs and fires spuriously on them — and
     raises a typed exception naming the (sub)graph, which carries the
     partition label for induced partition subgraphs. *)
  let max_lat = Array.fold_left max 1 lat in
  let bound = 64 + (4 * op_count * max_lat) in
  let guard = ref 0 in
  while !n_left > 0 do
    incr guard;
    if !guard > bound then
      raise (No_progress { graph = Chop_dfg.Graph.name g; ops = op_count; bound });
    (* retire, newest-issued-first *)
    if !fin_n > 0 then begin
      for i = !fin_n - 1 downto 0 do
        if fin_step.(i) <= !step then begin
          let id = fin_id.(i) in
          free.(cls_idx.(id)) <- free.(cls_idx.(id)) + 1;
          List.iter
            (fun s ->
              if pending.(s) >= 0 then begin
                pending.(s) <- pending.(s) - 1;
                if pending.(s) = 0 then push_ready s
              end)
            (Chop_dfg.Graph.succs g id)
        end
      done;
      (* compact the survivors in place, preserving their order *)
      let w = ref 0 in
      for i = 0 to !fin_n - 1 do
        if fin_step.(i) > !step then begin
          fin_step.(!w) <- fin_step.(i);
          fin_id.(!w) <- fin_id.(i);
          incr w
        end
      done;
      fin_n := !w
    end;
    (* issue by decreasing urgency; ties keep the ready stack's order *)
    let cnt = !ready_n in
    for i = 0 to cnt - 1 do
      order.(i) <- ready.(cnt - 1 - i)
    done;
    for i = 1 to cnt - 1 do
      let v = order.(i) in
      let u = urg.(v) in
      let j = ref (i - 1) in
      while !j >= 0 && urg.(order.(!j)) < u do
        order.(!j + 1) <- order.(!j);
        decr j
      done;
      order.(!j + 1) <- v
    done;
    ready_n := 0;
    for i = 0 to cnt - 1 do
      let id = order.(i) in
      let c = cls_idx.(id) in
      if free.(c) > 0 then begin
        free.(c) <- free.(c) - 1;
        start_id.(!start_n) <- id;
        start_at.(!start_n) <- !step;
        incr start_n;
        fin_step.(!fin_n) <- !step + lat.(id);
        fin_id.(!fin_n) <- id;
        incr fin_n;
        decr n_left
      end
      else push_ready id
    done;
    incr step;
    (* fast-forward to the next retirement when nothing can issue *)
    if (!ready_n > 0 || !n_left > 0) && !fin_n > 0 then begin
      let next = ref max_int in
      for i = 0 to !fin_n - 1 do
        if fin_step.(i) < !next then next := fin_step.(i)
      done;
      if !next > !step then step := !next
    end
  done;
  let starts = List.init !start_n (fun i -> (start_id.(i), start_at.(i))) in
  let latencies = List.map (fun (id, _) -> (id, lat.(id))) starts in
  let length =
    List.fold_left (fun acc (id, st) -> max acc (st + lat.(id))) 0 starts
  in
  { Schedule.graph = g; alloc; starts; latencies; length }

let minimal_alloc g =
  Chop_dfg.Graph.op_profile g |> List.map (fun (cls, _) -> (cls, 1))

let maximal_useful_alloc ?latency g =
  let profile =
    match latency with
    | Some latency -> Chop_dfg.Analysis.max_width_profile ~latency g
    | None -> Chop_dfg.Analysis.max_width_profile g
  in
  profile
