module IntMap = Map.Make (Int)

let default_latency _ = 1

(* Mobility window per computational node under partial fixing:
   [asap, alap] recomputed from fixed starts. *)
let windows g ~latency ~length fixed =
  let lat id =
    let n = Chop_dfg.Graph.node g id in
    if Chop_dfg.Op.is_computational n.Chop_dfg.Graph.op then
      max 1 (latency n)
    else 0
  in
  let order = Chop_dfg.Analysis.topological_order g in
  let asap =
    List.fold_left
      (fun acc id ->
        let lower =
          List.fold_left
            (fun lo p -> max lo (IntMap.find p acc + lat p))
            0 (Chop_dfg.Graph.preds g id)
        in
        let lower =
          match IntMap.find_opt id fixed with Some s -> s | None -> lower
        in
        IntMap.add id lower acc)
      IntMap.empty order
  in
  let alap =
    List.fold_left
      (fun acc id ->
        let upper =
          List.fold_left
            (fun hi s -> min hi (IntMap.find s acc))
            length (Chop_dfg.Graph.succs g id)
        in
        let start = upper - lat id in
        let start =
          match IntMap.find_opt id fixed with Some s -> min s start | None -> start
        in
        IntMap.add id start acc)
      IntMap.empty
      (List.rev order)
  in
  (asap, alap)

(* Distribution graphs: expected concurrency per (class, step), assuming a
   uniform distribution of each unfixed operation over its window. *)
let distribution g ~latency ~length (asap, alap) =
  let dg = Hashtbl.create 16 in
  let bump cls step p =
    let key = (cls, step) in
    Hashtbl.replace dg key (p +. Option.value ~default:0. (Hashtbl.find_opt dg key))
  in
  List.iter
    (fun n ->
      let id = n.Chop_dfg.Graph.id in
      let cls = Chop_dfg.Op.functional_class n.Chop_dfg.Graph.op in
      let lat = max 1 (latency n) in
      let lo = IntMap.find id asap and hi = IntMap.find id alap in
      let hi = max lo hi in
      let p = 1. /. float_of_int (hi - lo + 1) in
      for start = lo to hi do
        for step = start to min (length - 1) (start + lat - 1) do
          bump cls step p
        done
      done)
    (Chop_dfg.Graph.operations g);
  dg

let run ?(latency = default_latency) ~length g =
  let cp = Chop_dfg.Analysis.critical_path ~latency g in
  if length < cp then
    invalid_arg
      (Printf.sprintf "Force_directed.run: length %d below critical path %d"
         length cp);
  let ops = Chop_dfg.Graph.operations g in
  let fixed = ref IntMap.empty in
  let lat n = max 1 (latency n) in
  let remaining = ref (List.map (fun n -> n.Chop_dfg.Graph.id) ops) in
  (* An operation whose slack window has collapsed ([alap <= asap], which
     happens under a tight length once neighbours are fixed) has exactly
     one legal start: its ASAP step.  Fixing it there is not a heuristic
     choice, and doing it eagerly keeps the force-selection loop below
     from ever facing a pass where every remaining window is degenerate —
     the state that used to trip the internal "no candidate" failure.
     The placement is identical to what force selection would pick
     (p = 1 at the single slot either way), so schedules are unchanged. *)
  let fix_at_asap asap ids =
    List.iter (fun id -> fixed := IntMap.add id (IntMap.find id asap) !fixed) ids
  in
  while !remaining <> [] do
    let asap, alap = windows g ~latency ~length !fixed in
    let zero_width, mobile =
      List.partition
        (fun id -> IntMap.find id alap <= IntMap.find id asap)
        !remaining
    in
    if zero_width <> [] then begin
      fix_at_asap asap zero_width;
      remaining := mobile
    end
    else begin
    let dg = distribution g ~latency ~length (asap, alap) in
    (* choose the (op, step) with minimal self force among ops with the
       smallest mobility window (ties broken by id for determinism) *)
    let best = ref None in
    List.iter
      (fun id ->
        let n = Chop_dfg.Graph.node g id in
        let cls = Chop_dfg.Op.functional_class n.Chop_dfg.Graph.op in
        let lo = IntMap.find id asap and hi = max (IntMap.find id asap) (IntMap.find id alap) in
        let window = float_of_int (hi - lo + 1) in
        let avg cls step =
          Option.value ~default:0. (Hashtbl.find_opt dg (cls, step))
        in
        for start = lo to hi do
          (* self force: deviation of this placement's distribution from
             the average over the window *)
          let force = ref 0. in
          for step = start to start + lat n - 1 do
            let d = avg cls (min step (length - 1)) in
            (* placing here adds (1 - 1/window) at [step] *)
            force := !force +. (d *. (1. -. (1. /. window)))
          done;
          (* subtract the expected contribution elsewhere in the window *)
          for other = lo to hi do
            if other <> start then
              for step = other to other + lat n - 1 do
                let d = avg cls (min step (length - 1)) in
                force := !force -. (d /. window)
              done
          done;
          match !best with
          | Some (f, _, _) when f <= !force -> ()
          | _ -> best := Some (!force, id, start)
        done)
      !remaining;
    match !best with
    | None ->
        (* defensive: cannot happen now that degenerate windows are fixed
           eagerly above, but if selection ever yields nothing, an ASAP
           placement is always legal — never fail the whole schedule *)
        fix_at_asap asap !remaining;
        remaining := []
    | Some (_, id, start) ->
        fixed := IntMap.add id start !fixed;
        remaining := List.filter (fun x -> x <> id) !remaining
    end
  done;
  let starts =
    List.map (fun n -> (n.Chop_dfg.Graph.id, IntMap.find n.Chop_dfg.Graph.id !fixed)) ops
  in
  let latencies = List.map (fun n -> (n.Chop_dfg.Graph.id, lat n)) ops in
  (* implied allocation: per-class peak concurrency *)
  let peak = Hashtbl.create 8 in
  let usage = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let id = n.Chop_dfg.Graph.id in
      let cls = Chop_dfg.Op.functional_class n.Chop_dfg.Graph.op in
      let s = List.assoc id starts in
      for step = s to s + lat n - 1 do
        let key = (cls, step) in
        let u = 1 + Option.value ~default:0 (Hashtbl.find_opt usage key) in
        Hashtbl.replace usage key u;
        Hashtbl.replace peak cls
          (max u (Option.value ~default:0 (Hashtbl.find_opt peak cls)))
      done)
    ops;
  let alloc =
    Hashtbl.fold (fun cls n acc -> (cls, n) :: acc) peak []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let real_length =
    List.fold_left
      (fun acc (id, s) -> max acc (s + List.assoc id latencies))
      0 starts
  in
  {
    Schedule.graph = g;
    alloc;
    starts;
    latencies;
    length = max length real_length;
  }

let min_units ?(latency = default_latency) ~length g =
  (run ~latency ~length g).Schedule.alloc
