let run ?(keep_all = false) ctx per_partition =
  let spec = Integration.spec_of ctx in
  let clocks = spec.Spec.clocks in
  let crit = spec.Spec.criteria in
  let t0 = Sys.time () in
  let order = Array.of_list per_partition in
  let n = Array.length order in
  (* admissible per-chip area bound: the sum of area lower bounds of the
     chip's partitions can never exceed the raw project area *)
  let chip_of label =
    (Spec.chip_of_partition spec label).Spec.chip_name
  in
  let min_area_of =
    Array.map
      (fun (_, preds) ->
        List.fold_left
          (fun acc p -> Float.min acc Chop_util.Triplet.(p.Chop_bad.Prediction.area.low))
          infinity preds)
      order
  in
  let chip_capacity =
    List.map
      (fun ci -> (ci.Spec.chip_name, Chop_tech.Chip.project_area ci.Spec.package))
      spec.Spec.chips
  in
  let trials = ref 0 and integrations = ref 0 in
  let feasible = ref [] and explored = ref [] in
  let admit system =
    if keep_all then explored := system :: !explored;
    if Integration.feasible system then begin
      let objs = Integration.objectives system in
      let dominated =
        List.exists
          (fun s -> Chop_util.Pareto.dominates (Integration.objectives s) objs)
          !feasible
      in
      if not dominated then
        feasible :=
          system
          :: List.filter
               (fun s ->
                 not (Chop_util.Pareto.dominates objs (Integration.objectives s)))
               !feasible
    end
  in
  (* chip -> area committed by chosen predictions plus lower bounds of the
     chip's still-unchosen partitions *)
  let unchosen_low = Hashtbl.create 8 in
  List.iter (fun (c, _) -> Hashtbl.replace unchosen_low c 0.) chip_capacity;
  Array.iteri
    (fun i (label, _) ->
      let c = chip_of label in
      Hashtbl.replace unchosen_low c (Hashtbl.find unchosen_low c +. min_area_of.(i)))
    order;
  let committed = Hashtbl.create 8 in
  List.iter (fun (c, _) -> Hashtbl.replace committed c 0.) chip_capacity;
  let rec dfs i picked ~ii_bound ~clock_bound =
    if i = n then begin
      incr trials;
      incr integrations;
      admit (Integration.integrate ctx (List.rev picked))
    end
    else begin
      let label, preds = order.(i) in
      let chip = chip_of label in
      (* this partition leaves the unchosen pool for the bound *)
      Hashtbl.replace unchosen_low chip
        (Hashtbl.find unchosen_low chip -. min_area_of.(i));
      List.iter
        (fun p ->
          let ii = max ii_bound (Chop_bad.Prediction.ii_main clocks p) in
          let clock =
            Float.max clock_bound p.Chop_bad.Prediction.timing.Chop_bad.Prediction.clock_main
          in
          let perf_lb = float_of_int ii *. clock in
          let area_low = Chop_util.Triplet.(p.Chop_bad.Prediction.area.low) in
          let chip_lb =
            Hashtbl.find committed chip +. area_low
            +. Hashtbl.find unchosen_low chip
          in
          let capacity = List.assoc chip chip_capacity in
          if perf_lb > crit.Chop_bad.Feasibility.perf_constraint then
            incr trials (* pruned: counts as a considered combination stem *)
          else if chip_lb > capacity then incr trials
          else begin
            Hashtbl.replace committed chip (Hashtbl.find committed chip +. area_low);
            dfs (i + 1) ((label, p) :: picked) ~ii_bound:ii ~clock_bound:clock;
            Hashtbl.replace committed chip (Hashtbl.find committed chip -. area_low)
          end)
        preds;
      Hashtbl.replace unchosen_low chip
        (Hashtbl.find unchosen_low chip +. min_area_of.(i))
    end
  in
  dfs 0 [] ~ii_bound:1 ~clock_bound:clocks.Chop_tech.Clocking.main;
  let stats =
    {
      Search.implementation_trials = !trials;
      integrations = !integrations;
      feasible_trials = List.length !feasible;
      cpu_seconds = Sys.time () -. t0;
    }
  in
  Search.finalize ~keep_all ~feasible:!feasible ~explored:!explored stats
