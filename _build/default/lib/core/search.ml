type stats = {
  implementation_trials : int;
  integrations : int;
  feasible_trials : int;
  cpu_seconds : float;
}

type outcome = {
  feasible : Integration.system list;
  explored : Integration.system list;
  stats : stats;
}

let empty_stats =
  { implementation_trials = 0; integrations = 0; feasible_trials = 0;
    cpu_seconds = 0. }

let to_csv systems =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "ii_main,clock_ns,perf_ns,delay_cycles,delay_likely_ns,area_likely,feasible\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%.1f,%.1f,%d,%.1f,%.1f,%b\n" s.Integration.ii_main
           s.Integration.clock s.Integration.perf_ns s.Integration.delay_cycles
           Chop_util.Triplet.(s.Integration.delay.likely)
           Chop_util.Triplet.((Integration.total_area s).likely)
           (Integration.feasible s)))
    systems;
  Buffer.contents buf

let finalize ~keep_all ~feasible ~explored stats =
  let non_inferior =
    Chop_util.Pareto.frontier ~objectives:Integration.objectives feasible
  in
  (* collapse distinct combinations that predict the same design point *)
  let non_inferior =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun s ->
        let key =
          ( s.Integration.ii_main,
            s.Integration.delay_cycles,
            int_of_float s.Integration.clock,
            int_of_float (Chop_util.Triplet.((Integration.total_area s).likely) /. 50.) )
        in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      non_inferior
  in
  let sorted =
    List.sort
      (fun a b ->
        match Float.compare a.Integration.perf_ns b.Integration.perf_ns with
        | 0 ->
            Float.compare
              Chop_util.Triplet.(a.Integration.delay.likely)
              Chop_util.Triplet.(b.Integration.delay.likely)
        | n -> n)
      non_inferior
  in
  { feasible = sorted; explored = (if keep_all then explored else []); stats }
