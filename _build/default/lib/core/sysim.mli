(** Multi-instance system simulation.

    CHOP's integration step *predicts* the initiation interval and system
    delay of the macro-pipeline (partitions + data-transfer tasks sharing
    pins and memory ports).  This simulator *executes* that pipeline: it
    injects a stream of problem instances, lets every task of every
    instance contend for the real resources — each task's own hardware
    (re-startable only at the task's initiation interval), the chips' data
    pins and the memory ports — and measures the achieved steady-state
    rate and first-instance latency.  The bench and tests use it to verify
    the integration predictions the way [chop_rtl] verifies BAD's. *)

type result = {
  instances : int;
  first_latency : int;  (** cycles until instance 0 completes *)
  makespan : int;  (** cycles until the last instance completes *)
  achieved_ii : float;
      (** steady-state initiation interval: completion spacing averaged
          over the simulated stream (equals [makespan - first_latency]
          divided by [instances - 1] for >= 2 instances) *)
  pin_stalls : int;
      (** task-starts delayed waiting for pins or ports, summed over the
          whole run *)
}

exception Unsimulatable of string

val simulate : Integration.context -> ?instances:int -> Integration.system -> result
(** Simulates [instances] (default 8) problem instances through the given
    (feasible) system.  @raise Unsimulatable when the system carries no
    task structure (an integration that failed before scheduling). *)

val throughput_consistent : ?tolerance:float -> Integration.system -> result -> bool
(** Does the simulated steady-state rate respect the predicted initiation
    interval within [tolerance] (default 0.10, i.e. 10% slack)?  The
    prediction is an upper bound on the rate, so the check is
    [achieved_ii <= predicted * (1 + tolerance)]. *)
