type result = {
  instances : int;
  first_latency : int;
  makespan : int;
  achieved_ii : float;
  pin_stalls : int;
}

exception Unsimulatable of string

(* the simulated task structure, instance-independent *)
type sim_task = {
  tname : string;
  duration : int;
  restart : int;  (** own-hardware initiation interval *)
  demands : (string * int) list;
  deps : string list;
}

let build_tasks ctx (system : Integration.system) =
  if system.Integration.dtms = [] && system.Integration.chip_reports = [] then
    raise (Unsimulatable "system has no task structure (failed integration)");
  let spec = Integration.spec_of ctx in
  let clocks = spec.Spec.clocks in
  let dt_tasks =
    List.map
      (fun (d : Integration.dtm) ->
        let t = d.Integration.task in
        let demands =
          if t.Transfer.cross_chip then
            List.map
              (fun c -> ("pins:" ^ c, d.Integration.bandwidth))
              (Transfer.chips_of t)
          else []
        in
        let deps =
          match t.Transfer.src with
          | Transfer.Partition_end l -> [ "pu_" ^ l ]
          | Transfer.World -> []
        in
        {
          tname = t.Transfer.dt_name;
          duration = d.Integration.transfer_main;
          restart = max 1 d.Integration.transfer_main;
          demands;
          deps;
        })
      system.Integration.dtms
  in
  let pu_tasks =
    List.map
      (fun (label, p) ->
        let deps =
          List.filter_map
            (fun (d : Integration.dtm) ->
              match d.Integration.task.Transfer.dst with
              | Transfer.Partition_end l when l = label ->
                  Some d.Integration.task.Transfer.dt_name
              | Transfer.Partition_end _ | Transfer.World -> None)
            system.Integration.dtms
        in
        let demands =
          List.filter_map
            (fun (block, peak) ->
              if peak <= 0 then None else Some ("mem:" ^ block, peak))
            p.Chop_bad.Prediction.mem_bandwidth
        in
        {
          tname = "pu_" ^ label;
          duration = Chop_bad.Prediction.latency_main clocks p;
          restart = max 1 (Chop_bad.Prediction.ii_main clocks p);
          demands;
          deps;
        })
      system.Integration.combination
  in
  let tasks = dt_tasks @ pu_tasks in
  let resources =
    List.map
      (fun ci ->
        ("pins:" ^ ci.Spec.chip_name, Integration.data_pins ctx ci.Spec.chip_name))
      spec.Spec.chips
    @ List.map
        (fun m ->
          ("mem:" ^ m.Chop_tech.Memory.mname, m.Chop_tech.Memory.ports))
        spec.Spec.memories
  in
  (tasks, resources)

(* Kahn order over the instance-internal dependency edges. *)
let topological tasks =
  let remaining = ref tasks and order = ref [] in
  let placed name = List.exists (fun t -> t.tname = name) !order in
  let guard = ref 0 in
  while !remaining <> [] do
    incr guard;
    if !guard > 10_000 then raise (Unsimulatable "cyclic task dependencies");
    let ready, rest =
      List.partition (fun t -> List.for_all placed t.deps) !remaining
    in
    if ready = [] then raise (Unsimulatable "cyclic task dependencies");
    order := !order @ ready;
    remaining := rest
  done;
  !order

let simulate ctx ?(instances = 8) system =
  if instances < 1 then invalid_arg "Sysim.simulate: instances < 1";
  let tasks, resources = build_tasks ctx system in
  let order = topological tasks in
  let capacity = Hashtbl.create 8 in
  List.iter (fun (r, c) -> Hashtbl.replace capacity r c) resources;
  (* (resource, step) -> units used *)
  let usage = Hashtbl.create 1024 in
  let used r step =
    Option.value ~default:0 (Hashtbl.find_opt usage (r, step))
  in
  let fits t step =
    List.for_all
      (fun (r, units) ->
        let cap =
          match Hashtbl.find_opt capacity r with Some c -> c | None -> 0
        in
        let rec ok s =
          s >= step + t.duration || (used r s + units <= cap && ok (s + 1))
        in
        ok step)
      t.demands
  in
  let reserve t step =
    List.iter
      (fun (r, units) ->
        for s = step to step + t.duration - 1 do
          Hashtbl.replace usage (r, s) (used r s + units)
        done)
      t.demands
  in
  (* finish.(task, k) and start.(task, k) *)
  let finish = Hashtbl.create 256 and start = Hashtbl.create 256 in
  let pin_stalls = ref 0 in
  for k = 0 to instances - 1 do
    List.iter
      (fun t ->
        let dep_ready =
          List.fold_left
            (fun acc d -> max acc (Hashtbl.find finish (d, k)))
            0 t.deps
        in
        let hw_free =
          if k = 0 then 0 else Hashtbl.find start (t.tname, k - 1) + t.restart
        in
        let earliest = max dep_ready hw_free in
        let rec place s =
          if fits t s then s
          else begin
            incr pin_stalls;
            place (s + 1)
          end
        in
        let s = place earliest in
        reserve t s;
        Hashtbl.replace start (t.tname, k) s;
        Hashtbl.replace finish (t.tname, k) (s + t.duration))
      order
  done;
  let completion k =
    List.fold_left (fun acc t -> max acc (Hashtbl.find finish (t.tname, k))) 0 tasks
  in
  let first_latency = completion 0 in
  let makespan = completion (instances - 1) in
  let achieved_ii =
    if instances < 2 then float_of_int first_latency
    else
      float_of_int (makespan - first_latency) /. float_of_int (instances - 1)
  in
  { instances; first_latency; makespan; achieved_ii; pin_stalls = !pin_stalls }

let throughput_consistent ?(tolerance = 0.10) (system : Integration.system) r =
  r.achieved_ii
  <= (float_of_int system.Integration.ii_main *. (1. +. tolerance)) +. 1e-9
