type endpoint = Partition_end of string | World

type task = {
  dt_name : string;
  src : endpoint;
  dst : endpoint;
  bits : Chop_util.Units.bits;
  src_chip : string option;
  dst_chip : string option;
  cross_chip : bool;
}

let create spec =
  let pg = spec.Spec.partitioning in
  let chip_of label = (Spec.chip_of_partition spec label).Spec.chip_name in
  let flow_tasks =
    List.map
      (fun f ->
        let src_chip = chip_of f.Chop_dfg.Partition.producer in
        let dst_chip = chip_of f.Chop_dfg.Partition.consumer in
        {
          dt_name =
            Printf.sprintf "dt_%s_to_%s" f.Chop_dfg.Partition.producer
              f.Chop_dfg.Partition.consumer;
          src = Partition_end f.Chop_dfg.Partition.producer;
          dst = Partition_end f.Chop_dfg.Partition.consumer;
          bits = f.Chop_dfg.Partition.bits;
          src_chip = Some src_chip;
          dst_chip = Some dst_chip;
          cross_chip = src_chip <> dst_chip;
        })
      (Chop_dfg.Partition.flows pg)
  in
  let io_tasks =
    List.concat_map
      (fun p ->
        let label = p.Chop_dfg.Partition.label in
        let chip = chip_of label in
        let in_bits = Chop_dfg.Partition.external_input_bits pg p in
        let out_bits = Chop_dfg.Partition.external_output_bits pg p in
        let input_task =
          if in_bits = 0 then []
          else
            [
              {
                dt_name = Printf.sprintf "dt_in_%s" label;
                src = World;
                dst = Partition_end label;
                bits = in_bits;
                src_chip = None;
                dst_chip = Some chip;
                cross_chip = true;
              };
            ]
        in
        let output_task =
          if out_bits = 0 then []
          else
            [
              {
                dt_name = Printf.sprintf "dt_out_%s" label;
                src = Partition_end label;
                dst = World;
                bits = out_bits;
                src_chip = Some chip;
                dst_chip = None;
                cross_chip = true;
              };
            ]
        in
        input_task @ output_task)
      pg.Chop_dfg.Partition.parts
  in
  flow_tasks @ io_tasks

let chips_of t =
  List.filter_map Fun.id [ t.src_chip; t.dst_chip ]
  |> List.sort_uniq String.compare

let control_pins_on _spec tasks chip_name =
  2
  * List.length
      (List.filter
         (fun t -> t.cross_chip && List.mem chip_name (chips_of t))
         tasks)

let memory_lines_on spec chip_name =
  let hosted =
    List.filter
      (fun m -> Spec.memory_host spec m.Chop_tech.Memory.mname = Some chip_name)
      spec.Spec.memories
  in
  let accessed =
    (* blocks touched by partitions living on this chip *)
    List.concat_map
      (fun p ->
        Spec.memories_of_partition spec p.Chop_dfg.Partition.label)
      (Spec.partitions_on spec chip_name)
    |> List.sort_uniq (fun a b ->
           String.compare a.Chop_tech.Memory.mname b.Chop_tech.Memory.mname)
  in
  let select_rw =
    let blocks =
      List.sort_uniq
        (fun a b -> String.compare a.Chop_tech.Memory.mname b.Chop_tech.Memory.mname)
        (hosted @ accessed)
    in
    Chop_util.Listx.sum_by Chop_tech.Memory.select_rw_lines blocks
  in
  (* an accessing chip drives the data bus of off-chip blocks and of blocks
     hosted on other chips *)
  let bus =
    Chop_util.Listx.sum_by
      (fun m ->
        match Spec.memory_host spec m.Chop_tech.Memory.mname with
        | Some host when host = chip_name -> 0
        | Some _ -> m.Chop_tech.Memory.word_width (* remote on-chip block *)
        | None -> Chop_tech.Memory.bus_pins m)
      accessed
  in
  select_rw + bus

let pp ppf t =
  let ep = function Partition_end l -> l | World -> "<world>" in
  Format.fprintf ppf "%s: %s -> %s, %d bits%s" t.dt_name (ep t.src) (ep t.dst)
    t.bits
    (if t.cross_chip then "" else " (on-chip)")
