type chip_instance = { chip_name : string; package : Chop_tech.Chip.t }

type params = {
  alloc_cap : int;
  max_pipelined_iis : int;
  testability_overhead : float;
  discard_inferior : bool;
}

let default_params =
  {
    alloc_cap = 8;
    max_pipelined_iis = 8;
    testability_overhead = 0.;
    discard_inferior = true;
  }

type t = {
  graph : Chop_dfg.Graph.t;
  library : Chop_tech.Component.library;
  chips : chip_instance list;
  memories : Chop_tech.Memory.t list;
  memory_hosts : (string * string) list;
  partitioning : Chop_dfg.Partition.partitioning;
  assignment : (string * string) list;
  clocks : Chop_tech.Clocking.t;
  style : Chop_tech.Style.t;
  criteria : Chop_bad.Feasibility.criteria;
  params : params;
}

exception Invalid_spec of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid_spec s)) fmt

let make ?(params = default_params) ?(memories = []) ?(memory_hosts = []) ~graph
    ~library ~chips ~partitioning ~assignment ~clocks ~style ~criteria () =
  if chips = [] then fail "no chips in the chip set";
  let chip_names = List.map (fun c -> c.chip_name) chips in
  if List.length (List.sort_uniq String.compare chip_names) <> List.length chips
  then fail "duplicate chip name";
  if partitioning.Chop_dfg.Partition.graph != graph then
    fail "partitioning built for a different graph";
  if not (Chop_tech.Component.covers library graph) then
    fail "component library does not cover the graph's functional classes";
  (* every partition assigned exactly once, to a known chip *)
  List.iter
    (fun p ->
      let label = p.Chop_dfg.Partition.label in
      match List.filter (fun (l, _) -> l = label) assignment with
      | [] -> fail "partition %s is not assigned to a chip" label
      | [ (_, chip) ] ->
          if not (List.mem chip chip_names) then
            fail "partition %s assigned to unknown chip %s" label chip
      | _ -> fail "partition %s assigned more than once" label)
    partitioning.Chop_dfg.Partition.parts;
  List.iter
    (fun (label, _) ->
      if
        not
          (List.exists
             (fun p -> p.Chop_dfg.Partition.label = label)
             partitioning.Chop_dfg.Partition.parts)
      then fail "assignment references unknown partition %s" label)
    assignment;
  (* memory declarations *)
  let declared = List.map (fun m -> m.Chop_tech.Memory.mname) memories in
  List.iter
    (fun block ->
      if not (List.mem block declared) then
        fail "graph references undeclared memory block %s" block)
    (Chop_dfg.Graph.memory_blocks graph);
  List.iter
    (fun m ->
      let name = m.Chop_tech.Memory.mname in
      let host = List.assoc_opt name memory_hosts in
      match (m.Chop_tech.Memory.placement, host) with
      | Chop_tech.Memory.On_chip _, None ->
          fail "on-chip memory %s has no host chip" name
      | Chop_tech.Memory.On_chip _, Some h ->
          if not (List.mem h chip_names) then
            fail "memory %s hosted on unknown chip %s" name h
      | Chop_tech.Memory.Off_chip_package _, Some _ ->
          fail "off-chip memory %s must not have a host chip" name
      | Chop_tech.Memory.Off_chip_package _, None -> ())
    memories;
  {
    graph;
    library;
    chips;
    memories;
    memory_hosts;
    partitioning;
    assignment;
    clocks;
    style;
    criteria;
    params;
  }

let chip t name =
  List.find (fun c -> c.chip_name = name) t.chips

let chip_of_partition t label = chip t (List.assoc label t.assignment)

let partitions_on t chip_name =
  Chop_dfg.Partition.topological_parts t.partitioning
  |> List.filter (fun p ->
         List.assoc p.Chop_dfg.Partition.label t.assignment = chip_name)

let memory t name =
  List.find (fun m -> m.Chop_tech.Memory.mname = name) t.memories

let memory_host t name = List.assoc_opt name t.memory_hosts

let partitions_accessing t block =
  List.filter_map
    (fun p ->
      let sub = Chop_dfg.Partition.subgraph t.partitioning p in
      if List.mem block (Chop_dfg.Graph.memory_blocks sub) then
        Some p.Chop_dfg.Partition.label
      else None)
    t.partitioning.Chop_dfg.Partition.parts

let memories_of_partition t label =
  let p = Chop_dfg.Partition.find t.partitioning label in
  let sub = Chop_dfg.Partition.subgraph t.partitioning p in
  List.map (memory t) (Chop_dfg.Graph.memory_blocks sub)

let pp ppf t =
  Format.fprintf ppf "@[<v>spec: %s on %d chip(s)@,%a@]"
    (Chop_dfg.Graph.name t.graph) (List.length t.chips) Chop_dfg.Partition.pp
    t.partitioning
