(** The partitioning problem specification — CHOP's six input groups
    (paper, section 2.2):

    - the behavioral specification (a data-flow graph),
    - a library of components,
    - the chip set onto which the design is to be partitioned,
    - memory modules and their assignments to chips,
    - partitions and assignments of partitions to chips,
    - clocks, architecture style, feasibility criteria, design parameters. *)

type chip_instance = {
  chip_name : string;
  package : Chop_tech.Chip.t;
}

type params = {
  alloc_cap : int;  (** BAD serial-parallel enumeration cap per class *)
  max_pipelined_iis : int;  (** BAD II options per pipelined design *)
  testability_overhead : float;  (** fractional scan overhead; 0 = off *)
  discard_inferior : bool;
      (** first-level pruning: discard infeasible/inferior predictions
          immediately (paper, section 2.1); disable to explore the whole
          design space (Figures 7 and 8) *)
}

val default_params : params

type t = private {
  graph : Chop_dfg.Graph.t;
  library : Chop_tech.Component.library;
  chips : chip_instance list;
  memories : Chop_tech.Memory.t list;
  memory_hosts : (string * string) list;
      (** memory block -> chip carrying it (on-chip blocks only) *)
  partitioning : Chop_dfg.Partition.partitioning;
  assignment : (string * string) list;  (** partition label -> chip name *)
  clocks : Chop_tech.Clocking.t;
  style : Chop_tech.Style.t;
  criteria : Chop_bad.Feasibility.criteria;
  params : params;
}

exception Invalid_spec of string

val make :
  ?params:params ->
  ?memories:Chop_tech.Memory.t list ->
  ?memory_hosts:(string * string) list ->
  graph:Chop_dfg.Graph.t ->
  library:Chop_tech.Component.library ->
  chips:chip_instance list ->
  partitioning:Chop_dfg.Partition.partitioning ->
  assignment:(string * string) list ->
  clocks:Chop_tech.Clocking.t ->
  style:Chop_tech.Style.t ->
  criteria:Chop_bad.Feasibility.criteria ->
  unit ->
  t
(** Validates the six groups together.  @raise Invalid_spec when: a
    partition is unassigned or assigned to an unknown chip, chip names
    repeat, the library misses a functional class, a memory block referenced
    by the graph is undeclared, an on-chip block has no host (or a host that
    does not exist), or an off-chip block is given a host. *)

val chip : t -> string -> chip_instance
(** @raise Not_found for an unknown chip name. *)

val chip_of_partition : t -> string -> chip_instance
(** @raise Not_found for an unknown partition label. *)

val partitions_on : t -> string -> Chop_dfg.Partition.t list
(** Partitions assigned to the chip, in quotient-topological order. *)

val memory : t -> string -> Chop_tech.Memory.t
(** @raise Not_found for an unknown block name. *)

val memory_host : t -> string -> string option
(** Chip carrying the block; [None] for off-chip packages. *)

val partitions_accessing : t -> string -> string list
(** Labels of partitions whose operations touch the memory block. *)

val memories_of_partition : t -> string -> Chop_tech.Memory.t list
(** Memory blocks the partition's subgraph references. *)

val pp : Format.formatter -> t -> unit
