lib/core/sysim.mli: Integration
