lib/core/integration.ml: Chop_bad Chop_dfg Chop_sched Chop_tech Chop_util Float Int List Option Printf Spec String Transfer
