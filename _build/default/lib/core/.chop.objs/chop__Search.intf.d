lib/core/search.mli: Integration
