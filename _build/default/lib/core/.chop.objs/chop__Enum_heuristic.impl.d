lib/core/enum_heuristic.ml: Chop_bad Chop_tech Chop_util Float Integration List Search Spec Sys
