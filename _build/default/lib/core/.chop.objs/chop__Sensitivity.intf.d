lib/core/sensitivity.mli: Spec
