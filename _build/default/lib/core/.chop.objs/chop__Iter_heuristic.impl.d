lib/core/iter_heuristic.ml: Array Chop_bad Chop_tech Chop_util Float Hashtbl Int Integration List Search Spec String Sys
