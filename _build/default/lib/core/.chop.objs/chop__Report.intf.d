lib/core/report.mli: Format Integration Spec
