lib/core/iter_heuristic.mli: Chop_bad Integration Search
