lib/core/transfer.ml: Chop_dfg Chop_tech Chop_util Format Fun List Printf Spec String
