lib/core/explore.ml: Bb_heuristic Chop_bad Chop_dfg Chop_tech Chop_util Enum_heuristic Format Integration Iter_heuristic List Search Spec Stdlib Sys
