lib/core/report.ml: Buffer Chop_bad Chop_sched Chop_tech Chop_util Format Integration List Printf Spec Transfer
