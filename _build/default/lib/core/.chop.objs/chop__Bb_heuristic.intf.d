lib/core/bb_heuristic.mli: Chop_bad Integration Search
