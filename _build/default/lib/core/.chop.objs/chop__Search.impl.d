lib/core/search.ml: Buffer Chop_util Float Hashtbl Integration List Printf
