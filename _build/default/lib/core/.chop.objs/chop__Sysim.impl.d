lib/core/sysim.ml: Chop_bad Chop_tech Hashtbl Integration List Option Spec Transfer
