lib/core/specfile.mli: Spec
