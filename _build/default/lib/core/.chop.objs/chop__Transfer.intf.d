lib/core/transfer.mli: Chop_util Format Spec
