lib/core/spec.ml: Chop_bad Chop_dfg Chop_tech Format List Printf String
