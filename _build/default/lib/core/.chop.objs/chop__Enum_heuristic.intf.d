lib/core/enum_heuristic.mli: Chop_bad Integration Search
