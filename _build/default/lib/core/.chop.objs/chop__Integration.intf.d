lib/core/integration.mli: Chop_bad Chop_sched Chop_tech Chop_util Spec Transfer
