lib/core/advisor.mli: Chop_bad Chop_dfg Chop_tech Integration Spec
