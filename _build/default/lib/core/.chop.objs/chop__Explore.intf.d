lib/core/explore.mli: Chop_bad Chop_util Format Integration Search Spec
