lib/core/sensitivity.ml: Advisor Array Buffer Chop_bad Chop_tech Chop_util Integration List Printf Spec
