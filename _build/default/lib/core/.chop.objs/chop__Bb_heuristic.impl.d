lib/core/bb_heuristic.ml: Array Chop_bad Chop_tech Chop_util Float Hashtbl Integration List Search Spec Sys
