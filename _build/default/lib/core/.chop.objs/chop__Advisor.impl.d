lib/core/advisor.ml: Chop_dfg Chop_tech Chop_util Explore Integration List Option Printf Search Spec
