lib/core/rig.mli: Chop_bad Chop_dfg Chop_tech Spec
