lib/core/rig.ml: Chop_bad Chop_dfg Chop_tech List Printf Spec
