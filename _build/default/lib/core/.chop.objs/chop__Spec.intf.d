lib/core/spec.mli: Chop_bad Chop_dfg Chop_tech Format
