lib/core/specfile.ml: Buffer Chop_bad Chop_dfg Chop_tech List Option Printf Spec String
