(** The CHOP exploration driver: BAD predictions per partition, two-level
    pruning, heuristic search and result collection (paper, Figure 1). *)

type heuristic =
  | Enumeration  (** the paper's "E" *)
  | Iterative  (** the paper's "I" (Figure 5) *)
  | Branch_bound
      (** extension: exact DFS with admissible performance/area bounds
          ({!module:Bb_heuristic}); finds the enumeration heuristic's best
          designs with no more integrations *)

type bad_stats = {
  label : string;
  total_predictions : int;  (** all implementations BAD enumerated *)
  feasible_predictions : int;  (** feasible in isolation on the target chip *)
  kept : int;  (** after first-level pruning (feasible + non-inferior) *)
}

type report = {
  heuristic : heuristic;
  bad : bad_stats list;
  outcome : Search.outcome;
  bad_cpu_seconds : float;
}

val predictor_config : Spec.t -> label:string -> Chop_bad.Predictor.config
(** The BAD configuration CHOP derives from the spec for one partition
    (its memory blocks, the global clocks/style and the design params). *)

val partition_chip_area : Spec.t -> label:string -> Chop_util.Units.mil2
(** Usable area of the partition's assigned chip, pads deducted — the
    first-level pruning target. *)

val predictions :
  ?prune:bool -> Spec.t -> (string * Chop_bad.Prediction.t list) list * bad_stats list
(** Runs BAD on every partition subgraph.  [prune] (default: the spec's
    [discard_inferior]) applies first-level pruning to the returned lists;
    statistics always report both raw and pruned counts. *)

val run : ?keep_all:bool -> heuristic -> Spec.t -> report
(** End-to-end exploration.  [keep_all = true] disables both pruning levels
    and records every design encountered ([outcome.explored]) — the mode
    behind the paper's Figures 7 and 8. *)

val unique_designs : Integration.system list -> int
(** Distinct (initiation interval, delay cycles, likely area) design points
    among the explored systems — the "unique designs" count of Figures 7
    and 8. *)

val pp_heuristic : Format.formatter -> heuristic -> unit
