(** Shared types for the two partition-implementation search heuristics. *)

type stats = {
  implementation_trials : int;
      (** combinations of partition implementations examined
          ("Partitioning Imp. Trials" in the paper's Tables 4 and 6) *)
  integrations : int;  (** full system-integration predictions performed *)
  feasible_trials : int;
  cpu_seconds : float;
}

type outcome = {
  feasible : Integration.system list;
      (** feasible and non-inferior global implementations, fastest first *)
  explored : Integration.system list;
      (** every integrated design, only populated in keep-all mode *)
  stats : stats;
}

val empty_stats : stats

val to_csv : Integration.system list -> string
(** The explored design points as CSV
    ([ii_main,clock_ns,perf_ns,delay_cycles,delay_likely_ns,area_likely,feasible])
    for external plotting of Figures 7/8-style scatters. *)

val finalize :
  keep_all:bool ->
  feasible:Integration.system list ->
  explored:Integration.system list ->
  stats ->
  outcome
(** Sorts feasible systems by (performance, delay) and prunes inferior ones
    (unless [keep_all] asked for the raw space). *)
