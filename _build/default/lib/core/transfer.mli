(** Data-transfer task creation.

    "When the information about partition and memory block assignments is
    available, data transfer tasks are created by CHOP to transfer data
    among partitions ...  This process involves determining the manner and
    the amount of data to be transferred, reserving enough pins for control
    signals to assure proper communication between distributed controllers
    and also for other necessary signal pins which are not shared (Select,
    R/W lines for memory blocks)" (paper, section 2.4). *)

type endpoint =
  | Partition_end of string  (** a partition label *)
  | World  (** off-board environment: primary inputs / outputs *)

type task = {
  dt_name : string;
  src : endpoint;
  dst : endpoint;
  bits : Chop_util.Units.bits;  (** data volume per problem instance *)
  src_chip : string option;  (** [None] when the source is the world *)
  dst_chip : string option;
  cross_chip : bool;
      (** true when the transfer needs package pins on some chip *)
}

val create : Spec.t -> task list
(** One task per inter-partition flow, plus one input task per partition
    consuming primary inputs and one output task per partition driving
    primary outputs.  Same-chip flows are kept as dependence-only tasks
    ([cross_chip = false]): they consume no pins. *)

val control_pins_on : Spec.t -> task list -> string -> int
(** Handshake pins the distributed-control scheme reserves on the chip: two
    per cross-chip task touching it. *)

val memory_lines_on : Spec.t -> string -> int
(** Select/R+W lines reserved on the chip for every memory block it hosts
    or accesses, plus bus pins for off-chip blocks its partitions access. *)

val chips_of : task -> string list
(** Chips whose pins the task consumes (0, 1 or 2). *)

val pp : Format.formatter -> task -> unit
