let run ?(keep_all = false) ctx per_partition =
  let spec = Integration.spec_of ctx in
  let clocks = spec.Spec.clocks in
  let crit = spec.Spec.criteria in
  let t0 = Sys.time () in
  let labels = List.map fst per_partition in
  let choices = List.map snd per_partition in
  let trials = ref 0 and integrations = ref 0 in
  let feasible = ref [] and explored = ref [] in
  let consider picks =
    incr trials;
    let comb = List.combine labels picks in
    (* performance upper bound: the slowest partition sets the pace *)
    let ii_bound =
      List.fold_left
        (fun acc p -> max acc (Chop_bad.Prediction.ii_main clocks p))
        1 picks
    in
    let clock_bound =
      List.fold_left
        (fun acc p -> Float.max acc p.Chop_bad.Prediction.timing.clock_main)
        clocks.Chop_tech.Clocking.main picks
    in
    let hopeless =
      float_of_int ii_bound *. clock_bound
      > crit.Chop_bad.Feasibility.perf_constraint
    in
    (* the slowest-partition bound prunes combinations that cannot meet the
       performance constraint before any integration work — even in
       keep-all mode only evaluated designs are recorded, as in the paper's
       Figures 7 and 8 *)
    if hopeless then ()
    else begin
      incr integrations;
      let system = Integration.integrate ctx comb in
      if keep_all then explored := system :: !explored;
      if Integration.feasible system then begin
        (* discard inferior designs immediately upon detection (paper,
           section 2.1): admit only systems not dominated by the running
           front, evicting the ones they dominate *)
        let objs = Integration.objectives system in
        let dominated =
          List.exists
            (fun s -> Chop_util.Pareto.dominates (Integration.objectives s) objs)
            !feasible
        in
        if not dominated then
          feasible :=
            system
            :: List.filter
                 (fun s ->
                   not
                     (Chop_util.Pareto.dominates objs (Integration.objectives s)))
                 !feasible
      end
    end
  in
  Chop_util.Listx.fold_cartesian (fun () picks -> consider picks) () choices;
  let stats =
    {
      Search.implementation_trials = !trials;
      integrations = !integrations;
      feasible_trials = List.length !feasible;
      cpu_seconds = Sys.time () -. t0;
    }
  in
  Search.finalize ~keep_all ~feasible:!feasible ~explored:!explored stats
