(** A plain-text format for complete partitioning specifications.

    CHOP's six input groups (paper, section 2.2) as a line-oriented file, so
    problems can be written, versioned and loaded from outside the OCaml
    API.  A minimal example:

    {v
# chopspec
graph demo width=16
node x input
node k const
node m mult x k
node y output m

chip chip1 pins=84 die=311.02x362.20 pad_delay=25 pad_area=297.6
partition P1 = m
assign P1 chip1
library extended
clock main=300 datapath=10 transfer=1
style single_cycle
criteria perf=30000 delay=30000
    v}

    Lines are [keyword args...]; ['#'] starts a comment; blank lines are
    ignored.  Statements:

    - [graph NAME width=W] — starts the data-flow graph (required, once).
    - [node NAME OP OPERAND...] — adds a node; [OP] is one of [input],
      [output], [const], [add], [sub], [mult], [div], [compare], [logic],
      [shift], [select], [mem_read:BLOCK], [mem_write:BLOCK]; operands are
      previously declared node names.
    - [chip NAME pins=N die=WxH pad_delay=D pad_area=A] — a chip instance;
      [pkg64] / [pkg84] may replace the attribute list.
    - [memory NAME words=N width=W ports=P access=NS (on_chip=AREA
      host=CHIP | off_chip_pins=N)] — a memory block.
    - [partition LABEL = NODE...] — a partition over computational nodes.
    - [assign LABEL CHIP] — partition-to-chip assignment.
    - [component NAME class=C width=W area=A delay=D] — extra library entry.
    - [library table1|extended|none] — the base component library (default
      [table1]); explicit [component] entries are prepended.
    - [clock main=NS datapath=K transfer=K] — the clocks (default
      300/1/1).
    - [style single_cycle|multi_cycle] — operation timing (default
      multi_cycle).
    - [criteria perf=NS delay=NS (perf_prob= area_prob= delay_prob=
      power_budget=)] — feasibility criteria (probabilities default to the
      paper's 1.0/1.0/0.8).
    - [params alloc_cap=N max_iis=N testability=F] — design parameters. *)

exception Parse_error of int * string
(** Line number (1-based) and reason. *)

val parse : string -> Spec.t
(** Parses the full file contents.
    @raise Parse_error on syntax or reference errors;
    @raise Spec.Invalid_spec when the assembled groups are inconsistent. *)

val load : string -> Spec.t
(** [load path] reads and parses a file. *)

val print : Spec.t -> string
(** Renders a spec back to the format ([parse (print s)] describes the same
    problem; node ids are renumbered). *)
