let guideline spec system =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "Predicted global implementation:\n";
  addf "  initiation interval : %d main cycles\n" system.Integration.ii_main;
  addf "  system delay        : %d main cycles (%s ns)\n"
    system.Integration.delay_cycles
    (Chop_util.Triplet.to_string system.Integration.delay);
  addf "  adjusted clock      : %.0f ns\n" system.Integration.clock;
  addf "  performance         : %.0f ns per initiation\n\n"
    system.Integration.perf_ns;
  List.iter
    (fun (label, p) ->
      let chip = Spec.chip_of_partition spec label in
      addf "%s (on chip %s):\n"
        (Chop_bad.Prediction.describe spec.Spec.clocks p)
        chip.Spec.chip_name;
      addf "\n";
      ignore label)
    system.Integration.combination;
  List.iter
    (fun d ->
      let t = d.Integration.task in
      if t.Transfer.cross_chip then begin
        addf "Data transfer module %s:\n" t.Transfer.dt_name;
        addf "  - %d bits at %d pins, transfer time %d cycle(s),\n"
          t.Transfer.bits d.Integration.bandwidth d.Integration.transfer_main;
        addf "  - wait %d cycle(s), buffer %d bits,\n" d.Integration.wait_main
          d.Integration.buffer_bits;
        let s = d.Integration.ctrl_shape in
        addf "  - controller PLA: %d inputs, %d outputs, %d product terms.\n"
          s.Chop_tech.Pla.inputs s.Chop_tech.Pla.outputs
          s.Chop_tech.Pla.product_terms
      end)
    system.Integration.dtms;
  List.iter
    (fun cr ->
      addf "Chip %s: %d signal pins, area %s / %.0f mil^2 available\n"
        cr.Integration.instance.Spec.chip_name cr.Integration.signal_pins
        (Chop_util.Triplet.to_string
           (Chop_util.Triplet.sum cr.Integration.area_parts))
        cr.Integration.available)
    system.Integration.chip_reports;
  Buffer.contents buf

let summary_row _spec system =
  [
    string_of_int system.Integration.ii_main;
    string_of_int system.Integration.delay_cycles;
    Printf.sprintf "%.0f" system.Integration.clock;
  ]

let timeline (system : Integration.system) =
  match system.Integration.task_schedule with
  | None -> "  (no schedule)\n"
  | Some sched ->
      let bars =
        List.map
          (fun p ->
            {
              Chop_util.Gantt.bar_label = p.Chop_sched.Urgency.task.Chop_sched.Urgency.tname;
              start = p.Chop_sched.Urgency.start_step;
              finish = p.Chop_sched.Urgency.finish_step;
            })
          sched.Chop_sched.Urgency.placed
      in
      Chop_util.Gantt.render bars

let pp_system spec ppf system =
  Format.pp_print_string ppf (guideline spec system)
