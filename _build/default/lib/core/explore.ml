type heuristic = Enumeration | Iterative | Branch_bound

type bad_stats = {
  label : string;
  total_predictions : int;
  feasible_predictions : int;
  kept : int;
}

type report = {
  heuristic : heuristic;
  bad : bad_stats list;
  outcome : Search.outcome;
  bad_cpu_seconds : float;
}

let predictor_config spec ~label =
  let params = spec.Spec.params in
  Chop_bad.Predictor.config ~alloc_cap:params.Spec.alloc_cap
    ~max_pipelined_iis:params.Spec.max_pipelined_iis
    ~testability_overhead:params.Spec.testability_overhead
    ~memories:(Spec.memories_of_partition spec label)
    ~library:spec.Spec.library ~clocks:spec.Spec.clocks ~style:spec.Spec.style ()

let partition_chip_area spec ~label =
  let ci = Spec.chip_of_partition spec label in
  let pkg = ci.Spec.package in
  (* at this stage the exact pin usage is unknown; assume half the package
     pins are bonded as signal pads *)
  Chop_tech.Chip.usable_area pkg ~signal_pins:(pkg.Chop_tech.Chip.pins / 2)

let predictions ?prune spec =
  let prune =
    match prune with Some p -> p | None -> spec.Spec.params.Spec.discard_inferior
  in
  let results =
    List.map
      (fun p ->
        let label = p.Chop_dfg.Partition.label in
        let sub = Chop_dfg.Partition.subgraph spec.Spec.partitioning p in
        let cfg = predictor_config spec ~label in
        let preds = Chop_bad.Predictor.predict cfg ~label sub in
        let chip_area = partition_chip_area spec ~label in
        let feasible =
          List.filter
            (fun pr ->
              Chop_bad.Feasibility.is_feasible
                (Chop_bad.Feasibility.partition_level spec.Spec.criteria
                   ~clocks:spec.Spec.clocks ~chip_area pr))
            preds
        in
        let kept =
          Chop_bad.Predictor.prune cfg ~criteria:spec.Spec.criteria ~chip_area
            preds
        in
        let stats =
          {
            label;
            total_predictions = List.length preds;
            feasible_predictions = List.length feasible;
            kept = List.length kept;
          }
        in
        ((label, (if prune then kept else preds)), stats))
      spec.Spec.partitioning.Chop_dfg.Partition.parts
  in
  (List.map fst results, List.map snd results)

let run ?(keep_all = false) heuristic spec =
  let t0 = Sys.time () in
  let per_partition, bad = predictions ~prune:(not keep_all) spec in
  let bad_cpu_seconds = Sys.time () -. t0 in
  let ctx = Integration.context spec in
  let outcome =
    match heuristic with
    | Enumeration -> Enum_heuristic.run ~keep_all ctx per_partition
    | Iterative -> Iter_heuristic.run ~keep_all ctx per_partition
    | Branch_bound -> Bb_heuristic.run ~keep_all ctx per_partition
  in
  { heuristic; bad; outcome; bad_cpu_seconds }

let unique_designs systems =
  let key s =
    ( s.Integration.ii_main,
      s.Integration.delay_cycles,
      int_of_float Chop_util.Triplet.((Integration.total_area s).likely) )
  in
  Chop_util.Listx.uniq_count ~compare:Stdlib.compare (List.map key systems)

let pp_heuristic ppf = function
  | Enumeration -> Format.pp_print_string ppf "E"
  | Iterative -> Format.pp_print_string ppf "I"
  | Branch_bound -> Format.pp_print_string ppf "B"
