(** Designer guidelines.

    "When CHOP determines the feasibility of an implementation, it outputs
    the design decisions and prediction results.  This provides a guideline
    for the designer to synthesize the predicted implementation" (paper,
    sections 2.1 and 3.1). *)

val guideline : Spec.t -> Integration.system -> string
(** Full human-readable report for one feasible global implementation: the
    system timing, then per-partition design decisions (style, stages,
    module set, unit counts, register bits, multiplexers) and per
    data-transfer module its bandwidth, transfer/wait times, buffer size
    and controller PLA. *)

val summary_row : Spec.t -> Integration.system -> string list
(** [initiation interval; delay (cycles); clock (ns)] cells as in the
    paper's result tables. *)

val timeline : Integration.system -> string
(** ASCII Gantt chart of the urgency-scheduled tasks (processing units and
    data transfers), in main-clock cycles; empty systems render a
    placeholder. *)

val pp_system : Spec.t -> Format.formatter -> Integration.system -> unit
