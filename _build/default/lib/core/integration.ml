type combination = (string * Chop_bad.Prediction.t) list

type context = {
  spec : Spec.t;
  tasks : Transfer.task list;
  budgets : (string * Chop_tech.Chip.pin_budget) list;
  budget_errors : (string * string) list;
}

let context spec =
  let tasks = Transfer.create spec in
  let budgets, budget_errors =
    List.fold_left
      (fun (ok, bad) ci ->
        let control = Transfer.control_pins_on spec tasks ci.Spec.chip_name in
        let memory_lines = Transfer.memory_lines_on spec ci.Spec.chip_name in
        match
          Chop_tech.Chip.pin_budget ci.Spec.package ~control ~memory_lines ()
        with
        | budget -> ((ci.Spec.chip_name, budget) :: ok, bad)
        | exception Invalid_argument reason ->
            (ok, (ci.Spec.chip_name, reason) :: bad))
      ([], []) spec.Spec.chips
  in
  { spec; tasks; budgets; budget_errors }

let spec_of ctx = ctx.spec
let tasks_of ctx = ctx.tasks

let data_pins ctx chip_name =
  match List.assoc_opt chip_name ctx.budgets with
  | Some b -> b.Chop_tech.Chip.data
  | None -> 0

type dtm = {
  task : Transfer.task;
  bandwidth : int;
  transfer_main : int;
  wait_main : int;
  buffer_bits : int;
  ctrl_shape : Chop_tech.Pla.shape;
}

type chip_report = {
  instance : Spec.chip_instance;
  partition_labels : string list;
  signal_pins : int;
  pin_mux_area : Chop_util.Units.mil2;
  dtm_area : Chop_util.Units.mil2;
  buffer_area : Chop_util.Units.mil2;
  memory_area : Chop_util.Units.mil2;
  area_parts : Chop_util.Triplet.t list;
  available : Chop_util.Units.mil2;
  area_verdict : Chop_bad.Feasibility.verdict;
  power : float;
}

type failure =
  | No_failure
  | Rate_mismatch of string list
  | Area_violation of string list
  | Data_clash
  | Too_slow
  | Delay_exceeded
  | Structural of string

type system = {
  combination : combination;
  ii_main : int;
  clock : Chop_util.Units.ns;
  perf_ns : Chop_util.Units.ns;
  delay_cycles : int;
  delay : Chop_util.Triplet.t;
  dtms : dtm list;
  chip_reports : chip_report list;
  task_schedule : Chop_sched.Urgency.result option;
  verdict : Chop_bad.Feasibility.verdict;
  failure : failure;
}

let feasible s = Chop_bad.Feasibility.is_feasible s.verdict

let total_area s =
  Chop_util.Triplet.sum (List.concat_map (fun cr -> cr.area_parts) s.chip_reports)

let objectives s =
  [| s.perf_ns; Chop_util.Triplet.(s.delay.likely);
     Chop_util.Triplet.((total_area s).likely) |]

(* On-chip transfers ride wide internal buses. *)
let on_chip_bus_bits = 128

let mux_cell_area = Chop_tech.Mosis.mux_cell.Chop_tech.Component.area
let register_cell_area = Chop_tech.Mosis.register_cell.Chop_tech.Component.area

let check_combination spec comb =
  let labels =
    List.map
      (fun p -> p.Chop_dfg.Partition.label)
      spec.Spec.partitioning.Chop_dfg.Partition.parts
  in
  let given = List.map fst comb in
  let sorted = List.sort String.compare in
  if sorted labels <> sorted given then
    invalid_arg "Integration.integrate: combination does not match partitioning"

(* Paper, section 2.4: two or more pipelined partitions with different data
   rates make the global implementation infeasible (rate mismatch); faster
   non-pipelined implementations can accompany slower pipelined ones. *)
let rate_mismatch clocks comb =
  let pipelined_iis =
    List.filter_map
      (fun (_, p) ->
        match p.Chop_bad.Prediction.style with
        | Chop_tech.Style.Pipelined -> Some (Chop_bad.Prediction.ii_main clocks p)
        | Chop_tech.Style.Non_pipelined -> None)
      comb
    |> List.sort_uniq Int.compare
  in
  match pipelined_iis with
  | _ :: _ :: _ ->
      Some
        (Printf.sprintf "data rate mismatch: pipelined partitions at rates {%s}"
           (String.concat ", " (List.map string_of_int pipelined_iis)))
  | [] | [ _ ] -> None

exception Stop of failure * string

let integrate ctx ?ii_target comb =
  let spec = ctx.spec in
  check_combination spec comb;
  let clocks = spec.Spec.clocks in
  let crit = spec.Spec.criteria in
  try
    (match ctx.budget_errors with
    | (chip, reason) :: _ ->
        raise
          (Stop
             ( Structural reason,
               Printf.sprintf "chip %s: %s" chip reason ))
    | [] -> ());
    (match rate_mismatch clocks comb with
    | Some reason ->
        let mismatched =
          List.filter_map
            (fun (label, p) ->
              match p.Chop_bad.Prediction.style with
              | Chop_tech.Style.Pipelined -> Some label
              | Chop_tech.Style.Non_pipelined -> None)
            comb
        in
        raise (Stop (Rate_mismatch mismatched, reason))
    | None -> ());
    let prediction_of label = List.assoc label comb in
    (* --- data-transfer bandwidths and durations --- *)
    let k_tr = clocks.Chop_tech.Clocking.transfer_ratio in
    let dtm_base =
      List.map
        (fun (t : Transfer.task) ->
          let bandwidth =
            if not t.Transfer.cross_chip then on_chip_bus_bits
            else
              match Transfer.chips_of t with
              | [] -> on_chip_bus_bits
              | chips ->
                  (* maximum possible bandwidth (section 2.5) determines the
                     transfer time; the module then bonds only the pins
                     needed to achieve that time *)
                  let budget =
                    List.fold_left (fun acc c -> min acc (data_pins ctx c))
                      max_int chips
                  in
                  if budget <= 0 then 0
                  else
                    let x_min = Chop_util.Units.ceil_div t.Transfer.bits budget in
                    Chop_util.Units.ceil_div t.Transfer.bits x_min
          in
          if bandwidth <= 0 then begin
            let reason =
              Printf.sprintf "no data pins available for transfer %s"
                t.Transfer.dt_name
            in
            raise (Stop (Structural reason, reason))
          end;
          let transfer_main =
            Chop_util.Units.ceil_div t.Transfer.bits bandwidth * k_tr
          in
          (t, bandwidth, transfer_main))
        ctx.tasks
    in
    (* --- candidate initiation interval --- *)
    let part_ii_max =
      List.fold_left
        (fun acc (_, p) -> max acc (Chop_bad.Prediction.ii_main clocks p))
        1 comb
    in
    let dt_ii_max =
      List.fold_left
        (fun acc (t, _, x) -> if t.Transfer.cross_chip then max acc x else acc)
        1 dtm_base
    in
    (* steady-state budgets: with one problem instance initiated every
       interval, each chip's shared data pins must carry ALL its transfers'
       bits, and each memory block's ports must serve every partition's
       accesses, within one interval — or overlapped instances clash *)
    let pin_ii_floor =
      List.fold_left
        (fun acc ci ->
          let name = ci.Spec.chip_name in
          let bits_per_instance =
            Chop_util.Listx.sum_by
              (fun (t, _, _) ->
                if t.Transfer.cross_chip && List.mem name (Transfer.chips_of t)
                then t.Transfer.bits
                else 0)
              dtm_base
          in
          let pins = data_pins ctx name in
          if bits_per_instance = 0 then acc
          else max acc (Chop_util.Units.ceil_div bits_per_instance pins * k_tr))
        1 spec.Spec.chips
    in
    let mem_ii_floor =
      List.fold_left
        (fun acc m ->
          let block = m.Chop_tech.Memory.mname in
          let port_cycles =
            Chop_util.Listx.sum_by
              (fun (_, p) ->
                match List.assoc_opt block p.Chop_bad.Prediction.mem_bandwidth with
                | Some peak when peak > 0 ->
                    min peak m.Chop_tech.Memory.ports
                    * Chop_bad.Prediction.latency_main clocks p
                | Some _ | None -> 0)
              comb
          in
          if port_cycles = 0 then acc
          else
            max acc (Chop_util.Units.ceil_div port_cycles m.Chop_tech.Memory.ports))
        1 spec.Spec.memories
    in
    let floor_ii =
      max (max part_ii_max dt_ii_max) (max pin_ii_floor mem_ii_floor)
    in
    let ii_main = match ii_target with Some l -> l | None -> floor_ii in
    if part_ii_max > ii_main then
      raise
        (Stop
           ( Too_slow,
             Printf.sprintf "partition rate %d exceeds system interval %d"
               part_ii_max ii_main ));
    if dt_ii_max > ii_main then
      raise
        (Stop
           ( Data_clash,
             Printf.sprintf
               "data clash: transfer of %d cycles exceeds interval %d" dt_ii_max
               ii_main ));
    if pin_ii_floor > ii_main then
      raise
        (Stop
           ( Data_clash,
             Printf.sprintf
               "data clash: aggregate pin traffic needs an interval of %d \
                cycles but the target is %d"
               pin_ii_floor ii_main ));
    if mem_ii_floor > ii_main then
      raise
        (Stop
           ( Data_clash,
             Printf.sprintf
               "data clash: memory-port traffic needs an interval of %d \
                cycles but the target is %d"
               mem_ii_floor ii_main ));
    (* --- memory port sanity --- *)
    List.iter
      (fun (_, p) ->
        List.iter
          (fun (block, peak) ->
            let ports = (Spec.memory spec block).Chop_tech.Memory.ports in
            if peak > ports then begin
              let reason =
                Printf.sprintf
                  "memory %s: partition %s needs %d simultaneous accesses (%d \
                   ports)"
                  block p.Chop_bad.Prediction.partition_label peak ports
              in
              raise (Stop (Structural reason, reason))
            end)
          p.Chop_bad.Prediction.mem_bandwidth)
      comb;
    (* --- urgency scheduling over pins and memory ports --- *)
    let resources =
      List.map
        (fun ci ->
          {
            Chop_sched.Urgency.rname = "pins:" ^ ci.Spec.chip_name;
            capacity = data_pins ctx ci.Spec.chip_name;
          })
        spec.Spec.chips
      @ List.map
          (fun m ->
            {
              Chop_sched.Urgency.rname = "mem:" ^ m.Chop_tech.Memory.mname;
              capacity = m.Chop_tech.Memory.ports;
            })
          spec.Spec.memories
    in
    let pu_task label =
      let p = prediction_of label in
      let duration = Chop_bad.Prediction.latency_main clocks p in
      let demands =
        List.filter_map
          (fun (block, peak) ->
            if peak <= 0 then None else Some ("mem:" ^ block, peak))
          p.Chop_bad.Prediction.mem_bandwidth
      in
      let deps =
        List.filter_map
          (fun (t, _, _) ->
            match t.Transfer.dst with
            | Transfer.Partition_end l when l = label -> Some t.Transfer.dt_name
            | Transfer.Partition_end _ | Transfer.World -> None)
          dtm_base
      in
      { Chop_sched.Urgency.tname = "pu_" ^ label; duration; demands; deps }
    in
    let dt_task (t, bw, x) =
      let demands =
        if t.Transfer.cross_chip then
          List.map (fun c -> ("pins:" ^ c, bw)) (Transfer.chips_of t)
        else []
      in
      let deps =
        match t.Transfer.src with
        | Transfer.Partition_end l -> [ "pu_" ^ l ]
        | Transfer.World -> []
      in
      { Chop_sched.Urgency.tname = t.Transfer.dt_name; duration = x; demands; deps }
    in
    let tasks =
      List.map dt_task dtm_base
      @ List.map
          (fun p -> pu_task p.Chop_dfg.Partition.label)
          spec.Spec.partitioning.Chop_dfg.Partition.parts
    in
    let sched_result =
      try Chop_sched.Urgency.run ~resources tasks
      with Chop_sched.Urgency.Unschedulable reason ->
        raise (Stop (Structural reason, reason))
    in
    let dtms =
      List.map
        (fun (t, bw, x) ->
          let wait_main = Chop_sched.Urgency.wait_of sched_result t.Transfer.dt_name in
          (* B = D * (ceil(W/l) + X/l), section 2.5 *)
          let buffer_bits =
            if not t.Transfer.cross_chip then 0
            else
              let l = float_of_int ii_main in
              let d = float_of_int t.Transfer.bits in
              let w = float_of_int wait_main in
              let xf = float_of_int x in
              int_of_float (ceil (d *. (ceil (w /. l) +. (xf /. l))))
          in
          let states = max 1 (wait_main + x) in
          let ctrl_shape =
            Chop_tech.Pla.controller_shape ~states ~status_inputs:2
              ~control_outputs:(4 + (bw / 4))
          in
          { task = t; bandwidth = bw; transfer_main = x; wait_main; buffer_bits;
            ctrl_shape })
        dtm_base
    in
    (* --- clock adjustment --- *)
    let clock_parts =
      List.fold_left
        (fun acc (_, p) -> Float.max acc p.Chop_bad.Prediction.timing.clock_main)
        clocks.Chop_tech.Clocking.main comb
    in
    let pin_sharers chip_name =
      List.length
        (List.filter
           (fun d ->
             d.task.Transfer.cross_chip
             && List.mem chip_name (Transfer.chips_of d.task))
           dtms)
    in
    let transfer_overhead =
      List.fold_left
        (fun acc ci ->
          let sharers = pin_sharers ci.Spec.chip_name in
          if sharers = 0 then acc
          else
            let pad = ci.Spec.package.Chop_tech.Chip.pad_delay in
            let mux = Chop_tech.Wiring.mux_tree_delay ~fanin:sharers in
            let dtm_ctrl =
              List.fold_left
                (fun m d ->
                  if List.mem ci.Spec.chip_name (Transfer.chips_of d.task) then
                    Float.max m (Chop_tech.Pla.delay d.ctrl_shape)
                  else m)
                0. dtms
            in
            Float.max acc ((2. *. pad) +. mux +. dtm_ctrl))
        0. spec.Spec.chips
    in
    let clock =
      Float.max clock_parts
        (transfer_overhead /. float_of_int clocks.Chop_tech.Clocking.transfer_ratio)
    in
    let perf_ns = float_of_int ii_main *. clock in
    let delay_cycles = sched_result.Chop_sched.Urgency.makespan in
    let delay =
      Chop_util.Triplet.scale
        (float_of_int delay_cycles *. clock)
        (Chop_util.Triplet.make ~low:0.95 ~likely:1.0 ~high:1.08)
    in
    (* --- per-chip reports --- *)
    let chip_reports =
      List.map
        (fun ci ->
          let name = ci.Spec.chip_name in
          let labels =
            List.map
              (fun p -> p.Chop_dfg.Partition.label)
              (Spec.partitions_on spec name)
          in
          let budget = List.assoc name ctx.budgets in
          let sharers = pin_sharers name in
          let pin_mux_area =
            if sharers <= 1 then 0.
            else
              let shared_pins =
                List.fold_left
                  (fun acc d ->
                    if
                      d.task.Transfer.cross_chip
                      && List.mem name (Transfer.chips_of d.task)
                    then max acc d.bandwidth
                    else acc)
                  0 dtms
              in
              float_of_int (shared_pins * (sharers - 1)) *. mux_cell_area
          in
          let dtm_area =
            Chop_util.Listx.sum_byf
              (fun d ->
                if
                  d.task.Transfer.cross_chip
                  && List.mem name (Transfer.chips_of d.task)
                then Chop_tech.Pla.area d.ctrl_shape
                else 0.)
              dtms
          in
          let buffer_area =
            Chop_util.Listx.sum_byf
              (fun d ->
                let holder =
                  match d.task.Transfer.dst_chip with
                  | Some c -> c
                  | None -> Option.value ~default:"" d.task.Transfer.src_chip
                in
                if holder = name then
                  float_of_int d.buffer_bits *. register_cell_area
                else 0.)
              dtms
          in
          let memory_area =
            Chop_util.Listx.sum_byf
              (fun m ->
                match
                  ( m.Chop_tech.Memory.placement,
                    Spec.memory_host spec m.Chop_tech.Memory.mname )
                with
                | Chop_tech.Memory.On_chip a, Some host when host = name -> a
                | _ -> 0.)
              spec.Spec.memories
          in
          let part_areas =
            List.map (fun l -> (prediction_of l).Chop_bad.Prediction.area) labels
          in
          let fixed = pin_mux_area +. dtm_area +. buffer_area +. memory_area in
          let area_parts = Chop_util.Triplet.exact fixed :: part_areas in
          let data_pins_used =
            List.fold_left
              (fun acc d ->
                if
                  d.task.Transfer.cross_chip
                  && List.mem name (Transfer.chips_of d.task)
                then max acc d.bandwidth
                else acc)
              0 dtms
          in
          let signal_pins =
            min ci.Spec.package.Chop_tech.Chip.pins
              (data_pins_used + budget.Chop_tech.Chip.control
              + budget.Chop_tech.Chip.memory_lines)
          in
          let available =
            Chop_tech.Chip.usable_area ci.Spec.package ~signal_pins
          in
          let area_verdict =
            Chop_bad.Feasibility.check_area crit ~available area_parts
          in
          let power =
            Chop_util.Listx.sum_byf
              (fun l -> (prediction_of l).Chop_bad.Prediction.power)
              labels
          in
          {
            instance = ci;
            partition_labels = labels;
            signal_pins;
            pin_mux_area;
            dtm_area;
            buffer_area;
            memory_area;
            area_parts;
            available;
            area_verdict;
            power;
          })
        spec.Spec.chips
    in
    (* --- overall verdict --- *)
    let verdict, failure =
      let open Chop_bad.Feasibility in
      let area_bad =
        List.find_map
          (fun cr ->
            match cr.area_verdict with
            | Infeasible r ->
                Some (Printf.sprintf "chip %s: %s" cr.instance.Spec.chip_name r)
            | Feasible -> None)
          chip_reports
      in
      let power_bad =
        List.find_map
          (fun cr ->
            match check_power crit cr.power with
            | Infeasible r ->
                Some (Printf.sprintf "chip %s: %s" cr.instance.Spec.chip_name r)
            | Feasible -> None)
          chip_reports
      in
      match
        (area_bad, check_perf crit perf_ns, check_delay crit delay, power_bad)
      with
      | Some r, _, _, _ ->
          let labels =
            List.concat_map
              (fun cr ->
                match cr.area_verdict with
                | Infeasible _ -> cr.partition_labels
                | Feasible -> [])
              chip_reports
          in
          (Infeasible r, Area_violation labels)
      | None, Infeasible r, _, _ -> (Infeasible r, Too_slow)
      | None, _, Infeasible r, _ -> (Infeasible r, Delay_exceeded)
      | None, _, _, Some r -> (Infeasible r, Structural r)
      | None, Feasible, Feasible, None -> (Feasible, No_failure)
    in
    {
      combination = comb;
      ii_main;
      clock;
      perf_ns;
      delay_cycles;
      delay;
      dtms;
      chip_reports;
      task_schedule = Some sched_result;
      verdict;
      failure;
    }
  with Stop (failure, reason) ->
    {
      combination = comb;
      ii_main = Option.value ~default:0 ii_target;
      clock = clocks.Chop_tech.Clocking.main;
      perf_ns = infinity;
      delay_cycles = 0;
      delay = Chop_util.Triplet.exact 0.;
      dtms = [];
      chip_reports = [];
      task_schedule = None;
      verdict = Chop_bad.Feasibility.Infeasible reason;
      failure;
    }
