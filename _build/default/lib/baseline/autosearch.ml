type candidate = {
  partitions : int;
  strategy : Autopart.strategy;
  spec : Chop.Spec.t;
  judgement : Chop.Advisor.judgement;
  chip_set_cost : float;
}

let rank c =
  match c.judgement.Chop.Advisor.best with
  | Some s ->
      ( 0,
        s.Chop.Integration.perf_ns,
        float_of_int c.partitions,
        Chop_util.Triplet.(s.Chop.Integration.delay.likely) )
  | None -> (1, infinity, float_of_int c.partitions, infinity)

let run ?(max_partitions = 4) ?(strategies = [ Autopart.Levels; Autopart.Min_cut 1 ])
    ?(params = Chop.Spec.default_params)
    ?(library = Chop_tech.Mosis.experiment_library)
    ?(cost_model = Chop_tech.Cost.default_3u) ~graph ~package ~clocks ~style
    ~criteria () =
  if max_partitions < 1 then invalid_arg "Autosearch.run: max_partitions < 1";
  let levels = List.length (Chop_dfg.Analysis.levels graph) in
  let ks =
    Chop_util.Listx.range 1
      (min max_partitions (min levels (Chop_dfg.Graph.op_count graph)))
  in
  let candidates =
    List.concat_map
      (fun k ->
        List.filter_map
          (fun strategy ->
            match Autopart.generate graph ~k strategy with
            | exception Invalid_argument _ -> None
            | partitioning ->
                if List.length partitioning.Chop_dfg.Partition.parts <> k then
                  None (* generation degenerated; the k is covered elsewhere *)
                else
                  let spec =
                    Chop.Rig.custom ~params ~library ~graph ~partitioning
                      ~package ~clocks ~style ~criteria ()
                  in
                  Some
                    {
                      partitions = k;
                      strategy;
                      spec;
                      judgement = Chop.Advisor.what_if spec;
                      chip_set_cost =
                        Chop_tech.Cost.chip_set_cost cost_model
                          (List.map (fun c -> c.Chop.Spec.package) spec.Chop.Spec.chips);
                    })
          (if k = 1 then [ Autopart.Levels ] else strategies))
      ks
  in
  List.sort (fun a b -> Stdlib.compare (rank a) (rank b)) candidates

let best candidates =
  List.find_opt (fun c -> c.judgement.Chop.Advisor.feasible) candidates

let cheapest candidates =
  List.filter (fun c -> c.judgement.Chop.Advisor.feasible) candidates
  |> List.sort (fun a b -> Float.compare a.chip_set_cost b.chip_set_cost)
  |> function
  | [] -> None
  | c :: _ -> Some c

let describe c =
  Printf.sprintf "%d partition(s) via %s ($%.0f chip set): %s" c.partitions
    (Autopart.strategy_name c.strategy) c.chip_set_cost
    c.judgement.Chop.Advisor.advice
