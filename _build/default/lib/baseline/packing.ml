let min_area_estimate spec ~label =
  let part = Chop_dfg.Partition.find spec.Chop.Spec.partitioning label in
  let sub = Chop_dfg.Partition.subgraph spec.Chop.Spec.partitioning part in
  let cfg = Chop.Explore.predictor_config spec ~label in
  match Chop_bad.Predictor.predict cfg ~label sub with
  | [] ->
      (* uncovered library: fall back to one unit of the cheapest module
         per class *)
      Chop_util.Listx.sum_byf
        (fun (cls, _) ->
          match Chop_tech.Component.alternatives spec.Chop.Spec.library ~cls with
          | [] -> 0.
          | alts ->
              List.fold_left
                (fun acc c -> Float.min acc c.Chop_tech.Component.area)
                infinity alts)
        (Chop_dfg.Graph.op_profile sub)
  | preds ->
      List.fold_left
        (fun acc p ->
          Float.min acc (Chop_util.Triplet.(p.Chop_bad.Prediction.area.likely)))
        infinity preds

let pack ?package spec ~chips =
  let parts = spec.Chop.Spec.partitioning.Chop_dfg.Partition.parts in
  if chips < 1 then invalid_arg "Packing.pack: chips < 1";
  if chips > List.length parts then
    invalid_arg "Packing.pack: more chips than partitions";
  let package =
    match package with
    | Some p -> p
    | None -> (List.hd spec.Chop.Spec.chips).Chop.Spec.package
  in
  let chip_instances =
    List.map
      (fun i ->
        { Chop.Spec.chip_name = Printf.sprintf "chip%d" i; package })
      (Chop_util.Listx.range 1 chips)
  in
  (* first-fit decreasing on estimated area *)
  let estimates =
    List.map
      (fun p ->
        let label = p.Chop_dfg.Partition.label in
        (label, min_area_estimate spec ~label))
      parts
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  in
  let loads = Array.make chips 0. in
  let assignment =
    List.map
      (fun (label, area) ->
        let best = ref 0 in
        Array.iteri (fun i l -> if l < loads.(!best) then best := i) loads;
        loads.(!best) <- loads.(!best) +. area;
        (label, Printf.sprintf "chip%d" (!best + 1)))
      estimates
  in
  (* memory hosts must point at surviving chips: re-host onto chip1 *)
  let memory_hosts =
    List.map (fun (block, _) -> (block, "chip1")) spec.Chop.Spec.memory_hosts
  in
  Chop.Spec.make ~params:spec.Chop.Spec.params ~memories:spec.Chop.Spec.memories
    ~memory_hosts ~graph:spec.Chop.Spec.graph ~library:spec.Chop.Spec.library
    ~chips:chip_instances ~partitioning:spec.Chop.Spec.partitioning ~assignment
    ~clocks:spec.Chop.Spec.clocks ~style:spec.Chop.Spec.style
    ~criteria:spec.Chop.Spec.criteria ()
