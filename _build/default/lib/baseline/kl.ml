module IntSet = Set.Make (Int)

type result = {
  side_a : Chop_dfg.Graph.node_id list;
  side_b : Chop_dfg.Graph.node_id list;
  cut_bits : int;
  passes : int;
}

(* Each cut value costs its width once per foreign side that consumes it. *)
let cut_bits g ~in_a =
  let comp id =
    Chop_dfg.Op.is_computational (Chop_dfg.Graph.node g id).Chop_dfg.Graph.op
  in
  List.fold_left
    (fun acc n ->
      let id = n.Chop_dfg.Graph.id in
      if not (comp id) then acc
      else
        let crosses =
          List.exists
            (fun s -> comp s && in_a s <> in_a id)
            (Chop_dfg.Graph.succs g id)
        in
        if crosses then acc + n.Chop_dfg.Graph.width else acc)
    0 (Chop_dfg.Graph.nodes g)

let cut_of_sets g a =
  cut_bits g ~in_a:(fun id -> IntSet.mem id a)

let bipartition ?(max_passes = 10) ~seed g =
  let ops = List.map (fun n -> n.Chop_dfg.Graph.id) (Chop_dfg.Graph.operations g) in
  let n = List.length ops in
  if n < 2 then
    { side_a = ops; side_b = []; cut_bits = 0; passes = 0 }
  else begin
    let rng = Random.State.make [| seed; n |] in
    (* initial balanced split along a lightly perturbed topological order *)
    let arr = Array.of_list ops in
    for _ = 0 to n / 4 do
      let i = Random.State.int rng n and j = Random.State.int rng n in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    let half = n / 2 in
    let a = ref IntSet.empty in
    Array.iteri (fun i id -> if i < half then a := IntSet.add id !a) arr;
    let passes = ref 0 in
    let improved = ref true in
    while !improved && !passes < max_passes do
      incr passes;
      improved := false;
      (* one KL pass: repeatedly swap the pair with the best gain, locking
         swapped nodes; then keep the best prefix of the swap sequence *)
      let locked = ref IntSet.empty in
      let current = ref !a in
      let best = ref (cut_of_sets g !a, !a) in
      let continue_pass = ref true in
      while !continue_pass do
        let avail_a =
          IntSet.elements (IntSet.diff !current !locked)
        and avail_b =
          List.filter
            (fun id -> (not (IntSet.mem id !current)) && not (IntSet.mem id !locked))
            ops
        in
        match (avail_a, avail_b) with
        | [], _ | _, [] -> continue_pass := false
        | _ ->
            (* greedy best swap (exact evaluation — graphs are small) *)
            let best_swap = ref None in
            List.iter
              (fun ia ->
                List.iter
                  (fun ib ->
                    let candidate =
                      IntSet.add ib (IntSet.remove ia !current)
                    in
                    let cost = cut_of_sets g candidate in
                    match !best_swap with
                    | Some (c, _, _, _) when c <= cost -> ()
                    | _ -> best_swap := Some (cost, ia, ib, candidate))
                  avail_b)
              avail_a;
            (match !best_swap with
            | None -> continue_pass := false
            | Some (cost, ia, ib, candidate) ->
                current := candidate;
                locked := IntSet.add ia (IntSet.add ib !locked);
                let best_cost, _ = !best in
                if cost < best_cost then best := (cost, candidate))
      done;
      let best_cost, best_set = !best in
      if best_cost < cut_of_sets g !a then begin
        a := best_set;
        improved := true
      end
    done;
    let side_a = List.filter (fun id -> IntSet.mem id !a) ops in
    let side_b = List.filter (fun id -> not (IntSet.mem id !a)) ops in
    { side_a; side_b; cut_bits = cut_of_sets g !a; passes = !passes }
  end

let legalize g side_a side_b =
  let a = ref (IntSet.of_list side_a) and b = ref (IntSet.of_list side_b) in
  let comp_preds id =
    List.filter
      (fun p ->
        Chop_dfg.Op.is_computational (Chop_dfg.Graph.node g p).Chop_dfg.Graph.op)
      (Chop_dfg.Graph.preds g id)
  in
  (* ancestors of [id] within B, inclusive *)
  let rec ancestors_in_b id acc =
    if IntSet.mem id acc || not (IntSet.mem id !b) then acc
    else
      List.fold_left
        (fun acc p -> ancestors_in_b p acc)
        (IntSet.add id acc) (comp_preds id)
  in
  let violation () =
    List.find_opt
      (fun (src, dst) -> IntSet.mem src !b && IntSet.mem dst !a)
      (Chop_dfg.Graph.edges g)
  in
  let rec fix () =
    match violation () with
    | None -> ()
    | Some (src, _) ->
        let pulled = ancestors_in_b src IntSet.empty in
        a := IntSet.union !a pulled;
        b := IntSet.diff !b pulled;
        fix ()
  in
  fix ();
  (IntSet.elements !a, IntSet.elements !b)
