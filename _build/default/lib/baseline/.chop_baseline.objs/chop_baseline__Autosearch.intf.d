lib/baseline/autosearch.mli: Autopart Chop Chop_bad Chop_dfg Chop_tech
