lib/baseline/packing.ml: Array Chop Chop_bad Chop_dfg Chop_tech Chop_util Float List Printf
