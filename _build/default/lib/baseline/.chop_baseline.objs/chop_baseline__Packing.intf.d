lib/baseline/packing.mli: Chop Chop_tech Chop_util
