lib/baseline/autopart.ml: Array Chop_dfg Chop_util Int Kl List Printf Random
