lib/baseline/autosearch.ml: Autopart Chop Chop_dfg Chop_tech Chop_util Float List Printf Stdlib
