lib/baseline/kl.mli: Chop_dfg
