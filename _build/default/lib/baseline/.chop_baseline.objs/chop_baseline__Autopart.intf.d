lib/baseline/autopart.mli: Chop_dfg
