lib/baseline/kl.ml: Array Chop_dfg Int List Random Set
