(** Kernighan–Lin min-cut bipartitioning [4] — the classic graph-partitioning
    baseline the paper contrasts CHOP against.

    The paper argues (section 1.1) that for behavioral specifications the
    KL model "is not directly applicable": the sum of cut value widths does
    not directly give pin requirements, nor operation sizes chip areas.
    This implementation lets the benches demonstrate that: KL minimizes cut
    bits, while CHOP judges feasibility. *)

type result = {
  side_a : Chop_dfg.Graph.node_id list;
  side_b : Chop_dfg.Graph.node_id list;
  cut_bits : int;  (** bits crossing the cut, each producer counted once per
                       consuming side *)
  passes : int;  (** improvement passes until convergence *)
}

val cut_bits :
  Chop_dfg.Graph.t -> in_a:(Chop_dfg.Graph.node_id -> bool) -> int
(** Cut cost of an arbitrary bipartition of the computational nodes. *)

val bipartition :
  ?max_passes:int -> seed:int -> Chop_dfg.Graph.t -> result
(** Balanced KL bipartition of the computational nodes: starts from a
    topological-order split perturbed by [seed], then applies
    Kernighan–Lin improvement passes (greedy gain-ordered swap sequences
    with the best-prefix rule) until no pass improves the cut or
    [max_passes] (default 10) is reached. *)

val legalize :
  Chop_dfg.Graph.t ->
  Chop_dfg.Graph.node_id list ->
  Chop_dfg.Graph.node_id list ->
  Chop_dfg.Graph.node_id list * Chop_dfg.Graph.node_id list
(** Repairs a bipartition so the quotient graph is acyclic (CHOP's mutual
    data-dependency restriction, section 2.3): while an edge runs from B
    back to A, the offending producers and their forward closure within B
    are pulled into A.  The A side can only grow. *)
