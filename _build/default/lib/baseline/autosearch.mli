(** Automatic partitioning search.

    CHOP proper keeps the designer in the loop; this extension closes the
    loop for the paper's "task creation" application (section 1): it
    sweeps partition counts and generation strategies, judges every
    candidate with CHOP's feasibility machinery, and ranks the survivors.
    Chips are assumed uniform (one package), one chip per partition. *)

type candidate = {
  partitions : int;
  strategy : Autopart.strategy;
  spec : Chop.Spec.t;
  judgement : Chop.Advisor.judgement;
  chip_set_cost : float;
      (** manufacturing cost of the candidate's chip set (dollars, from
          {!Chop_tech.Cost}) — "target chip characteristics generally
          dictate the overall manufacturing cost" (paper, section 2.7) *)
}

val run :
  ?max_partitions:int ->
  ?strategies:Autopart.strategy list ->
  ?params:Chop.Spec.params ->
  ?library:Chop_tech.Component.library ->
  ?cost_model:Chop_tech.Cost.model ->
  graph:Chop_dfg.Graph.t ->
  package:Chop_tech.Chip.t ->
  clocks:Chop_tech.Clocking.t ->
  style:Chop_tech.Style.t ->
  criteria:Chop_bad.Feasibility.criteria ->
  unit ->
  candidate list
(** Every evaluated candidate, feasible ones first, ordered by
    (performance, chip count, delay).  [max_partitions] defaults to 4;
    [strategies] defaults to levels + min-cut; [library] to the Table 1
    experiment library.  Candidates whose generation
    degenerates (e.g. min-cut legalization merging all sides) are skipped.
    @raise Invalid_argument when [max_partitions < 1]. *)

val best : candidate list -> candidate option
(** First feasible candidate, if any. *)

val cheapest : candidate list -> candidate option
(** The feasible candidate with the lowest chip-set cost. *)

val describe : candidate -> string
