(** Packing partitions onto a smaller chip set.

    The paper's Figure 2 places two partitions on one chip; the experiments
    however assign one partition per chip.  This module automates the
    packing decision: reassign a specification's partitions onto [chips]
    uniform packages, balancing the partitions' smallest predicted areas
    (first-fit decreasing), so a search can ask whether the design really
    needs as many chips as partitions. *)

val min_area_estimate : Chop.Spec.t -> label:string -> Chop_util.Units.mil2
(** The smallest likely area among BAD's predictions for the partition —
    the footprint the packing balances.  Falls back to a functional-unit
    lower bound when the library yields no predictions. *)

val pack :
  ?package:Chop_tech.Chip.t -> Chop.Spec.t -> chips:int -> Chop.Spec.t
(** A new spec with [chips] uniform chips (named [chip1..chipN], default
    package: the first chip's) and every partition reassigned by first-fit
    decreasing on {!min_area_estimate}.  Feasibility is *not* checked here
    — that is what CHOP's exploration is for.
    @raise Invalid_argument when [chips < 1] or exceeds the partition
    count. *)
