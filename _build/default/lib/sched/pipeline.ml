let feasible_ii s ~ii =
  if ii < 1 then invalid_arg "Pipeline.feasible_ii: ii < 1";
  if ii >= s.Schedule.length then true
  else
    List.for_all
      (fun (cls, cap) ->
        let profile = Schedule.busy_profile s ~cls in
        let folded = Array.make ii 0 in
        Array.iteri
          (fun step busy -> folded.(step mod ii) <- folded.(step mod ii) + busy)
          profile;
        Array.for_all (fun busy -> busy <= cap) folded)
      s.Schedule.alloc

let min_ii s =
  let lower_bound =
    List.fold_left
      (fun acc (cls, cap) ->
        let work = Array.fold_left ( + ) 0 (Schedule.busy_profile s ~cls) in
        max acc (Chop_util.Units.ceil_div work cap))
      1 s.Schedule.alloc
  in
  let rec search ii =
    if ii >= s.Schedule.length || feasible_ii s ~ii then ii else search (ii + 1)
  in
  search (max 1 lower_bound)

let stage_count s ~ii =
  if ii < 1 then invalid_arg "Pipeline.stage_count: ii < 1";
  if s.Schedule.length = 0 then 1
  else Chop_util.Units.ceil_div s.Schedule.length ii
