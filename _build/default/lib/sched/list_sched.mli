(** Resource-constrained list scheduling.

    Critical-path list scheduling: ready operations are issued in order of
    decreasing urgency (longest dependence chain to any sink, the measure of
    Sehwa [8]), limited by the functional-unit allocation.  Functional units
    are not internally pipelined: a multi-cycle operation occupies its unit
    for its whole latency. *)

val run :
  latency:(Chop_dfg.Graph.node -> int) ->
  alloc:Schedule.alloc ->
  Chop_dfg.Graph.t ->
  Schedule.t
(** @raise Invalid_argument when the allocation misses a class the graph
    needs, gives a non-positive count, or [latency] returns < 1 for a
    computational node. *)

val minimal_alloc : Chop_dfg.Graph.t -> Schedule.alloc
(** One unit per functional class used by the graph — the most serial
    allocation. *)

val maximal_useful_alloc :
  ?latency:(Chop_dfg.Graph.node -> int) -> Chop_dfg.Graph.t -> Schedule.alloc
(** Per class, the peak number of simultaneously-ready operations in the
    ASAP schedule — allocating more units can never improve the schedule. *)
