module IntMap = Map.Make (Int)

(* Longest path (in latency steps) from each node to any sink, inclusive. *)
let urgency g ~latency =
  let order = List.rev (Chop_dfg.Analysis.topological_order g) in
  List.fold_left
    (fun acc id ->
      let n = Chop_dfg.Graph.node g id in
      let own =
        if Chop_dfg.Op.is_computational n.Chop_dfg.Graph.op then latency n else 0
      in
      let downstream =
        List.fold_left
          (fun best s -> max best (IntMap.find s acc))
          0
          (Chop_dfg.Graph.succs g id)
      in
      IntMap.add id (own + downstream) acc)
    IntMap.empty order

let run ~latency ~alloc g =
  Schedule.validate_alloc alloc;
  let ops = Chop_dfg.Graph.operations g in
  List.iter
    (fun n ->
      let cls = Chop_dfg.Op.functional_class n.Chop_dfg.Graph.op in
      if Schedule.alloc_get alloc cls < 1 then
        invalid_arg (Printf.sprintf "List_sched.run: no units allocated for %s" cls);
      if latency n < 1 then
        invalid_arg
          (Printf.sprintf "List_sched.run: latency of %s must be >= 1"
             n.Chop_dfg.Graph.name))
    ops;
  let urgencies = urgency g ~latency in
  let lat_tbl = Hashtbl.create 32 in
  List.iter (fun n -> Hashtbl.replace lat_tbl n.Chop_dfg.Graph.id (latency n)) ops;
  (* remaining computational predecessors per op *)
  let pending = Hashtbl.create 32 in
  let comp_preds id =
    List.filter
      (fun p ->
        Chop_dfg.Op.is_computational (Chop_dfg.Graph.node g p).Chop_dfg.Graph.op)
      (Chop_dfg.Graph.preds g id)
  in
  List.iter
    (fun n ->
      Hashtbl.replace pending n.Chop_dfg.Graph.id
        (List.length (comp_preds n.Chop_dfg.Graph.id)))
    ops;
  let ready = ref [] and starts = ref [] in
  List.iter
    (fun n ->
      if Hashtbl.find pending n.Chop_dfg.Graph.id = 0 then
        ready := n.Chop_dfg.Graph.id :: !ready)
    ops;
  (* (finish step, id) of operations in flight *)
  let in_flight = ref [] in
  let free = Hashtbl.create 8 in
  List.iter (fun (cls, n) -> Hashtbl.replace free cls n) alloc;
  let n_left = ref (List.length ops) in
  let step = ref 0 in
  let guard = ref 0 in
  while !n_left > 0 do
    incr guard;
    if !guard > 1_000_000 then failwith "List_sched.run: no progress";
    (* retire *)
    let done_now, still = List.partition (fun (f, _) -> f <= !step) !in_flight in
    in_flight := still;
    List.iter
      (fun (_, id) ->
        let cls =
          Chop_dfg.Op.functional_class (Chop_dfg.Graph.node g id).Chop_dfg.Graph.op
        in
        Hashtbl.replace free cls (1 + Hashtbl.find free cls);
        List.iter
          (fun s ->
            match Hashtbl.find_opt pending s with
            | Some k ->
                Hashtbl.replace pending s (k - 1);
                if k - 1 = 0 then ready := s :: !ready
            | None -> ())
          (Chop_dfg.Graph.succs g id))
      done_now;
    (* issue by decreasing urgency *)
    let order =
      List.sort
        (fun a b -> Int.compare (IntMap.find b urgencies) (IntMap.find a urgencies))
        !ready
    in
    ready := [];
    List.iter
      (fun id ->
        let cls =
          Chop_dfg.Op.functional_class (Chop_dfg.Graph.node g id).Chop_dfg.Graph.op
        in
        let avail = Hashtbl.find free cls in
        if avail > 0 then begin
          Hashtbl.replace free cls (avail - 1);
          let lat = Hashtbl.find lat_tbl id in
          starts := (id, !step) :: !starts;
          in_flight := (!step + lat, id) :: !in_flight;
          decr n_left
        end
        else ready := id :: !ready)
      order;
    incr step;
    (* fast-forward to the next retirement when nothing can issue *)
    if !ready <> [] || !n_left > 0 then
      match !in_flight with
      | [] -> ()
      | flights ->
          let next = List.fold_left (fun m (f, _) -> min m f) max_int flights in
          if next > !step then step := next
  done;
  let starts = List.rev !starts in
  let latencies = List.map (fun (id, _) -> (id, Hashtbl.find lat_tbl id)) starts in
  let length =
    List.fold_left
      (fun acc (id, st) -> max acc (st + Hashtbl.find lat_tbl id))
      0 starts
  in
  { Schedule.graph = g; alloc; starts; latencies; length }

let minimal_alloc g =
  Chop_dfg.Graph.op_profile g |> List.map (fun (cls, _) -> (cls, 1))

let maximal_useful_alloc ?latency g =
  let profile =
    match latency with
    | Some latency -> Chop_dfg.Analysis.max_width_profile ~latency g
    | None -> Chop_dfg.Analysis.max_width_profile g
  in
  profile
