type alloc = (string * int) list

let alloc_get alloc cls =
  Option.value ~default:0 (List.assoc_opt cls alloc)

let validate_alloc alloc =
  let classes = List.map fst alloc in
  if List.length (List.sort_uniq String.compare classes) <> List.length classes
  then invalid_arg "Schedule: duplicate class in allocation";
  List.iter
    (fun (cls, n) ->
      if n < 1 then
        invalid_arg (Printf.sprintf "Schedule: allocation %s = %d < 1" cls n))
    alloc

type t = {
  graph : Chop_dfg.Graph.t;
  alloc : alloc;
  starts : (Chop_dfg.Graph.node_id * int) list;
  latencies : (Chop_dfg.Graph.node_id * int) list;
  length : int;
}

let start s id = List.assoc id s.starts
let latency s id = List.assoc id s.latencies
let finish s id = start s id + latency s id

let busy_profile s ~cls =
  let profile = Array.make (max 1 s.length) 0 in
  List.iter
    (fun (id, st) ->
      let n = Chop_dfg.Graph.node s.graph id in
      if Chop_dfg.Op.functional_class n.Chop_dfg.Graph.op = cls then
        for step = st to st + latency s id - 1 do
          if step < Array.length profile then
            profile.(step) <- profile.(step) + 1
        done)
    s.starts;
  profile

let check s =
  let g = s.graph in
  let exception Bad of string in
  try
    (* precedence *)
    List.iter
      (fun (id, st) ->
        List.iter
          (fun p ->
            let pn = Chop_dfg.Graph.node g p in
            if Chop_dfg.Op.is_computational pn.Chop_dfg.Graph.op then
              let pf = finish s p in
              if st < pf then
                raise
                  (Bad
                     (Printf.sprintf "node %d starts at %d before pred %d finishes at %d"
                        id st p pf)))
          (Chop_dfg.Graph.preds g id))
      s.starts;
    (* resources *)
    List.iter
      (fun (cls, cap) ->
        Array.iteri
          (fun step busy ->
            if busy > cap then
              raise
                (Bad
                   (Printf.sprintf "class %s uses %d units at step %d (capacity %d)"
                      cls busy step cap)))
          (busy_profile s ~cls))
      s.alloc;
    (* length *)
    List.iter
      (fun (id, _) ->
        if finish s id > s.length then
          raise (Bad (Printf.sprintf "node %d finishes after schedule length" id)))
      s.starts;
    Ok ()
  with Bad reason -> Error reason

let pp ppf s =
  Format.fprintf ppf "@[<v>schedule of %s: length %d, alloc [%s]@,"
    (Chop_dfg.Graph.name s.graph) s.length
    (String.concat "; "
       (List.map (fun (c, n) -> Printf.sprintf "%s:%d" c n) s.alloc));
  List.iter
    (fun (id, st) ->
      let n = Chop_dfg.Graph.node s.graph id in
      Format.fprintf ppf "  %s @@ %d (+%d)@," n.Chop_dfg.Graph.name st
        (latency s id))
    (List.sort (fun (_, a) (_, b) -> Int.compare a b) s.starts);
  Format.fprintf ppf "@]"
