(** Operation schedules.

    A schedule assigns each computational node of a DFG a start step (in
    data-path cycles) under a functional-unit allocation: a number of unit
    instances per functional class. *)

type alloc = (string * int) list
(** Functional-unit allocation: [(class, instances)], each count >= 1,
    classes unique. *)

val alloc_get : alloc -> string -> int
(** Instances allocated to a class; 0 when absent. *)

val validate_alloc : alloc -> unit
(** @raise Invalid_argument on duplicate classes or non-positive counts. *)

type t = {
  graph : Chop_dfg.Graph.t;
  alloc : alloc;
  starts : (Chop_dfg.Graph.node_id * int) list;
      (** start step per computational node *)
  latencies : (Chop_dfg.Graph.node_id * int) list;
      (** steps each computational node occupies (>= 1) *)
  length : int;  (** schedule length: max finish step *)
}

val start : t -> Chop_dfg.Graph.node_id -> int
(** @raise Not_found for nodes without a start (boundary nodes). *)

val finish : t -> Chop_dfg.Graph.node_id -> int

val check : t -> (unit, string) result
(** Verifies precedence (every operation starts no earlier than each
    predecessor's finish) and per-step resource usage within the
    allocation.  Returns [Error reason] on the first violation. *)

val busy_profile : t -> cls:string -> int array
(** [busy_profile s ~cls].(step) = units of [cls] busy at [step]; length
    equals [s.length]. *)

val pp : Format.formatter -> t -> unit
