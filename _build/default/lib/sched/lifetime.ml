type demand = { register_bits : int; peak_values : int }

let analyze ?ii s =
  (match ii with
  | Some ii when ii < 1 -> invalid_arg "Lifetime.analyze: ii < 1"
  | Some _ | None -> ());
  let g = s.Schedule.graph in
  let horizon = max 1 s.Schedule.length in
  (* (birth, death, width) per value; death exclusive *)
  let intervals =
    List.filter_map
      (fun n ->
        let id = n.Chop_dfg.Graph.id in
        let consumers =
          List.filter
            (fun c ->
              Chop_dfg.Op.is_computational
                (Chop_dfg.Graph.node g c).Chop_dfg.Graph.op)
            (Chop_dfg.Graph.succs g id)
        in
        let feeds_output =
          List.exists
            (fun c -> (Chop_dfg.Graph.node g c).Chop_dfg.Graph.op = Chop_dfg.Op.Output)
            (Chop_dfg.Graph.succs g id)
        in
        let birth =
          match n.Chop_dfg.Graph.op with
          | Chop_dfg.Op.Input -> Some 0
          | Chop_dfg.Op.Const -> None (* constants live in dedicated storage *)
          | op when Chop_dfg.Op.is_computational op -> Some (Schedule.finish s id)
          | _ -> None
        in
        match birth with
        | None -> None
        | Some birth ->
            let death =
              let last_use =
                List.fold_left
                  (fun acc c -> max acc (Schedule.start s c + 1))
                  birth consumers
              in
              if feeds_output then horizon else last_use
            in
            if death <= birth && consumers = [] && not feeds_output then None
            else Some (birth, max death (birth + 1), n.Chop_dfg.Graph.width))
      (Chop_dfg.Graph.nodes g)
  in
  let usage = Array.make horizon 0 and counts = Array.make horizon 0 in
  let record step width =
    let slot =
      match ii with Some ii -> step mod ii | None -> step
    in
    if slot < horizon then begin
      usage.(slot) <- usage.(slot) + width;
      counts.(slot) <- counts.(slot) + 1
    end
  in
  List.iter
    (fun (birth, death, width) ->
      for step = birth to min (death - 1) (horizon - 1) do
        record step width
      done)
    intervals;
  let register_bits = Array.fold_left max 0 usage in
  let peak_step = ref 0 in
  Array.iteri (fun i u -> if u > usage.(!peak_step) then peak_step := i) usage;
  { register_bits; peak_values = counts.(!peak_step) }
