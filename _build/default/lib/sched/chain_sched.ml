module IntMap = Map.Make (Int)

let run ~delay ~budget ~alloc g =
  if budget <= 0. then invalid_arg "Chain_sched.run: non-positive budget";
  Schedule.validate_alloc alloc;
  let ops = Chop_dfg.Graph.operations g in
  List.iter
    (fun n ->
      let cls = Chop_dfg.Op.functional_class n.Chop_dfg.Graph.op in
      if Schedule.alloc_get alloc cls < 1 then
        invalid_arg
          (Printf.sprintf "Chain_sched.run: no units allocated for %s" cls);
      if delay n > budget then
        invalid_arg
          (Printf.sprintf "Chain_sched.run: %s needs %.0f ns but the cycle \
                           offers %.0f"
             n.Chop_dfg.Graph.name (delay n) budget))
    ops;
  (* urgency in combinational ns, to prioritize long chains *)
  let urgency =
    let order = List.rev (Chop_dfg.Analysis.topological_order g) in
    List.fold_left
      (fun acc id ->
        let n = Chop_dfg.Graph.node g id in
        let own =
          if Chop_dfg.Op.is_computational n.Chop_dfg.Graph.op then delay n else 0.
        in
        let downstream =
          List.fold_left
            (fun best s -> Float.max best (IntMap.find s acc))
            0. (Chop_dfg.Graph.succs g id)
        in
        IntMap.add id (own +. downstream) acc)
      IntMap.empty order
  in
  (* process in topological order, most urgent first within a level *)
  let asap = Chop_dfg.Analysis.asap g in
  let order =
    List.stable_sort
      (fun a b ->
        Float.compare (IntMap.find b.Chop_dfg.Graph.id urgency)
          (IntMap.find a.Chop_dfg.Graph.id urgency))
      ops
    |> List.stable_sort (fun a b ->
           Int.compare (List.assoc a.Chop_dfg.Graph.id asap)
             (List.assoc b.Chop_dfg.Graph.id asap))
  in
  let usage = Hashtbl.create 64 in
  let used cls step =
    Option.value ~default:0 (Hashtbl.find_opt usage (cls, step))
  in
  let starts = ref IntMap.empty and offsets = ref IntMap.empty in
  List.iter
    (fun n ->
      let id = n.Chop_dfg.Graph.id in
      let cls = Chop_dfg.Op.functional_class n.Chop_dfg.Graph.op in
      let cap = Schedule.alloc_get alloc cls in
      let d = delay n in
      (* earliest position given predecessors: chain when the accumulated
         delay fits, otherwise the next step *)
      let step0, offset0 =
        List.fold_left
          (fun (s, off) p ->
            let pn = Chop_dfg.Graph.node g p in
            if not (Chop_dfg.Op.is_computational pn.Chop_dfg.Graph.op) then (s, off)
            else
              let ps = IntMap.find p !starts in
              let poff = IntMap.find p !offsets in
              let avail = poff +. delay pn in
              let cs, coff =
                if avail +. d <= budget then (ps, avail) else (ps + 1, 0.)
              in
              if cs > s then (cs, coff)
              else if cs = s then (s, Float.max off coff)
              else (s, off))
          (0, 0.) (Chop_dfg.Graph.preds g id)
      in
      let step0, offset0 =
        if offset0 +. d <= budget then (step0, offset0) else (step0 + 1, 0.)
      in
      (* first step with a free unit; leaving the chained step resets the
         offset *)
      let rec place s off =
        if used cls s < cap then (s, off) else place (s + 1) 0.
      in
      let s, off = place step0 offset0 in
      Hashtbl.replace usage (cls, s) (used cls s + 1);
      starts := IntMap.add id s !starts;
      offsets := IntMap.add id off !offsets)
    order;
  let start_list = List.map (fun n -> (n.Chop_dfg.Graph.id, IntMap.find n.Chop_dfg.Graph.id !starts)) ops in
  let latencies = List.map (fun n -> (n.Chop_dfg.Graph.id, 1)) ops in
  let length =
    List.fold_left (fun acc (_, s) -> max acc (s + 1)) 0 start_list
  in
  ( { Schedule.graph = g; alloc; starts = start_list; latencies; length },
    List.map
      (fun n -> (n.Chop_dfg.Graph.id, IntMap.find n.Chop_dfg.Graph.id !offsets))
      ops )

let check ~delay ~budget (sched, offsets) =
  let g = sched.Schedule.graph in
  let exception Bad of string in
  try
    (* resources *)
    List.iter
      (fun (cls, cap) ->
        Array.iteri
          (fun step busy ->
            if busy > cap then
              raise
                (Bad (Printf.sprintf "class %s oversubscribed at step %d" cls step)))
          (Schedule.busy_profile sched ~cls))
      sched.Schedule.alloc;
    (* dependences and chain delays *)
    List.iter
      (fun (id, s) ->
        let off = List.assoc id offsets in
        let n = Chop_dfg.Graph.node g id in
        if off +. delay n > budget +. 1e-9 then
          raise (Bad (Printf.sprintf "node %d overruns the cycle budget" id));
        List.iter
          (fun p ->
            let pn = Chop_dfg.Graph.node g p in
            if Chop_dfg.Op.is_computational pn.Chop_dfg.Graph.op then begin
              let ps = List.assoc p sched.Schedule.starts in
              if s < ps then
                raise (Bad (Printf.sprintf "node %d precedes its operand" id));
              if s = ps then begin
                let poff = List.assoc p offsets in
                if off +. 1e-9 < poff +. delay pn then
                  raise
                    (Bad
                       (Printf.sprintf
                          "node %d chains before its operand settles" id))
              end
            end)
          (Chop_dfg.Graph.preds g id))
      sched.Schedule.starts;
    Ok ()
  with Bad reason -> Error reason
