(** Resource-constrained list scheduling with operator chaining.

    In the single-cycle discipline a data-path cycle is long (the paper's
    experiment 1 runs it at 10x the 300 ns main clock); synthesis tools of
    the era chained dependent cheap operations combinationally inside one
    cycle.  This scheduler allows an operation to share its predecessor's
    control step when the accumulated combinational delay along the chain
    stays within the cycle's [budget]; chained values bypass the register
    file entirely.

    Chained schedules violate {!Schedule.check}'s strict precedence (a
    consumer may start at its producer's step), so validity is checked with
    {!check} instead. *)

val run :
  delay:(Chop_dfg.Graph.node -> Chop_util.Units.ns) ->
  budget:Chop_util.Units.ns ->
  alloc:Schedule.alloc ->
  Chop_dfg.Graph.t ->
  Schedule.t * (Chop_dfg.Graph.node_id * Chop_util.Units.ns) list
(** Returns the schedule (unit latencies) and each operation's combinational
    offset within its step (0 for chain heads).  @raise Invalid_argument
    when [budget <= 0], a computational node's [delay] exceeds [budget]
    (it cannot fit any cycle), or the allocation misses a class. *)

val check :
  delay:(Chop_dfg.Graph.node -> Chop_util.Units.ns) ->
  budget:Chop_util.Units.ns ->
  Schedule.t * (Chop_dfg.Graph.node_id * Chop_util.Units.ns) list ->
  (unit, string) result
(** Chaining-aware validity: resources within allocation; every dependence
    either crosses a step boundary or chains with consistent offsets and a
    total chain delay within [budget]. *)
