(** Urgency scheduling of system-level tasks.

    Once partition and data-transfer delays are known, CHOP performs an
    urgency scheduling "to confirm feasibility of sharing the data pins of
    chips as well as to keep memory accesses to each memory block feasible
    while reaching the minimum overall system delay"; the urgency measure is
    based on the actual critical-path delays of tasks, as in Sehwa [8]
    (paper, section 2.5).

    Resources are renewable with integer capacity (a chip's shared data
    pins, a memory block's ports); a task holds its demanded units for its
    whole duration. *)

type resource = { rname : string; capacity : int }

type task = {
  tname : string;
  duration : int;  (** main-clock cycles; >= 0 *)
  demands : (string * int) list;  (** resource name -> units held *)
  deps : string list;  (** task names that must finish first *)
}

type placed = {
  task : task;
  ready : int;  (** step all dependencies had finished *)
  start_step : int;  (** step the task acquired its resources *)
  finish_step : int;  (** [start_step + duration] *)
}

type result = {
  placed : placed list;  (** in start order *)
  makespan : int;
}

exception Unschedulable of string

val run : resources:resource list -> task list -> result
(** @raise Unschedulable when a task demands more units than a resource's
    capacity, references an unknown resource or dependency, or the
    dependency graph is cyclic.
    @raise Invalid_argument on negative durations/demands or duplicate
    names. *)

val wait_of : result -> string -> int
(** [start - ready] of the named task: how long its input data sat in a
    buffer before the task could acquire pins/ports.
    @raise Not_found for an unknown task. *)

val critical_path : result -> string list
(** One chain of task names realizing the makespan, source to sink. *)
