(** Pipelined-design initiation-interval analysis (Sehwa-style [8]).

    Given a resource-constrained schedule, successive problem instances may
    be initiated every [ii] steps provided no functional class is
    oversubscribed when the schedule is overlapped with itself modulo [ii].
    The resynchronization (pipe-flushing) rate is assumed to be zero (paper,
    section 2.3). *)

val feasible_ii : Schedule.t -> ii:int -> bool
(** Can the schedule sustain one initiation every [ii] steps?
    @raise Invalid_argument when [ii < 1]. *)

val min_ii : Schedule.t -> int
(** Smallest feasible initiation interval; at most the schedule length
    (which is always feasible), at least the resource-bound
    [ceil (work_c / alloc_c)] over classes [c]. *)

val stage_count : Schedule.t -> ii:int -> int
(** Number of pipeline stages when initiating every [ii] steps:
    [ceil (length / ii)]. *)
