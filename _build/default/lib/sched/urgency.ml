type resource = { rname : string; capacity : int }

type task = {
  tname : string;
  duration : int;
  demands : (string * int) list;
  deps : string list;
}

type placed = { task : task; ready : int; start_step : int; finish_step : int }
type result = { placed : placed list; makespan : int }

exception Unschedulable of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unschedulable s)) fmt

let validate ~resources tasks =
  let names = List.map (fun t -> t.tname) tasks in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Urgency.run: duplicate task name";
  let rnames = List.map (fun r -> r.rname) resources in
  if List.length (List.sort_uniq String.compare rnames) <> List.length rnames
  then invalid_arg "Urgency.run: duplicate resource name";
  List.iter
    (fun t ->
      if t.duration < 0 then invalid_arg "Urgency.run: negative duration";
      List.iter
        (fun (r, units) ->
          if units < 0 then invalid_arg "Urgency.run: negative demand";
          match List.find_opt (fun res -> res.rname = r) resources with
          | None -> fail "task %s demands unknown resource %s" t.tname r
          | Some res ->
              if units > res.capacity then
                fail "task %s demands %d of %s (capacity %d)" t.tname units r
                  res.capacity)
        t.demands;
      List.iter
        (fun d ->
          if not (List.mem d names) then
            fail "task %s depends on unknown task %s" t.tname d)
        t.deps)
    tasks

(* Urgency: longest chain of durations from the task to any sink,
   inclusive — tasks holding up long futures go first. *)
let urgencies tasks =
  let tbl = Hashtbl.create 16 in
  let by_name = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace by_name t.tname t) tasks;
  let succs = Hashtbl.create 16 in
  List.iter
    (fun t ->
      List.iter
        (fun d ->
          Hashtbl.replace succs d
            (t.tname :: Option.value ~default:[] (Hashtbl.find_opt succs d)))
        t.deps)
    tasks;
  let visiting = Hashtbl.create 16 in
  let rec urgency name =
    match Hashtbl.find_opt tbl name with
    | Some u -> u
    | None ->
        if Hashtbl.mem visiting name then fail "cyclic task dependencies at %s" name;
        Hashtbl.replace visiting name ();
        let t = Hashtbl.find by_name name in
        let downstream =
          List.fold_left
            (fun acc s -> max acc (urgency s))
            0
            (Option.value ~default:[] (Hashtbl.find_opt succs name))
        in
        Hashtbl.remove visiting name;
        let u = t.duration + downstream in
        Hashtbl.replace tbl name u;
        u
  in
  List.iter (fun t -> ignore (urgency t.tname)) tasks;
  tbl

let run ~resources tasks =
  validate ~resources tasks;
  let urg = urgencies tasks in
  let finished = Hashtbl.create 16 in (* name -> finish step *)
  let placed = ref [] in
  (* usage.(resource) = list of (finish_step, units) currently held *)
  let held = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace held r.rname []) resources;
  let capacity r = (List.find (fun res -> res.rname = r) resources).capacity in
  let in_use r step =
    List.fold_left
      (fun acc (f, units) -> if f > step then acc + units else acc)
      0 (Hashtbl.find held r)
  in
  let remaining = ref tasks in
  let step = ref 0 in
  let guard = ref 0 in
  while !remaining <> [] do
    incr guard;
    if !guard > 2_000_000 then fail "no progress (internal)";
    let ready, blocked =
      List.partition
        (fun t -> List.for_all (fun d -> (
           match Hashtbl.find_opt finished d with
           | Some f -> f <= !step
           | None -> false)) t.deps)
        !remaining
    in
    let ready =
      List.sort
        (fun a b -> Int.compare (Hashtbl.find urg b.tname) (Hashtbl.find urg a.tname))
        ready
    in
    let still_waiting = ref [] in
    List.iter
      (fun t ->
        let fits =
          List.for_all
            (fun (r, units) -> in_use r !step + units <= capacity r)
            t.demands
        in
        if fits then begin
          List.iter
            (fun (r, units) ->
              Hashtbl.replace held r ((!step + t.duration, units) :: Hashtbl.find held r))
            t.demands;
          let ready_at =
            List.fold_left (fun acc d -> max acc (Hashtbl.find finished d)) 0 t.deps
          in
          Hashtbl.replace finished t.tname (!step + t.duration);
          placed :=
            { task = t; ready = ready_at; start_step = !step;
              finish_step = !step + t.duration }
            :: !placed
        end
        else still_waiting := t :: !still_waiting)
      ready;
    remaining := List.rev_append !still_waiting blocked;
    if !remaining <> [] then begin
      (* advance to the next event: a running task finishing after now *)
      let next =
        Hashtbl.fold
          (fun _ holds acc ->
            List.fold_left
              (fun acc (f, _) -> if f > !step then min acc f else acc)
              acc holds)
          held max_int
      in
      let next =
        Hashtbl.fold (fun _ f acc -> if f > !step then min acc f else acc) finished next
      in
      if next = max_int then
        (* nothing running: zero-duration chains — advance one step *)
        incr step
      else step := next
    end
  done;
  let placed = List.rev !placed in
  let makespan = List.fold_left (fun acc p -> max acc p.finish_step) 0 placed in
  { placed; makespan }

let wait_of result name =
  let p = List.find (fun p -> p.task.tname = name) result.placed in
  p.start_step - p.ready

let critical_path result =
  (* walk back from a task realizing the makespan through the dependency or
     resource wait that pinned its start *)
  let by_name = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace by_name p.task.tname p) result.placed;
  let rec back p acc =
    let acc = p.task.tname :: acc in
    let pinning =
      List.filter_map
        (fun d ->
          let dp = Hashtbl.find by_name d in
          if dp.finish_step = p.ready && p.ready > 0 then Some dp else None)
        p.task.deps
    in
    match pinning with
    | dp :: _ -> back dp acc
    | [] -> acc
  in
  match
    List.find_opt (fun p -> p.finish_step = result.makespan) result.placed
  with
  | None -> []
  | Some last -> back last []
