lib/sched/list_sched.mli: Chop_dfg Schedule
