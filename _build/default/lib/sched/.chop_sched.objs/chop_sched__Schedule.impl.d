lib/sched/schedule.ml: Array Chop_dfg Format Int List Option Printf String
