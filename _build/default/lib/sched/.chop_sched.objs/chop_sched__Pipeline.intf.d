lib/sched/pipeline.mli: Schedule
