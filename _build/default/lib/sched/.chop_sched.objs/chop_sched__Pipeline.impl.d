lib/sched/pipeline.ml: Array Chop_util List Schedule
