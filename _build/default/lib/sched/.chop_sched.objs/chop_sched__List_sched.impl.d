lib/sched/list_sched.ml: Chop_dfg Hashtbl Int List Map Printf Schedule
