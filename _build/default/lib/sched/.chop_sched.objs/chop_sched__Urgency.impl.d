lib/sched/urgency.ml: Hashtbl Int List Option Printf String
