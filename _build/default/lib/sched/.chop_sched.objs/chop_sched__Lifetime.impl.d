lib/sched/lifetime.ml: Array Chop_dfg List Schedule
