lib/sched/lifetime.mli: Schedule
