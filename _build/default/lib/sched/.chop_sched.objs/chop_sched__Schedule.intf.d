lib/sched/schedule.mli: Chop_dfg Format
