lib/sched/force_directed.mli: Chop_dfg Schedule
