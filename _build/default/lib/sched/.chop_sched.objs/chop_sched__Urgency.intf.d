lib/sched/urgency.mli:
