lib/sched/chain_sched.mli: Chop_dfg Chop_util Schedule
