lib/sched/force_directed.ml: Chop_dfg Hashtbl Int List Map Option Printf Schedule String
