lib/sched/chain_sched.ml: Array Chop_dfg Float Hashtbl Int List Map Option Printf Schedule
