(** Value-lifetime analysis for register prediction.

    A value is live from the step its producer finishes until the last step
    a consumer starts; primary-input values are live from step 0, values
    feeding primary outputs stay live until the schedule ends.  Register
    demand is the peak number of live bits.  For pipelined designs the
    lifetimes are folded modulo the initiation interval, since [stage_count]
    problem instances are simultaneously in flight. *)

type demand = {
  register_bits : int;  (** peak live bits = predicted data-path register bits *)
  peak_values : int;  (** number of values live at the peak step *)
}

val analyze : ?ii:int -> Schedule.t -> demand
(** [ii] folds lifetimes for a pipelined design; omit it for non-pipelined.
    @raise Invalid_argument when [ii < 1]. *)
