(** Resource binding: mapping scheduled operations onto functional-unit
    instances and values onto registers.

    The paper's "immediate task is to synthesize and layout some partitioned
    designs" (section 5) — binding is the first synthesis step after
    scheduling, and the resulting structure is what BAD's register and
    multiplexer predictions approximate. *)

type fu_instance = { fu_class : string; fu_index : int }
(** The [fu_index]-th unit of a functional class. *)

val bind_functional_units :
  Chop_sched.Schedule.t -> (Chop_dfg.Graph.node_id * fu_instance) list
(** Greedy earliest-free binding: operations are visited in start order and
    assigned the lowest-indexed instance of their class that is free for
    the operation's whole occupancy.  Never exceeds the schedule's
    allocation (guaranteed by the schedule's resource feasibility). *)

type interval = {
  producer : Chop_dfg.Graph.node_id;
  birth : int;  (** step the value becomes available *)
  death : int;  (** exclusive: last step the value is needed *)
  width : Chop_util.Units.bits;
}

val value_intervals : Chop_sched.Schedule.t -> interval list
(** Lifetime interval of every value that must be stored: operation results
    with consumers or feeding outputs, and primary-input values.  Constants
    are excluded (they live in dedicated storage). *)

val bind_registers :
  Chop_sched.Schedule.t -> (Chop_dfg.Graph.node_id * int) list * int
(** Left-edge register allocation over {!value_intervals}: returns the
    producer-to-register assignment and the number of (word) registers
    used.  Two values share a register only when their lifetimes are
    disjoint. *)
