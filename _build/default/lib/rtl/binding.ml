type fu_instance = { fu_class : string; fu_index : int }

let bind_functional_units sched =
  let g = sched.Chop_sched.Schedule.graph in
  (* (class, index) -> step the instance becomes free *)
  let free = Hashtbl.create 16 in
  let in_start_order =
    List.sort
      (fun (_, a) (_, b) -> Int.compare a b)
      sched.Chop_sched.Schedule.starts
  in
  List.map
    (fun (id, start) ->
      let n = Chop_dfg.Graph.node g id in
      let cls = Chop_dfg.Op.functional_class n.Chop_dfg.Graph.op in
      let lat = List.assoc id sched.Chop_sched.Schedule.latencies in
      let cap = Chop_sched.Schedule.alloc_get sched.Chop_sched.Schedule.alloc cls in
      let rec pick i =
        if i >= cap then
          (* cannot happen on a resource-feasible schedule *)
          invalid_arg
            (Printf.sprintf "Binding: class %s oversubscribed at step %d" cls start)
        else
          let key = (cls, i) in
          let free_at = Option.value ~default:0 (Hashtbl.find_opt free key) in
          if free_at <= start then begin
            Hashtbl.replace free key (start + lat);
            i
          end
          else pick (i + 1)
      in
      (id, { fu_class = cls; fu_index = pick 0 }))
    in_start_order

type interval = {
  producer : Chop_dfg.Graph.node_id;
  birth : int;
  death : int;
  width : Chop_util.Units.bits;
}

let value_intervals sched =
  let g = sched.Chop_sched.Schedule.graph in
  (* +1: output-feeding values outlive the final step (see Lifetime) *)
  let horizon = max 1 sched.Chop_sched.Schedule.length + 1 in
  List.filter_map
    (fun n ->
      let id = n.Chop_dfg.Graph.id in
      let consumers =
        List.filter
          (fun c ->
            Chop_dfg.Op.is_computational (Chop_dfg.Graph.node g c).Chop_dfg.Graph.op)
          (Chop_dfg.Graph.succs g id)
      in
      let feeds_output =
        List.exists
          (fun c -> (Chop_dfg.Graph.node g c).Chop_dfg.Graph.op = Chop_dfg.Op.Output)
          (Chop_dfg.Graph.succs g id)
      in
      let birth =
        match n.Chop_dfg.Graph.op with
        | Chop_dfg.Op.Input -> Some 0
        | Chop_dfg.Op.Const -> None
        | op when Chop_dfg.Op.is_computational op ->
            Some (Chop_sched.Schedule.finish sched id)
        | _ -> None
      in
      match birth with
      | None -> None
      | Some birth ->
          if consumers = [] && not feeds_output then None
          else
            let last_use =
              List.fold_left
                (fun acc c -> max acc (Chop_sched.Schedule.start sched c + 1))
                birth consumers
            in
            let death = if feeds_output then horizon else last_use in
            Some { producer = id; birth; death = max death (birth + 1);
                   width = n.Chop_dfg.Graph.width })
    (Chop_dfg.Graph.nodes g)

let bind_registers sched =
  let intervals =
    List.sort
      (fun a b ->
        match Int.compare a.birth b.birth with
        | 0 -> Int.compare a.death b.death
        | n -> n)
      (value_intervals sched)
  in
  (* left-edge: registers as bins with the death of their last tenant *)
  let regs = ref [] (* (index, last_death) *) in
  let next = ref 0 in
  let assignment =
    List.map
      (fun iv ->
        let candidate =
          List.find_opt (fun (_, last) -> last <= iv.birth) !regs
        in
        let index =
          match candidate with
          | Some (i, _) ->
              regs := List.map (fun (j, l) -> if j = i then (j, iv.death) else (j, l)) !regs;
              i
          | None ->
              let i = !next in
              incr next;
              regs := (i, iv.death) :: !regs;
              i
        in
        (iv.producer, index))
      intervals
  in
  (assignment, !next)
