type comparison = {
  predicted_register_bits : int;
  actual_register_bits : int;
  predicted_mux_bits : int;
  actual_mux_bits : int;
  predicted_area : Chop_util.Triplet.t;
  actual_cell_area : Chop_util.Units.mil2;
  register_error : float;
  mux_error : float;
  area_within_bounds : bool;
}

let schedule_of cfg (p : Chop_bad.Prediction.t) g =
  let latency =
    Chop_bad.Predictor.latency_function cfg
      ~module_set:p.Chop_bad.Prediction.module_set
  in
  Chop_sched.List_sched.run ~latency ~alloc:p.Chop_bad.Prediction.alloc g

let synthesize_with cfg p g =
  let sched = schedule_of cfg p g in
  let ii =
    match p.Chop_bad.Prediction.style with
    | Chop_tech.Style.Pipelined -> Some p.Chop_bad.Prediction.timing.Chop_bad.Prediction.ii_dp
    | Chop_tech.Style.Non_pipelined -> None
  in
  let netlist =
    Synth.netlist ?ii
      ~name:p.Chop_bad.Prediction.partition_label
      ~module_set:p.Chop_bad.Prediction.module_set sched
  in
  (sched, netlist)

let synthesize (p : Chop_bad.Prediction.t) g =
  (* without a config, assume the single-cycle discipline the prediction's
     unit latencies imply *)
  let latency _ = 1 in
  let sched = Chop_sched.List_sched.run ~latency ~alloc:p.Chop_bad.Prediction.alloc g in
  let netlist =
    Synth.netlist
      ~name:p.Chop_bad.Prediction.partition_label
      ~module_set:p.Chop_bad.Prediction.module_set sched
  in
  (sched, netlist)

let ratio_error predicted actual =
  if actual = 0 then if predicted = 0 then 0. else 1.
  else float_of_int (predicted - actual) /. float_of_int actual

let compare_with cfg (p : Chop_bad.Prediction.t) g =
  let _, netlist = synthesize_with cfg p g in
  let actual_register_bits = Netlist.register_bits netlist in
  let actual_mux_bits = Netlist.mux_bits netlist in
  let actual_cell_area = Netlist.cell_area netlist in
  {
    predicted_register_bits = p.Chop_bad.Prediction.register_bits;
    actual_register_bits;
    predicted_mux_bits = p.Chop_bad.Prediction.mux_count;
    actual_mux_bits;
    predicted_area = p.Chop_bad.Prediction.area;
    actual_cell_area;
    register_error = ratio_error p.Chop_bad.Prediction.register_bits actual_register_bits;
    mux_error = ratio_error p.Chop_bad.Prediction.mux_count actual_mux_bits;
    area_within_bounds =
      actual_cell_area <= Chop_util.Triplet.(p.Chop_bad.Prediction.area.high);
  }

let accuracy_report cfg g preds =
  let comparisons = List.map (fun p -> (p, compare_with cfg p g)) preds in
  let t =
    Chop_util.Texttable.create
      ~title:"BAD prediction vs synthesized netlist"
      [
        ("alloc", Chop_util.Texttable.Left);
        ("reg bits P/A", Chop_util.Texttable.Right);
        ("mux bits P/A", Chop_util.Texttable.Right);
        ("area likely/actual", Chop_util.Texttable.Right);
        ("bounded", Chop_util.Texttable.Center);
      ]
  in
  List.iter
    (fun ((p : Chop_bad.Prediction.t), c) ->
      Chop_util.Texttable.add_row t
        [
          String.concat ","
            (List.map
               (fun (cls, n) -> Printf.sprintf "%s:%d" cls n)
               p.Chop_bad.Prediction.alloc);
          Printf.sprintf "%d/%d" c.predicted_register_bits c.actual_register_bits;
          Printf.sprintf "%d/%d" c.predicted_mux_bits c.actual_mux_bits;
          Printf.sprintf "%.0f/%.0f"
            Chop_util.Triplet.(c.predicted_area.likely)
            c.actual_cell_area;
          (if c.area_within_bounds then "yes" else "NO");
        ])
    comparisons;
  let mean f =
    if comparisons = [] then 0.
    else
      Chop_util.Listx.sum_byf (fun (_, c) -> Float.abs (f c)) comparisons
      /. float_of_int (List.length comparisons)
  in
  Chop_util.Texttable.render t
  ^ Printf.sprintf
      "mean absolute error: registers %.0f%%, multiplexers %.0f%%; area \
       bounded for %d/%d predictions\n"
      (100. *. mean (fun c -> c.register_error))
      (100. *. mean (fun c -> c.mux_error))
      (List.length (List.filter (fun (_, c) -> c.area_within_bounds) comparisons))
      (List.length comparisons)
