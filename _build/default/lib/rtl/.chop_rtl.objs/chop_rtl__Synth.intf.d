lib/rtl/synth.mli: Chop_sched Chop_tech Netlist
