lib/rtl/rtlsim.mli: Chop_dfg Chop_sched
