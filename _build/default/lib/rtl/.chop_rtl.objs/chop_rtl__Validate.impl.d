lib/rtl/validate.ml: Chop_bad Chop_sched Chop_tech Chop_util Float List Netlist Printf String Synth
