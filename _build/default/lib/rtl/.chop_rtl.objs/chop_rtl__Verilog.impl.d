lib/rtl/verilog.ml: Buffer Chop_tech Float List Netlist Printf String
