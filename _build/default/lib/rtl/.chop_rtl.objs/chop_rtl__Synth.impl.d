lib/rtl/synth.ml: Binding Chop_dfg Chop_sched Chop_tech Chop_util Hashtbl Int List Map Netlist Option Printf Stdlib String
