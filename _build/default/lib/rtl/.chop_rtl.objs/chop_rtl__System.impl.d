lib/rtl/system.ml: Buffer Chop Chop_bad Chop_dfg Chop_sched Chop_tech Chop_util Floorplan List Netlist Option Printf String Synth Verilog
