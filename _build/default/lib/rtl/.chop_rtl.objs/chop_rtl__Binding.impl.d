lib/rtl/binding.ml: Chop_dfg Chop_sched Chop_util Hashtbl Int List Option Printf
