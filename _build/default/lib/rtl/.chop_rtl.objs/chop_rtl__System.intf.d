lib/rtl/system.mli: Chop Chop_tech Chop_util Floorplan Netlist
