lib/rtl/netlist.mli: Chop_tech Chop_util Format
