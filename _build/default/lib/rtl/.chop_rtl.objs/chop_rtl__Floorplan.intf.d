lib/rtl/floorplan.mli: Chop_tech Chop_util Format Netlist
