lib/rtl/binding.mli: Chop_dfg Chop_sched Chop_util
