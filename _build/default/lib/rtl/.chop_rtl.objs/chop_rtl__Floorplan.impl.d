lib/rtl/floorplan.ml: Chop_tech Chop_util Float Format List Netlist Printf
