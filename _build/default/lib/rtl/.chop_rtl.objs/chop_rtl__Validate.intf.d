lib/rtl/validate.mli: Chop_bad Chop_dfg Chop_sched Chop_util Netlist
