lib/rtl/netlist.ml: Chop_tech Chop_util Format List
