lib/rtl/rtlsim.ml: Array Binding Chop_dfg Chop_sched Hashtbl List Option Printf
