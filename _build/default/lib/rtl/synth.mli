(** Netlist construction from a bound schedule.

    Produces the concrete data path + controller structure for one
    partition implementation: functional units from a module set, a
    left-edge-allocated register file, port/write steering multiplexers
    sized from the actual binding, and a one-state-per-step controller. *)

val netlist :
  ?name:string ->
  ?ii:int ->
  module_set:Chop_tech.Component.t list ->
  Chop_sched.Schedule.t ->
  Netlist.t
(** [ii] synthesizes the pipelined variant: the register file is sized for
    the lifetimes folded modulo [ii] (overlapped iterations keep more
    values alive) and the controller wraps at [ii] states.
    @raise Invalid_argument when the module set misses a class the
    schedule's allocation uses (memory-port classes are exempt: their data
    path is the memory bus), or when [ii < 1]. *)
