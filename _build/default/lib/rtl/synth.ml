module IntMap = Map.Make (Int)

let netlist ?name ?ii ~module_set sched =
  (match ii with
  | Some i when i < 1 -> invalid_arg "Synth.netlist: ii < 1"
  | Some _ | None -> ());
  let g = sched.Chop_sched.Schedule.graph in
  let design_name =
    match name with Some n -> n | None -> Chop_dfg.Graph.name g
  in
  let width =
    List.fold_left
      (fun acc n -> max acc n.Chop_dfg.Graph.width)
      1 (Chop_dfg.Graph.nodes g)
  in
  let fu_binding = Binding.bind_functional_units sched in
  let reg_binding, reg_count = Binding.bind_registers sched in
  (* pipelining folds lifetimes: size the register file for the overlapped
     iterations (the folded peak), keeping the single-iteration binding for
     steering analysis *)
  let reg_count =
    match ii with
    | None -> reg_count
    | Some ii ->
        let demand = Chop_sched.Lifetime.analyze ~ii sched in
        max reg_count (demand.Chop_sched.Lifetime.peak_values)
  in
  let reg_of = List.fold_left (fun m (p, r) -> IntMap.add p r m) IntMap.empty reg_binding in
  (* the steering source feeding one operand: a register, a constant store,
     or the memory bus *)
  let source_of id =
    let n = Chop_dfg.Graph.node g id in
    match n.Chop_dfg.Graph.op with
    | Chop_dfg.Op.Const -> "const:" ^ n.Chop_dfg.Graph.name
    | _ -> (
        match IntMap.find_opt id reg_of with
        | Some r -> Printf.sprintf "reg%d" r
        | None -> "bus:" ^ n.Chop_dfg.Graph.name)
  in
  (* group operations per functional-unit instance *)
  let classes =
    List.sort_uniq String.compare
      (List.map (fun (_, b) -> b.Binding.fu_class) fu_binding)
  in
  let connections = ref [] in
  let fus =
    List.concat_map
      (fun cls ->
        let instances =
          List.sort_uniq Int.compare
            (List.filter_map
               (fun (_, b) ->
                 if b.Binding.fu_class = cls then Some b.Binding.fu_index else None)
               fu_binding)
        in
        let component =
          match
            List.find_opt (fun c -> c.Chop_tech.Component.cls = cls) module_set
          with
          | Some c -> Some c
          | None when Chop_tech.Component.is_memport_class cls -> None
          | None ->
              invalid_arg
                (Printf.sprintf "Synth.netlist: module set misses class %s" cls)
        in
        match component with
        | None -> [] (* memory ports synthesize into the memory interface *)
        | Some component ->
            List.map
              (fun idx ->
                let fu_name = Printf.sprintf "%s_%d" cls idx in
                let ops =
                  List.filter_map
                    (fun (id, b) ->
                      if b.Binding.fu_class = cls && b.Binding.fu_index = idx
                      then Some id
                      else None)
                    fu_binding
                in
                let max_ports =
                  List.fold_left
                    (fun acc id ->
                      max acc (List.length (Chop_dfg.Graph.preds g id)))
                    0 ops
                in
                let port_muxes =
                  List.filter_map
                    (fun port ->
                      let sources =
                        List.filter_map
                          (fun id ->
                            match List.nth_opt (Chop_dfg.Graph.preds g id) port with
                            | Some src ->
                                let s = source_of src in
                                connections := (s, fu_name) :: !connections;
                                Some s
                            | None -> None)
                          ops
                        |> List.sort_uniq String.compare
                      in
                      if List.length sources >= 2 then
                        Some
                          {
                            Netlist.mux_name =
                              Printf.sprintf "%s_p%d_mux" fu_name port;
                            mux_width = width;
                            fanin = List.length sources;
                          }
                      else None)
                    (Chop_util.Listx.range 0 (max_ports - 1))
                in
                { Netlist.fu_name; component; port_muxes })
              instances)
      classes
  in
  (* register write steering: writers per register *)
  let writers = Hashtbl.create 16 in
  List.iter
    (fun (producer, reg) ->
      let n = Chop_dfg.Graph.node g producer in
      let driver =
        match n.Chop_dfg.Graph.op with
        | Chop_dfg.Op.Input -> "pad:" ^ n.Chop_dfg.Graph.name
        | op when Chop_dfg.Op.is_computational op -> (
            match List.assoc_opt producer fu_binding with
            | Some b -> Printf.sprintf "%s_%d" b.Binding.fu_class b.Binding.fu_index
            | None -> "bus:" ^ n.Chop_dfg.Graph.name)
        | _ -> "pad:" ^ n.Chop_dfg.Graph.name
      in
      connections := (driver, Printf.sprintf "reg%d" reg) :: !connections;
      Hashtbl.replace writers reg
        (List.sort_uniq String.compare
           (driver :: Option.value ~default:[] (Hashtbl.find_opt writers reg))))
    reg_binding;
  let write_muxes =
    Hashtbl.fold
      (fun reg ws acc ->
        if List.length ws >= 2 then
          {
            Netlist.mux_name = Printf.sprintf "reg%d_mux" reg;
            mux_width = width;
            fanin = List.length ws;
          }
          :: acc
        else acc)
      writers []
    |> List.sort (fun a b -> String.compare a.Netlist.mux_name b.Netlist.mux_name)
  in
  let registers = { Netlist.count = reg_count; width; write_muxes } in
  let n_muxes =
    List.length write_muxes
    + Chop_util.Listx.sum_by (fun f -> List.length f.Netlist.port_muxes) fus
  in
  let controller =
    {
      Netlist.states =
        (match ii with
        | Some i -> max 1 i
        | None -> max 1 sched.Chop_sched.Schedule.length);
      control_signals = (2 * List.length fus) + n_muxes + reg_count;
    }
  in
  {
    Netlist.design_name;
    fus;
    registers;
    controller;
    connections = List.sort_uniq Stdlib.compare !connections;
  }
