type mux = {
  mux_name : string;
  mux_width : Chop_util.Units.bits;
  fanin : int;
}

type fu = {
  fu_name : string;
  component : Chop_tech.Component.t;
  port_muxes : mux list;
}

type register_file = {
  count : int;
  width : Chop_util.Units.bits;
  write_muxes : mux list;
}

type fsm = { states : int; control_signals : int }

type t = {
  design_name : string;
  fus : fu list;
  registers : register_file;
  controller : fsm;
  connections : (string * string) list;
}

let register_bits t = t.registers.count * t.registers.width

let mux_cost m = (m.fanin - 1) * m.mux_width

let mux_bits t =
  Chop_util.Listx.sum_by
    (fun f -> Chop_util.Listx.sum_by mux_cost f.port_muxes)
    t.fus
  + Chop_util.Listx.sum_by mux_cost t.registers.write_muxes

let cell_area t =
  let fu_area =
    Chop_util.Listx.sum_byf (fun f -> f.component.Chop_tech.Component.area) t.fus
  in
  let reg_area =
    float_of_int (register_bits t)
    *. Chop_tech.Mosis.register_cell.Chop_tech.Component.area
  in
  let mux_area =
    float_of_int (mux_bits t) *. Chop_tech.Mosis.mux_cell.Chop_tech.Component.area
  in
  let pla =
    Chop_tech.Pla.area
      (Chop_tech.Pla.controller_shape ~states:t.controller.states
         ~status_inputs:2 ~control_outputs:t.controller.control_signals)
  in
  fu_area +. reg_area +. mux_area +. pla

let pp ppf t =
  Format.fprintf ppf
    "@[<v>netlist %s: %d FU(s), %d registers (%d bits), %d mux bits, FSM %d \
     states@]"
    t.design_name (List.length t.fus) t.registers.count (register_bits t)
    (mux_bits t) t.controller.states
