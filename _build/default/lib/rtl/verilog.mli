(** Verilog-flavored structural dump of a netlist.

    A readable register-transfer rendering of the synthesized structure —
    declarations for every functional unit, register and multiplexer plus a
    connection comment block — intended as the designer-facing artifact the
    paper's guideline output points toward, not as a simulation-grade
    model. *)

val emit : Netlist.t -> string
