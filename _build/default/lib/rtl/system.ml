type dtm_hardware = {
  dtm_name : string;
  buffer_bits : int;
  pins : int;
  controller : Chop_tech.Pla.shape;
  area : Chop_util.Units.mil2;
}

type chip_design = {
  chip_name : string;
  package : Chop_tech.Chip.t;
  pu_netlists : Netlist.t list;
  dtms : dtm_hardware list;
  total_cell_area : Chop_util.Units.mil2;
  floorplan : (Floorplan.t, string) result;
}

type t = { chips : chip_design list; verilog : (string * string) list }

let register_cell_area = Chop_tech.Mosis.register_cell.Chop_tech.Component.area

let pu_netlist spec label (p : Chop_bad.Prediction.t) =
  let part = Chop_dfg.Partition.find spec.Chop.Spec.partitioning label in
  let sub = Chop_dfg.Partition.subgraph spec.Chop.Spec.partitioning part in
  let cfg = Chop.Explore.predictor_config spec ~label in
  let latency =
    Chop_bad.Predictor.latency_function cfg
      ~module_set:p.Chop_bad.Prediction.module_set
  in
  let sched =
    Chop_sched.List_sched.run ~latency ~alloc:p.Chop_bad.Prediction.alloc sub
  in
  let ii =
    match p.Chop_bad.Prediction.style with
    | Chop_tech.Style.Pipelined ->
        Some p.Chop_bad.Prediction.timing.Chop_bad.Prediction.ii_dp
    | Chop_tech.Style.Non_pipelined -> None
  in
  Synth.netlist ?ii ~name:label ~module_set:p.Chop_bad.Prediction.module_set
    sched

let synthesize ctx (system : Chop.Integration.system) =
  if system.Chop.Integration.chip_reports = [] then
    invalid_arg "System.synthesize: not a successful integration";
  let spec = Chop.Integration.spec_of ctx in
  let chips =
    List.map
      (fun cr ->
        let name = cr.Chop.Integration.instance.Chop.Spec.chip_name in
        let package = cr.Chop.Integration.instance.Chop.Spec.package in
        let pu_netlists =
          List.map
            (fun label ->
              pu_netlist spec label
                (List.assoc label system.Chop.Integration.combination))
            cr.Chop.Integration.partition_labels
        in
        let dtms =
          List.filter_map
            (fun (d : Chop.Integration.dtm) ->
              let t = d.Chop.Integration.task in
              if
                t.Chop.Transfer.cross_chip
                && List.mem name (Chop.Transfer.chips_of t)
              then begin
                let holder =
                  match t.Chop.Transfer.dst_chip with
                  | Some c -> c
                  | None ->
                      Option.value ~default:"" t.Chop.Transfer.src_chip
                in
                let buffer_bits =
                  if holder = name then d.Chop.Integration.buffer_bits else 0
                in
                let pla_area = Chop_tech.Pla.area d.Chop.Integration.ctrl_shape in
                Some
                  {
                    dtm_name = t.Chop.Transfer.dt_name;
                    buffer_bits;
                    pins = d.Chop.Integration.bandwidth;
                    controller = d.Chop.Integration.ctrl_shape;
                    area =
                      (float_of_int buffer_bits *. register_cell_area)
                      +. pla_area;
                  }
              end
              else None)
            system.Chop.Integration.dtms
        in
        let memory_area = cr.Chop.Integration.memory_area in
        let total_cell_area =
          Chop_util.Listx.sum_byf Netlist.cell_area pu_netlists
          +. Chop_util.Listx.sum_byf (fun d -> d.area) dtms
          +. memory_area
          +. cr.Chop.Integration.pin_mux_area
        in
        let blocks =
          List.concat_map
            (fun nl ->
              List.map
                (fun b ->
                  {
                    b with
                    Floorplan.block_name =
                      nl.Netlist.design_name ^ "/" ^ b.Floorplan.block_name;
                  })
                (Floorplan.blocks_of_netlist nl))
            pu_netlists
          @ List.filter_map
              (fun d ->
                if d.area > 0. then
                  Some { Floorplan.block_name = d.dtm_name; block_area = d.area }
                else None)
              dtms
          @ (if memory_area > 0. then
               [ { Floorplan.block_name = "memory"; block_area = memory_area } ]
             else [])
        in
        let floorplan =
          match
            Chop_tech.Chip.usable_area package
              ~signal_pins:cr.Chop.Integration.signal_pins
          with
          | exception Invalid_argument reason -> Error reason
          | usable ->
              if usable <= 0. then Error "pads consume the whole die"
              else
                let aspect =
                  package.Chop_tech.Chip.width /. package.Chop_tech.Chip.height
                in
                let core_height = sqrt (usable /. aspect) in
                let core_width = usable /. core_height in
                (match Floorplan.plan ~core_width ~core_height blocks with
                | fp -> Ok fp
                | exception Floorplan.Does_not_fit reason -> Error reason)
        in
        { chip_name = name; package; pu_netlists; dtms; total_cell_area;
          floorplan })
      system.Chop.Integration.chip_reports
  in
  let verilog =
    List.map
      (fun cd ->
        let buf = Buffer.create 4096 in
        Buffer.add_string buf
          (Printf.sprintf
             "// chip %s (%s): %d processing unit(s), %d transfer module(s)\n"
             cd.chip_name cd.package.Chop_tech.Chip.pkg_name
             (List.length cd.pu_netlists) (List.length cd.dtms));
        List.iter
          (fun d ->
            Buffer.add_string buf
              (Printf.sprintf
                 "// dtm %s: %d data pins, %d buffer bits, PLA %dx%dx%d\n"
                 d.dtm_name d.pins d.buffer_bits d.controller.Chop_tech.Pla.inputs
                 d.controller.Chop_tech.Pla.outputs
                 d.controller.Chop_tech.Pla.product_terms))
          cd.dtms;
        Buffer.add_char buf '\n';
        List.iter
          (fun nl -> Buffer.add_string buf (Verilog.emit nl))
          cd.pu_netlists;
        (cd.chip_name, Buffer.contents buf))
      chips
  in
  { chips; verilog }

let board_verilog ctx (system : Chop.Integration.system) t =
  let spec = Chop.Integration.spec_of ctx in
  let buf = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "// board-level top: %d chip(s), %d cross-chip transfer(s)\n"
    (List.length t.chips)
    (List.length
       (List.filter
          (fun (d : Chop.Integration.dtm) ->
            d.Chop.Integration.task.Chop.Transfer.cross_chip)
          system.Chop.Integration.dtms));
  addf "module %s_board (input clk, input rst);\n\n"
    (Chop_dfg.Graph.name spec.Chop.Spec.graph);
  List.iter
    (fun (d : Chop.Integration.dtm) ->
      let task = d.Chop.Integration.task in
      if task.Chop.Transfer.cross_chip then begin
        addf "  wire [%d:0] %s_bus;  // %d bits in %d cycle(s)\n"
          (d.Chop.Integration.bandwidth - 1)
          task.Chop.Transfer.dt_name task.Chop.Transfer.bits
          d.Chop.Integration.transfer_main;
        addf "  wire %s_req, %s_ack;\n" task.Chop.Transfer.dt_name
          task.Chop.Transfer.dt_name
      end)
    system.Chop.Integration.dtms;
  Buffer.add_char buf '\n';
  List.iter
    (fun cd ->
      let ports =
        List.concat_map
          (fun d ->
            let n = d.dtm_name in
            [ Printf.sprintf ".%s_bus(%s_bus)" n n;
              Printf.sprintf ".%s_req(%s_req)" n n;
              Printf.sprintf ".%s_ack(%s_ack)" n n ])
          cd.dtms
      in
      addf "  %s chip_%s (.clk(clk), .rst(rst)%s);\n" cd.chip_name
        cd.chip_name
        (String.concat ""
           (List.map (fun p -> ", " ^ p) ports)))
    t.chips;
  addf "\nendmodule\n";
  Buffer.contents buf

let all_fit t =
  List.for_all
    (fun cd -> match cd.floorplan with Ok _ -> true | Error _ -> false)
    t.chips

let summary t =
  let tbl =
    Chop_util.Texttable.create ~title:"chip-level synthesis"
      [
        ("Chip", Chop_util.Texttable.Left);
        ("PUs", Chop_util.Texttable.Right);
        ("DTMs", Chop_util.Texttable.Right);
        ("Cell area mil^2", Chop_util.Texttable.Right);
        ("Floorplan", Chop_util.Texttable.Left);
      ]
  in
  List.iter
    (fun cd ->
      Chop_util.Texttable.add_row tbl
        [
          cd.chip_name;
          string_of_int (List.length cd.pu_netlists);
          string_of_int (List.length cd.dtms);
          Printf.sprintf "%.0f" cd.total_cell_area;
          (match cd.floorplan with
          | Ok fp ->
              Printf.sprintf "fits (%.0f%% utilized)"
                (100. *. fp.Floorplan.utilization)
          | Error reason -> "FAILS: " ^ reason);
        ])
    t.chips;
  Chop_util.Texttable.render tbl
