(** Slicing-tree floorplanning of synthesized netlists onto MOSIS dies.

    The last step of the paper's future-work chain ("an immediate task is to
    synthesize and layout some partitioned designs", section 5): place the
    netlist's blocks — functional units, the register file, steering logic
    and the controller — inside the package's core rectangle and check that
    every block gets a realizable aspect ratio.  Blocks are soft (standard
    cells reflow), so the check is utilization + aspect bounds rather than
    exact rectangle packing. *)

type block = {
  block_name : string;
  block_area : Chop_util.Units.mil2;
}

type placement = {
  block : block;
  x : Chop_util.Units.mil;
  y : Chop_util.Units.mil;
  w : Chop_util.Units.mil;  (** the block's reflowed footprint, not the
                                whole slicing leaf — whitespace lives in
                                the leaf around it *)
  h : Chop_util.Units.mil;
}

type t = {
  core_width : Chop_util.Units.mil;
  core_height : Chop_util.Units.mil;
  placements : placement list;
  utilization : float;  (** sum of block areas / core area *)
}

val blocks_of_netlist : Netlist.t -> block list
(** One block per functional unit, one for the register file, one for the
    accumulated steering logic and one for the controller PLA (zero-area
    contributors are dropped). *)

exception Does_not_fit of string

val plan :
  ?aspect_limit:float ->
  core_width:Chop_util.Units.mil ->
  core_height:Chop_util.Units.mil ->
  block list ->
  t
(** Recursive area-proportional slicing: blocks are split into two
    area-balanced groups, the rectangle is cut across its longer side, and
    leaves receive rectangles of exactly their group's area share.
    @raise Does_not_fit when the blocks outgrow the core or a leaf's aspect
    ratio exceeds [aspect_limit] (default 8.0 — beyond that a soft block
    cannot reflow sensibly).
    @raise Invalid_argument on a non-positive core or empty block list. *)

val on_package :
  ?signal_pins:int -> Chop_tech.Chip.t -> Netlist.t -> (t, string) result
(** Floorplan a netlist onto a package's core: the project area minus the
    bonded pads ([signal_pins] defaults to half the package), kept at the
    die's aspect ratio.  Returns [Error reason] instead of raising. *)

val pp : Format.formatter -> t -> unit
