(** Prediction-vs-synthesis validation.

    "The results from BAD have been tested using the ADAM Synthesis tools
    and have been very accurate so far" (paper, section 2.4).  With the ADAM
    tools unavailable, this module plays their role: it synthesizes the
    structure a prediction describes and measures how far BAD's register,
    multiplexer and area predictions sit from the bound netlist's exact
    counts. *)

type comparison = {
  predicted_register_bits : int;
  actual_register_bits : int;
  predicted_mux_bits : int;
  actual_mux_bits : int;
  predicted_area : Chop_util.Triplet.t;  (** includes the wiring triplet *)
  actual_cell_area : Chop_util.Units.mil2;  (** no routing *)
  register_error : float;  (** (predicted - actual) / actual, actual > 0 *)
  mux_error : float;
  area_within_bounds : bool;
      (** actual cell area falls below the prediction's upper bound (the
          prediction also budgets routing, so it should envelope the cell
          area) *)
}

val synthesize :
  Chop_bad.Prediction.t -> Chop_dfg.Graph.t -> Chop_sched.Schedule.t * Netlist.t
(** Rebuilds the schedule the prediction describes assuming unit latencies
    (single-cycle discipline) and synthesizes its netlist; prefer
    {!compare_with} / {!synthesize_with} when a predictor config is at
    hand. *)

val synthesize_with :
  Chop_bad.Predictor.config ->
  Chop_bad.Prediction.t ->
  Chop_dfg.Graph.t ->
  Chop_sched.Schedule.t * Netlist.t
(** Rebuilds the schedule with the config's exact latency discipline;
    pipelined predictions are synthesized at their initiation interval. *)

val compare_with :
  Chop_bad.Predictor.config ->
  Chop_bad.Prediction.t ->
  Chop_dfg.Graph.t ->
  comparison

val accuracy_report :
  Chop_bad.Predictor.config ->
  Chop_dfg.Graph.t ->
  Chop_bad.Prediction.t list ->
  string
(** Table of prediction-vs-netlist errors over the given predictions
    (pipelined ones are synthesized with their initiation interval, folding
    the register file accordingly), plus mean absolute errors — the
    reproduction of the paper's accuracy claim. *)
