type block = { block_name : string; block_area : Chop_util.Units.mil2 }

type placement = {
  block : block;
  x : Chop_util.Units.mil;
  y : Chop_util.Units.mil;
  w : Chop_util.Units.mil;
  h : Chop_util.Units.mil;
}

type t = {
  core_width : Chop_util.Units.mil;
  core_height : Chop_util.Units.mil;
  placements : placement list;
  utilization : float;
}

let blocks_of_netlist (nl : Netlist.t) =
  let fu_blocks =
    List.map
      (fun (f : Netlist.fu) ->
        {
          block_name = f.Netlist.fu_name;
          block_area = f.Netlist.component.Chop_tech.Component.area;
        })
      nl.Netlist.fus
  in
  let reg_area =
    float_of_int (Netlist.register_bits nl)
    *. Chop_tech.Mosis.register_cell.Chop_tech.Component.area
  in
  let mux_area =
    float_of_int (Netlist.mux_bits nl)
    *. Chop_tech.Mosis.mux_cell.Chop_tech.Component.area
  in
  let pla_area =
    Chop_tech.Pla.area
      (Chop_tech.Pla.controller_shape ~states:nl.Netlist.controller.Netlist.states
         ~status_inputs:2
         ~control_outputs:nl.Netlist.controller.Netlist.control_signals)
  in
  fu_blocks
  @ List.filter_map
      (fun (name, area) ->
        if area > 0. then Some { block_name = name; block_area = area } else None)
      [ ("register_file", reg_area); ("steering", mux_area); ("controller", pla_area) ]

exception Does_not_fit of string

let fail fmt = Printf.ksprintf (fun s -> raise (Does_not_fit s)) fmt

let total_area blocks =
  Chop_util.Listx.sum_byf (fun b -> b.block_area) blocks

let plan ?(aspect_limit = 8.0) ~core_width ~core_height blocks =
  if core_width <= 0. || core_height <= 0. then
    invalid_arg "Floorplan.plan: non-positive core";
  if blocks = [] then invalid_arg "Floorplan.plan: no blocks";
  let core_area = core_width *. core_height in
  let occupied = total_area blocks in
  if occupied > core_area then
    fail "blocks need %.0f mil^2 but the core offers %.0f" occupied core_area;
  (* descending by area: balanced splits then come out naturally *)
  let sorted =
    List.sort (fun a b -> Float.compare b.block_area a.block_area) blocks
  in
  let placements = ref [] in
  (* slice [bs] into rectangle (x, y, w, h); every leaf receives area
     proportional to its block's share of the group *)
  let rec slice bs x y w h =
    match bs with
    | [] -> ()
    | [ b ] ->
        (* the block is soft: it reflows to the most-square sub-rectangle of
           its leaf that holds its area, whitespace absorbing the rest *)
        let m = Float.min w h in
        let side = sqrt b.block_area in
        let bw, bh =
          if side <= m then (side, side)
          else if w <= h then (w, b.block_area /. w)
          else (b.block_area /. h, h)
        in
        let aspect =
          if bh = 0. then infinity else Float.max (bw /. bh) (bh /. bw)
        in
        if aspect > aspect_limit then
          fail "block %s would need aspect %.1f (limit %.1f)" b.block_name
            aspect aspect_limit;
        placements := { block = b; x; y; w = bw; h = bh } :: !placements
    | _ ->
        (* greedy balanced bipartition by area *)
        let g1, g2, _, a2 =
          List.fold_left
            (fun (g1, g2, a1, a2) b ->
              if a1 <= a2 then (b :: g1, g2, a1 +. b.block_area, a2)
              else (g1, b :: g2, a1, a2 +. b.block_area))
            ([], [], 0., 0.) bs
        in
        let total = total_area bs in
        let share2 = a2 /. total in
        let share1 = 1. -. share2 in
        (* cut in whichever direction keeps the worse child closest to
           square — always cutting the longer side starves small groups *)
        let aspect rw rh =
          if rw <= 0. || rh <= 0. then infinity else Float.max (rw /. rh) (rh /. rw)
        in
        let vertical_worst =
          Float.max (aspect (w *. share1) h) (aspect (w *. share2) h)
        in
        let horizontal_worst =
          Float.max (aspect w (h *. share1)) (aspect w (h *. share2))
        in
        if vertical_worst <= horizontal_worst then begin
          let w2 = w *. share2 in
          slice g1 x y (w -. w2) h;
          slice g2 (x +. (w -. w2)) y w2 h
        end
        else begin
          let h2 = h *. share2 in
          slice g1 x y w (h -. h2);
          slice g2 x (y +. (h -. h2)) w h2
        end
  in
  slice sorted 0. 0. core_width core_height;
  {
    core_width;
    core_height;
    placements = List.rev !placements;
    utilization = occupied /. core_area;
  }

let on_package ?signal_pins (chip : Chop_tech.Chip.t) nl =
  let signal_pins =
    match signal_pins with Some p -> p | None -> chip.Chop_tech.Chip.pins / 2
  in
  match Chop_tech.Chip.usable_area chip ~signal_pins with
  | exception Invalid_argument reason -> Error reason
  | usable ->
      if usable <= 0. then Error "pads consume the whole die"
      else
        let aspect = chip.Chop_tech.Chip.width /. chip.Chop_tech.Chip.height in
        let core_height = sqrt (usable /. aspect) in
        let core_width = usable /. core_height in
        (match plan ~core_width ~core_height (blocks_of_netlist nl) with
        | fp -> Ok fp
        | exception Does_not_fit reason -> Error reason)

let pp ppf t =
  Format.fprintf ppf "@[<v>floorplan %.0f x %.0f mil, %.0f%% utilized@,"
    t.core_width t.core_height (100. *. t.utilization);
  List.iter
    (fun p ->
      Format.fprintf ppf "  %-16s @ (%6.1f, %6.1f) %6.1f x %6.1f@,"
        p.block.block_name p.x p.y p.w p.h)
    t.placements;
  Format.fprintf ppf "@]"
