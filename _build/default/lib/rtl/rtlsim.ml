exception Sim_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Sim_error s)) fmt

let mask width v = if width >= 62 then v else v land ((1 lsl width) - 1)

let eval_op (n : Chop_dfg.Graph.node) operands (memory : Chop_dfg.Eval.memory_model) =
  let w = n.Chop_dfg.Graph.width in
  match (n.Chop_dfg.Graph.op, operands) with
  | Chop_dfg.Op.Add, [ a; b ] -> mask w (a + b)
  | Chop_dfg.Op.Sub, [ a; b ] -> mask w (a - b)
  | Chop_dfg.Op.Mult, [ a; b ] -> mask w (a * b)
  | Chop_dfg.Op.Div, [ a; b ] -> if b = 0 then 0 else mask w (a / b)
  | Chop_dfg.Op.Compare, [ a; b ] -> if a < b then 1 else 0
  | Chop_dfg.Op.Logic, [ a; b ] -> mask w (a land b)
  | Chop_dfg.Op.Shift, [ a ] -> mask w (a lsl 1)
  | Chop_dfg.Op.Shift, [ a; b ] -> mask w (a lsl (b mod max 1 w))
  | Chop_dfg.Op.Select, [ c; a; b ] -> if c <> 0 then a else b
  | Chop_dfg.Op.Mem_read _, _ ->
      mask w (memory.Chop_dfg.Eval.read (Option.get (Chop_dfg.Op.memory_block n.Chop_dfg.Graph.op)))
  | Chop_dfg.Op.Mem_write _, datum :: _ ->
      let block = Option.get (Chop_dfg.Op.memory_block n.Chop_dfg.Graph.op) in
      memory.Chop_dfg.Eval.writes <- memory.Chop_dfg.Eval.writes @ [ (block, datum) ];
      datum
  | op, args ->
      fail "node %s (%s) has %d operands" n.Chop_dfg.Graph.name
        (Chop_dfg.Op.to_string op) (List.length args)

let run ?(inputs = []) ?(consts = []) ?memory sched =
  let memory =
    match memory with Some m -> m | None -> Chop_dfg.Eval.constant_memory 0
  in
  let g = sched.Chop_sched.Schedule.graph in
  let reg_binding, reg_count = Binding.bind_registers sched in
  let regs = Array.make (max 1 reg_count) 0 in
  let owner = Array.make (max 1 reg_count) (-1) in
  let reg_of = Hashtbl.create 32 in
  List.iter (fun (p, r) -> Hashtbl.replace reg_of p r) reg_binding;
  let write producer v =
    match Hashtbl.find_opt reg_of producer with
    | Some r ->
        regs.(r) <- v;
        owner.(r) <- producer
    | None -> () (* unconsumed value: no storage allocated *)
  in
  let read consumer producer =
    let pn = Chop_dfg.Graph.node g producer in
    match pn.Chop_dfg.Graph.op with
    | Chop_dfg.Op.Const ->
        mask pn.Chop_dfg.Graph.width
          (Option.value ~default:1 (List.assoc_opt pn.Chop_dfg.Graph.name consts))
    | _ -> (
        match Hashtbl.find_opt reg_of producer with
        | None ->
            fail "node %d reads value of %d which has no register" consumer
              producer
        | Some r ->
            if owner.(r) <> producer then
              fail
                "register %d was reused (owner %d) before node %d consumed \
                 the value of %d — broken lifetime binding"
                r owner.(r) consumer producer;
            regs.(r))
  in
  (* preload primary inputs *)
  List.iter
    (fun n ->
      if n.Chop_dfg.Graph.op = Chop_dfg.Op.Input then
        write n.Chop_dfg.Graph.id
          (mask n.Chop_dfg.Graph.width
             (Option.value ~default:0 (List.assoc_opt n.Chop_dfg.Graph.name inputs))))
    (Chop_dfg.Graph.nodes g);
  (* execute step by step: reads happen at an operation's start, its write
     lands at its finish (before the reads of operations starting then) *)
  let by_start = Hashtbl.create 32 and by_finish = Hashtbl.create 32 in
  let pending = Hashtbl.create 32 in
  List.iter
    (fun (id, s) ->
      Hashtbl.replace by_start s
        (id :: Option.value ~default:[] (Hashtbl.find_opt by_start s));
      let f = Chop_sched.Schedule.finish sched id in
      Hashtbl.replace by_finish f
        (id :: Option.value ~default:[] (Hashtbl.find_opt by_finish f)))
    sched.Chop_sched.Schedule.starts;
  for step = 0 to sched.Chop_sched.Schedule.length do
    (* retire: apply the writes of operations finishing here *)
    List.iter
      (fun id ->
        match Hashtbl.find_opt pending id with
        | Some v -> write id v
        | None -> fail "node %d finishes before computing (internal)" id)
      (Option.value ~default:[] (Hashtbl.find_opt by_finish step));
    (* issue: compute operations starting here from current register state *)
    List.iter
      (fun id ->
        let n = Chop_dfg.Graph.node g id in
        let operands = List.map (read id) (Chop_dfg.Graph.preds g id) in
        Hashtbl.replace pending id (eval_op n operands memory))
      (Option.value ~default:[] (Hashtbl.find_opt by_start step))
  done;
  (* primary outputs read their producers' registers *)
  List.filter_map
    (fun n ->
      if n.Chop_dfg.Graph.op = Chop_dfg.Op.Output then
        match Chop_dfg.Graph.preds g n.Chop_dfg.Graph.id with
        | [ p ] -> Some (n.Chop_dfg.Graph.name, read n.Chop_dfg.Graph.id p)
        | _ -> fail "output %s arity (internal)" n.Chop_dfg.Graph.name
      else None)
    (Chop_dfg.Graph.nodes g)
