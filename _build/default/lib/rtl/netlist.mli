(** Structural register-transfer netlists.

    The concrete datapath a bound schedule describes: functional-unit
    instances, a register file, steering multiplexers and a finite-state
    controller.  Its exact resource counts are what BAD's predictions
    approximate; {!Validate} measures the gap. *)

type mux = {
  mux_name : string;
  mux_width : Chop_util.Units.bits;
  fanin : int;  (** number of selectable sources, >= 2 *)
}

type fu = {
  fu_name : string;
  component : Chop_tech.Component.t;
  port_muxes : mux list;  (** one entry per input port with fan-in >= 2 *)
}

type register_file = {
  count : int;  (** word registers *)
  width : Chop_util.Units.bits;
  write_muxes : mux list;  (** registers with more than one writer *)
}

type fsm = {
  states : int;
  control_signals : int;
}

type t = {
  design_name : string;
  fus : fu list;
  registers : register_file;
  controller : fsm;
  connections : (string * string) list;  (** (driver, sink) pairs *)
}

val register_bits : t -> int
val mux_bits : t -> int
(** Equivalent 1-bit 2:1 multiplexers: an n-way word mux counts
    [(n-1) * width]. *)

val cell_area : t -> Chop_util.Units.mil2
(** Exact placed-cell area (no routing): functional units + register bits
    at the Table 1 register cell + mux bits at the Table 1 mux cell + the
    controller PLA. *)

val pp : Format.formatter -> t -> unit
