(** Chip-level synthesis of a feasible global implementation.

    Combines everything below it: for each chip of a feasible
    {!Chop.Integration.system}, rebuild and bind the schedules of the
    partitions placed there, synthesize their processing-unit netlists,
    attach the data-transfer modules' buffers and controller PLAs, check
    the whole against the package with the floorplanner, and emit one
    Verilog rendering per chip — the complete multi-chip artifact the
    paper's section 5 sets as the immediate task. *)

type dtm_hardware = {
  dtm_name : string;
  buffer_bits : int;
  pins : int;  (** data pins the module drives on this chip *)
  controller : Chop_tech.Pla.shape;
  area : Chop_util.Units.mil2;  (** buffer registers + controller PLA *)
}

type chip_design = {
  chip_name : string;
  package : Chop_tech.Chip.t;
  pu_netlists : Netlist.t list;  (** one per partition on the chip *)
  dtms : dtm_hardware list;  (** transfer modules touching the chip *)
  total_cell_area : Chop_util.Units.mil2;
  floorplan : (Floorplan.t, string) result;
}

type t = {
  chips : chip_design list;
  verilog : (string * string) list;  (** (chip name, module text) *)
}

val synthesize : Chop.Integration.context -> Chop.Integration.system -> t
(** @raise Invalid_argument when the system is not a successful integration
    (no chip reports). *)

val all_fit : t -> bool
(** Every chip floorplans onto its package. *)

val summary : t -> string
(** One table: per chip, its PUs, DTM hardware, exact cell area and
    floorplan verdict. *)

val board_verilog : Chop.Integration.context -> Chop.Integration.system -> t -> string
(** The board-level top module: one instance per chip, one bus per
    cross-chip transfer (width = the transfer's bonded pins) plus its
    request/acknowledge handshake pair — the multi-chip system as a single
    artifact. *)
