(** Cycle-accurate execution of a bound schedule.

    Runs the data path the way the synthesized hardware would: a shared
    register file written through the left-edge binding, operations firing
    at their scheduled steps on their bound units, results landing in
    (possibly reused) registers.  Producing the same outputs as the purely
    functional {!Chop_dfg.Eval} proves the scheduling/binding pipeline
    preserves semantics — in particular that no register is overwritten
    while a consumer still needs it. *)

exception Sim_error of string

val run :
  ?inputs:(string * int) list ->
  ?consts:(string * int) list ->
  ?memory:Chop_dfg.Eval.memory_model ->
  Chop_sched.Schedule.t ->
  (string * int) list
(** Primary outputs as [(output node name, value)], with the same operand
    semantics and defaults as {!Chop_dfg.Eval.run}.
    @raise Sim_error when the binding is inconsistent (a value read after
    its register was reused — which the tests assert never happens for
    schedules produced by this library). *)
