let normal_cdf ~mean ~std x =
  if std <= 0. then if x >= mean then 1. else 0.
  else
    let z = (x -. mean) /. (std *. sqrt 2.) in
    (* Abramowitz & Stegun 7.1.26 rational approximation of erf. *)
    let t = 1. /. (1. +. (0.3275911 *. Float.abs z)) in
    let poly =
      t
      *. (0.254829592
         +. (t
            *. (-0.284496736
               +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
    in
    let erf_abs = 1. -. (poly *. exp (-.z *. z)) in
    let erf = if z >= 0. then erf_abs else -.erf_abs in
    0.5 *. (1. +. erf)

let of_sum parts bound =
  match parts with
  | [] -> if bound >= 0. then 1. else 0.
  | [ t ] -> Triplet.cdf t bound
  | _ ->
      let total = Triplet.sum parts in
      if bound >= total.Triplet.high then 1.
      else if bound < total.Triplet.low then 0.
      else
        let mean = List.fold_left (fun acc t -> acc +. Triplet.mean t) 0. parts in
        let var =
          List.fold_left (fun acc t -> acc +. Triplet.variance t) 0. parts
        in
        if var <= 0. then if bound >= mean then 1. else 0.
        else normal_cdf ~mean ~std:(sqrt var) bound

let prob_le = Triplet.prob_le

let check_prob prob =
  if not (0. <= prob && prob <= 1.) then invalid_arg "Prob: probability out of [0,1]"

let meets ~prob t bound =
  check_prob prob;
  Triplet.cdf t bound >= prob

let meets_sum ~prob parts bound =
  check_prob prob;
  of_sum parts bound >= prob
