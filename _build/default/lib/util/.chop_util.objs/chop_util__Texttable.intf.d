lib/util/texttable.mli:
