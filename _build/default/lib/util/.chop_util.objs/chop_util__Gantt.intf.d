lib/util/gantt.mli:
