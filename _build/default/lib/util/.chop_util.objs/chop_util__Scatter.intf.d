lib/util/scatter.mli:
