lib/util/gantt.ml: Buffer List Printf String
