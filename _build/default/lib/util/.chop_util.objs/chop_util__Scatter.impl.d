lib/util/scatter.ml: Array Buffer Float List Printf
