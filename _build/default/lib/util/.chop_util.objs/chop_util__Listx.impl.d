lib/util/listx.ml: Float List
