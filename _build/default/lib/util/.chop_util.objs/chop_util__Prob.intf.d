lib/util/prob.mli: Triplet
