lib/util/listx.mli:
