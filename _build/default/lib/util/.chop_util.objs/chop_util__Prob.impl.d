lib/util/prob.ml: Float List Triplet
