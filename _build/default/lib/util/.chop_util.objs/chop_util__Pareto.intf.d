lib/util/pareto.mli:
