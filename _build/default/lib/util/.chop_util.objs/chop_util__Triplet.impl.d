lib/util/triplet.ml: Float Format List Printf
