type mil2 = float
type mil = float
type ns = float
type bits = int

let mil2_of_dims ~width ~height =
  if width < 0. || height < 0. then invalid_arg "Units.mil2_of_dims: negative";
  width *. height

let pp_mil2 ppf a = Format.fprintf ppf "%.1f mil^2" a
let pp_ns ppf d = Format.fprintf ppf "%.1f ns" d
let pp_bits ppf b = Format.fprintf ppf "%d bits" b

let ceil_div a b =
  if b <= 0 then invalid_arg "Units.ceil_div: non-positive divisor";
  if a < 0 then invalid_arg "Units.ceil_div: negative dividend";
  (a + b - 1) / b

let ceil_div_ns d cycle =
  if cycle <= 0. then invalid_arg "Units.ceil_div_ns: non-positive cycle";
  if d < 0. then invalid_arg "Units.ceil_div_ns: negative duration";
  if d = 0. then 0 else int_of_float (ceil (d /. cycle))
