let render ?(cols = 48) ?(lines = 12) ?(x_label = "x") ?(y_label = "y") points =
  if cols < 2 || lines < 2 then invalid_arg "Scatter.render: grid too small";
  match points with
  | [] -> "  (no points)\n"
  | _ ->
      let xs = List.map fst points and ys = List.map snd points in
      let xmin = List.fold_left Float.min infinity xs
      and xmax = List.fold_left Float.max neg_infinity xs
      and ymin = List.fold_left Float.min infinity ys
      and ymax = List.fold_left Float.max neg_infinity ys in
      let grid = Array.make_matrix lines cols 0 in
      List.iter
        (fun (x, y) ->
          let bin v lo hi n =
            if hi = lo then 0
            else min (n - 1) (int_of_float ((v -. lo) /. (hi -. lo) *. float_of_int (n - 1)))
          in
          let xi = bin x xmin xmax cols and yi = bin y ymin ymax lines in
          grid.(lines - 1 - yi).(xi) <- grid.(lines - 1 - yi).(xi) + 1)
        points;
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        (Printf.sprintf "  %s: %.0f (top) .. %.0f (bottom)\n" y_label ymax ymin);
      Array.iter
        (fun row ->
          Buffer.add_string buf "  |";
          Array.iter
            (fun n ->
              Buffer.add_char buf
                (if n = 0 then ' '
                 else if n < 3 then '.'
                 else if n < 10 then 'o'
                 else '@'))
            row;
          Buffer.add_string buf "|\n")
        grid;
      Buffer.add_string buf
        (Printf.sprintf "  %s: %.0f (left) .. %.0f (right)\n" x_label xmin xmax);
      Buffer.contents buf
