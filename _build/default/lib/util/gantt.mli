(** ASCII Gantt charts for task schedules.

    Renders the urgency-scheduled system timeline (processing units and
    data-transfer tasks competing for pins) the way a designer would sketch
    it. *)

type bar = {
  bar_label : string;
  start : int;
  finish : int;  (** exclusive; zero-duration bars render as an event mark *)
}

val render : ?width:int -> bar list -> string
(** [render bars] scales the span [0, max finish] to [width] columns
    (default 60) and draws one row per bar in the given order: ['#'] for
    occupied time, ['|'] for zero-duration events, with start/finish
    numbers appended.  The empty list renders a placeholder.
    @raise Invalid_argument when [width < 10] or a bar has
    [finish < start]. *)
