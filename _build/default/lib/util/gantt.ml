type bar = { bar_label : string; start : int; finish : int }

let render ?(width = 60) bars =
  if width < 10 then invalid_arg "Gantt.render: width < 10";
  List.iter
    (fun b ->
      if b.finish < b.start then
        invalid_arg (Printf.sprintf "Gantt.render: bar %s ends before it starts" b.bar_label))
    bars;
  match bars with
  | [] -> "  (no tasks)\n"
  | _ ->
      let horizon = List.fold_left (fun acc b -> max acc b.finish) 1 bars in
      let label_width =
        List.fold_left (fun acc b -> max acc (String.length b.bar_label)) 0 bars
      in
      let col t = min (width - 1) (t * width / horizon) in
      let buf = Buffer.create 1024 in
      List.iter
        (fun b ->
          Buffer.add_string buf
            (Printf.sprintf "  %-*s " label_width b.bar_label);
          let c0 = col b.start in
          let c1 = if b.finish = b.start then c0 else max (c0 + 1) (col b.finish) in
          for c = 0 to width - 1 do
            Buffer.add_char buf
              (if b.finish = b.start && c = c0 then '|'
               else if c >= c0 && c < c1 then '#'
               else '.')
          done;
          Buffer.add_string buf (Printf.sprintf " %d..%d\n" b.start b.finish))
        bars;
      Buffer.add_string buf
        (Printf.sprintf "  %-*s 0%*d\n" label_width "" (width - 1) horizon);
      Buffer.contents buf
