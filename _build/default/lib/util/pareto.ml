let dominates a b =
  if Array.length a <> Array.length b then
    invalid_arg "Pareto.dominates: objective length mismatch";
  let no_worse = ref true and strictly = ref false in
  Array.iteri
    (fun i ai ->
      if ai > b.(i) then no_worse := false;
      if ai < b.(i) then strictly := true)
    a;
  !no_worse && !strictly

let frontier ~objectives xs =
  let vals = List.map (fun x -> (x, objectives x)) xs in
  List.filter_map
    (fun (x, v) ->
      let dominated =
        List.exists (fun (_, v') -> dominates v' v) vals
      in
      if dominated then None else Some x)
    vals

let frontier_count ~objectives xs = List.length (frontier ~objectives xs)
