type align = Left | Right | Center
type line = Row of string list | Sep

type t = {
  title : string option;
  headers : (string * align) list;
  mutable lines : line list; (* reversed *)
}

let create ?title headers = { title; headers; lines = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Texttable.add_row: wrong number of cells";
  t.lines <- Row row :: t.lines

let add_separator t = t.lines <- Sep :: t.lines

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let l = fill / 2 in
        String.make l ' ' ^ s ^ String.make (fill - l) ' '

let render t =
  let lines = List.rev t.lines in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row
  in
  measure (List.map fst t.headers);
  List.iter (function Row r -> measure r | Sep -> ()) lines;
  let buf = Buffer.create 256 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_row aligns row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad (List.nth aligns i) widths.(i) c);
        Buffer.add_string buf " |")
      row;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  let aligns = List.map snd t.headers in
  rule ();
  emit_row (List.map (fun _ -> Center) t.headers) (List.map fst t.headers);
  rule ();
  List.iter (function Row r -> emit_row aligns r | Sep -> rule ()) lines;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)
let cell_int = string_of_int
let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
