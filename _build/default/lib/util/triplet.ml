type t = { low : float; likely : float; high : float }

let make ~low ~likely ~high =
  let finite x = Float.is_finite x in
  if not (finite low && finite likely && finite high) then
    invalid_arg "Triplet.make: non-finite component";
  if not (low <= likely && likely <= high) then
    invalid_arg
      (Printf.sprintf "Triplet.make: unordered (%g, %g, %g)" low likely high);
  { low; likely; high }

let exact v = make ~low:v ~likely:v ~high:v

let spread ?(down = 0.1) ?(up = 0.1) v =
  if v < 0. then invalid_arg "Triplet.spread: negative value";
  make ~low:(v *. (1. -. down)) ~likely:v ~high:(v *. (1. +. up))

let zero = exact 0.
let is_exact t = t.low = t.high

let add a b =
  { low = a.low +. b.low; likely = a.likely +. b.likely; high = a.high +. b.high }

let sum ts = List.fold_left add zero ts

let scale k t =
  if k < 0. then invalid_arg "Triplet.scale: negative factor";
  { low = k *. t.low; likely = k *. t.likely; high = k *. t.high }

let add_const c t =
  { low = t.low +. c; likely = t.likely +. c; high = t.high +. c }

let max2 a b =
  {
    low = Float.max a.low b.low;
    likely = Float.max a.likely b.likely;
    high = Float.max a.high b.high;
  }

let mean t = (t.low +. t.likely +. t.high) /. 3.

let variance t =
  let a = t.low and b = t.high and c = t.likely in
  ((a *. a) +. (b *. b) +. (c *. c) -. (a *. b) -. (a *. c) -. (b *. c)) /. 18.

let cdf t x =
  let a = t.low and b = t.high and c = t.likely in
  if x < a then 0.
  else if x >= b then 1.
  else if a = b then 1. (* degenerate, x >= a *)
  else if x <= c then
    if c = a then 0. else (x -. a) ** 2. /. ((b -. a) *. (c -. a))
  else 1. -. (((b -. x) ** 2.) /. ((b -. a) *. (b -. c)))

let prob_le = cdf

let compare a b =
  match Float.compare a.likely b.likely with
  | 0 -> (
      match Float.compare a.low b.low with
      | 0 -> Float.compare a.high b.high
      | n -> n)
  | n -> n

let equal a b = compare a b = 0
let pp ppf t = Format.fprintf ppf "(%g, %g, %g)" t.low t.likely t.high
let to_string t = Format.asprintf "%a" pp t
