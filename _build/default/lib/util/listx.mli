(** List helpers shared across CHOP libraries. *)

val cartesian : 'a list list -> 'a list list
(** [cartesian [xs1; xs2; ...]] enumerates every way of picking one element
    from each list, in lexicographic order of the inputs.  [cartesian []] is
    [[[]]].  The number of results is the product of the lengths. *)

val cartesian_count : 'a list list -> int
(** Size of the cartesian product without materializing it. *)

val fold_cartesian : ('acc -> 'a list -> 'acc) -> 'acc -> 'a list list -> 'acc
(** Fold over the cartesian product without materializing it; combinations
    are delivered in the same order as {!cartesian}. *)

val range : int -> int -> int list
(** [range lo hi] is [[lo; lo+1; ...; hi]]; empty when [lo > hi]. *)

val sum_by : ('a -> int) -> 'a list -> int
val sum_byf : ('a -> float) -> 'a list -> float
val max_by : ('a -> float) -> 'a list -> float
(** [max_by f xs] is the maximum of [f] over [xs]; 0. for the empty list. *)

val uniq_count : compare:('a -> 'a -> int) -> 'a list -> int
(** Number of distinct elements under [compare]. *)

val take : int -> 'a list -> 'a list
(** First [n] elements ([n < 0] treated as 0; short lists returned whole). *)
