(** Physical units used throughout CHOP.

    Dimensions follow the paper's experimental setup: areas in square mils
    (3µ technology), lengths in mils, delays in nanoseconds, data sizes in
    bits. *)

type mil2 = float
(** Area in square mils. *)

type mil = float
(** Length in mils. *)

type ns = float
(** Delay / time in nanoseconds. *)

type bits = int
(** Data size in bits. *)

val mil2_of_dims : width:mil -> height:mil -> mil2
(** Project area of a rectangular die. *)

val pp_mil2 : Format.formatter -> mil2 -> unit
val pp_ns : Format.formatter -> ns -> unit
val pp_bits : Format.formatter -> bits -> unit

val ceil_div : int -> int -> int
(** [ceil_div a b] is [ceil (a / b)] on positive integers.
    @raise Invalid_argument if [b <= 0] or [a < 0]. *)

val ceil_div_ns : ns -> ns -> int
(** [ceil_div_ns d cycle] is the number of whole clock cycles of length
    [cycle] needed to cover duration [d] (at least 1 for positive [d]).
    @raise Invalid_argument if [cycle <= 0.] or [d < 0.]. *)
