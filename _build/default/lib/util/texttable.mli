(** Plain-text tables for experiment reports.

    Every bench and example prints its results with this renderer so that
    the reproduction tables visually match the paper's layout. *)

type align = Left | Right | Center

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the row width differs from the header. *)

val add_separator : t -> unit
(** Insert a horizontal rule between row groups. *)

val render : t -> string
val print : t -> unit

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
