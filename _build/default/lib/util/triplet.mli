(** Prediction triplets.

    Every quantity predicted by BAD and CHOP is stored as a triplet
    [(low, likely, high)]: a lower bound, a most-likely value and an upper
    bound.  The triplet is interpreted as a triangular probability
    distribution with support [[low, high]] and mode [likely], following the
    "statistical environment" of the BAD predictor (paper, section 2.6). *)

type t = private {
  low : float;  (** lower bound of the predicted quantity *)
  likely : float;  (** most likely value (mode) *)
  high : float;  (** upper bound *)
}

val make : low:float -> likely:float -> high:float -> t
(** [make ~low ~likely ~high] builds a triplet.  @raise Invalid_argument if
    the ordering [low <= likely <= high] is violated or any component is not
    finite. *)

val exact : float -> t
(** [exact v] is the degenerate triplet [(v, v, v)] — a known quantity. *)

val spread : ?down:float -> ?up:float -> float -> t
(** [spread ~down ~up v] is [(v*(1-down), v, v*(1+up))].  [down] and [up]
    default to [0.1].  [v] must be non-negative. *)

val zero : t

val is_exact : t -> bool

val add : t -> t -> t
(** Component-wise sum; the exact distribution of a sum is not triangular,
    so consumers needing probabilities should use {!Prob.of_sum}. *)

val sum : t list -> t

val scale : float -> t -> t
(** [scale k t] multiplies every component by [k >= 0]. *)

val add_const : float -> t -> t

val max2 : t -> t -> t
(** Component-wise maximum — a conservative envelope for [max X Y]. *)

val mean : t -> float
(** Mean of the triangular distribution: [(low + likely + high) / 3]. *)

val variance : t -> float
(** Variance of the triangular distribution. *)

val cdf : t -> float -> float
(** [cdf t x] is [P(X <= x)] for the triangular distribution [t].  Degenerate
    triplets give a step function. *)

val prob_le : t -> float -> float
(** [prob_le t bound] = [cdf t bound]: probability the predicted quantity
    satisfies an upper-bound constraint. *)

val compare : t -> t -> int
(** Ordered by [likely], then [low], then [high]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
