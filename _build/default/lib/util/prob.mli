(** Probabilistic feasibility analysis over prediction triplets.

    Singleton predictions use the exact triangular CDF; sums of many
    independent predictions use a moment-matched normal approximation (CLT)
    clipped to the summed support.  This mirrors the probabilistic
    feasibility analysis of BAD (paper, section 2.6). *)

val normal_cdf : mean:float -> std:float -> float -> float
(** Standard normal CDF evaluated via the Abramowitz–Stegun erf
    approximation (absolute error < 1.5e-7). *)

val of_sum : Triplet.t list -> float -> float
(** [of_sum parts bound] is [P(sum parts <= bound)].  An empty list is the
    constant 0; a single part uses its exact triangular CDF; two or more
    parts use the clipped normal approximation. *)

val prob_le : Triplet.t -> float -> float
(** Exact triangular [P(X <= bound)] (re-export of {!Triplet.prob_le}). *)

val meets : prob:float -> Triplet.t -> float -> bool
(** [meets ~prob t bound] holds when [P(t <= bound) >= prob].  [prob] must be
    in [[0, 1]]. *)

val meets_sum : prob:float -> Triplet.t list -> float -> bool
(** Like {!meets} for the sum of independent predictions. *)
