(** ASCII scatter plots for design-space visualization (the paper's
    Figures 7 and 8 are exactly such area/delay scatters). *)

val render :
  ?cols:int ->
  ?lines:int ->
  ?x_label:string ->
  ?y_label:string ->
  (float * float) list ->
  string
(** [render points] bins the [(x, y)] points into a [cols x lines] character
    grid (defaults 48 x 12): ' ' empty, '.' 1-2 points, 'o' 3-9, '@' 10+.
    The y axis grows upward.  Returns a ready-to-print block including axis
    annotations; the empty list renders a placeholder line.
    @raise Invalid_argument when [cols] or [lines] < 2. *)
