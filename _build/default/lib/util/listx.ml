let rec cartesian = function
  | [] -> [ [] ]
  | xs :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun x -> List.map (fun tl -> x :: tl) tails) xs

let cartesian_count lists =
  List.fold_left (fun acc xs -> acc * List.length xs) 1 lists

let fold_cartesian f init lists =
  let rec go acc prefix = function
    | [] -> f acc (List.rev prefix)
    | xs :: rest ->
        List.fold_left (fun acc x -> go acc (x :: prefix) rest) acc xs
  in
  go init [] lists

let range lo hi =
  let rec go acc i = if i < lo then acc else go (i :: acc) (i - 1) in
  go [] hi

let sum_by f = List.fold_left (fun acc x -> acc + f x) 0
let sum_byf f = List.fold_left (fun acc x -> acc +. f x) 0.
let max_by f = List.fold_left (fun acc x -> Float.max acc (f x)) 0.

let uniq_count ~compare xs =
  let sorted = List.sort compare xs in
  let rec go n = function
    | [] -> n
    | [ _ ] -> n + 1
    | a :: (b :: _ as rest) -> go (if compare a b = 0 then n else n + 1) rest
  in
  go 0 sorted

let take n xs =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n xs
