(** Feasibility criteria and probabilistic checks.

    "All prediction results ... are stored in a statistical environment, and
    the feasibility analysis is done with ... probabilistic methods" (paper,
    section 2.6).  The experiments use: probability 1.0 of satisfying the
    performance and chip-area constraints and probability 0.8 of satisfying
    the system-delay constraint. *)

type criteria = {
  perf_constraint : Chop_util.Units.ns;
      (** maximum initiation interval, input-to-input *)
  delay_constraint : Chop_util.Units.ns;  (** maximum input-to-output delay *)
  perf_prob : float;  (** required probability for the performance check *)
  area_prob : float;  (** required probability for each chip-area check *)
  delay_prob : float;  (** required probability for the system-delay check *)
  power_budget : float option;  (** optional mW budget per chip (extension) *)
}

val criteria :
  ?perf_prob:float ->
  ?area_prob:float ->
  ?delay_prob:float ->
  ?power_budget:float ->
  perf:Chop_util.Units.ns ->
  delay:Chop_util.Units.ns ->
  unit ->
  criteria
(** Probabilities default to the paper's 1.0 / 1.0 / 0.8.
    @raise Invalid_argument on constraints <= 0 or probabilities outside
    [0, 1]. *)

type verdict = Feasible | Infeasible of string

val is_feasible : verdict -> bool

val check_area :
  criteria -> available:Chop_util.Units.mil2 -> Chop_util.Triplet.t list -> verdict
(** Probabilistic check that the summed area predictions fit. *)

val check_perf : criteria -> Chop_util.Units.ns -> verdict
(** Performance is a derived scalar (II x adjusted clock): compared
    directly, which realizes the 100%-probability criterion. *)

val check_delay : criteria -> Chop_util.Triplet.t -> verdict
(** System delay keeps prediction spread; checked at [delay_prob]. *)

val check_power : criteria -> float -> verdict

val partition_level :
  criteria ->
  clocks:Chop_tech.Clocking.t ->
  chip_area:Chop_util.Units.mil2 ->
  Prediction.t ->
  verdict
(** First-level pruning test for a single partition prediction in
    isolation: its own area must fit the target chip and its own timing
    must not already violate the performance/delay constraints (system
    integration can only add overhead). *)
