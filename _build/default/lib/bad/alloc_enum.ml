let enumerate ?(cap = 8) ~latency ~memport_units g =
  let max_useful = Chop_sched.List_sched.maximal_useful_alloc ~latency g in
  let profile = Chop_dfg.Graph.op_profile g in
  let mem_classes, enumerable =
    List.partition
      (fun (cls, _) -> Chop_tech.Component.is_memport_class cls)
      profile
  in
  let fixed =
    List.map
      (fun (cls, _) ->
        match List.assoc_opt cls memport_units with
        | Some ports when ports >= 1 -> (cls, ports)
        | Some _ | None ->
            invalid_arg
              (Printf.sprintf "Alloc_enum.enumerate: no ports declared for %s" cls))
      mem_classes
  in
  let choices =
    List.map
      (fun (cls, _) ->
        let hi =
          min cap (max 1 (Option.value ~default:1 (List.assoc_opt cls max_useful)))
        in
        List.map (fun n -> (cls, n)) (Chop_util.Listx.range 1 hi))
      enumerable
  in
  let boxes = Chop_util.Listx.cartesian choices in
  List.map (fun alloc -> fixed @ alloc) boxes
