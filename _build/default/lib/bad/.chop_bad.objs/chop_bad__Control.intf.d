lib/bad/control.mli: Chop_sched Chop_tech Chop_util Datapath
