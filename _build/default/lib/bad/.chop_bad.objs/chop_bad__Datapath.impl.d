lib/bad/datapath.ml: Chop_dfg Chop_sched Chop_tech Chop_util List
