lib/bad/feasibility.ml: Chop_util List Prediction Printf
