lib/bad/predictor.ml: Alloc_enum Array Chop_dfg Chop_sched Chop_tech Chop_util Control Datapath Feasibility Float List Prediction Printf
