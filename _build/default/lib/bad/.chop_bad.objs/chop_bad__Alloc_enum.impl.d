lib/bad/alloc_enum.ml: Chop_dfg Chop_sched Chop_tech Chop_util List Option Printf
