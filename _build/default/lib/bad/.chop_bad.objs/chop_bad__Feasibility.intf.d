lib/bad/feasibility.mli: Chop_tech Chop_util Prediction
