lib/bad/prediction.ml: Buffer Chop_sched Chop_tech Chop_util Format Int List Printf String
