lib/bad/datapath.mli: Chop_sched Chop_tech Chop_util
