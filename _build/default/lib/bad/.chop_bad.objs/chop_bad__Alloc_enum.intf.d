lib/bad/alloc_enum.mli: Chop_dfg Chop_sched
