lib/bad/prediction.mli: Chop_sched Chop_tech Chop_util Format
