lib/bad/control.ml: Chop_dfg Chop_sched Chop_tech Chop_util Datapath List
