lib/bad/predictor.mli: Chop_dfg Chop_tech Chop_util Feasibility Prediction
