(** Predicted implementations of a single partition.

    BAD returns, per partition, a set of completely specified predicted
    designs: design style, module set, allocation, timing (initiation
    interval, latency, adjusted clock) and area broken down into functional
    units, registers, multiplexers, controller and wiring (paper,
    section 2.4). *)

type timing = {
  ii_dp : int;  (** initiation interval in data-path cycles *)
  latency_dp : int;  (** input-to-output latency in data-path cycles *)
  stages : int;
      (** pipeline stages (pipelined) or schedule steps (non-pipelined) *)
  clock_main : Chop_util.Units.ns;
      (** adjusted main clock: nominal cycle stretched by data-path
          overhead (registers, multiplexers, wiring, controller) *)
  overhead : Chop_util.Units.ns;  (** the stretch component, at dp level *)
}

type area_breakdown = {
  functional_units : Chop_util.Units.mil2;
  registers : Chop_util.Units.mil2;
  multiplexers : Chop_util.Units.mil2;
  controller : Chop_util.Units.mil2;
  wiring : Chop_util.Triplet.t;
}

type t = {
  partition_label : string;
  style : Chop_tech.Style.pipelining;
  module_set : Chop_tech.Component.t list;  (** one entry per class, sorted *)
  alloc : Chop_sched.Schedule.alloc;
  timing : timing;
  area : Chop_util.Triplet.t;  (** total area prediction *)
  breakdown : area_breakdown;
  register_bits : int;
  mux_count : int;  (** equivalent 1-bit 2:1 multiplexers *)
  controller_shape : Chop_tech.Pla.shape;
  mem_bandwidth : (string * int) list;
      (** per memory block: peak word accesses in any one data-path cycle *)
  power : float;  (** mW, extension hook *)
}

val ii_main : Chop_tech.Clocking.t -> t -> int
(** Initiation interval in main-clock cycles. *)

val latency_main : Chop_tech.Clocking.t -> t -> int

val perf_ns : Chop_tech.Clocking.t -> t -> Chop_util.Units.ns
(** Initiation interval in adjusted-clock nanoseconds
    (= [ii_main * clock_main]). *)

val delay_ns : Chop_tech.Clocking.t -> t -> Chop_util.Units.ns

val module_of_class : t -> string -> Chop_tech.Component.t
(** @raise Not_found when the class is not in the module set. *)

val objectives : Chop_tech.Clocking.t -> t -> float array
(** [| perf_ns; delay_ns; likely area |] — the inferiority (domination)
    objectives used by CHOP's pruning. *)

val compare_speed : t -> t -> int
(** Sorting order of the iterative heuristic (Figure 5): "increasing order
    first for the initiation interval and then for the circuit delay". *)

val describe : Chop_tech.Clocking.t -> t -> string
(** Multi-line designer guideline, as in the paper's section 3.1 example. *)

val pp : Format.formatter -> t -> unit
