(** Data-path resource prediction: register bits, multiplexer count, net
    count and area roll-up for a scheduled partition. *)

type estimate = {
  register_bits : int;
  peak_values : int;
  mux_count : int;  (** equivalent 1-bit 2:1 multiplexers *)
  nets : int;  (** point-to-point nets, for the wiring model *)
  fu_area : Chop_util.Units.mil2;
  register_area : Chop_util.Units.mil2;
  mux_area : Chop_util.Units.mil2;
  mux_select_delay : Chop_util.Units.ns;
      (** worst mux-tree delay in front of a functional unit *)
}

val estimate :
  module_set:Chop_tech.Component.t list ->
  ?ii:int ->
  Chop_sched.Schedule.t ->
  estimate
(** [ii] folds register lifetimes for pipelined designs.  The multiplexer
    count combines functional-unit input steering (operations sharing a
    unit) with register-file input steering (values sharing a register). *)
