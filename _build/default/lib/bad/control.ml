let shape ~sched ~est ~ii ~pipelined =
  let g = sched.Chop_sched.Schedule.graph in
  let states = if pipelined then max 1 ii else max 1 sched.Chop_sched.Schedule.length in
  let comparisons =
    List.length
      (List.filter
         (fun n -> n.Chop_dfg.Graph.op = Chop_dfg.Op.Compare)
         (Chop_dfg.Graph.operations g))
  in
  (* start/done handshake with the distributed control network *)
  let status_inputs = 2 + comparisons in
  let total_fus =
    Chop_util.Listx.sum_by snd sched.Chop_sched.Schedule.alloc
  in
  let mux_selects = Chop_util.Units.ceil_div (max 1 est.Datapath.mux_count) 8 in
  let reg_loads = est.Datapath.peak_values in
  let control_outputs = (2 * total_fus) + mux_selects + reg_loads in
  Chop_tech.Pla.controller_shape ~states ~status_inputs ~control_outputs

let area = Chop_tech.Pla.area
let delay = Chop_tech.Pla.delay
