(** PLA-based controller prediction for processing units.

    The controller sequences the schedule: one state per control step
    (the initiation interval for pipelined designs, since the control loop
    wraps at [ii]), with status inputs from comparison operations and the
    distributed-control handshake, and control outputs driving functional
    units, multiplexer select trees and register loads. *)

val shape :
  sched:Chop_sched.Schedule.t ->
  est:Datapath.estimate ->
  ii:int ->
  pipelined:bool ->
  Chop_tech.Pla.shape

val area : Chop_tech.Pla.shape -> Chop_util.Units.mil2
val delay : Chop_tech.Pla.shape -> Chop_util.Units.ns
