type criteria = {
  perf_constraint : Chop_util.Units.ns;
  delay_constraint : Chop_util.Units.ns;
  perf_prob : float;
  area_prob : float;
  delay_prob : float;
  power_budget : float option;
}

let criteria ?(perf_prob = 1.0) ?(area_prob = 1.0) ?(delay_prob = 0.8)
    ?power_budget ~perf ~delay () =
  if perf <= 0. || delay <= 0. then
    invalid_arg "Feasibility.criteria: non-positive constraint";
  let check_p name p =
    if not (0. <= p && p <= 1.) then
      invalid_arg (Printf.sprintf "Feasibility.criteria: %s out of [0,1]" name)
  in
  check_p "perf_prob" perf_prob;
  check_p "area_prob" area_prob;
  check_p "delay_prob" delay_prob;
  {
    perf_constraint = perf;
    delay_constraint = delay;
    perf_prob;
    area_prob;
    delay_prob;
    power_budget;
  }

type verdict = Feasible | Infeasible of string

let is_feasible = function Feasible -> true | Infeasible _ -> false

let check_area c ~available parts =
  let p = Chop_util.Prob.of_sum parts available in
  if p >= c.area_prob then Feasible
  else
    Infeasible
      (Printf.sprintf "area: P(fit in %.0f mil^2) = %.2f < %.2f" available p
         c.area_prob)

let check_perf c perf_ns =
  if perf_ns <= c.perf_constraint then Feasible
  else
    Infeasible
      (Printf.sprintf "performance: %.0f ns > %.0f ns" perf_ns c.perf_constraint)

let check_delay c delay =
  let p = Chop_util.Prob.prob_le delay c.delay_constraint in
  if p >= c.delay_prob then Feasible
  else
    Infeasible
      (Printf.sprintf "system delay: P(<= %.0f ns) = %.2f < %.2f"
         c.delay_constraint p c.delay_prob)

let check_power c power =
  match c.power_budget with
  | None -> Feasible
  | Some budget ->
      if power <= budget then Feasible
      else Infeasible (Printf.sprintf "power: %.1f mW > %.1f mW" power budget)

let partition_level c ~clocks ~chip_area p =
  let first = function
    | [] -> Feasible
    | Infeasible r :: _ -> Infeasible r
    | Feasible :: rest -> (
        match List.filter (fun v -> not (is_feasible v)) rest with
        | bad :: _ -> bad
        | [] -> Feasible)
  in
  first
    [
      check_area c ~available:chip_area [ p.Prediction.area ];
      check_perf c (Prediction.perf_ns clocks p);
      check_delay c
        (Chop_util.Triplet.exact (Prediction.delay_ns clocks p));
      check_power c p.Prediction.power;
    ]
