type timing = {
  ii_dp : int;
  latency_dp : int;
  stages : int;
  clock_main : Chop_util.Units.ns;
  overhead : Chop_util.Units.ns;
}

type area_breakdown = {
  functional_units : Chop_util.Units.mil2;
  registers : Chop_util.Units.mil2;
  multiplexers : Chop_util.Units.mil2;
  controller : Chop_util.Units.mil2;
  wiring : Chop_util.Triplet.t;
}

type t = {
  partition_label : string;
  style : Chop_tech.Style.pipelining;
  module_set : Chop_tech.Component.t list;
  alloc : Chop_sched.Schedule.alloc;
  timing : timing;
  area : Chop_util.Triplet.t;
  breakdown : area_breakdown;
  register_bits : int;
  mux_count : int;
  controller_shape : Chop_tech.Pla.shape;
  mem_bandwidth : (string * int) list;
  power : float;
}

let ii_main clocks p =
  Chop_tech.Clocking.main_cycles_of_datapath clocks p.timing.ii_dp

let latency_main clocks p =
  Chop_tech.Clocking.main_cycles_of_datapath clocks p.timing.latency_dp

let perf_ns clocks p = float_of_int (ii_main clocks p) *. p.timing.clock_main
let delay_ns clocks p = float_of_int (latency_main clocks p) *. p.timing.clock_main

let module_of_class p cls =
  List.find (fun c -> c.Chop_tech.Component.cls = cls) p.module_set

let objectives clocks p =
  [| perf_ns clocks p; delay_ns clocks p; Chop_util.Triplet.(p.area.likely) |]

let compare_speed a b =
  match Int.compare a.timing.ii_dp b.timing.ii_dp with
  | 0 -> Int.compare a.timing.latency_dp b.timing.latency_dp
  | n -> n

let describe clocks p =
  let buf = Buffer.create 256 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "Partition %s:\n" p.partition_label;
  addf "  - a %s design style with %d stages,\n"
    (match p.style with
    | Chop_tech.Style.Pipelined -> "pipelined"
    | Chop_tech.Style.Non_pipelined -> "non-pipelined")
    p.timing.stages;
  addf "  - module library of %s,\n"
    (String.concat " and "
       (List.map (fun c -> c.Chop_tech.Component.cname) p.module_set));
  List.iter
    (fun (cls, n) -> addf "  - %d %s unit(s),\n" n cls)
    p.alloc;
  addf "  - %d bits of registers for the data path,\n" p.register_bits;
  addf "  - %d 1-bit 2-to-1 multiplexers,\n" p.mux_count;
  addf "  - initiation interval %d, latency %d (main cycles), clock %.0f ns."
    (ii_main clocks p) (latency_main clocks p) p.timing.clock_main;
  Buffer.contents buf

let pp ppf p =
  Format.fprintf ppf "%s[%s ii=%ddp lat=%ddp area=%a]" p.partition_label
    (match p.style with
    | Chop_tech.Style.Pipelined -> "pipe"
    | Chop_tech.Style.Non_pipelined -> "seq")
    p.timing.ii_dp p.timing.latency_dp Chop_util.Triplet.pp p.area
