type estimate = {
  register_bits : int;
  peak_values : int;
  mux_count : int;
  nets : int;
  fu_area : Chop_util.Units.mil2;
  register_area : Chop_util.Units.mil2;
  mux_area : Chop_util.Units.mil2;
  mux_select_delay : Chop_util.Units.ns;
}

let estimate ~module_set ?ii sched =
  let g = sched.Chop_sched.Schedule.graph in
  let alloc = sched.Chop_sched.Schedule.alloc in
  let profile = Chop_dfg.Graph.op_profile g in
  let demand = Chop_sched.Lifetime.analyze ?ii sched in
  let register_bits = demand.Chop_sched.Lifetime.register_bits in
  let peak_values = max 1 demand.Chop_sched.Lifetime.peak_values in
  (* Functional-unit input steering: [n] operations sharing one of [a]
     units means each port selects among ~half of ceil(n/a) sources (the
     two operand buses of a register-file organization split the sources);
     an m-way selection needs (m-1) 2:1 muxes per bit. *)
  let fu_mux, worst_fanin =
    List.fold_left
      (fun (mux, fanin) (cls, n) ->
        let a = max 1 (Chop_sched.Schedule.alloc_get alloc cls) in
        let shared = Chop_util.Units.ceil_div n a in
        let per_unit = (shared + 1) / 2 |> max 1 in
        let width =
          match
            List.find_opt (fun c -> c.Chop_tech.Component.cls = cls) module_set
          with
          | Some c -> c.Chop_tech.Component.width
          | None -> 16 (* memory-port steering: data-bus width default *)
        in
        let ports = 2 in
        let mux' = mux + (a * ports * (per_unit - 1) * width) in
        (mux', max fanin per_unit))
      (0, 1) profile
  in
  (* Register-file input steering: values outnumbering registers share
     register inputs. *)
  let n_values =
    List.length (Chop_dfg.Graph.operations g) + List.length (Chop_dfg.Graph.inputs g)
  in
  let writers = Chop_util.Units.ceil_div (max 1 n_values) peak_values in
  let reg_mux = (writers - 1) * register_bits in
  let mux_count = fu_mux + reg_mux in
  let nets =
    List.length (Chop_dfg.Graph.edges g) + (mux_count / 8) + (register_bits / 8)
  in
  let fu_area =
    List.fold_left
      (fun acc (cls, _) ->
        let a = Chop_sched.Schedule.alloc_get alloc cls in
        match
          List.find_opt (fun c -> c.Chop_tech.Component.cls = cls) module_set
        with
        | Some c -> acc +. (float_of_int a *. c.Chop_tech.Component.area)
        | None -> acc (* memory ports contribute no module area *))
      0. profile
  in
  let register_area =
    float_of_int register_bits *. Chop_tech.Mosis.register_cell.Chop_tech.Component.area
  in
  let mux_area =
    float_of_int mux_count *. Chop_tech.Mosis.mux_cell.Chop_tech.Component.area
  in
  let mux_select_delay = Chop_tech.Wiring.mux_tree_delay ~fanin:worst_fanin in
  {
    register_bits;
    peak_values;
    mux_count;
    nets;
    fu_area;
    register_area;
    mux_area;
    mux_select_delay;
  }
