(** Serial-parallel allocation enumeration.

    BAD "considers serial-parallel tradeoffs": for each functional class the
    unit count ranges from 1 (most serial) to the maximum useful parallelism
    of the graph; per-block memory-port classes ([memport:<block>]) are
    fixed by the attached memory blocks and not enumerated. *)

val enumerate :
  ?cap:int ->
  latency:(Chop_dfg.Graph.node -> int) ->
  memport_units:(string * int) list ->
  Chop_dfg.Graph.t ->
  Chop_sched.Schedule.alloc list
(** All allocations in the box [1 .. min cap max_useful] per enumerable
    class ([cap] defaults to 8).  [memport_units] gives, per memory-port
    class used by the graph, the fixed number of ports; every allocation
    carries those entries verbatim.
    @raise Invalid_argument when a memory-port class the graph uses is
    missing from [memport_units] or has a non-positive count. *)
