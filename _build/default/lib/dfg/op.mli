(** Operation kinds of a behavioral specification.

    The behavioral input to CHOP is a data-flow graph "with added control
    constructs" (paper, section 2.2).  Memory and I/O operations are modeled
    as memory-mapped accesses to named memory blocks (section 2.4). *)

type t =
  | Input  (** primary input value *)
  | Output  (** primary output value *)
  | Const  (** compile-time constant (coefficients etc.) *)
  | Add
  | Sub
  | Mult
  | Div
  | Compare  (** relational operation feeding a control construct *)
  | Logic  (** bitwise logic *)
  | Shift
  | Select  (** 2-way conditional select: (cond, then, else) *)
  | Mem_read of string  (** read from the named memory block *)
  | Mem_write of string  (** write to the named memory block *)

val arity : t -> int * int
(** [arity op] is the inclusive [(min, max)] number of data inputs. *)

val is_computational : t -> bool
(** Operations that consume a functional unit and a schedule step; [Input],
    [Output] and [Const] are boundary markers and are not computational. *)

val is_memory : t -> bool
val memory_block : t -> string option

val functional_class : t -> string
(** The module-library class implementing the operation (e.g. [Add] and
    [Sub] share the "add" class, as adder/subtractor cells do in 3µ
    standard-cell libraries).  Memory operations map to a per-block
    ["memport:<block>"] class, since each block's ports are a separate
    resource.  @raise Invalid_argument on non-computational operations,
    which no module implements. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
