lib/dfg/graph.ml: Chop_util Format Hashtbl Int List Map Op Option Printf Set Stdlib String
