lib/dfg/graph.mli: Chop_util Format Op
