lib/dfg/eval.mli: Graph Partition
