lib/dfg/transform.mli: Graph
