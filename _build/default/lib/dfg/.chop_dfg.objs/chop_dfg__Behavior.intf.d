lib/dfg/behavior.mli: Chop_util Graph
