lib/dfg/eval.ml: Chop_util Graph Hashtbl List Op Option Partition Printf Random String
