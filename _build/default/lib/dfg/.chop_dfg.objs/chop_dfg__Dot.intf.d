lib/dfg/dot.mli: Graph Partition
