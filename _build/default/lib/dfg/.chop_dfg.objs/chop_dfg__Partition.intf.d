lib/dfg/partition.mli: Chop_util Format Graph
