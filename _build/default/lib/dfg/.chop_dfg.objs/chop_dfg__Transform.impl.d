lib/dfg/transform.ml: Graph Hashtbl Int List Op Printf Set
