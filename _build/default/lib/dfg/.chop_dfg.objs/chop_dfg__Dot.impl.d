lib/dfg/dot.ml: Buffer Graph List Op Partition Printf
