lib/dfg/partition.ml: Analysis Array Chop_util Format Graph Hashtbl Int List Map Op Option Printf Queue Stdlib String
