lib/dfg/analysis.ml: Float Graph Hashtbl Int List Map Op Option Printf Set String
