lib/dfg/behavior.ml: Chop_util Graph Hashtbl List Map Op Printf String
