lib/dfg/benchmarks.ml: Array Chop_util Graph List Op Printf Random
