let node_attrs n =
  match n.Graph.op with
  | Op.Input -> "shape=invtriangle"
  | Op.Output -> "shape=triangle"
  | Op.Const -> "shape=diamond"
  | Op.Mult | Op.Div -> "shape=circle"
  | Op.Mem_read _ | Op.Mem_write _ -> "shape=box3d"
  | Op.Add | Op.Sub | Op.Compare | Op.Logic | Op.Shift | Op.Select -> "shape=box"

let emit_nodes buf g =
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\n%s:%d\" %s];\n" n.Graph.id
           n.Graph.name (Op.to_string n.Graph.op) n.Graph.width (node_attrs n)))
    (Graph.nodes g)

let of_graph g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=TB;\n" (Graph.name g));
  emit_nodes buf g;
  List.iter
    (fun (s, d) -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" s d))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_partitioning pg =
  let g = pg.Partition.graph in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "digraph %S {\n  rankdir=TB;\n" (Graph.name g));
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_%d {\n    label=%S;\n" i
           p.Partition.label);
      List.iter
        (fun id ->
          let n = Graph.node g id in
          Buffer.add_string buf
            (Printf.sprintf "    n%d [label=%S %s];\n" id n.Graph.name
               (node_attrs n)))
        p.Partition.members;
      Buffer.add_string buf "  }\n")
    pg.Partition.parts;
  (* boundary nodes outside clusters *)
  List.iter
    (fun n ->
      if not (Op.is_computational n.Graph.op) then
        Buffer.add_string buf
          (Printf.sprintf "  n%d [label=%S %s];\n" n.Graph.id n.Graph.name
             (node_attrs n)))
    (Graph.nodes g);
  let same_part s d =
    try
      (Partition.part_of pg s).Partition.label
      = (Partition.part_of pg d).Partition.label
    with Not_found -> false
  in
  List.iter
    (fun (s, d) ->
      let style = if same_part s d then "" else " [style=dashed]" in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" s d style))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
