(** Graphviz export of DFGs and partitionings, for inspection. *)

val of_graph : Graph.t -> string

val of_partitioning : Partition.partitioning -> string
(** Clusters nodes by partition; cut edges are drawn dashed. *)
