module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

let topological_order g = List.map (fun n -> n.Graph.id) (Graph.nodes g)

let effective_latency latency n =
  if Op.is_computational n.Graph.op then max 0 (latency n) else 0

let default_latency _ = 1

let asap ?(latency = default_latency) g =
  let order = topological_order g in
  let start =
    List.fold_left
      (fun acc id ->
        let s =
          List.fold_left
            (fun s p ->
              let pn = Graph.node g p in
              max s (IntMap.find p acc + effective_latency latency pn))
            0 (Graph.preds g id)
        in
        IntMap.add id s acc)
      IntMap.empty order
  in
  List.map (fun id -> (id, IntMap.find id start)) order

let critical_path ?(latency = default_latency) g =
  List.fold_left
    (fun acc (id, s) -> max acc (s + effective_latency latency (Graph.node g id)))
    0
    (asap ~latency g)

let alap ?(latency = default_latency) ~length g =
  let cp = critical_path ~latency g in
  if length < cp then
    invalid_arg
      (Printf.sprintf "Analysis.alap: length %d below critical path %d" length cp);
  let order = List.rev (topological_order g) in
  let late_start =
    List.fold_left
      (fun acc id ->
        let f =
          List.fold_left
            (fun f s -> min f (IntMap.find s acc))
            length (Graph.succs g id)
        in
        (* a node must finish before any successor's latest start *)
        let n = Graph.node g id in
        IntMap.add id (f - effective_latency latency n) acc)
      IntMap.empty order
  in
  List.map (fun id -> (id, IntMap.find id late_start)) (topological_order g)

let critical_path_ns ~delay g =
  let order = topological_order g in
  let fin =
    List.fold_left
      (fun acc id ->
        let n = Graph.node g id in
        let d = if Op.is_computational n.Graph.op then delay n else 0. in
        let s =
          List.fold_left (fun s p -> Float.max s (IntMap.find p acc)) 0.
            (Graph.preds g id)
        in
        IntMap.add id (s +. d) acc)
      IntMap.empty order
  in
  IntMap.fold (fun _ v acc -> Float.max v acc) fin 0.

let slack ?(latency = default_latency) g =
  let cp = critical_path ~latency g in
  let early = asap ~latency g and late = alap ~latency ~length:cp g in
  List.map2
    (fun (id, e) (id', l) ->
      assert (id = id');
      (id, l - e))
    early late

let levels g =
  let early = asap g in
  let by_level = Hashtbl.create 16 in
  List.iter
    (fun (id, s) ->
      if Op.is_computational (Graph.node g id).Graph.op then
        Hashtbl.replace by_level s
          (id :: Option.value ~default:[] (Hashtbl.find_opt by_level s)))
    early;
  Hashtbl.fold (fun lvl ids acc -> (lvl, List.rev ids) :: acc) by_level []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

let max_width_profile ?(latency = default_latency) g =
  let early = asap ~latency g in
  (* count, per step and class, how many operations are active *)
  let active = Hashtbl.create 64 in
  List.iter
    (fun (id, s) ->
      let n = Graph.node g id in
      if Op.is_computational n.Graph.op then
        let cls = Op.functional_class n.Graph.op in
        let lat = max 1 (effective_latency latency n) in
        for step = s to s + lat - 1 do
          let key = (cls, step) in
          Hashtbl.replace active key
            (1 + Option.value ~default:0 (Hashtbl.find_opt active key))
        done)
    early;
  let best = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (cls, _) n ->
      Hashtbl.replace best cls (max n (Option.value ~default:0 (Hashtbl.find_opt best cls))))
    active;
  Hashtbl.fold (fun cls n acc -> (cls, n) :: acc) best []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reachable g ~from =
  let seen = ref IntSet.empty in
  let rec visit id =
    if not (IntSet.mem id !seen) then begin
      seen := IntSet.add id !seen;
      List.iter visit (Graph.succs g id)
    end
  in
  List.iter visit from;
  List.filter (fun id -> IntSet.mem id !seen) (topological_order g)
