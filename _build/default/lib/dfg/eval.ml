type memory_model = {
  read : string -> int;
  mutable writes : (string * int) list;
}

let constant_memory v = { read = (fun _ -> v); writes = [] }

exception Eval_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let mask width v =
  if width >= 62 then v else v land ((1 lsl width) - 1)

let run ?(inputs = []) ?(consts = []) ?memory g =
  let memory = match memory with Some m -> m | None -> constant_memory 0 in
  let by_name tag bindings =
    List.iter
      (fun (name, _) ->
        if
          not
            (List.exists (fun n -> n.Graph.name = name) (Graph.nodes g))
        then fail "%s %S does not name a node of %s" tag name (Graph.name g))
      bindings
  in
  by_name "input" inputs;
  by_name "const" consts;
  let values = Hashtbl.create 64 in
  let value id =
    match Hashtbl.find_opt values id with
    | Some v -> v
    | None -> fail "node %d evaluated before its operands (internal)" id
  in
  List.iter
    (fun n ->
      let id = n.Graph.id in
      let w = n.Graph.width in
      let operands = List.map value (Graph.preds g id) in
      let result =
        match (n.Graph.op, operands) with
        | Op.Input, [] ->
            mask w (Option.value ~default:0 (List.assoc_opt n.Graph.name inputs))
        | Op.Const, [] ->
            mask w (Option.value ~default:1 (List.assoc_opt n.Graph.name consts))
        | Op.Output, [ v ] -> v
        | Op.Add, [ a; b ] -> mask w (a + b)
        | Op.Sub, [ a; b ] -> mask w (a - b)
        | Op.Mult, [ a; b ] -> mask w (a * b)
        | Op.Div, [ a; b ] -> if b = 0 then 0 else mask w (a / b)
        | Op.Compare, [ a; b ] -> if a < b then 1 else 0
        | Op.Logic, [ a; b ] -> mask w (a land b)
        | Op.Shift, [ a ] -> mask w (a lsl 1)
        | Op.Shift, [ a; b ] -> mask w (a lsl (b mod max 1 w))
        | Op.Select, [ c; a; b ] -> if c <> 0 then a else b
        | Op.Mem_read _, _ ->
            let block = Option.get (Op.memory_block n.Graph.op) in
            mask w (memory.read block)
        | Op.Mem_write _, datum :: _ ->
            let block = Option.get (Op.memory_block n.Graph.op) in
            memory.writes <- memory.writes @ [ (block, datum) ];
            datum
        | op, args ->
            fail "node %s (%s) has %d operands" n.Graph.name (Op.to_string op)
              (List.length args)
      in
      Hashtbl.replace values id result)
    (Graph.nodes g);
  List.filter_map
    (fun n ->
      if n.Graph.op = Op.Output then Some (n.Graph.name, value n.Graph.id)
      else None)
    (Graph.nodes g)

let run_partitioned ?(inputs = []) ?(consts = []) ?memory pg =
  let memory = match memory with Some m -> m | None -> constant_memory 0 in
  let g = pg.Partition.graph in
  (* cut values by original producer id, filled partition by partition *)
  let cut_values = Hashtbl.create 32 in
  List.iter
    (fun p ->
      let sub, in_map, out_map =
        Graph.induced g ~name:p.Partition.label p.Partition.members
      in
      let sub_inputs, sub_consts =
        List.fold_left
          (fun (ins, cs) (orig_id, sub_id) ->
            let sub_name = (Graph.node sub sub_id).Graph.name in
            let orig = Graph.node g orig_id in
            match orig.Graph.op with
            | Op.Const ->
                let v =
                  Option.value ~default:1 (List.assoc_opt orig.Graph.name consts)
                in
                (ins, (sub_name, v) :: cs)
            | Op.Input ->
                let v =
                  Option.value ~default:0 (List.assoc_opt orig.Graph.name inputs)
                in
                ((sub_name, v) :: ins, cs)
            | _ ->
                (* a cut value produced by an earlier partition *)
                (match Hashtbl.find_opt cut_values orig_id with
                | Some v -> ((sub_name, v) :: ins, cs)
                | None ->
                    fail "cut value of node %d not yet produced (internal)"
                      orig_id))
          ([], []) in_map
      in
      let results = run ~inputs:sub_inputs ~consts:sub_consts ~memory sub in
      List.iter
        (fun (orig_id, sub_out_id) ->
          let out_name = (Graph.node sub sub_out_id).Graph.name in
          match List.assoc_opt out_name results with
          | Some v -> Hashtbl.replace cut_values orig_id v
          | None -> fail "missing escaped value %s (internal)" out_name)
        out_map)
    (Partition.topological_parts pg);
  (* assemble the original primary outputs from the cut values *)
  List.filter_map
    (fun n ->
      if n.Graph.op = Op.Output then
        match Graph.preds g n.Graph.id with
        | [ p ] -> (
            let pn = Graph.node g p in
            match pn.Graph.op with
            | Op.Input ->
                Some
                  ( n.Graph.name,
                    mask pn.Graph.width
                      (Option.value ~default:0 (List.assoc_opt pn.Graph.name inputs)) )
            | Op.Const ->
                Some
                  ( n.Graph.name,
                    mask pn.Graph.width
                      (Option.value ~default:1 (List.assoc_opt pn.Graph.name consts)) )
            | _ -> (
                match Hashtbl.find_opt cut_values p with
                | Some v -> Some (n.Graph.name, v)
                | None -> fail "output %s has no computed value" n.Graph.name))
        | _ -> fail "output %s arity (internal)" n.Graph.name
      else None)
    (Graph.nodes g)

let stimulus ~seed ~names =
  let rng = Random.State.make [| seed |] in
  List.map (fun name -> (name, Random.State.int rng (1 lsl 12))) names

let equivalent ?(trials = 25) ?(seed = 0) g1 g2 =
  let names which g =
    List.map (fun n -> n.Graph.name) (which g) |> List.sort String.compare
  in
  let in1 = names Graph.inputs g1 and in2 = names Graph.inputs g2 in
  let out1 = names Graph.outputs g1 and out2 = names Graph.outputs g2 in
  in1 = in2 && out1 = out2
  && List.for_all
       (fun t ->
         let inputs = stimulus ~seed:(seed + t) ~names:in1 in
         let sort = List.sort (fun (a, _) (b, _) -> String.compare a b) in
         sort (run ~inputs g1) = sort (run ~inputs g2))
       (Chop_util.Listx.range 1 trials)
