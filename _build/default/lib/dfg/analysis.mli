(** Static analyses on data-flow graphs: topological order, ASAP/ALAP
    schedules, critical path and level structure.

    Times are expressed in abstract steps.  A [latency] function gives the
    number of steps each node occupies; boundary nodes ([Input], [Output],
    [Const]) always take 0 steps regardless of [latency]. *)

val topological_order : Graph.t -> Graph.node_id list

val asap : ?latency:(Graph.node -> int) -> Graph.t -> (Graph.node_id * int) list
(** Earliest start step of every node.  [latency] defaults to 1 step per
    computational node. *)

val alap :
  ?latency:(Graph.node -> int) -> length:int -> Graph.t -> (Graph.node_id * int) list
(** Latest start steps such that every node finishes by [length].
    @raise Invalid_argument when [length] is smaller than the critical
    path. *)

val critical_path : ?latency:(Graph.node -> int) -> Graph.t -> int
(** Total steps of the longest dependence chain. *)

val critical_path_ns :
  delay:(Graph.node -> float) -> Graph.t -> float
(** Longest chain when each node has a real-valued delay (used for
    non-discretized delay estimates). *)

val slack : ?latency:(Graph.node -> int) -> Graph.t -> (Graph.node_id * int) list
(** ALAP (at critical-path length) minus ASAP, per node. *)

val levels : Graph.t -> Graph.node_id list list
(** Computational nodes grouped by ASAP level under unit latency, in
    ascending level order.  Boundary nodes are omitted. *)

val max_width_profile :
  ?latency:(Graph.node -> int) -> Graph.t -> (string * int) list
(** For each functional class, the maximum number of operations of that
    class active in any single ASAP step — an upper bound on useful
    functional-unit parallelism. *)

val reachable : Graph.t -> from:Graph.node_id list -> Graph.node_id list
(** Forward closure of [from] (inclusive). *)
