(** A small behavioral input language.

    CHOP's input is "the behavioral specification in the form of a data
    flow graph (with added control constructs)" (paper, section 2.2).  This
    module provides the front end that produces such graphs: a tiny
    imperative language with single-assignment semantics per statement,
    bounded [for] loops (fully unrolled, per the section 2.3 restriction)
    and value-selecting [if] (compiled to [Compare]/[Select] nodes — the
    "added control constructs"). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Less  (** comparison producing a 1-bit-ish condition value *)
  | Band  (** bitwise and *)
  | Shl  (** shift left by a value *)

type expr =
  | Var of string  (** current value of a variable, input or constant *)
  | Const of string  (** a named coefficient (materialized as a Const node) *)
  | Bin of binop * expr * expr
  | Load of string  (** read the named memory block *)
  | Mux of expr * expr * expr  (** [Mux (cond, a, b)]: a when cond else b *)

type stmt =
  | Assign of string * expr  (** (re)bind a variable *)
  | Store of string * expr  (** write a value to the named memory block *)
  | For of int * stmt list
      (** determinate-count loop, fully unrolled at compile time *)
  | If of expr * stmt list * stmt list
      (** both branches execute; variables assigned in either branch get a
          [Select] merge — speculation, as behavioral synthesis does *)

type program = {
  prog_name : string;
  width : Chop_util.Units.bits;  (** data-path width of every value *)
  inputs : string list;
  outputs : string list;  (** variables published as primary outputs *)
  body : stmt list;
}

exception Compile_error of string

val compile : program -> Graph.t
(** Compiles to an acyclic data-flow graph.  @raise Compile_error on: use
    of an unbound variable, a name that is both input and constant, an
    output never assigned (and not an input), an empty or non-positive
    loop, or a non-positive width. *)

val stmt_count : program -> int
(** Statements after loop unrolling — a size estimate. *)
