(** Functional evaluation of data-flow graphs.

    Executes a DFG on concrete integer values, masking every result to the
    producing node's bit width.  Used to validate behavioral transformations
    and partitionings: splitting a specification must not change its
    input/output function. *)

type memory_model = {
  read : string -> int;  (** value returned by a read of the named block *)
  mutable writes : (string * int) list;
      (** accumulated [(block, value)] writes, oldest first *)
}

val constant_memory : int -> memory_model
(** Every read returns the given value; writes are recorded. *)

exception Eval_error of string

val run :
  ?inputs:(string * int) list ->
  ?consts:(string * int) list ->
  ?memory:memory_model ->
  Graph.t ->
  (string * int) list
(** [run ~inputs ~consts g] evaluates [g] and returns the primary outputs
    as [(output node name, value)], in graph order.  [inputs] binds input
    nodes by name (missing inputs default to 0); [consts] binds constant
    nodes by name (default 1).  [memory] defaults to {!constant_memory} 0.

    Operation semantics (all results masked to the node width):
    [Add]/[Sub]/[Mult]/[Div] are two's-complement integer arithmetic
    ([Div] by zero yields 0); [Compare] is [a < b] as 0/1; [Logic] is
    bitwise and; [Shift] is left shift by the second operand modulo the
    width (or by 1 when unary); [Select (c, a, b)] yields [a] when
    [c <> 0].
    @raise Eval_error when a bound name does not exist in the graph. *)

val run_partitioned :
  ?inputs:(string * int) list ->
  ?consts:(string * int) list ->
  ?memory:memory_model ->
  Partition.partitioning ->
  (string * int) list
(** Evaluates a partitioned specification the way the multi-chip system
    would run it: each partition's induced subgraph is evaluated in
    quotient-topological order, cut values flowing between subgraphs as
    the data-transfer modules would carry them.  The result must equal
    {!run} on the whole graph — partitioning preserves semantics (this is
    asserted by the property tests). *)

val equivalent :
  ?trials:int -> ?seed:int -> Graph.t -> Graph.t -> bool
(** Randomized input/output equivalence: both graphs must expose the same
    input and output names (order-insensitive) and produce identical
    outputs on [trials] (default 25) pseudo-random stimulus vectors. *)
