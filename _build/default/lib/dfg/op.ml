type t =
  | Input
  | Output
  | Const
  | Add
  | Sub
  | Mult
  | Div
  | Compare
  | Logic
  | Shift
  | Select
  | Mem_read of string
  | Mem_write of string

let arity = function
  | Input | Const -> (0, 0)
  | Output -> (1, 1)
  | Add | Sub | Mult | Div | Compare | Logic -> (2, 2)
  | Shift -> (1, 2)
  | Select -> (3, 3)
  | Mem_read _ -> (0, 1) (* optional address operand *)
  | Mem_write _ -> (1, 2) (* datum, optional address *)

let is_computational = function
  | Input | Output | Const -> false
  | Add | Sub | Mult | Div | Compare | Logic | Shift | Select | Mem_read _
  | Mem_write _ ->
      true

let is_memory = function Mem_read _ | Mem_write _ -> true | _ -> false

let memory_block = function
  | Mem_read m | Mem_write m -> Some m
  | Input | Output | Const | Add | Sub | Mult | Div | Compare | Logic | Shift
  | Select ->
      None

let functional_class = function
  | Add | Sub | Compare -> "add"
  | Mult -> "mult"
  | Div -> "div"
  | Logic -> "logic"
  | Shift -> "shift"
  | Select -> "select"
  (* each memory block is its own resource class: its ports bound the
     simultaneous accesses to that block *)
  | Mem_read m | Mem_write m -> "memport:" ^ m
  | (Input | Output | Const) as op ->
      invalid_arg
        (Printf.sprintf "Op.functional_class: %s is not computational"
           (match op with
           | Input -> "Input"
           | Output -> "Output"
           | _ -> "Const"))

let to_string = function
  | Input -> "input"
  | Output -> "output"
  | Const -> "const"
  | Add -> "add"
  | Sub -> "sub"
  | Mult -> "mult"
  | Div -> "div"
  | Compare -> "compare"
  | Logic -> "logic"
  | Shift -> "shift"
  | Select -> "select"
  | Mem_read m -> "mem_read[" ^ m ^ "]"
  | Mem_write m -> "mem_write[" ^ m ^ "]"

let equal a b = compare a b = 0
let compare = Stdlib.compare
let pp ppf op = Format.pp_print_string ppf (to_string op)
