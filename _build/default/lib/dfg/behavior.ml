type binop = Add | Sub | Mul | Div | Less | Band | Shl

type expr =
  | Var of string
  | Const of string
  | Bin of binop * expr * expr
  | Load of string
  | Mux of expr * expr * expr

type stmt =
  | Assign of string * expr
  | Store of string * expr
  | For of int * stmt list
  | If of expr * stmt list * stmt list

type program = {
  prog_name : string;
  width : Chop_util.Units.bits;
  inputs : string list;
  outputs : string list;
  body : stmt list;
}

exception Compile_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

let op_of_binop = function
  | Add -> Op.Add
  | Sub -> Op.Sub
  | Mul -> Op.Mult
  | Div -> Op.Div
  | Less -> Op.Compare
  | Band -> Op.Logic
  | Shl -> Op.Shift

module SMap = Map.Make (String)

type env = {
  builder : Graph.builder;
  width : int;
  mutable vars : Graph.node_id SMap.t;
  mutable consts : Graph.node_id SMap.t;  (** named coefficients, interned *)
  mutable fresh : int;
}

let fresh_name env prefix =
  env.fresh <- env.fresh + 1;
  Printf.sprintf "%s%d" prefix env.fresh

let rec eval env = function
  | Var name -> (
      match SMap.find_opt name env.vars with
      | Some id -> id
      | None -> fail "unbound variable %S" name)
  | Const name -> (
      match SMap.find_opt name env.consts with
      | Some id -> id
      | None ->
          let id =
            Graph.add_node env.builder ~name ~op:Op.Const ~width:env.width
          in
          env.consts <- SMap.add name id env.consts;
          id)
  | Bin (op, a, b) ->
      let ida = eval env a in
      let idb = eval env b in
      let n =
        Graph.add_node env.builder
          ~name:(fresh_name env "e")
          ~op:(op_of_binop op) ~width:env.width
      in
      Graph.add_edge env.builder ~src:ida ~dst:n;
      Graph.add_edge env.builder ~src:idb ~dst:n;
      n
  | Load block ->
      Graph.add_node env.builder
        ~name:(fresh_name env "ld")
        ~op:(Op.Mem_read block) ~width:env.width
  | Mux (c, a, b) ->
      let idc = eval env c in
      let ida = eval env a in
      let idb = eval env b in
      let n =
        Graph.add_node env.builder
          ~name:(fresh_name env "sel")
          ~op:Op.Select ~width:env.width
      in
      Graph.add_edge env.builder ~src:idc ~dst:n;
      Graph.add_edge env.builder ~src:ida ~dst:n;
      Graph.add_edge env.builder ~src:idb ~dst:n;
      n

let rec exec env = function
  | Assign (name, e) ->
      let id = eval env e in
      env.vars <- SMap.add name id env.vars
  | Store (block, e) ->
      let id = eval env e in
      let n =
        Graph.add_node env.builder
          ~name:(fresh_name env "st")
          ~op:(Op.Mem_write block) ~width:env.width
      in
      Graph.add_edge env.builder ~src:id ~dst:n
  | For (count, body) ->
      if count < 1 then fail "loop count %d < 1" count;
      if body = [] then fail "empty loop body";
      for _ = 1 to count do
        List.iter (exec env) body
      done
  | If (cond, then_body, else_body) ->
      (* speculative execution of both branches; variables assigned in
         either branch are merged with a Select on the condition *)
      let idc = eval env cond in
      let before = env.vars in
      List.iter (exec env) then_body;
      let after_then = env.vars in
      env.vars <- before;
      List.iter (exec env) else_body;
      let after_else = env.vars in
      let merged =
        SMap.merge
          (fun _name t e ->
            match (t, e) with
            | Some t, Some e when t = e -> Some t
            | Some t, Some e ->
                let n =
                  Graph.add_node env.builder
                    ~name:(fresh_name env "phi")
                    ~op:Op.Select ~width:env.width
                in
                Graph.add_edge env.builder ~src:idc ~dst:n;
                Graph.add_edge env.builder ~src:t ~dst:n;
                Graph.add_edge env.builder ~src:e ~dst:n;
                Some n
            | Some t, None -> Some t
            | None, Some e -> Some e
            | None, None -> None)
          after_then after_else
      in
      env.vars <- merged

let compile (p : program) =
  if p.width <= 0 then fail "non-positive width";
  let b = Graph.builder ~name:p.prog_name () in
  let env =
    { builder = b; width = p.width; vars = SMap.empty; consts = SMap.empty;
      fresh = 0 }
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun name ->
      if Hashtbl.mem seen name then fail "duplicate input %S" name;
      Hashtbl.replace seen name ();
      let id = Graph.add_node b ~name ~op:Op.Input ~width:p.width in
      env.vars <- SMap.add name id env.vars)
    p.inputs;
  List.iter (exec env) p.body;
  List.iter
    (fun name ->
      match SMap.find_opt name env.vars with
      | None -> fail "output %S is never assigned" name
      | Some id ->
          let o =
            Graph.add_node b ~name:("out_" ^ name) ~op:Op.Output ~width:p.width
          in
          Graph.add_edge b ~src:id ~dst:o)
    p.outputs;
  match Graph.build b with
  | g -> g
  | exception Graph.Invalid_graph reason -> fail "invalid graph: %s" reason

let stmt_count (p : program) =
  let rec count = function
    | Assign _ | Store _ -> 1
    | For (n, body) -> n * Chop_util.Listx.sum_by count body
    | If (_, t, e) ->
        1 + Chop_util.Listx.sum_by count t + Chop_util.Listx.sum_by count e
  in
  Chop_util.Listx.sum_by count p.body
