(** Architecture styles.

    The architecture style must be compatible with the downstream synthesis
    tools: it "can allow either single-cycle or multi-cycle operations, and
    be pipelined or nonpipelined" (paper, section 2.2).  CHOP explores both
    pipelining choices; the operation-timing discipline is a global input. *)

type op_timing =
  | Single_cycle
      (** every operation completes in one data-path cycle; a module whose
          delay (plus data-path overhead) exceeds the cycle is unusable *)
  | Multi_cycle  (** operations may span several data-path cycles *)

type pipelining = Pipelined | Non_pipelined

type t = { op_timing : op_timing; pipelinings : pipelining list }
(** [pipelinings] lists the design styles BAD may consider. *)

val both : op_timing -> t
(** Consider pipelined and non-pipelined designs. *)

val pp_op_timing : Format.formatter -> op_timing -> unit
val pp_pipelining : Format.formatter -> pipelining -> unit
