type shape = { inputs : int; outputs : int; product_terms : int }

(* 3u-technology constants: one PLA cell is ~1.2 mil^2; peripheral drivers
   and sense amplifiers cost a fixed 200 mil^2. *)
let cell_area = 1.2
let peripheral_area = 200.
let base_delay = 8.
let delay_per_input = 0.4
let delay_per_term = 0.12
let delay_per_output = 0.08

let check s =
  if s.inputs < 0 || s.outputs < 0 || s.product_terms < 0 then
    invalid_arg "Pla: negative shape"

let area s =
  check s;
  if s.product_terms = 0 || s.inputs + s.outputs = 0 then 0.
  else
    (float_of_int (((2 * s.inputs) + s.outputs) * s.product_terms) *. cell_area)
    +. peripheral_area

let delay s =
  check s;
  if s.product_terms = 0 then 0.
  else
    base_delay
    +. (delay_per_input *. float_of_int s.inputs)
    +. (delay_per_term *. float_of_int s.product_terms)
    +. (delay_per_output *. float_of_int s.outputs)

let bits_for n =
  let rec go b acc = if acc >= n then b else go (b + 1) (acc * 2) in
  if n <= 1 then 0 else go 1 2

let controller_shape ~states ~status_inputs ~control_outputs =
  if states < 1 then invalid_arg "Pla.controller_shape: states < 1";
  if status_inputs < 0 || control_outputs < 0 then
    invalid_arg "Pla.controller_shape: negative";
  let state_bits = bits_for states in
  (* Short schedules get one-hot-style decode terms; long schedules are
     assumed to use a counter with horizontal decoding, so product terms
     saturate instead of growing linearly forever. *)
  let product_terms =
    if states <= 64 then states + (states / 4) + 1
    else 81 + ((states - 64) / 8)
  in
  { inputs = state_bits + status_inputs; outputs = state_bits + control_outputs;
    product_terms }
