type t = {
  pkg_name : string;
  width : Chop_util.Units.mil;
  height : Chop_util.Units.mil;
  pins : int;
  pad_delay : Chop_util.Units.ns;
  pad_area : Chop_util.Units.mil2;
}

let make ~name ~width ~height ~pins ~pad_delay ~pad_area =
  if width <= 0. || height <= 0. then invalid_arg "Chip.make: non-positive die";
  if pins <= 0 then invalid_arg "Chip.make: non-positive pin count";
  if pad_delay < 0. || pad_area < 0. then invalid_arg "Chip.make: negative pad";
  { pkg_name = name; width; height; pins; pad_delay; pad_area }

let project_area c = Chop_util.Units.mil2_of_dims ~width:c.width ~height:c.height

let usable_area c ~signal_pins =
  if signal_pins < 0 || signal_pins > c.pins then
    invalid_arg "Chip.usable_area: signal pins exceed package";
  project_area c -. (float_of_int signal_pins *. c.pad_area)

type pin_budget = {
  total : int;
  power_ground : int;
  clock : int;
  control : int;
  memory_lines : int;
  data : int;
}

let pin_budget c ?(power_ground = 4) ?(clock = 2) ~control ~memory_lines () =
  if control < 0 || memory_lines < 0 then invalid_arg "Chip.pin_budget: negative";
  let data = c.pins - power_ground - clock - control - memory_lines in
  if data < 0 then
    invalid_arg
      (Printf.sprintf
         "Chip.pin_budget: %s has %d pins but %d are reserved (infeasible)"
         c.pkg_name c.pins (c.pins - data))
  else
    { total = c.pins; power_ground; clock; control; memory_lines; data }

let pp ppf c =
  Format.fprintf ppf "%s: %.2f x %.2f mil, %d pins, pad %a / %a" c.pkg_name
    c.width c.height c.pins Chop_util.Units.pp_ns c.pad_delay
    Chop_util.Units.pp_mil2 c.pad_area
