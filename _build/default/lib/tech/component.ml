type t = {
  cname : string;
  cls : string;
  width : Chop_util.Units.bits;
  area : Chop_util.Units.mil2;
  delay : Chop_util.Units.ns;
  power : float;
}

let make ?power ~name ~cls ~width ~area ~delay () =
  if width <= 0 then invalid_arg "Component.make: width <= 0";
  if area <= 0. then invalid_arg "Component.make: area <= 0";
  if delay <= 0. then invalid_arg "Component.make: delay <= 0";
  let power = match power with Some p -> p | None -> area /. 1000. in
  if power < 0. then invalid_arg "Component.make: negative power";
  { cname = name; cls; width; area; delay; power }

type library = t list

let alternatives lib ~cls =
  List.filter (fun c -> c.cls = cls) lib
  |> List.sort (fun a b -> Float.compare a.delay b.delay)

let classes lib =
  List.map (fun c -> c.cls) lib |> List.sort_uniq String.compare

let is_memport_class cls =
  String.length cls >= 8 && String.sub cls 0 8 = "memport:"

let needed_classes g =
  List.map fst (Chop_dfg.Graph.op_profile g)
  |> List.filter (fun cls -> not (is_memport_class cls))
(* memory ports are provided by memory modules, not the component library *)

let covers lib g =
  List.for_all (fun cls -> alternatives lib ~cls <> []) (needed_classes g)

let module_sets lib g =
  let per_class = List.map (fun cls -> alternatives lib ~cls) (needed_classes g) in
  if List.exists (( = ) []) per_class then []
  else Chop_util.Listx.cartesian per_class

let find lib ~name = List.find (fun c -> c.cname = name) lib

let rescale ~width c =
  if width <= 0 then invalid_arg "Component.rescale: width <= 0";
  if width = c.width then c
  else begin
    let r = float_of_int width /. float_of_int c.width in
    let area_scale, delay_scale =
      match c.cls with
      | "mult" | "div" -> (r *. r, r)
      | _ -> (r, r)
    in
    {
      c with
      cname = Printf.sprintf "%s_w%d" c.cname width;
      width;
      area = c.area *. area_scale;
      delay = c.delay *. delay_scale;
      power = c.power *. area_scale;
    }
  end

let rescale_library ~width lib =
  List.map (fun c -> if c.width = 1 then c else rescale ~width c) lib

let shrink ~factor c =
  if not (factor > 0. && factor <= 1.) then
    invalid_arg "Component.shrink: factor must be in (0, 1]";
  {
    c with
    cname = Printf.sprintf "%s_s%02.0f" c.cname (factor *. 100.);
    area = c.area *. factor *. factor;
    delay = c.delay *. factor;
    power = c.power *. factor *. factor;
  }

let shrink_library ~factor lib = List.map (shrink ~factor) lib

let pp ppf c =
  Format.fprintf ppf "%s (%s, %d bit): %a, %a" c.cname c.cls c.width
    Chop_util.Units.pp_mil2 c.area Chop_util.Units.pp_ns c.delay
