lib/tech/chip.ml: Chop_util Format Printf
