lib/tech/chip.mli: Chop_util Format
