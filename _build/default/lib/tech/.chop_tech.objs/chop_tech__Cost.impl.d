lib/tech/cost.ml: Chip Chop_util Float
