lib/tech/memory.mli: Chop_util Format
