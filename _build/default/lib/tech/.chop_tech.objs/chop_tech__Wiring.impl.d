lib/tech/wiring.ml: Chop_util
