lib/tech/pla.ml:
