lib/tech/clocking.mli: Chop_util Format
