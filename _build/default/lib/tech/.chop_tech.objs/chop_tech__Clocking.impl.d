lib/tech/clocking.ml: Chop_util Format
