lib/tech/mosis.ml: Chip Component
