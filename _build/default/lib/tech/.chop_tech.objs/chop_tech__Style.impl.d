lib/tech/style.ml: Format
