lib/tech/pla.mli: Chop_util
