lib/tech/mosis.mli: Chip Chop_util Component
