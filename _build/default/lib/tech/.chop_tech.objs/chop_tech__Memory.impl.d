lib/tech/memory.ml: Chop_util Format Printf
