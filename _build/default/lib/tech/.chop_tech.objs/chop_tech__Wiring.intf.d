lib/tech/wiring.mli: Chop_util
