lib/tech/cost.mli: Chip Chop_util
