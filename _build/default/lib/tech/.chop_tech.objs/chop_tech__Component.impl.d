lib/tech/component.ml: Chop_dfg Chop_util Float Format List Printf String
