lib/tech/component.mli: Chop_dfg Chop_util Format
