lib/tech/style.mli: Format
