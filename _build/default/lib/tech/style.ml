type op_timing = Single_cycle | Multi_cycle
type pipelining = Pipelined | Non_pipelined
type t = { op_timing : op_timing; pipelinings : pipelining list }

let both op_timing = { op_timing; pipelinings = [ Non_pipelined; Pipelined ] }

let pp_op_timing ppf = function
  | Single_cycle -> Format.pp_print_string ppf "single-cycle"
  | Multi_cycle -> Format.pp_print_string ppf "multi-cycle"

let pp_pipelining ppf = function
  | Pipelined -> Format.pp_print_string ppf "pipelined"
  | Non_pipelined -> Format.pp_print_string ppf "non-pipelined"
