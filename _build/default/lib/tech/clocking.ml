type t = {
  main : Chop_util.Units.ns;
  datapath_ratio : int;
  transfer_ratio : int;
}

let make ~main ~datapath_ratio ~transfer_ratio =
  if main <= 0. then invalid_arg "Clocking.make: non-positive main cycle";
  if datapath_ratio < 1 || transfer_ratio < 1 then
    invalid_arg "Clocking.make: ratios must be >= 1";
  { main; datapath_ratio; transfer_ratio }

let datapath_cycle c = c.main *. float_of_int c.datapath_ratio
let transfer_cycle c = c.main *. float_of_int c.transfer_ratio
let main_cycles_of_datapath c n = n * c.datapath_ratio
let main_cycles_of_transfer c n = n * c.transfer_ratio

let pp ppf c =
  Format.fprintf ppf "main %a (datapath x%d, transfer x%d)"
    Chop_util.Units.pp_ns c.main c.datapath_ratio c.transfer_ratio
