(** Memory modules and their chip assignments — the paper's fourth input
    group: "on and off chip memory modules to be used and assignments of
    memory modules to chips" (section 2.2).  The memory hierarchy is
    designed prior to partitioning. *)

type placement =
  | On_chip of Chop_util.Units.mil2
      (** consumes the given area on the chip it is assigned to *)
  | Off_chip_package of int
      (** an off-the-shelf memory chip with its own package of the given pin
          count; consumes no partition-chip area, but the accessing chip
          spends data pins on the memory bus *)

type t = private {
  mname : string;
  words : int;
  word_width : Chop_util.Units.bits;
  ports : int;  (** simultaneous access ports *)
  access : Chop_util.Units.ns;  (** access time *)
  placement : placement;
}

val make :
  name:string ->
  words:int ->
  word_width:Chop_util.Units.bits ->
  ports:int ->
  access:Chop_util.Units.ns ->
  placement:placement ->
  t
(** @raise Invalid_argument on non-positive geometry. *)

val bandwidth_bits_per_cycle : t -> cycle:Chop_util.Units.ns -> int
(** Peak bits deliverable per data-transfer cycle: [ports * word_width]
    when the access time fits in the cycle, scaled down by
    [ceil (access / cycle)] otherwise. *)

val select_rw_lines : t -> int
(** Chip pins reserved for this block's Select and R/W lines on every chip
    that accesses it (these "necessary signal pins ... are not shared",
    section 2.4). *)

val bus_pins : t -> int
(** Data-bus pins an accessing chip must drive for an off-chip block
    ([word_width * ports]); 0 for an on-chip block. *)

val pp : Format.formatter -> t -> unit
