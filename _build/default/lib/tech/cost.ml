type model = {
  wafer_cost : float;
  wafer_diameter : float;
  defect_density : float;
  package_base : float;
  package_per_pin : float;
  board_per_chip : float;
}

(* A 4-inch (100 mm ~ 3940 mil) wafer processed for ~$800, with a defect
   density around 2 per cm^2 (1 cm^2 ~ 155k mil^2). *)
let default_3u =
  {
    wafer_cost = 800.;
    wafer_diameter = 3940.;
    defect_density = 2. /. 155_000.;
    package_base = 4.;
    package_per_pin = 0.08;
    board_per_chip = 6.;
  }

let dies_per_wafer m ~die_area =
  if die_area <= 0. then invalid_arg "Cost.dies_per_wafer: non-positive die";
  let r = m.wafer_diameter /. 2. in
  let wafer_area = Float.pi *. r *. r in
  (* the classic gross-die formula: area ratio minus edge loss *)
  let gross =
    (wafer_area /. die_area)
    -. (Float.pi *. m.wafer_diameter /. sqrt (2. *. die_area))
  in
  max 1 (int_of_float gross)

let yield_fraction m ~die_area =
  if die_area <= 0. then invalid_arg "Cost.yield_fraction: non-positive die";
  let ad = die_area *. m.defect_density in
  if ad < 1e-9 then 1.
  else
    let f = (1. -. exp (-.ad)) /. ad in
    f *. f

let die_cost m ~die_area =
  let good =
    float_of_int (dies_per_wafer m ~die_area) *. yield_fraction m ~die_area
  in
  m.wafer_cost /. Float.max 1. good

let chip_cost m (c : Chip.t) =
  die_cost m ~die_area:(Chip.project_area c)
  +. m.package_base
  +. (m.package_per_pin *. float_of_int c.Chip.pins)
  +. m.board_per_chip

let chip_set_cost m chips =
  Chop_util.Listx.sum_byf (chip_cost m) chips
