(** Chip packages — the paper's Table 2 input group.

    The chip-set information is "in the form of actual chip packages": die
    dimensions of the project area, pin count, pad delay and I/O pad area
    (paper, section 2.2). *)

type t = private {
  pkg_name : string;
  width : Chop_util.Units.mil;  (** project-area width *)
  height : Chop_util.Units.mil;  (** project-area height *)
  pins : int;  (** package pin count *)
  pad_delay : Chop_util.Units.ns;  (** I/O pad delay *)
  pad_area : Chop_util.Units.mil2;  (** area of one I/O pad *)
}

val make :
  name:string ->
  width:Chop_util.Units.mil ->
  height:Chop_util.Units.mil ->
  pins:int ->
  pad_delay:Chop_util.Units.ns ->
  pad_area:Chop_util.Units.mil2 ->
  t
(** @raise Invalid_argument on non-positive dimensions or pin count. *)

val project_area : t -> Chop_util.Units.mil2
(** Raw die project area (before pad deduction). *)

val usable_area : t -> signal_pins:int -> Chop_util.Units.mil2
(** Project area minus the pad area of the signal pins actually bonded.
    @raise Invalid_argument when [signal_pins] exceeds the package pins. *)

(** {1 Pin budget}

    Hard pin-count constraints "cannot be changed by CHOP" (section 2.5).
    The budget deducts infrastructure pins from the package count. *)

type pin_budget = {
  total : int;
  power_ground : int;
  clock : int;
  control : int;  (** distributed-control handshake pins reserved per chip *)
  memory_lines : int;  (** Select and R/W lines for attached memory blocks *)
  data : int;  (** remaining pins usable for shared data transfer *)
}

val pin_budget :
  t -> ?power_ground:int -> ?clock:int -> control:int -> memory_lines:int -> unit ->
  pin_budget
(** [power_ground] defaults to 4 and [clock] to 2.
    @raise Invalid_argument when the reservations exceed the package pins
    (the partitioning is then trivially infeasible and the caller should
    have rejected it). *)

val pp : Format.formatter -> t -> unit
