(** Clock configuration.

    CHOP assumes two separate clocks — one for the data path and one for
    data transfer — both synchronous with the major clock, their frequencies
    being integer divisions of it (paper, section 2.2).  The main clock
    cycle is an input to the system. *)

type t = private {
  main : Chop_util.Units.ns;  (** the major clock cycle *)
  datapath_ratio : int;  (** data-path cycle = ratio x main *)
  transfer_ratio : int;  (** data-transfer cycle = ratio x main *)
}

val make :
  main:Chop_util.Units.ns -> datapath_ratio:int -> transfer_ratio:int -> t
(** @raise Invalid_argument on non-positive main cycle or ratios. *)

val datapath_cycle : t -> Chop_util.Units.ns
val transfer_cycle : t -> Chop_util.Units.ns

val main_cycles_of_datapath : t -> int -> int
(** Convert a duration in data-path cycles to main-clock cycles. *)

val main_cycles_of_transfer : t -> int -> int

val pp : Format.formatter -> t -> unit
