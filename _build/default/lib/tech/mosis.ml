let c = Component.make

let register_cell = c ~name:"register" ~cls:"register" ~width:1 ~area:31. ~delay:5. ()
let mux_cell = c ~name:"mux" ~cls:"mux" ~width:1 ~area:18. ~delay:4. ()

let experiment_library =
  [
    c ~name:"add1" ~cls:"add" ~width:16 ~area:4200. ~delay:34. ();
    c ~name:"add2" ~cls:"add" ~width:16 ~area:2880. ~delay:53. ();
    c ~name:"add3" ~cls:"add" ~width:16 ~area:1200. ~delay:151. ();
    c ~name:"mul1" ~cls:"mult" ~width:16 ~area:49000. ~delay:375. ();
    c ~name:"mul2" ~cls:"mult" ~width:16 ~area:9800. ~delay:2950. ();
    c ~name:"mul3" ~cls:"mult" ~width:16 ~area:7100. ~delay:7370. ();
    register_cell;
    mux_cell;
  ]

let extended_library =
  experiment_library
  @ [
      c ~name:"shift1" ~cls:"shift" ~width:16 ~area:900. ~delay:40. ();
      c ~name:"select1" ~cls:"select" ~width:16 ~area:320. ~delay:12. ();
      c ~name:"logic1" ~cls:"logic" ~width:16 ~area:450. ~delay:18. ();
      c ~name:"div1" ~cls:"div" ~width:16 ~area:12500. ~delay:4100. ();
    ]

let package_64 =
  Chip.make ~name:"pkg64" ~width:311.02 ~height:362.20 ~pins:64 ~pad_delay:25.
    ~pad_area:297.60

let package_84 =
  Chip.make ~name:"pkg84" ~width:311.02 ~height:362.20 ~pins:84 ~pad_delay:25.
    ~pad_area:297.60

let packages = [ package_64; package_84 ]
let main_clock = 300.
