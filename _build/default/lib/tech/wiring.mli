(** Standard-cell wiring (routing) area and delay estimation.

    BAD performs "detailed predictions on ... standard cell routing area, as
    well as the additional delays introduced to the clock cycle" (paper,
    section 2.4).  Routing area scales with the active cell area and grows
    with interconnect richness; wire delay scales with die diagonal. *)

val routing_area :
  active_area:Chop_util.Units.mil2 -> nets:int -> Chop_util.Triplet.t
(** Prediction triplet of the routing area added on top of [active_area]
    for a block with [nets] point-to-point nets. *)

val wire_delay : total_area:Chop_util.Units.mil2 -> Chop_util.Units.ns
(** Average global-wire delay for a block of the given total area. *)

val mux_tree_delay : fanin:int -> Chop_util.Units.ns
(** Delay through a 2:1-mux tree selecting among [fanin] sources (0 for
    fan-in <= 1); uses the Table 1 multiplexer delay per level. *)
