(** Manufacturing cost model.

    "Target chip characteristics generally dictate the overall manufacturing
    cost of the design" (paper, section 2.7).  This model prices a chip set
    so searches can rank feasible partitionings by cost, not just speed:
    die cost from wafer price and defect-limited yield (Murphy's model),
    package cost per pin, and a per-chip board/assembly charge. *)

type model = {
  wafer_cost : float;  (** dollars per processed wafer *)
  wafer_diameter : float;  (** mil *)
  defect_density : float;  (** defects per mil^2 *)
  package_base : float;  (** dollars per package *)
  package_per_pin : float;  (** dollars per pin *)
  board_per_chip : float;  (** assembly + board area charge per chip *)
}

val default_3u : model
(** Constants plausible for a late-80s 3µ MOSIS run. *)

val dies_per_wafer : model -> die_area:Chop_util.Units.mil2 -> int
(** Gross dies per wafer (area ratio with edge loss).
    @raise Invalid_argument on non-positive die area. *)

val yield_fraction : model -> die_area:Chop_util.Units.mil2 -> float
(** Murphy yield: [((1 - e^-AD) / AD)^2] for defect density [D] and die
    area [A]; in (0, 1]. *)

val die_cost : model -> die_area:Chop_util.Units.mil2 -> float
(** Wafer cost amortized over *good* dies. *)

val chip_cost : model -> Chip.t -> float
(** Die + package + board charge for one populated chip site. *)

val chip_set_cost : model -> Chip.t list -> float
(** Total for a multi-chip partitioning's chip set. *)
