type placement = On_chip of Chop_util.Units.mil2 | Off_chip_package of int

type t = {
  mname : string;
  words : int;
  word_width : Chop_util.Units.bits;
  ports : int;
  access : Chop_util.Units.ns;
  placement : placement;
}

let make ~name ~words ~word_width ~ports ~access ~placement =
  if words <= 0 || word_width <= 0 || ports <= 0 then
    invalid_arg "Memory.make: non-positive geometry";
  if access <= 0. then invalid_arg "Memory.make: non-positive access time";
  (match placement with
  | On_chip a when a <= 0. -> invalid_arg "Memory.make: non-positive area"
  | Off_chip_package p when p <= 0 -> invalid_arg "Memory.make: non-positive pins"
  | On_chip _ | Off_chip_package _ -> ());
  { mname = name; words; word_width; ports; access; placement }

let bandwidth_bits_per_cycle m ~cycle =
  if cycle <= 0. then invalid_arg "Memory.bandwidth: non-positive cycle";
  let cycles_per_access = max 1 (Chop_util.Units.ceil_div_ns m.access cycle) in
  m.ports * m.word_width / cycles_per_access |> max 1

let select_rw_lines _m = 2

let bus_pins m =
  match m.placement with
  | On_chip _ -> 0
  | Off_chip_package _ -> m.word_width * m.ports

let pp ppf m =
  Format.fprintf ppf "%s: %dx%d, %d port(s), %a, %s" m.mname m.words
    m.word_width m.ports Chop_util.Units.pp_ns m.access
    (match m.placement with
    | On_chip a -> Printf.sprintf "on-chip (%.0f mil^2)" a
    | Off_chip_package p -> Printf.sprintf "off-chip (%d-pin package)" p)
