(** The paper's experimental technology data: the 3µ design library of
    Table 1 and the MOSIS standard chip packages of Table 2. *)

val experiment_library : Component.library
(** Table 1: add1/add2/add3, mul1/mul2/mul3 (16 bit), plus the 1-bit
    register and 2:1 multiplexer cells. *)

val extended_library : Component.library
(** {!experiment_library} extended with the 3µ cells Table 1 omits but
    general behavioral specifications need: a barrel shifter, a 16-bit
    word select (conditional), a bitwise-logic unit and a serial divider.
    Areas and delays are scaled from the Table 1 adder/multiplier cells. *)

val register_cell : Component.t
(** 1-bit register: 31 mil^2, 5 ns. *)

val mux_cell : Component.t
(** 1-bit 2:1 multiplexer: 18 mil^2, 4 ns. *)

val package_64 : Chip.t
(** Table 2 row 1: 311.02 x 362.20 mil, 64 pins, 25 ns pad delay,
    297.60 mil^2 pad area. *)

val package_84 : Chip.t
(** Table 2 row 2: same die, 84 pins. *)

val packages : Chip.t list

val main_clock : Chop_util.Units.ns
(** 300 ns, the main clock cycle of both experiments. *)
