(** PLA area/delay model (3µ technology).

    BAD predicts PLA-based controller area and delay from the number of
    inputs, outputs and product terms; CHOP uses "the same methods" for the
    data-transfer-module controllers (paper, sections 2.4 and 2.5). *)

type shape = { inputs : int; outputs : int; product_terms : int }

val area : shape -> Chop_util.Units.mil2
(** AND-plane + OR-plane cell array [(2i + o) * p] at the 3µ cell size, plus
    fixed peripheral overhead.  @raise Invalid_argument on negative shape. *)

val delay : shape -> Chop_util.Units.ns
(** Input buffer + AND-plane + OR-plane + output buffer delay, growing
    affinely with inputs, product terms and outputs. *)

val controller_shape : states:int -> status_inputs:int -> control_outputs:int -> shape
(** Shape of a Moore-style sequencer PLA: state register feedback
    [ceil(log2 states)] wires on both sides, plus external status inputs and
    control outputs; one product term per state transition plus decode
    terms.  @raise Invalid_argument when [states < 1]. *)
