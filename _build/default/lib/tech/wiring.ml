(* Routing factor: fraction of active area added as routing channels.  The
   base factor covers intra-row wiring; the logarithmic term models channel
   growth with interconnect richness (a Rent-style saturating growth). *)
let routing_factor nets = 0.12 +. (0.025 *. log (1. +. float_of_int nets))

let routing_area ~active_area ~nets =
  if active_area < 0. || nets < 0 then invalid_arg "Wiring.routing_area: negative";
  let likely = active_area *. routing_factor nets in
  Chop_util.Triplet.make ~low:(0.75 *. likely) ~likely ~high:(1.35 *. likely)

(* 3u global wire delay: ~0.02 ns per mil of die diagonal. *)
let wire_delay ~total_area =
  if total_area < 0. then invalid_arg "Wiring.wire_delay: negative area";
  0.02 *. sqrt total_area

let mux_level_delay = 4. (* Table 1: 2:1 multiplexer, 4 ns *)

let mux_tree_delay ~fanin =
  if fanin <= 1 then 0.
  else
    let levels = int_of_float (ceil (log (float_of_int fanin) /. log 2.)) in
    float_of_int levels *. mux_level_delay
