(** Component (module) libraries — the paper's Table 1 input group.

    Each entry implements one functional class at a given bit width with an
    area/delay point; a library generally holds several alternatives per
    class (serial vs. parallel implementations). *)

type t = private {
  cname : string;
  cls : string;  (** functional class, see {!Chop_dfg.Op.functional_class} *)
  width : Chop_util.Units.bits;
  area : Chop_util.Units.mil2;
  delay : Chop_util.Units.ns;
  power : float;  (** mW at nominal frequency; extension hook (paper §5) *)
}

val make :
  ?power:float ->
  name:string ->
  cls:string ->
  width:Chop_util.Units.bits ->
  area:Chop_util.Units.mil2 ->
  delay:Chop_util.Units.ns ->
  unit ->
  t
(** @raise Invalid_argument on non-positive width/area/delay or negative
    power.  [power] defaults to [area /. 1000.], a crude proportionality. *)

type library = t list

val alternatives : library -> cls:string -> t list
(** Entries implementing [cls], fastest first.
    The list is empty when the class is not covered. *)

val classes : library -> string list
(** Functional classes covered, sorted. *)

val is_memport_class : string -> bool
(** Recognizes the per-block ["memport:<block>"] classes, which are
    provided by memory modules rather than the component library. *)

val covers : library -> Chop_dfg.Graph.t -> bool
(** Does the library implement every functional class the graph needs? *)

val module_sets : library -> Chop_dfg.Graph.t -> t list list
(** All module-set configurations for a graph: one way of choosing a single
    library entry per functional class used by the graph (paper: "includes
    all possible module-set combinations"; the experiment library allows
    3 adders x 3 multipliers = 9 sets).  Each set is sorted by class. *)

val find : library -> name:string -> t
(** @raise Not_found for an unknown component name. *)

val rescale : width:Chop_util.Units.bits -> t -> t
(** [rescale ~width c] derives a component of another bit width from [c]
    using first-order 3µ scaling laws: area scales linearly for adders,
    shifters, logic, registers and multiplexers, quadratically for
    multipliers and dividers; delay scales with the carry/partial-product
    chain, i.e. linearly in width for adders and multipliers.
    @raise Invalid_argument when [width <= 0]. *)

val rescale_library : width:Chop_util.Units.bits -> library -> library
(** Rescale every word-wide entry of a library (1-bit cells are left
    untouched). *)

val shrink : factor:float -> t -> t
(** [shrink ~factor c] moves the cell to a finer process node: linear
    dimensions scale by [factor < 1], so area scales by [factor²] and
    delay (gate plus local wire) by [factor].  Power follows area.
    @raise Invalid_argument unless [0 < factor <= 1]. *)

val shrink_library : factor:float -> library -> library
(** Shrink every entry (1-bit cells included: the whole node moves). *)

val pp : Format.formatter -> t -> unit
