(* Tests for chop_sched: schedule validation, list scheduling, pipelined
   initiation intervals, lifetime analysis and urgency scheduling. *)

open Chop_sched

let unit_latency _ = 1

let ar () = Chop_dfg.Benchmarks.ar_lattice_filter ()

let schedule_of ?(latency = unit_latency) ~alloc g =
  List_sched.run ~latency ~alloc g

(* ------------------------------------------------------------------ *)
(* Schedule *)

let test_alloc_get () =
  Alcotest.(check int) "present" 3 (Schedule.alloc_get [ ("add", 3) ] "add");
  Alcotest.(check int) "absent" 0 (Schedule.alloc_get [ ("add", 3) ] "mult")

let test_validate_alloc () =
  (match Schedule.validate_alloc [ ("add", 1); ("add", 2) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate class accepted");
  match Schedule.validate_alloc [ ("add", 0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero units accepted"

let test_check_accepts_list_schedule () =
  let g = ar () in
  let s = schedule_of ~alloc:[ ("add", 2); ("mult", 2) ] g in
  (match Schedule.check s with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let test_check_rejects_violations () =
  let g = ar () in
  let s = schedule_of ~alloc:[ ("add", 2); ("mult", 2) ] g in
  (* corrupt: start everything at 0 *)
  let broken = { s with Schedule.starts = List.map (fun (id, _) -> (id, 0)) s.Schedule.starts } in
  match Schedule.check broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "broken schedule accepted"

let test_busy_profile_capped () =
  let g = ar () in
  let alloc = [ ("add", 2); ("mult", 3) ] in
  let s = schedule_of ~alloc g in
  let profile = Schedule.busy_profile s ~cls:"mult" in
  Array.iter (fun b -> Alcotest.(check bool) "<= alloc" true (b <= 3)) profile;
  Alcotest.(check int) "total work" 16 (Array.fold_left ( + ) 0 profile)

(* ------------------------------------------------------------------ *)
(* List_sched *)

let test_list_sched_length_bounds () =
  let g = ar () in
  (* fully parallel: length = critical path *)
  let s = schedule_of ~alloc:[ ("add", 12); ("mult", 16) ] g in
  Alcotest.(check int) "cp length" (Chop_dfg.Analysis.critical_path g) s.Schedule.length;
  (* fully serial: length >= total ops / 1 for the busiest class *)
  let s1 = schedule_of ~alloc:[ ("add", 1); ("mult", 1) ] g in
  Alcotest.(check bool) "serial long" true (s1.Schedule.length >= 16)

let test_list_sched_monotone_in_alloc () =
  let g = ar () in
  let len alloc = (schedule_of ~alloc g).Schedule.length in
  Alcotest.(check bool) "more units never slower" true
    (len [ ("add", 2); ("mult", 2) ] >= len [ ("add", 3); ("mult", 4) ])

let test_list_sched_missing_class () =
  let g = ar () in
  match schedule_of ~alloc:[ ("add", 2) ] g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing class accepted"

let test_list_sched_bad_latency () =
  let g = ar () in
  match List_sched.run ~latency:(fun _ -> 0) ~alloc:[ ("add", 1); ("mult", 1) ] g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "latency 0 accepted"

let test_list_sched_multicycle () =
  let g = ar () in
  let latency n = if n.Chop_dfg.Graph.op = Chop_dfg.Op.Mult then 3 else 1 in
  let s = List_sched.run ~latency ~alloc:[ ("add", 2); ("mult", 2) ] g in
  (match Schedule.check s with Ok () -> () | Error e -> Alcotest.fail e);
  (* 16 mults x 3 cycles on 2 units: at least 24 cycles *)
  Alcotest.(check bool) "length covers mult work" true (s.Schedule.length >= 24)

let test_minimal_maximal_alloc () =
  let g = ar () in
  Alcotest.(check (list (pair string int))) "minimal"
    [ ("add", 1); ("mult", 1) ] (List_sched.minimal_alloc g);
  let m = List_sched.maximal_useful_alloc g in
  (* one lattice section's 4 multiplications share an ASAP level *)
  Alcotest.(check int) "max mult parallelism" 4 (Schedule.alloc_get m "mult")

let list_sched_always_valid =
  QCheck.Test.make ~name:"list schedules satisfy precedence + resources"
    ~count:60
    QCheck.(triple (5 -- 40) (0 -- 500) (pair (1 -- 3) (1 -- 3)))
    (fun (ops, seed, (na, nm)) ->
      let g = Chop_dfg.Benchmarks.random_dag ~ops ~seed () in
      let profile = Chop_dfg.Graph.op_profile g in
      let alloc =
        List.map
          (fun (cls, _) -> (cls, if cls = "add" then na else nm))
          profile
      in
      let s = List_sched.run ~latency:unit_latency ~alloc g in
      match Schedule.check s with Ok () -> true | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Pipeline *)

let test_min_ii_bounds () =
  let g = ar () in
  let s = schedule_of ~alloc:[ ("add", 2); ("mult", 2) ] g in
  let ii = Pipeline.min_ii s in
  (* resource bound: 16 mults on 2 units -> at least 8 *)
  Alcotest.(check bool) "lower bound" true (ii >= 8);
  Alcotest.(check bool) "at most length" true (ii <= s.Schedule.length);
  Alcotest.(check bool) "feasible" true (Pipeline.feasible_ii s ~ii)

let test_feasible_ii_monotone () =
  let g = ar () in
  let s = schedule_of ~alloc:[ ("add", 2); ("mult", 4) ] g in
  let ii = Pipeline.min_ii s in
  Alcotest.(check bool) "ii+1 also feasible" true (Pipeline.feasible_ii s ~ii:(ii + 1));
  if ii > 1 then
    Alcotest.(check bool) "ii-1 infeasible" false (Pipeline.feasible_ii s ~ii:(ii - 1))

let test_feasible_ii_validates () =
  let g = ar () in
  let s = schedule_of ~alloc:[ ("add", 2); ("mult", 2) ] g in
  match Pipeline.feasible_ii s ~ii:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ii 0 accepted"

let test_stage_count () =
  let g = ar () in
  let s = schedule_of ~alloc:[ ("add", 12); ("mult", 16) ] g in
  Alcotest.(check int) "length 8, ii 4 -> 2 stages" 2 (Pipeline.stage_count s ~ii:4);
  Alcotest.(check int) "ii = length -> 1 stage" 1
    (Pipeline.stage_count s ~ii:s.Schedule.length)

let pipeline_folding_respects_alloc =
  QCheck.Test.make ~name:"min_ii folded profile within allocation" ~count:40
    QCheck.(pair (5 -- 30) (0 -- 500))
    (fun (ops, seed) ->
      let g = Chop_dfg.Benchmarks.random_dag ~ops ~seed () in
      let alloc = List.map (fun (c, _) -> (c, 2)) (Chop_dfg.Graph.op_profile g) in
      let s = List_sched.run ~latency:unit_latency ~alloc g in
      let ii = Pipeline.min_ii s in
      Pipeline.feasible_ii s ~ii)

(* ------------------------------------------------------------------ *)
(* Lifetime *)

let test_lifetime_positive () =
  let g = ar () in
  let s = schedule_of ~alloc:[ ("add", 2); ("mult", 2) ] g in
  let d = Lifetime.analyze s in
  Alcotest.(check bool) "bits > 0" true (d.Lifetime.register_bits > 0);
  Alcotest.(check bool) "values > 0" true (d.Lifetime.peak_values > 0);
  Alcotest.(check bool) "bits >= 16 * values is false generally" true
    (d.Lifetime.register_bits >= d.Lifetime.peak_values)

let test_lifetime_pipelined_needs_more () =
  let g = ar () in
  let s = schedule_of ~alloc:[ ("add", 3); ("mult", 4) ] g in
  let seq = Lifetime.analyze s in
  let ii = Pipeline.min_ii s in
  if ii < s.Schedule.length then begin
    let pipe = Lifetime.analyze ~ii s in
    Alcotest.(check bool) "folding overlaps lifetimes" true
      (pipe.Lifetime.register_bits >= seq.Lifetime.register_bits)
  end

let test_lifetime_validates () =
  let g = ar () in
  let s = schedule_of ~alloc:[ ("add", 2); ("mult", 2) ] g in
  match Lifetime.analyze ~ii:0 s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ii 0 accepted"

(* ------------------------------------------------------------------ *)
(* Chain_sched *)

let chain_delay n =
  match n.Chop_dfg.Graph.op with Chop_dfg.Op.Mult -> 375. | _ -> 53.

let test_chain_shortens_schedule () =
  let g = ar () in
  let alloc = [ ("add", 3); ("mult", 4) ] in
  let sched, offsets = Chain_sched.run ~delay:chain_delay ~budget:450. ~alloc g in
  (match Chain_sched.check ~delay:chain_delay ~budget:450. (sched, offsets) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let plain = List_sched.run ~latency:unit_latency ~alloc g in
  Alcotest.(check bool) "chaining shortens" true
    (sched.Schedule.length < plain.Schedule.length)

let test_chain_budget_respected () =
  let g = ar () in
  let alloc = [ ("add", 3); ("mult", 4) ] in
  (* a tight budget only admits single operations per step *)
  let sched, offsets = Chain_sched.run ~delay:chain_delay ~budget:380. ~alloc g in
  (match Chain_sched.check ~delay:chain_delay ~budget:380. (sched, offsets) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  List.iter
    (fun (_, off) -> Alcotest.(check bool) "no chaining possible" true (off = 0.))
    offsets

let test_chain_validates () =
  let g = ar () in
  let alloc = [ ("add", 1); ("mult", 1) ] in
  (match Chain_sched.run ~delay:chain_delay ~budget:0. ~alloc g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "budget 0 accepted");
  match Chain_sched.run ~delay:chain_delay ~budget:100. ~alloc g with
  | exception Invalid_argument _ -> () (* mult 375 > 100 *)
  | _ -> Alcotest.fail "oversized module accepted"

let test_chain_check_catches_violations () =
  let g = ar () in
  let alloc = [ ("add", 3); ("mult", 4) ] in
  let sched, offsets = Chain_sched.run ~delay:chain_delay ~budget:450. ~alloc g in
  (* zeroing all offsets breaks the settles-before-use invariant whenever a
     chain exists *)
  let broken = List.map (fun (id, _) -> (id, 0.)) offsets in
  let has_chain = List.exists (fun (_, off) -> off > 0.) offsets in
  if has_chain then
    match Chain_sched.check ~delay:chain_delay ~budget:450. (sched, broken) with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "broken offsets accepted"

let chain_sched_valid_on_random =
  QCheck.Test.make ~name:"chained schedules valid on random dags" ~count:30
    QCheck.(pair (5 -- 30) (0 -- 300))
    (fun (ops, seed) ->
      let g = Chop_dfg.Benchmarks.random_dag ~ops ~seed () in
      let alloc = List.map (fun (c, _) -> (c, 2)) (Chop_dfg.Graph.op_profile g) in
      let r = Chain_sched.run ~delay:chain_delay ~budget:900. ~alloc g in
      match Chain_sched.check ~delay:chain_delay ~budget:900. r with
      | Ok () -> true
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Force_directed *)

let test_fds_valid_schedule () =
  let g = ar () in
  List.iter
    (fun length ->
      let s = Force_directed.run ~length g in
      match Schedule.check s with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "length %d: %s" length e))
    [ 8; 10; 14; 20 ]

let test_fds_longer_needs_fewer_units () =
  let g = ar () in
  let units length =
    Schedule.alloc_get (Force_directed.min_units ~length g) "mult"
  in
  Alcotest.(check bool) "monotone pressure" true (units 8 >= units 16);
  (* at the critical path all four lattice multiplications of a level run
     together; far beyond it two units suffice *)
  Alcotest.(check bool) "cp needs parallelism" true (units 8 >= 3);
  Alcotest.(check bool) "slack relaxes" true (units 20 <= 2)

let test_fds_rejects_short_length () =
  let g = ar () in
  match Force_directed.run ~length:5 g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length below critical path accepted"

let test_fds_beats_or_matches_list_at_cp () =
  (* at the critical-path length, FDS should not need more multipliers
     than the maximal useful parallelism *)
  let g = ar () in
  let cp = Chop_dfg.Analysis.critical_path g in
  let fds = Force_directed.min_units ~length:cp g in
  let max_useful = List_sched.maximal_useful_alloc g in
  Alcotest.(check bool) "within useful bound" true
    (Schedule.alloc_get fds "mult" <= Schedule.alloc_get max_useful "mult")

let test_fds_multicycle () =
  let g = ar () in
  let latency n = if n.Chop_dfg.Graph.op = Chop_dfg.Op.Mult then 2 else 1 in
  let cp = Chop_dfg.Analysis.critical_path ~latency g in
  let s = Force_directed.run ~latency ~length:(cp + 4) g in
  match Schedule.check s with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let fds_always_valid =
  QCheck.Test.make ~name:"fds schedules random dags validly" ~count:25
    QCheck.(pair (5 -- 25) (0 -- 200))
    (fun (ops, seed) ->
      let g = Chop_dfg.Benchmarks.random_dag ~ops ~seed () in
      let cp = Chop_dfg.Analysis.critical_path g in
      let s = Force_directed.run ~length:(cp + 3) g in
      match Schedule.check s with Ok () -> true | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Urgency *)

let task ?(duration = 1) ?(demands = []) ?(deps = []) name =
  { Urgency.tname = name; duration; demands; deps }

let test_urgency_chain () =
  let r =
    Urgency.run ~resources:[]
      [ task "a" ~duration:3; task "b" ~duration:2 ~deps:[ "a" ];
        task "c" ~duration:1 ~deps:[ "b" ] ]
  in
  Alcotest.(check int) "makespan" 6 r.Urgency.makespan;
  Alcotest.(check (list string)) "critical path" [ "a"; "b"; "c" ]
    (Urgency.critical_path r)

let test_urgency_resource_serializes () =
  let pins = { Urgency.rname = "pins"; capacity = 2 } in
  let r =
    Urgency.run ~resources:[ pins ]
      [ task "a" ~duration:2 ~demands:[ ("pins", 2) ];
        task "b" ~duration:2 ~demands:[ ("pins", 2) ] ]
  in
  (* both need all pins: they cannot overlap *)
  Alcotest.(check int) "serialized" 4 r.Urgency.makespan

let test_urgency_parallel_when_fits () =
  let pins = { Urgency.rname = "pins"; capacity = 4 } in
  let r =
    Urgency.run ~resources:[ pins ]
      [ task "a" ~duration:2 ~demands:[ ("pins", 2) ];
        task "b" ~duration:2 ~demands:[ ("pins", 2) ] ]
  in
  Alcotest.(check int) "parallel" 2 r.Urgency.makespan

let test_urgency_priority_prefers_critical () =
  (* c has a long tail; with capacity 1 it must start before d *)
  let res = { Urgency.rname = "r"; capacity = 1 } in
  let r =
    Urgency.run ~resources:[ res ]
      [ task "c" ~duration:1 ~demands:[ ("r", 1) ];
        task "tail" ~duration:10 ~deps:[ "c" ];
        task "d" ~duration:1 ~demands:[ ("r", 1) ] ]
  in
  let c = List.find (fun p -> p.Urgency.task.Urgency.tname = "c") r.Urgency.placed in
  Alcotest.(check int) "c first" 0 c.Urgency.start_step;
  Alcotest.(check int) "makespan 11" 11 r.Urgency.makespan

let test_urgency_wait_of () =
  let res = { Urgency.rname = "r"; capacity = 1 } in
  let r =
    Urgency.run ~resources:[ res ]
      [ task "long" ~duration:5 ~demands:[ ("r", 1) ];
        task "blocked" ~duration:1 ~demands:[ ("r", 1) ] ]
  in
  Alcotest.(check int) "no wait for first" 0 (Urgency.wait_of r "long");
  Alcotest.(check int) "5 cycle wait" 5 (Urgency.wait_of r "blocked");
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Urgency.wait_of r "nope"))

let test_urgency_zero_duration () =
  let r = Urgency.run ~resources:[] [ task "z" ~duration:0 ] in
  Alcotest.(check int) "makespan 0" 0 r.Urgency.makespan

let test_urgency_rejects_overdemand () =
  let res = { Urgency.rname = "r"; capacity = 1 } in
  match Urgency.run ~resources:[ res ] [ task "a" ~demands:[ ("r", 2) ] ] with
  | exception Urgency.Unschedulable _ -> ()
  | _ -> Alcotest.fail "overdemand accepted"

let test_urgency_rejects_unknown_refs () =
  (match Urgency.run ~resources:[] [ task "a" ~demands:[ ("r", 1) ] ] with
  | exception Urgency.Unschedulable _ -> ()
  | _ -> Alcotest.fail "unknown resource accepted");
  match Urgency.run ~resources:[] [ task "a" ~deps:[ "ghost" ] ] with
  | exception Urgency.Unschedulable _ -> ()
  | _ -> Alcotest.fail "unknown dep accepted"

let test_urgency_rejects_cycle () =
  match
    Urgency.run ~resources:[]
      [ task "a" ~deps:[ "b" ]; task "b" ~deps:[ "a" ] ]
  with
  | exception Urgency.Unschedulable _ -> ()
  | _ -> Alcotest.fail "cyclic deps accepted"

let test_urgency_rejects_duplicates () =
  match Urgency.run ~resources:[] [ task "a"; task "a" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate task accepted"

let urgency_schedule_is_consistent =
  QCheck.Test.make ~name:"urgency schedules respect deps and capacity" ~count:60
    QCheck.(pair (1 -- 12) (0 -- 1000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n |] in
      let tasks =
        List.map
          (fun i ->
            let deps =
              if i = 0 then []
              else
                List.filteri (fun j _ -> j < i && Random.State.bool rng)
                  (List.init i (fun j -> Printf.sprintf "t%d" j))
                |> Chop_util.Listx.take 2
            in
            task (Printf.sprintf "t%d" i)
              ~duration:(Random.State.int rng 5)
              ~demands:[ ("r", 1 + Random.State.int rng 2) ]
              ~deps)
          (Chop_util.Listx.range 0 (n - 1))
      in
      let r = Urgency.run ~resources:[ { Urgency.rname = "r"; capacity = 3 } ] tasks in
      (* deps respected *)
      let finish name =
        (List.find (fun p -> p.Urgency.task.Urgency.tname = name) r.Urgency.placed)
          .Urgency.finish_step
      in
      List.for_all
        (fun p ->
          List.for_all
            (fun d -> finish d <= p.Urgency.start_step)
            p.Urgency.task.Urgency.deps)
        r.Urgency.placed
      (* capacity respected at every step *)
      && (let ok = ref true in
          for step = 0 to r.Urgency.makespan do
            let used =
              Chop_util.Listx.sum_by
                (fun p ->
                  if p.Urgency.start_step <= step && step < p.Urgency.finish_step
                  then Chop_util.Listx.sum_by snd p.Urgency.task.Urgency.demands
                  else 0)
                r.Urgency.placed
            in
            if used > 3 then ok := false
          done;
          !ok))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "chop_sched"
    [
      ( "schedule",
        [
          tc "alloc_get" `Quick test_alloc_get;
          tc "validate_alloc" `Quick test_validate_alloc;
          tc "check accepts" `Quick test_check_accepts_list_schedule;
          tc "check rejects" `Quick test_check_rejects_violations;
          tc "busy profile" `Quick test_busy_profile_capped;
        ] );
      ( "list_sched",
        [
          tc "length bounds" `Quick test_list_sched_length_bounds;
          tc "monotone in alloc" `Quick test_list_sched_monotone_in_alloc;
          tc "missing class" `Quick test_list_sched_missing_class;
          tc "bad latency" `Quick test_list_sched_bad_latency;
          tc "multicycle" `Quick test_list_sched_multicycle;
          tc "min/max alloc" `Quick test_minimal_maximal_alloc;
          QCheck_alcotest.to_alcotest list_sched_always_valid;
        ] );
      ( "pipeline",
        [
          tc "min_ii bounds" `Quick test_min_ii_bounds;
          tc "feasible monotone" `Quick test_feasible_ii_monotone;
          tc "validates" `Quick test_feasible_ii_validates;
          tc "stage count" `Quick test_stage_count;
          QCheck_alcotest.to_alcotest pipeline_folding_respects_alloc;
        ] );
      ( "lifetime",
        [
          tc "positive" `Quick test_lifetime_positive;
          tc "pipelined needs more" `Quick test_lifetime_pipelined_needs_more;
          tc "validates" `Quick test_lifetime_validates;
        ] );
      ( "chain_sched",
        [
          tc "shortens schedules" `Quick test_chain_shortens_schedule;
          tc "budget respected" `Quick test_chain_budget_respected;
          tc "validates" `Quick test_chain_validates;
          tc "check catches violations" `Quick test_chain_check_catches_violations;
          QCheck_alcotest.to_alcotest chain_sched_valid_on_random;
        ] );
      ( "force_directed",
        [
          tc "valid schedules" `Quick test_fds_valid_schedule;
          tc "longer needs fewer units" `Quick test_fds_longer_needs_fewer_units;
          tc "rejects short length" `Quick test_fds_rejects_short_length;
          tc "within useful bound at cp" `Quick test_fds_beats_or_matches_list_at_cp;
          tc "multicycle" `Quick test_fds_multicycle;
          QCheck_alcotest.to_alcotest fds_always_valid;
        ] );
      ( "urgency",
        [
          tc "chain" `Quick test_urgency_chain;
          tc "resource serializes" `Quick test_urgency_resource_serializes;
          tc "parallel when fits" `Quick test_urgency_parallel_when_fits;
          tc "priority" `Quick test_urgency_priority_prefers_critical;
          tc "wait_of" `Quick test_urgency_wait_of;
          tc "zero duration" `Quick test_urgency_zero_duration;
          tc "rejects overdemand" `Quick test_urgency_rejects_overdemand;
          tc "rejects unknown refs" `Quick test_urgency_rejects_unknown_refs;
          tc "rejects cycle" `Quick test_urgency_rejects_cycle;
          tc "rejects duplicates" `Quick test_urgency_rejects_duplicates;
          QCheck_alcotest.to_alcotest urgency_schedule_is_consistent;
        ] );
    ]
