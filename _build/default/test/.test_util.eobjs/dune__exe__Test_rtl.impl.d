test/test_rtl.ml: Alcotest Chop Chop_bad Chop_dfg Chop_rtl Chop_sched Chop_tech Chop_util Float List Printf QCheck QCheck_alcotest String
