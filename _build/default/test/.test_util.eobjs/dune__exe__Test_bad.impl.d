test/test_bad.ml: Alcotest Alloc_enum Chop_bad Chop_dfg Chop_sched Chop_tech Chop_util Control Datapath Feasibility List Prediction Predictor QCheck QCheck_alcotest String
