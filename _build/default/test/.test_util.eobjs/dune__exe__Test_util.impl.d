test/test_util.ml: Alcotest Chop_util Float Fun Gantt Gen Int List Listx Pareto Prob QCheck QCheck_alcotest Scatter String Texttable Triplet Units
