test/test_sched.ml: Alcotest Array Chain_sched Chop_dfg Chop_sched Chop_util Force_directed Lifetime List List_sched Pipeline Printf QCheck QCheck_alcotest Random Schedule Urgency
