test/test_bad.mli:
