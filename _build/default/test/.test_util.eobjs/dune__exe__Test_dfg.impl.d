test/test_dfg.ml: Alcotest Analysis Behavior Benchmarks Chop_dfg Chop_util Dot Eval Graph Int List Op Partition Printf QCheck QCheck_alcotest String Transform
