test/test_baseline.ml: Alcotest Autopart Autosearch Chop Chop_bad Chop_baseline Chop_dfg Chop_tech Chop_util Float Int Kl List Packing QCheck QCheck_alcotest String
