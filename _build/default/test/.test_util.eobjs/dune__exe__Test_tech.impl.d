test/test_tech.ml: Alcotest Chip Chop_dfg Chop_tech Chop_util Clocking Component Cost List Memory Mosis Pla Wiring
